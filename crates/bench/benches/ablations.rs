//! Design-choice ablations called out in DESIGN.md:
//!
//! * damped (Kitsune) vs sliding-window statistics — same information goal,
//!   very different costs (the damped form is O(1) per packet, the window
//!   recomputes);
//! * feature-cache sharing across algorithms — the paper's "intermediate
//!   results are shared" claim, measured as wall time of repeated runs with
//!   and without the cache.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_algorithms::{algorithm, AlgorithmId};
use lumen_bench::{packet_capture, to_source};
use lumen_core::cache::FeatureCache;
use lumen_core::data::DataKind;
use lumen_core::Pipeline;

fn run(template: serde_json::Value, source: &lumen_core::data::Data) -> usize {
    let p = Pipeline::parse(&template, &[("source", DataKind::Packets)]).unwrap();
    let mut b = HashMap::new();
    b.insert("source".to_string(), source.clone());
    let mut out = p.run(b).unwrap();
    match out.take("features").unwrap() {
        lumen_core::data::Data::Table(t) => t.rows(),
        _ => 0,
    }
}

fn bench_ablations(c: &mut Criterion) {
    let source = to_source(&packet_capture());

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // --- damped vs sliding window -------------------------------------------
    g.bench_function("kitsune_damped_stats", |b| {
        b.iter(|| {
            run(
                serde_json::json!([
                    {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
                    {"func": "DampedStats", "input": ["g"], "output": "features",
                     "field": "wire_len"}
                ]),
                &source,
            )
        })
    });
    g.bench_function("sliding_window_stats", |b| {
        b.iter(|| {
            run(
                serde_json::json!([
                    {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
                    {"func": "RollingAggregates", "input": ["g"], "output": "features",
                     "field": "wire_len", "fns": ["mean", "std"], "window_pkts": 64}
                ]),
                &source,
            )
        })
    });

    // --- feature cache on/off -----------------------------------------------
    // Four nPrint variants share packet parsing but differ in encodings;
    // A01 run repeatedly is the pure cache case.
    let a01 = algorithm(AlgorithmId::A01);
    g.bench_function("repeat_extraction_without_cache", |b| {
        b.iter(|| {
            let mut rows = 0;
            for _ in 0..3 {
                rows += a01.extract_features(&source).unwrap().rows();
            }
            rows
        })
    });
    g.bench_function("repeat_extraction_with_cache", |b| {
        b.iter(|| {
            let cache = FeatureCache::new();
            let mut rows = 0;
            for _ in 0..3 {
                rows += cache
                    .get_or_compute("bench", a01.feature_fingerprint(), || {
                        a01.extract_features(&source)
                    })
                    .unwrap()
                    .rows();
            }
            rows
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
