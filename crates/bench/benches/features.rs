//! Feature-engineering operation benchmarks: the per-operation costs the
//! engine's profiler reports, measured in isolation.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lumen_bench::{bench_capture, packet_capture, to_source};
use lumen_core::data::DataKind;
use lumen_core::Pipeline;

fn run_template(template: serde_json::Value, source: &lumen_core::data::Data) -> usize {
    let p = Pipeline::parse(&template, &[("source", DataKind::Packets)]).unwrap();
    let mut b = HashMap::new();
    b.insert("source".to_string(), source.clone());
    let mut out = p.run(b).unwrap();
    match out.take("features").unwrap() {
        lumen_core::data::Data::Table(t) => t.rows(),
        _ => 0,
    }
}

fn bench_features(c: &mut Criterion) {
    let conn_source = to_source(&bench_capture());
    let pkt_source = to_source(&packet_capture());
    let n_pkts = match &pkt_source {
        lumen_core::data::Data::Packets(p) => p.len(),
        _ => 0,
    };

    let mut g = c.benchmark_group("features");
    g.throughput(Throughput::Elements(n_pkts as u64));

    g.bench_function("field_extract", |b| {
        b.iter(|| {
            run_template(
                serde_json::json!([
                    {"func": "FieldExtract", "input": ["source"], "output": "features",
                     "fields": ["wire_len", "ttl", "src_port", "dst_port", "payload_len"]}
                ]),
                &pkt_source,
            )
        })
    });

    g.bench_function("nprint_encode", |b| {
        b.iter(|| {
            run_template(
                serde_json::json!([
                    {"func": "NprintEncode", "input": ["source"], "output": "features",
                     "sections": ["ipv4", "tcp", "udp"]}
                ]),
                &pkt_source,
            )
        })
    });

    g.bench_function("damped_stats_kitsune", |b| {
        b.iter(|| {
            run_template(
                serde_json::json!([
                    {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
                    {"func": "DampedStats", "input": ["g"], "output": "features",
                     "field": "wire_len"}
                ]),
                &pkt_source,
            )
        })
    });

    g.bench_function("flow_assemble_conn_extract", |b| {
        b.iter(|| {
            run_template(
                serde_json::json!([
                    {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
                    {"func": "ConnExtract", "input": ["conns"], "output": "features",
                     "fields": ["duration", "orig_pkts", "resp_pkts", "bandwidth",
                                 "iat_mean", "iat_std", "state"]}
                ]),
                &conn_source,
            )
        })
    });

    g.bench_function("apply_aggregates_sliced", |b| {
        b.iter(|| {
            run_template(
                serde_json::json!([
                    {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
                    {"func": "TimeSlice", "input": ["g"], "output": "s", "window_s": 10.0},
                    {"func": "ApplyAggregates", "input": ["s"], "output": "features",
                     "aggs": [{"fn": "count"}, {"fn": "bandwidth"},
                               {"fn": "mean", "field": "wire_len"},
                               {"fn": "entropy", "field": "src_port"}]}
                ]),
                &conn_source,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
