//! Compute-kernel benchmarks: the shared matmul / pairwise-distance layer
//! against its scalar references, plus the model hot paths built on it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumen_ml::dataset::Dataset;
use lumen_ml::kernels::{self, reference};
use lumen_ml::kmeans::kmeans_t;
use lumen_ml::knn::{Knn, KnnConfig};
use lumen_ml::matrix::Matrix;
use lumen_ml::model::Classifier;
use lumen_util::Rng;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::new(seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.f64_range(-2.0, 2.0))
        .collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

fn bench_matmul(c: &mut Criterion) {
    let a = random_matrix(256, 96, 1);
    let b = random_matrix(96, 256, 2);
    let mut g = c.benchmark_group("matmul_256x96");
    g.sample_size(20);
    g.bench_function("reference", |bch| {
        bch.iter(|| reference::matmul(&a, &b).unwrap().rows())
    });
    for threads in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("kernel", threads), &threads, |bch, &t| {
            bch.iter(|| kernels::matmul(&a, &b, t).unwrap().rows())
        });
    }
    g.finish();
}

fn bench_pairwise(c: &mut Criterion) {
    let a = random_matrix(2000, 32, 3);
    let b = random_matrix(2000, 32, 4);
    let mut g = c.benchmark_group("pairwise_2000x32");
    g.sample_size(10);
    g.bench_function("reference", |bch| {
        bch.iter(|| reference::pairwise_sq_dists(&a, &b).unwrap().rows())
    });
    for threads in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("kernel", threads), &threads, |bch, &t| {
            bch.iter(|| kernels::pairwise_sq_dists(&a, &b, t).unwrap().rows())
        });
    }
    g.finish();
}

fn bench_knn_predict(c: &mut Criterion) {
    let train_x = random_matrix(2000, 24, 5);
    let mut rng = Rng::new(6);
    let labels: Vec<u8> = (0..2000).map(|_| u8::from(rng.chance(0.5))).collect();
    let queries = random_matrix(500, 24, 7);
    let mut g = c.benchmark_group("knn_predict_500q_2000t");
    g.sample_size(20);
    for threads in [1usize, 4] {
        let mut knn = Knn::new(KnnConfig {
            k: 5,
            max_train: 2000,
            threads,
        });
        knn.fit(&Dataset::new(train_x.clone(), labels.clone()).unwrap())
            .unwrap();
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bch, _| {
            bch.iter(|| knn.scores(&queries).len())
        });
    }
    g.finish();
}

fn bench_kmeans_fit(c: &mut Criterion) {
    let x = random_matrix(3000, 16, 8);
    let mut g = c.benchmark_group("kmeans_fit_3000x16_k8");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bch, &t| {
            bch.iter(|| {
                let mut rng = Rng::new(9);
                kmeans_t(&x, 8, 10, &mut rng, t).unwrap().inertia
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_pairwise,
    bench_knn_predict,
    bench_kmeans_fit
);
criterion_main!(benches);
