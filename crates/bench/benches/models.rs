//! ML substrate benchmarks: training and inference costs of the model
//! families the 16 algorithms use.

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_ml::autoencoder::{Autoencoder, AutoencoderConfig};
use lumen_ml::dataset::Dataset;
use lumen_ml::forest::{ForestConfig, RandomForest};
use lumen_ml::kitnet::{Kitnet, KitnetConfig};
use lumen_ml::matrix::Matrix;
use lumen_ml::model::{AnomalyDetector, Classifier};
use lumen_ml::ocsvm::{OcsvmConfig, OneClassSvm};
use lumen_util::Rng;

fn toy_data(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = if i % 4 == 0 { 3.0 } else { 0.0 };
            (0..d).map(|_| rng.normal_with(c, 1.0)).collect()
        })
        .collect();
    let y: Vec<u8> = (0..n).map(|i| u8::from(i % 4 == 0)).collect();
    Dataset::new(Matrix::from_rows(rows).unwrap(), y).unwrap()
}

fn bench_models(c: &mut Criterion) {
    let data = toy_data(1000, 20, 1);
    let benign = data.rows_with_label(0);

    let mut g = c.benchmark_group("models");
    g.sample_size(20);

    g.bench_function("random_forest_fit_1k", |b| {
        b.iter(|| {
            let mut rf = RandomForest::new(ForestConfig {
                n_trees: 20,
                ..ForestConfig::default()
            });
            rf.fit(&data).unwrap();
            rf.tree_count()
        })
    });

    let mut fitted_rf = RandomForest::new(ForestConfig {
        n_trees: 20,
        ..ForestConfig::default()
    });
    fitted_rf.fit(&data).unwrap();
    g.bench_function("random_forest_predict_1k", |b| {
        b.iter(|| fitted_rf.predict(&data.x).len())
    });

    g.bench_function("ocsvm_rff_fit_750", |b| {
        b.iter(|| {
            let mut svm = OneClassSvm::new(OcsvmConfig {
                epochs: 20,
                ..OcsvmConfig::default()
            });
            svm.fit_benign(&benign).unwrap();
        })
    });

    g.bench_function("autoencoder_fit_750", |b| {
        b.iter(|| {
            let mut ae = Autoencoder::new(AutoencoderConfig {
                hidden: vec![8],
                epochs: 10,
                ..AutoencoderConfig::default()
            });
            ae.fit_benign(&benign).unwrap();
        })
    });

    g.bench_function("kitnet_fit_750", |b| {
        b.iter(|| {
            let mut kit = Kitnet::new(KitnetConfig {
                epochs: 5,
                ..KitnetConfig::default()
            });
            kit.fit_benign(&benign).unwrap();
            kit.ensemble_size()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
