//! Packet-substrate benchmarks: frame parsing and pcap round-trips.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lumen_bench::bench_capture;
use lumen_net::{pcap, LinkType, PacketMeta};

fn bench_parsing(c: &mut Criterion) {
    let cap = bench_capture();
    let total_bytes: usize = cap.packets.iter().map(|p| p.data.len()).sum();

    let mut g = c.benchmark_group("parsing");
    g.throughput(Throughput::Bytes(total_bytes as u64));
    g.bench_function("packet_meta_parse", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for p in &cap.packets {
                let meta = PacketMeta::parse(LinkType::Ethernet, p.ts_us, &p.data).unwrap();
                n += meta.wire_len as usize;
            }
            n
        })
    });

    let bytes = cap.to_pcap_bytes();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("pcap_read", |b| {
        b.iter(|| pcap::from_bytes(&bytes).unwrap().1.len())
    });
    g.bench_function("pcap_write", |b| {
        b.iter(|| pcap::to_bytes(cap.link, &cap.packets).len())
    });
    g.finish();
}

criterion_group!(benches, bench_parsing);
criterion_main!(benches);
