//! Whole-algorithm pipeline benchmarks: end-to-end extract → train →
//! evaluate for representative Table-2 algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_algorithms::{algorithm, AlgorithmId};
use lumen_bench::{bench_capture, packet_capture, to_source};

fn bench_pipeline(c: &mut Criterion) {
    let conn_source = to_source(&bench_capture());
    let pkt_source = to_source(&packet_capture());

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    for (id, source) in [
        (AlgorithmId::A14, &conn_source), // Zeek + RF
        (AlgorithmId::A10, &conn_source), // smartdet uni-flow + RF
        (AlgorithmId::A07, &conn_source), // OCSVM
        (AlgorithmId::A02, &pkt_source),  // nPrint
    ] {
        let algo = algorithm(id);
        g.bench_function(format!("extract_{}", id.code()), |b| {
            b.iter(|| algo.extract_features(source).unwrap().rows())
        });
        let features = algo.extract_features(source).unwrap();
        g.bench_function(format!("train_{}", id.code()), |b| {
            b.iter(|| algo.train(&features, 1).unwrap())
        });
        let trained = algo.train(&features, 1).unwrap();
        g.bench_function(format!("evaluate_{}", id.code()), |b| {
            b.iter(|| algo.evaluate(&trained, &features).unwrap().0)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
