//! §4.2 scalability: chunked-parallel capture processing (the Ray
//! substitute) at increasing worker counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lumen_bench::bench_capture;
use lumen_core::par::parse_capture;

fn bench_scalability(c: &mut Criterion) {
    let cap = bench_capture();
    let mut g = c.benchmark_group("scalability");
    g.throughput(Throughput::Elements(cap.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("parse_capture", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let (metas, stats) = parse_capture(cap.link, &cap.packets, t);
                    assert_eq!(stats.total_errors(), 0);
                    metas.len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
