//! Shared fixtures for the Criterion benchmarks.

#![forbid(unsafe_code)]

use std::sync::Arc;

use lumen_core::data::{Data, PacketData};
use lumen_core::par::parse_capture;
use lumen_synth::{build_dataset, DatasetId, LabeledCapture, SynthScale};

/// A small but non-trivial benchmark capture (CTU-like Mirai scenario).
pub fn bench_capture() -> LabeledCapture {
    build_dataset(
        DatasetId::F4,
        SynthScale {
            duration_s: 20.0,
            benign_density: 6,
            intensity: 1.0,
            devices: 0,
        },
        1234,
    )
}

/// A packet-level capture for per-packet feature benchmarks.
pub fn packet_capture() -> LabeledCapture {
    build_dataset(DatasetId::P2, SynthScale::small(), 99)
}

/// Converts a capture into the framework's packet source.
pub fn to_source(cap: &LabeledCapture) -> Data {
    let (metas, _) = parse_capture(cap.link, &cap.packets, 4);
    let labels: Vec<u8> = cap.labels.iter().map(|l| u8::from(l.malicious)).collect();
    let n = labels.len();
    Data::Packets(Arc::new(PacketData {
        link: cap.link,
        metas,
        labels,
        tags: vec![0; n],
    }))
}
