//! The algorithm catalog: every Table-2 entry as data.

use lumen_net::LinkType;
use serde_json::json;

use crate::{Algorithm, Granularity};

/// Table-2 algorithm identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum AlgorithmId {
    A00,
    A01,
    A02,
    A03,
    A04,
    A05,
    A06,
    A07,
    A08,
    A09,
    A10,
    A11,
    A12,
    A13,
    A14,
    A15,
    AM01,
    AM02,
    AM03,
}

impl AlgorithmId {
    /// All algorithms in table order.
    pub const ALL: [AlgorithmId; 19] = [
        AlgorithmId::A00,
        AlgorithmId::A01,
        AlgorithmId::A02,
        AlgorithmId::A03,
        AlgorithmId::A04,
        AlgorithmId::A05,
        AlgorithmId::A06,
        AlgorithmId::A07,
        AlgorithmId::A08,
        AlgorithmId::A09,
        AlgorithmId::A10,
        AlgorithmId::A11,
        AlgorithmId::A12,
        AlgorithmId::A13,
        AlgorithmId::A14,
        AlgorithmId::A15,
        AlgorithmId::AM01,
        AlgorithmId::AM02,
        AlgorithmId::AM03,
    ];

    /// The 16 published algorithms (excludes the AM variants).
    pub const PUBLISHED: [AlgorithmId; 16] = [
        AlgorithmId::A00,
        AlgorithmId::A01,
        AlgorithmId::A02,
        AlgorithmId::A03,
        AlgorithmId::A04,
        AlgorithmId::A05,
        AlgorithmId::A06,
        AlgorithmId::A07,
        AlgorithmId::A08,
        AlgorithmId::A09,
        AlgorithmId::A10,
        AlgorithmId::A11,
        AlgorithmId::A12,
        AlgorithmId::A13,
        AlgorithmId::A14,
        AlgorithmId::A15,
    ];

    /// Short code ("A06", "AM01").
    pub fn code(self) -> &'static str {
        match self {
            AlgorithmId::A00 => "A00",
            AlgorithmId::A01 => "A01",
            AlgorithmId::A02 => "A02",
            AlgorithmId::A03 => "A03",
            AlgorithmId::A04 => "A04",
            AlgorithmId::A05 => "A05",
            AlgorithmId::A06 => "A06",
            AlgorithmId::A07 => "A07",
            AlgorithmId::A08 => "A08",
            AlgorithmId::A09 => "A09",
            AlgorithmId::A10 => "A10",
            AlgorithmId::A11 => "A11",
            AlgorithmId::A12 => "A12",
            AlgorithmId::A13 => "A13",
            AlgorithmId::A14 => "A14",
            AlgorithmId::A15 => "A15",
            AlgorithmId::AM01 => "AM01",
            AlgorithmId::AM02 => "AM02",
            AlgorithmId::AM03 => "AM03",
        }
    }
}

const ETH_ONLY: &[LinkType] = &[LinkType::Ethernet];
const ANY_LINK: &[LinkType] = &[LinkType::Ethernet, LinkType::Ieee80211];

/// The connection feature pipeline shared by A07/A08/A09 (first-N packet
/// inter-arrival times and lengths).
fn firstn_template() -> serde_json::Value {
    json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns", "first_n": 32},
        {"func": "FirstNStats", "input": ["conns"], "output": "features",
         "n": 32, "include_raw": true}
    ])
}

/// The full connection-discriminator pipeline (A13-style, also the base for
/// the AM variants).
fn conn_full_template() -> serde_json::Value {
    json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
        {"func": "ConnExtract", "input": ["conns"], "output": "features",
         "fields": [
            "duration", "orig_pkts", "resp_pkts", "total_pkts",
            "orig_bytes", "resp_bytes", "orig_wire_bytes", "resp_wire_bytes",
            "bandwidth", "symmetry",
            "iat_mean", "iat_std", "iat_min", "iat_max", "iat_median",
            "orig_len_mean", "orig_len_std", "orig_len_min", "orig_len_max",
            "resp_len_mean", "resp_len_std", "resp_len_min", "resp_len_max",
            "orig_syn", "orig_ack", "orig_fin", "orig_rst", "orig_psh",
            "resp_syn", "resp_ack", "resp_fin", "resp_rst",
            "history_len", "orig_ttl_mean", "orig_port", "resp_port",
            "proto", "resp_port_wellknown", "state"
         ]}
    ])
}

/// AM feature pipeline: the full discriminator set joined with first-N
/// summary statistics — features mixed from two published families, exactly
/// the §5.4 synthesis experiment.
fn am_template() -> serde_json::Value {
    json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns", "first_n": 32},
        {"func": "ConnExtract", "input": ["conns"], "output": "t_conn",
         "fields": [
            "duration", "orig_pkts", "resp_pkts", "total_pkts",
            "orig_bytes", "resp_bytes", "orig_wire_bytes", "resp_wire_bytes",
            "bandwidth", "symmetry",
            "iat_mean", "iat_std", "iat_min", "iat_max", "iat_median",
            "orig_len_mean", "orig_len_std", "orig_len_min", "orig_len_max",
            "resp_len_mean", "resp_len_std", "resp_len_min", "resp_len_max",
            "orig_syn", "orig_ack", "orig_fin", "orig_rst", "orig_psh",
            "resp_syn", "resp_ack", "resp_fin", "resp_rst",
            "history_len", "orig_ttl_mean", "orig_port", "resp_port",
            "proto", "resp_port_wellknown", "state"
         ]},
        {"func": "FirstNStats", "input": ["conns"], "output": "t_firstn",
         "n": 32, "include_raw": false},
        {"func": "Concat", "input": ["t_conn", "t_firstn"], "output": "features"}
    ])
}

/// Builds the full definition of one algorithm.
pub fn algorithm(id: AlgorithmId) -> Algorithm {
    match id {
        // --- ML DDoS (Doshi, Apthorpe, Feamster 2018) ------------------------
        AlgorithmId::A00 => Algorithm {
            id,
            name: "ML DDoS",
            citation: "[18]",
            ml_model: "Ensemble of RF, SVM, DT and KNN",
            granularity: Granularity::Packet,
            lit_datasets: &["custom-doshi"],
            reported: "Precision: 99.9%",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: json!([
                {"func": "FieldExtract", "input": ["source"], "output": "t_fields",
                 "fields": ["wire_len", "proto", "is_tcp", "is_udp", "payload_len"]},
                {"func": "GroupBy", "input": ["source"], "output": "by_src", "key": "srcIp"},
                {"func": "InterArrival", "input": ["by_src"], "output": "t_iat"},
                {"func": "RollingAggregates", "input": ["by_src"], "output": "t_dst",
                 "field": "dst_ip_u32", "fns": ["distinct"], "window_pkts": 64},
                {"func": "RollingAggregates", "input": ["by_src"], "output": "t_len",
                 "field": "wire_len", "fns": ["mean", "std"], "window_pkts": 32},
                {"func": "Concat", "input": ["t_fields", "t_iat", "t_dst", "t_len"],
                 "output": "features"}
            ]),
            model_params: json!({"model_type": "Committee", "normalize": "zscore"}),
        },
        // --- nPrint (Holland et al. 2021), four field subsets ----------------
        AlgorithmId::A01 => nprint(id, "nprint1: All", json!(["ipv4", "tcp", "udp", "icmp"]), 0),
        AlgorithmId::A02 => nprint(
            id,
            "nprint2: tcp+udp+ipv4",
            json!(["ipv4", "tcp", "udp"]),
            0,
        ),
        AlgorithmId::A03 => nprint(
            id,
            "nprint3: tcp+udp+ipv4+payload",
            json!(["ipv4", "tcp", "udp"]),
            16,
        ),
        AlgorithmId::A04 => nprint(
            id,
            "nprint4: tcp+icmp+ipv4",
            json!(["ipv4", "tcp", "icmp"]),
            0,
        ),
        // --- Smart-home IDS (Anthi et al. 2019) ------------------------------
        AlgorithmId::A05 => Algorithm {
            id,
            name: "IDS smart home",
            citation: "[11]",
            ml_model: "Random Forest",
            granularity: Granularity::Packet,
            lit_datasets: &["custom-anthi"],
            reported: "Precision: 97%",
            links: ETH_ONLY,
            // The paper's footnote 3: A05's PDML decoding only applies to a
            // single dataset in the suite.
            restricted_to: Some(&["P0"]),
            feature_template: json!([
                {"func": "PdmlEncode", "input": ["source"], "output": "features"}
            ]),
            model_params: json!({"model_type": "RandomForest", "n_trees": 30}),
        },
        // --- Kitsune (Mirsky et al. 2018) -------------------------------------
        AlgorithmId::A06 => Algorithm {
            id,
            name: "Kitsune",
            citation: "[27]",
            ml_model: "Stacked Auto-Encoders",
            granularity: Granularity::Packet,
            lit_datasets: &["kitsune-camera"],
            reported: "Precision: 99%",
            links: ANY_LINK,
            restricted_to: None,
            feature_template: json!([
                {"func": "GroupBy", "input": ["source"], "output": "by_mac", "key": "srcMac"},
                {"func": "DampedStats", "input": ["by_mac"], "output": "t_mac",
                 "field": "wire_len", "prefix": "mac"},
                {"func": "GroupBy", "input": ["source"], "output": "by_ch", "key": "channel"},
                {"func": "DampedStats", "input": ["by_ch"], "output": "t_ch",
                 "field": "wire_len", "prefix": "ch"},
                {"func": "DampedStats", "input": ["by_ch"], "output": "t_jit",
                 "field": "iat", "lambdas": [5.0, 1.0, 0.1], "prefix": "jit"},
                {"func": "GroupBy", "input": ["source"], "output": "by_sock", "key": "socket"},
                {"func": "DampedStats", "input": ["by_sock"], "output": "t_sock",
                 "field": "wire_len", "prefix": "sock"},
                {"func": "GroupBy", "input": ["source"], "output": "by_pair", "key": "pair"},
                {"func": "DampedCov", "input": ["by_pair"], "output": "t_cov"},
                {"func": "Concat", "input": ["t_mac", "t_ch", "t_jit", "t_sock", "t_cov"],
                 "output": "features"}
            ]),
            model_params: json!({
                "model_type": "Kitsune", "max_cluster": 10, "epochs": 20,
                "benign_quantile": 0.995
            }),
        },
        // --- Efficient one-class SVM family (Yang et al. 2021) ----------------
        AlgorithmId::A07 => Algorithm {
            id,
            name: "OCSVM",
            citation: "[40]",
            ml_model: "OCSVM and GMM",
            granularity: Granularity::Connection,
            lit_datasets: &["ctu-iot", "unb-ids", "mawi"],
            reported: "AUC: 62 - 99%",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: firstn_template(),
            model_params: json!({
                "model_type": "OCSVM", "nu": 0.05, "normalize": "minmax",
                "benign_quantile": 0.99
            }),
        },
        AlgorithmId::A08 => Algorithm {
            id,
            name: "Nystrom+GMM",
            citation: "[40]",
            ml_model: "Nystroem + GMM",
            granularity: Granularity::Connection,
            lit_datasets: &["ctu-iot", "unb-ids", "mawi"],
            reported: "AUC: 62 - 99%",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: firstn_template(),
            model_params: json!({
                "model_type": "NystroemGMM", "landmarks": 48, "mixture": 4,
                "normalize": "minmax", "benign_quantile": 0.99
            }),
        },
        AlgorithmId::A09 => Algorithm {
            id,
            name: "Nystrom+OCSVM",
            citation: "[40]",
            ml_model: "Nystroem + OCSVM",
            granularity: Granularity::Connection,
            lit_datasets: &["ctu-iot", "unb-ids", "mawi"],
            reported: "AUC: 75%",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: firstn_template(),
            model_params: json!({
                "model_type": "NystroemOCSVM", "landmarks": 48, "nu": 0.05,
                "normalize": "minmax", "benign_quantile": 0.99
            }),
        },
        // --- Smart detection / SD-IoT (de Lima Filho et al. 2019) -------------
        AlgorithmId::A10 => Algorithm {
            id,
            name: "smartdet",
            citation: "[24]",
            ml_model: "Random Forest",
            granularity: Granularity::UniFlow,
            lit_datasets: &["cicids2017", "cic-dos"],
            reported: "Precision: 80 - 96.1%",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: json!([
                {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
                {"func": "UniFlowSplit", "input": ["conns"], "output": "flows"},
                {"func": "UniExtract", "input": ["flows"], "output": "features",
                 "fields": [
                    "duration", "pkts", "payload_bytes", "wire_bytes",
                    "pkt_rate", "byte_rate",
                    "len_mean", "len_std", "len_min", "len_max", "len_median",
                    "syn", "ack", "fin", "rst", "psh", "flag_rate", "dst_port"
                 ]}
            ]),
            model_params: json!({"model_type": "RandomForest", "n_trees": 30, "normalize": "zscore"}),
        },
        // --- Network-centric anomaly detection (Bhatia et al. 2019) -----------
        AlgorithmId::A11 => Algorithm {
            id,
            name: "nokia",
            citation: "[15]",
            ml_model: "Auto Encoder",
            granularity: Granularity::Connection,
            lit_datasets: &["custom-nokia"],
            reported: "Precision: 99%",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: json!([
                {"func": "GroupBy", "input": ["source"], "output": "by_pair", "key": "pair"},
                {"func": "TimeSlice", "input": ["by_pair"], "output": "sliced", "window_s": 10.0},
                {"func": "ApplyAggregates", "input": ["sliced"], "output": "features",
                 "aggs": [
                    {"fn": "count"},
                    {"fn": "bandwidth"},
                    {"fn": "rate"},
                    {"fn": "mean", "field": "wire_len"},
                    {"fn": "std", "field": "wire_len"},
                    {"fn": "distinct", "field": "dst_port"},
                    {"fn": "entropy", "field": "src_port"},
                    {"fn": "mean", "field": "payload_len"}
                 ]}
            ]),
            model_params: json!({
                "model_type": "Autoencoder", "hidden": 4, "epochs": 50,
                "normalize": "minmax", "benign_quantile": 0.99
            }),
        },
        // --- Early detection (Hwang et al. 2020) ------------------------------
        AlgorithmId::A12 => Algorithm {
            id,
            name: "early detection",
            citation: "[21]",
            ml_model: "Autoencoder (unsupervised DL)",
            granularity: Granularity::Connection,
            lit_datasets: &["mawi", "custom-hwang"],
            reported: "Accuracy: ~99%",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: json!([
                {"func": "FlowAssemble", "input": ["source"], "output": "conns", "first_n": 8},
                {"func": "FirstNStats", "input": ["conns"], "output": "features",
                 "n": 8, "include_raw": true}
            ]),
            model_params: json!({
                "model_type": "Autoencoder", "hidden": 6, "epochs": 50,
                "normalize": "minmax", "benign_quantile": 0.99
            }),
        },
        // --- Bayesian traffic classification (Moore & Zuev 2005) --------------
        AlgorithmId::A13 => Algorithm {
            id,
            name: "Bayesian",
            citation: "[28]",
            ml_model: "Bayes Classifier",
            granularity: Granularity::Connection,
            lit_datasets: &["custom-moore"],
            reported: "Precision: 96.29%",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: conn_full_template(),
            model_params: json!({
                "model_type": "GaussianNB", "normalize": "zscore", "corr_filter": 0.98
            }),
        },
        // --- Zeek-logs IDS (Austin 2021) ---------------------------------------
        AlgorithmId::A14 => Algorithm {
            id,
            name: "Zeek",
            citation: "[13]",
            ml_model: "RF",
            granularity: Granularity::Connection,
            lit_datasets: &["ctu-iot"],
            reported: "Precision: 97%",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: json!([
                {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
                {"func": "ConnExtract", "input": ["conns"], "output": "features",
                 "fields": [
                    "duration", "orig_bytes", "resp_bytes", "orig_pkts", "resp_pkts",
                    "orig_wire_bytes", "resp_wire_bytes", "history_len",
                    "resp_port", "proto", "state"
                 ]}
            ]),
            model_params: json!({"model_type": "RandomForest", "n_trees": 30}),
        },
        // --- Industrial IoT (Zolanvari et al. 2019) -----------------------------
        AlgorithmId::A15 => Algorithm {
            id,
            name: "IIoT",
            citation: "[41]",
            ml_model: "Random Forest",
            granularity: Granularity::Connection,
            lit_datasets: &["custom-zolanvari"],
            reported: "Sensitivity: 97%",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: json!([
                {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
                {"func": "ConnExtract", "input": ["conns"], "output": "features",
                 "fields": [
                    "duration", "total_pkts", "orig_wire_bytes", "resp_wire_bytes",
                    "bandwidth", "iat_mean", "iat_std",
                    "orig_len_mean", "resp_len_mean", "symmetry"
                 ]}
            ]),
            model_params: json!({"model_type": "RandomForest", "n_trees": 30, "normalize": "robust"}),
        },
        // --- Lumen-synthesized variants (§5.4) ----------------------------------
        AlgorithmId::AM01 => Algorithm {
            id,
            name: "AM01 (mixed + AutoML)",
            citation: "this paper",
            ml_model: "AutoML over mixed features",
            granularity: Granularity::Connection,
            lit_datasets: &[],
            reported: "—",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: am_template(),
            model_params: json!({
                "model_type": "AutoML", "folds": 3,
                "normalize": "zscore", "corr_filter": 0.98
            }),
        },
        AlgorithmId::AM02 => Algorithm {
            id,
            name: "AM02 (mixed + tuned RF)",
            citation: "this paper",
            ml_model: "Tuned Random Forest over mixed features",
            granularity: Granularity::Connection,
            lit_datasets: &[],
            reported: "—",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: am_template(),
            model_params: json!({
                "model_type": "RandomForest", "n_trees": 60, "max_depth": 16,
                "normalize": "robust", "corr_filter": 0.99
            }),
        },
        AlgorithmId::AM03 => Algorithm {
            id,
            name: "AM03 (mixed + committee)",
            citation: "this paper",
            ml_model: "Committee over mixed features",
            granularity: Granularity::Connection,
            lit_datasets: &[],
            reported: "—",
            links: ETH_ONLY,
            restricted_to: None,
            feature_template: am_template(),
            model_params: json!({
                "model_type": "Committee", "normalize": "zscore", "corr_filter": 0.98
            }),
        },
    }
}

fn nprint(
    id: AlgorithmId,
    name: &'static str,
    sections: serde_json::Value,
    payload_bytes: usize,
) -> Algorithm {
    Algorithm {
        id,
        name,
        citation: "[20]",
        ml_model: "AutoML",
        granularity: Granularity::Packet,
        lit_datasets: &["cicids2017", "netml"],
        reported: "Balanced Precision: 86-99%",
        links: ETH_ONLY,
        restricted_to: None,
        feature_template: json!([
            {"func": "NprintEncode", "input": ["source"], "output": "features",
             "sections": sections, "payload_bytes": payload_bytes}
        ]),
        // The published pipeline feeds nPrint encodings to AutoML; a tuned
        // forest grid-search keeps the benchmark tractable.
        model_params: json!({"model_type": "RandomForest", "n_trees": 25, "max_depth": 14}),
    }
}

/// All 19 algorithms in table order.
pub fn all_algorithms() -> Vec<Algorithm> {
    AlgorithmId::ALL.iter().map(|&id| algorithm(id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_ids() {
        assert_eq!(algorithm(AlgorithmId::A06).id.code(), "A06");
        assert_eq!(algorithm(AlgorithmId::AM02).id.code(), "AM02");
    }

    #[test]
    fn published_is_sixteen() {
        assert_eq!(AlgorithmId::PUBLISHED.len(), 16);
    }

    #[test]
    fn granularity_census_matches_table2() {
        let algos = all_algorithms();
        let packet = algos
            .iter()
            .filter(|a| a.granularity == Granularity::Packet)
            .count();
        let uni = algos
            .iter()
            .filter(|a| a.granularity == Granularity::UniFlow)
            .count();
        // A00-A06 are packet-level; A10 is the only uni-flow.
        assert_eq!(packet, 7);
        assert_eq!(uni, 1);
    }

    #[test]
    fn nprint_variants_have_distinct_widths() {
        use lumen_core::data::{Data, PacketData};
        use std::sync::Arc;
        // One TCP packet source.
        let pkt = lumen_net::builder::tcp_packet(lumen_net::builder::TcpParams {
            src_mac: lumen_net::MacAddr::from_id(1),
            dst_mac: lumen_net::MacAddr::from_id(2),
            src_ip: std::net::Ipv4Addr::new(1, 1, 1, 1),
            dst_ip: std::net::Ipv4Addr::new(2, 2, 2, 2),
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: lumen_net::wire::tcp::TcpFlags::SYN,
            window: 0,
            ttl: 64,
            payload: b"",
        });
        let meta = lumen_net::PacketMeta::parse(LinkType::Ethernet, 0, &pkt).unwrap();
        let source = Data::Packets(Arc::new(PacketData {
            link: LinkType::Ethernet,
            metas: vec![meta],
            labels: vec![0],
            tags: vec![0],
        }));
        let w1 = algorithm(AlgorithmId::A01)
            .extract_features(&source)
            .unwrap()
            .cols();
        let w2 = algorithm(AlgorithmId::A02)
            .extract_features(&source)
            .unwrap()
            .cols();
        let w3 = algorithm(AlgorithmId::A03)
            .extract_features(&source)
            .unwrap()
            .cols();
        assert_eq!(w1, 160 + 160 + 64 + 64);
        assert_eq!(w2, 160 + 160 + 64);
        assert_eq!(w3, w2 + 16 * 8);
    }

    #[test]
    fn nprint_variants_have_distinct_fingerprints() {
        let f1 = algorithm(AlgorithmId::A01).feature_fingerprint();
        let f2 = algorithm(AlgorithmId::A02).feature_fingerprint();
        let f3 = algorithm(AlgorithmId::A03).feature_fingerprint();
        let f4 = algorithm(AlgorithmId::A04).feature_fingerprint();
        let set: std::collections::HashSet<u64> = [f1, f2, f3, f4].into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
