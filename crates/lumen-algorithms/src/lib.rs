//! The 16 published ML-based IoT anomaly-detection algorithms (A00–A15,
//! Table 2 of the paper) plus Lumen's synthesized variants (AM01–AM03),
//! each expressed as a Lumen template pipeline over the framework's
//! configurable operations — nothing here is hand-rolled feature code.
//!
//! Every algorithm carries its literature metadata (model family, reported
//! evaluation datasets, reported performance) so the benchmark suite can
//! regenerate Table 1 and Figure 1a, and its classification granularity so
//! the runner can enforce faithful algorithm/dataset pairing (§3.3).

#![forbid(unsafe_code)]

pub mod catalog;

pub use catalog::{algorithm, all_algorithms, AlgorithmId};

use std::collections::HashMap;
use std::sync::Arc;

use lumen_core::data::{Data, DataKind, PredOutput, Report, Trained};
use lumen_core::{lint_template, CoreError, CoreResult, Diagnostic, OpProfile, Pipeline, Table};
use lumen_net::LinkType;
use serde_json::{json, Value};

/// Classification granularity of an algorithm (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Classifies individual packets.
    Packet,
    /// Classifies unidirectional flows.
    UniFlow,
    /// Classifies bidirectional connections.
    Connection,
}

impl Granularity {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Granularity::Packet => "packet",
            Granularity::UniFlow => "uni-flow",
            Granularity::Connection => "connection",
        }
    }
}

/// One benchmark algorithm: metadata + feature pipeline + model definition.
pub struct Algorithm {
    /// Table-2 identifier.
    pub id: AlgorithmId,
    /// Short name ("Kitsune", "nprint2", ...).
    pub name: &'static str,
    /// Citation label for Table 1.
    pub citation: &'static str,
    /// The ML model family the original paper uses (Table 1 column).
    pub ml_model: &'static str,
    /// Classification granularity.
    pub granularity: Granularity,
    /// Datasets the original paper evaluates on (for Figure 1a's
    /// literature-comparison graph).
    pub lit_datasets: &'static [&'static str],
    /// Performance the original paper reports (Table 1 column).
    pub reported: &'static str,
    /// Link types the algorithm can ingest. Most need IP headers and thus
    /// Ethernet captures; Kitsune's MAC/size/time features also work on raw
    /// 802.11 (the paper's Q4: only A06 runs on AWID3).
    pub links: &'static [LinkType],
    /// Dataset codes this algorithm is restricted to, when the original
    /// design only applies to specific captures (the paper's footnote 3:
    /// A05 runs on a single dataset).
    pub restricted_to: Option<&'static [&'static str]>,
    /// Template pipeline mapping the bound `source` (Packets) to a
    /// `features` table.
    pub feature_template: Value,
    /// Parameters of the `Model` operation (model type, hyperparameters,
    /// training-time preprocessing).
    pub model_params: Value,
}

impl Algorithm {
    /// True when the algorithm can faithfully run on a dataset with the
    /// given label granularity (§2.1: an algorithm can train at its own
    /// granularity or coarser labels propagated down, but a coarse algorithm
    /// cannot consume finer labels — the benchmark pairs them exactly).
    pub fn matches_granularity(&self, dataset_is_packet_level: bool) -> bool {
        match self.granularity {
            Granularity::Packet => dataset_is_packet_level,
            Granularity::UniFlow | Granularity::Connection => !dataset_is_packet_level,
        }
    }

    /// True when the algorithm can parse captures of this link type.
    pub fn supports_link(&self, link: LinkType) -> bool {
        self.links.contains(&link)
    }

    /// True when the algorithm may run on the dataset code (restriction
    /// list, when present).
    pub fn allowed_on(&self, dataset_code: &str) -> bool {
        self.restricted_to
            .is_none_or(|codes| codes.contains(&dataset_code))
    }

    /// Compiles the feature pipeline.
    pub fn feature_pipeline(&self) -> CoreResult<Pipeline> {
        Pipeline::parse(&self.feature_template, &[("source", DataKind::Packets)])
    }

    /// Stable fingerprint of the feature pipeline (feature-cache key).
    pub fn feature_fingerprint(&self) -> u64 {
        self.feature_pipeline()
            .map(|p| p.fingerprint())
            .unwrap_or(0)
    }

    /// Runs the feature pipeline over a packet source.
    pub fn extract_features(&self, source: &Data) -> CoreResult<Arc<Table>> {
        self.extract_features_profiled(source).map(|(t, _)| t)
    }

    /// Runs the feature pipeline and also returns the engine's per-op
    /// profile, so callers (e.g. the benchmark runner) can aggregate an
    /// ops-level timing profile across extractions.
    pub fn extract_features_profiled(
        &self,
        source: &Data,
    ) -> CoreResult<(Arc<Table>, Vec<OpProfile>)> {
        let pipeline = self.feature_pipeline()?;
        let mut bindings = HashMap::new();
        bindings.insert("source".to_string(), source.clone());
        let mut out = pipeline.run(bindings)?;
        match out.take("features")? {
            Data::Table(t) => Ok((t, out.profile)),
            other => Err(CoreError::TypeError(format!(
                "feature pipeline of {} produced {}",
                self.name,
                other.kind().name()
            ))),
        }
    }

    /// The `[Model, Train]` template that [`Algorithm::train`] executes,
    /// with `model_params` folded into the `Model` node. Public so the
    /// static-analysis audit can check every algorithm's model parameters
    /// against the `Model` operation's schema.
    pub fn train_template(&self, seed: u64) -> Value {
        let mut model_params = self.model_params.clone();
        if let Some(obj) = model_params.as_object_mut() {
            obj.insert("func".into(), json!("Model"));
            obj.insert("input".into(), json!([]));
            obj.insert("output".into(), json!("clf"));
            obj.entry("seed").or_insert(json!(seed));
        }
        json!([
            model_params,
            {"func": "Train", "input": ["clf", "features"], "output": "trained"}
        ])
    }

    /// Runs the template linter over this algorithm's feature pipeline and
    /// its model/train template; an empty result means the catalog entry is
    /// clean under every rule (the CI audit enforces exactly this).
    pub fn lint(&self) -> Vec<Diagnostic> {
        let mut diags = lint_template(&self.feature_template, &["source"]);
        diags.extend(lint_template(&self.train_template(0), &["features"]));
        diags
    }

    /// Trains the algorithm's model on a feature table (via the framework's
    /// `Model`/`Train` operations).
    pub fn train(&self, features: &Arc<Table>, seed: u64) -> CoreResult<Trained> {
        let template = self.train_template(seed);
        let pipeline = Pipeline::parse(&template, &[("features", DataKind::Table)])?;
        let mut bindings = HashMap::new();
        bindings.insert("features".to_string(), Data::Table(Arc::clone(features)));
        let mut out = pipeline.run(bindings)?;
        match out.take("trained")? {
            Data::Trained(t) => Ok(t),
            other => Err(CoreError::TypeError(format!(
                "train pipeline produced {}",
                other.kind().name()
            ))),
        }
    }

    /// Predicts + evaluates on a feature table.
    pub fn evaluate(
        &self,
        trained: &Trained,
        features: &Arc<Table>,
    ) -> CoreResult<(Report, Arc<PredOutput>)> {
        let template = json!([
            {"func": "Predict", "input": ["trained", "features"], "output": "preds"},
            {"func": "Evaluate", "input": ["preds"], "output": "report"}
        ]);
        let pipeline = Pipeline::parse(
            &template,
            &[
                ("trained", DataKind::Trained),
                ("features", DataKind::Table),
            ],
        )?;
        let mut bindings = HashMap::new();
        bindings.insert("trained".to_string(), Data::Trained(trained.clone()));
        bindings.insert("features".to_string(), Data::Table(Arc::clone(features)));
        let mut out = pipeline.run(bindings)?;
        // `preds` feeds `report` and is freed by the engine; re-derive it
        // here for per-attack analysis by keeping it alive: bind report
        // first, then preds survives only if unused... so instead run
        // Predict and Evaluate with preds kept via an extra no-op read.
        let report = match out.take("report")? {
            Data::Report(r) => r,
            other => {
                return Err(CoreError::TypeError(format!(
                    "evaluate produced {}",
                    other.kind().name()
                )))
            }
        };
        // Recompute predictions output (cheap relative to training) so the
        // caller gets row-level scores for the per-attack heatmap.
        let preds = Arc::new(PredOutput {
            preds: trained.model.predict(&features.x),
            scores: trained.model.scores(&features.x),
            labels: features.labels.clone(),
            tags: features.tags.clone(),
        });
        Ok((report, preds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_unique() {
        let algos = all_algorithms();
        assert_eq!(algos.len(), 19); // A00..A15 + AM01..AM03
        let mut names: Vec<&str> = algos.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn every_feature_template_compiles() {
        for a in all_algorithms() {
            a.feature_pipeline()
                .unwrap_or_else(|e| panic!("{}: {e}", a.name));
        }
    }

    #[test]
    fn granularity_matching_rules() {
        let kitsune = algorithm(AlgorithmId::A06);
        assert!(kitsune.matches_granularity(true));
        assert!(!kitsune.matches_granularity(false));
        let zeek = algorithm(AlgorithmId::A14);
        assert!(!zeek.matches_granularity(true));
        assert!(zeek.matches_granularity(false));
        let smartdet = algorithm(AlgorithmId::A10);
        assert_eq!(smartdet.granularity, Granularity::UniFlow);
        assert!(smartdet.matches_granularity(false));
    }

    #[test]
    fn only_kitsune_runs_on_dot11() {
        for a in all_algorithms() {
            let supports = a.supports_link(LinkType::Ieee80211);
            assert_eq!(
                supports,
                a.id == AlgorithmId::A06,
                "{} dot11 support mismatch",
                a.name
            );
        }
    }

    #[test]
    fn a05_is_restricted() {
        let a05 = algorithm(AlgorithmId::A05);
        assert!(a05.allowed_on("P0"));
        assert!(!a05.allowed_on("P1"));
        let a06 = algorithm(AlgorithmId::A06);
        assert!(a06.allowed_on("P1"));
    }

    #[test]
    fn whole_catalog_lints_clean() {
        // Every rule family over every algorithm's feature pipeline AND its
        // model/train template: no unknown parameter keys, no dead outputs,
        // no faithfulness violations anywhere in the shipped catalog.
        for a in all_algorithms() {
            let diags = a.lint();
            assert!(
                diags.is_empty(),
                "{} has lint findings:\n  {}",
                a.name,
                diags
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n  ")
            );
        }
    }

    #[test]
    fn lint_catches_injected_catalog_typo() {
        // Sanity-check the audit has teeth: misspell one parameter key in a
        // real catalog template and the linter must flag it as an error.
        let a = algorithm(AlgorithmId::A00);
        let mut template = a.feature_template.clone();
        let nodes = template.as_array_mut().expect("feature template array");
        let obj = nodes[0].as_object_mut().expect("node object");
        let keys: Vec<String> = obj
            .keys()
            .filter(|k| !["func", "input", "output", "params"].contains(&k.as_str()))
            .cloned()
            .collect();
        let key = keys.first().expect("A00 node 0 has a parameter");
        let v = obj.remove(key).unwrap();
        obj.insert(format!("{key}x"), v);
        let diags = lint_template(&template, &["source"]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule_id == "L001" && d.severity == lumen_core::Severity::Error),
            "typo not caught: {diags:?}"
        );
    }

    #[test]
    fn fingerprints_distinguish_algorithms() {
        use std::collections::HashSet;
        let fps: HashSet<u64> = all_algorithms()
            .iter()
            .map(Algorithm::feature_fingerprint)
            .collect();
        // nprint variants share structure but differ in params; fingerprint
        // is structural, so at least the distinct structures must differ.
        assert!(fps.len() >= 8, "got {} distinct fingerprints", fps.len());
    }
}
