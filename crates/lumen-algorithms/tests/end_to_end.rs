//! End-to-end: synthetic dataset → feature pipeline → train → evaluate.

use std::sync::Arc;

use lumen_algorithms::{algorithm, AlgorithmId};
use lumen_core::data::{Data, PacketData};
use lumen_core::par::parse_capture;
use lumen_synth::{build_dataset, DatasetId, SynthScale};

/// Converts a labeled capture into the framework's packet source, mapping
/// attack kinds to opaque tags.
fn to_source(cap: &lumen_synth::LabeledCapture) -> Data {
    let (metas, stats) = parse_capture(cap.link, &cap.packets, 4);
    assert_eq!(stats.total_errors(), 0, "synthetic packets must all parse");
    let labels: Vec<u8> = cap.labels.iter().map(|l| u8::from(l.malicious)).collect();
    let tags: Vec<u32> = cap
        .labels
        .iter()
        .map(|l| l.attack.map_or(0, |a| a as u32 + 1))
        .collect();
    Data::Packets(Arc::new(PacketData {
        link: cap.link,
        metas,
        labels,
        tags,
    }))
}

fn split_capture(
    cap: &lumen_synth::LabeledCapture,
    frac: f64,
) -> (lumen_synth::LabeledCapture, lumen_synth::LabeledCapture) {
    // Time-based split: earlier packets train, later test. (The runner does
    // a stratified split at feature level; this test checks the raw path.)
    let cut = (cap.packets.len() as f64 * frac) as usize;
    let mk = |lo: usize, hi: usize| lumen_synth::LabeledCapture {
        link: cap.link,
        packets: cap.packets[lo..hi].to_vec(),
        labels: cap.labels[lo..hi].to_vec(),
        granularity: cap.granularity,
    };
    (mk(0, cut), mk(cut, cap.packets.len()))
}

#[test]
fn zeek_algorithm_detects_mirai_on_ctu_like_data() {
    let cap = build_dataset(DatasetId::F4, SynthScale::small(), 11);
    let source = to_source(&cap);
    let a14 = algorithm(AlgorithmId::A14);
    let features = a14.extract_features(&source).unwrap();
    assert!(features.rows() > 50, "few connections: {}", features.rows());
    assert!(features.malicious_fraction() > 0.02);

    // Stratified split at the feature level.
    let split = {
        use lumen_core::data::DataKind;
        use lumen_core::Pipeline;
        let t = serde_json::json!([
            {"func": "TrainTestSplit", "input": ["features"], "output": "split",
             "train_frac": 0.7, "seed": 3},
            {"func": "TakeTrain", "input": ["split"], "output": "train"},
            {"func": "TakeTest", "input": ["split"], "output": "test"}
        ]);
        let p = Pipeline::parse(&t, &[("features", DataKind::Table)]).unwrap();
        let mut b = std::collections::HashMap::new();
        b.insert("features".to_string(), Data::Table(Arc::clone(&features)));
        p.run(b).unwrap()
    };
    let mut split = split;
    let Data::Table(train) = split.take("train").unwrap() else {
        panic!()
    };
    let Data::Table(test) = split.take("test").unwrap() else {
        panic!()
    };

    let trained = a14.train(&train, 7).unwrap();
    let (report, preds) = a14.evaluate(&trained, &test).unwrap();
    assert_eq!(preds.preds.len(), test.rows());
    assert!(
        report.precision > 0.7,
        "A14 precision {} on F4",
        report.precision
    );
    assert!(report.recall > 0.5, "A14 recall {} on F4", report.recall);
}

#[test]
fn smartdet_flags_syn_flood_flows() {
    let cap = build_dataset(DatasetId::F9, SynthScale::small(), 5);
    let source = to_source(&cap);
    let a10 = algorithm(AlgorithmId::A10);
    let features = a10.extract_features(&source).unwrap();
    let trained = a10.train(&features, 1).unwrap();
    let (report, _) = a10.evaluate(&trained, &features).unwrap();
    // Training-set evaluation: should be strong for an RF.
    assert!(report.f1 > 0.8, "A10 train f1 {}", report.f1);
}

#[test]
fn kitsune_runs_on_packet_dataset() {
    let cap = build_dataset(DatasetId::P2, SynthScale::small(), 9);
    // Subsample for speed, like the runner does.
    let (train_cap, test_cap) = split_capture(&cap, 0.5);
    let a06 = algorithm(AlgorithmId::A06);

    let stride = |c: &lumen_synth::LabeledCapture, max: usize| {
        let n = c.packets.len();
        let step = (n / max).max(1);
        lumen_synth::LabeledCapture {
            link: c.link,
            packets: c.packets.iter().step_by(step).cloned().collect(),
            labels: c.labels.iter().step_by(step).copied().collect(),
            granularity: c.granularity,
        }
    };
    let train = to_source(&stride(&train_cap, 1500));
    let test = to_source(&stride(&test_cap, 1500));

    let f_train = a06.extract_features(&train).unwrap();
    let f_test = a06.extract_features(&test).unwrap();
    let trained = a06.train(&f_train, 2).unwrap();
    let (report, _) = a06.evaluate(&trained, &f_test).unwrap();
    // Kitsune is unsupervised; on a SYN-flood trace it should catch a good
    // share of attack packets without flooding false alarms.
    assert!(report.recall > 0.3, "kitsune recall {}", report.recall);
    assert!(report.auc > 0.6, "kitsune auc {}", report.auc);
}

#[test]
fn nprint_separates_flood_packets() {
    let cap = build_dataset(DatasetId::P2, SynthScale::small(), 21);
    let stride = (cap.packets.len() / 2000).max(1);
    let sub = lumen_synth::LabeledCapture {
        link: cap.link,
        packets: cap.packets.iter().step_by(stride).cloned().collect(),
        labels: cap.labels.iter().step_by(stride).copied().collect(),
        granularity: cap.granularity,
    };
    let source = to_source(&sub);
    let a02 = algorithm(AlgorithmId::A02);
    let features = a02.extract_features(&source).unwrap();
    let trained = a02.train(&features, 3).unwrap();
    let (report, _) = a02.evaluate(&trained, &features).unwrap();
    assert!(report.f1 > 0.9, "nprint train f1 {}", report.f1);
}
