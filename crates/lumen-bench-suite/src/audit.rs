//! Level-2 experiment audit: matrix-level integrity analysis
//! (DESIGN.md §4h).
//!
//! [`lumen_core::audit`] checks one template at a time; this module checks
//! the *experiment* — the full (algorithm, train dataset, test dataset)
//! matrix a run is about to execute — against the dataset registry:
//!
//! * **A200** — a cross-evaluation whose train and test captures are the
//!   same draw (identical recipe family and generation seed): the
//!   "generalization" number would be measured on the training
//!   distribution itself.
//! * **A201** — temporal bias: the test capture's time window ends before
//!   the train window begins, so the model is trained on traffic from the
//!   future of its test set.
//! * **A202** — feature-cache key collision: the cache is keyed by
//!   (dataset code, template fingerprint); two different feature templates
//!   mapping to one key would silently share extracted features. (The
//!   fingerprint of an unparseable template is 0, so two broken templates
//!   collide there — this rule catches that too.)
//! * **A203** — generation-seed reuse: two supposedly independent datasets
//!   deriving the same RNG seed would be correlated draws.
//!
//! Level-2 findings reuse the [`Diagnostic`]/[`Severity`] machinery with
//! stable `A2xx` rule IDs and are journaled per run as
//! [`AuditFinding`]s; [`AuditReport::to_json`] is the machine-readable
//! `AUDIT_report.json` the `--audit` flag and the `audit` binary emit. The
//! plan-level entry point is [`audit_plan`], which mirrors
//! `Runner::run_matrix`'s task enumeration exactly (same compatibility
//! skips, same diagonal restriction) so what is audited is what would run.

use std::collections::{BTreeMap, BTreeSet};

use lumen_algorithms::{algorithm, Algorithm, AlgorithmId};
use lumen_core::audit::audit_template;
use lumen_core::data::DataKind;
use lumen_core::{Diagnostic, Severity};
use lumen_synth::DatasetId;
use serde_json::{json, Value};

use crate::journal::AuditFinding;
use crate::runner::Runner;

// ------------------------------------------------------------ plain data

/// What the matrix audit needs to know about one dataset. Plain data so
/// violation fixtures can fabricate registries that the shipped catalog
/// (by design) cannot produce.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetAuditInfo {
    /// Dataset code ("F0").
    pub code: String,
    /// Recipe family the capture is generated from.
    pub family: String,
    /// Derived generation seed.
    pub seed: u64,
    /// Capture time window `(first_ts_us, last_ts_us)`, when known.
    pub window_us: Option<(u64, u64)>,
}

/// One planned matrix task, as the audit sees it.
#[derive(Debug, Clone)]
pub struct TaskAuditInfo {
    /// Algorithm code ("A06").
    pub algo: String,
    /// "same" or "cross".
    pub mode: String,
    /// The algorithm's feature-template fingerprint (the cache-key half).
    pub fingerprint: u64,
    /// The feature template itself, for collision discrimination.
    pub template: Value,
    /// Training dataset.
    pub train: DatasetAuditInfo,
    /// Test dataset.
    pub test: DatasetAuditInfo,
}

fn task_scope(t: &TaskAuditInfo) -> String {
    format!("{} {}->{} [{}]", t.algo, t.train.code, t.test.code, t.mode)
}

fn mdiag(rule_id: &'static str, severity: Severity, message: String) -> Diagnostic {
    Diagnostic {
        rule_id,
        severity,
        node: None,
        func: None,
        message,
        suggestion: None,
    }
}

// ------------------------------------------------------------ the rules

/// Audits a planned task matrix. Returns `(scope, diagnostic)` pairs,
/// deterministically ordered by (scope, rule id, message); pairwise rules
/// report each colliding pair once.
pub fn audit_matrix(tasks: &[TaskAuditInfo]) -> Vec<(String, Diagnostic)> {
    let mut out: Vec<(String, Diagnostic)> = Vec::new();

    for t in tasks {
        if t.train.code != t.test.code {
            // A200: distinct dataset codes, same underlying draw.
            if t.train.family == t.test.family && t.train.seed == t.test.seed {
                out.push((
                    task_scope(t),
                    mdiag(
                        "A200",
                        Severity::Error,
                        format!(
                            "cross-evaluation on one capture draw: {} and {} share recipe \
                             family {:?} and generation seed {:#x}",
                            t.train.code, t.test.code, t.train.family, t.train.seed
                        ),
                    ),
                ));
            }
            // A201: testing strictly in the training data's past.
            if let (Some((train_start, _)), Some((_, test_end))) =
                (t.train.window_us, t.test.window_us)
            {
                if test_end < train_start {
                    out.push((
                        task_scope(t),
                        mdiag(
                            "A201",
                            Severity::Error,
                            format!(
                                "temporal bias: test window of {} ends at {}us, before the \
                                 train window of {} begins at {}us",
                                t.test.code, test_end, t.train.code, train_start
                            ),
                        ),
                    ));
                }
            }
        }
    }

    // A202: one feature-cache key, two templates. Both the train and the
    // test side of every task read through the cache.
    let mut by_key: BTreeMap<(String, u64), (String, &Value)> = BTreeMap::new();
    let mut reported: BTreeSet<(String, u64, String, String)> = BTreeSet::new();
    for t in tasks {
        for code in [&t.train.code, &t.test.code] {
            let key = (code.clone(), t.fingerprint);
            match by_key.get(&key) {
                None => {
                    by_key.insert(key, (t.algo.clone(), &t.template));
                }
                Some((other_algo, other_template)) => {
                    if *other_template != &t.template {
                        let (a, b) = if other_algo <= &t.algo {
                            (other_algo.clone(), t.algo.clone())
                        } else {
                            (t.algo.clone(), other_algo.clone())
                        };
                        if reported.insert((code.clone(), t.fingerprint, a.clone(), b.clone())) {
                            out.push((
                                format!("cache {}#{:016x}", code, t.fingerprint),
                                mdiag(
                                    "A202",
                                    Severity::Error,
                                    format!(
                                        "feature-cache key collision on dataset {}: algorithms \
                                         {a} and {b} share fingerprint {:#x} with different \
                                         feature templates",
                                        code, t.fingerprint
                                    ),
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // A203: distinct datasets, one generation seed.
    let mut by_code: BTreeMap<String, u64> = BTreeMap::new();
    for t in tasks {
        for d in [&t.train, &t.test] {
            by_code.entry(d.code.clone()).or_insert(d.seed);
        }
    }
    let mut by_seed: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (code, seed) in &by_code {
        by_seed.entry(*seed).or_default().push(code);
    }
    for (seed, codes) in &by_seed {
        if codes.len() > 1 {
            out.push((
                format!("datasets {}", codes.join(",")),
                mdiag(
                    "A203",
                    Severity::Error,
                    format!(
                        "supposedly independent datasets {codes:?} derive the same \
                         generation seed {seed:#x}"
                    ),
                ),
            ));
        }
    }

    out.sort_by(|a, b| {
        (&a.0, a.1.rule_id, &a.1.message).cmp(&(&b.0, b.1.rule_id, &b.1.message))
    });
    out
}

/// Level-1 audit of one algorithm: its feature template (fed packets) and
/// its train template (fed the extracted feature table).
pub fn audit_algorithm(algo: &Algorithm, seed: u64) -> Vec<Diagnostic> {
    let mut diags = audit_template(&algo.feature_template, &[("source", DataKind::Packets)]);
    diags.extend(audit_template(
        &algo.train_template(seed),
        &[("features", DataKind::Table)],
    ));
    diags
}

/// The Level-2 (matrix) audit rule catalog: (rule id, severity, summary).
/// DESIGN.md §4h's table is generated from this list (a unit test keeps
/// them in lockstep).
pub fn matrix_rule_catalog() -> Vec<(&'static str, Severity, &'static str)> {
    vec![
        (
            "A200",
            Severity::Error,
            "cross-evaluation trains and tests on the same capture draw (one recipe family and seed)",
        ),
        (
            "A201",
            Severity::Error,
            "temporal bias: the test capture's time window ends before the train window begins",
        ),
        (
            "A202",
            Severity::Error,
            "feature-cache key collision: one (dataset, fingerprint) key, two feature templates",
        ),
        (
            "A203",
            Severity::Error,
            "generation-seed reuse across supposedly independent datasets",
        ),
    ]
}

// ----------------------------------------------------------- the report

/// A whole run's audit findings, in journal form.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Flattened findings (Level 1 scoped by algorithm code, Level 2 by
    /// task / cache key / dataset set), deterministically ordered.
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == "error").count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == "warn").count()
    }

    /// True when any finding is an error (the `--audit` deny condition).
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// True when there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One line per finding plus a count header — the human rendering.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "experiment audit: {} finding(s), {} error(s), {} warning(s)\n",
            self.findings.len(),
            self.error_count(),
            self.warn_count()
        );
        for f in &self.findings {
            s.push_str(&format!(
                "  {} [{}] {}: {}\n",
                f.severity.to_uppercase(),
                f.rule_id,
                f.scope,
                f.message
            ));
        }
        s
    }

    /// The machine-readable `AUDIT_report.json` payload. Built over
    /// `serde_json::Value` (not the derive) so the format is explicit and
    /// identical everywhere.
    pub fn to_json(&self) -> String {
        let findings: Vec<Value> = self
            .findings
            .iter()
            .map(|f| {
                json!({
                    "scope": f.scope.clone(),
                    "rule_id": f.rule_id.clone(),
                    "severity": f.severity.clone(),
                    "message": f.message.clone(),
                })
            })
            .collect();
        let report = json!({
            "schema_version": 1u64,
            "errors": self.error_count() as u64,
            "warnings": self.warn_count() as u64,
            "findings": findings,
        });
        serde_json::to_string_pretty(&report).unwrap_or_default()
    }
}

fn finding(scope: &str, d: &Diagnostic) -> AuditFinding {
    let mut message = d.message.clone();
    if let Some(s) = &d.suggestion {
        message.push_str(&format!(" ({s})"));
    }
    AuditFinding {
        scope: scope.to_string(),
        rule_id: d.rule_id.to_string(),
        severity: d.severity.name().to_string(),
        message,
    }
}

// ------------------------------------------------------------ the plan

fn dataset_info(runner: &Runner, id: DatasetId) -> DatasetAuditInfo {
    DatasetAuditInfo {
        code: id.code().to_string(),
        family: id.spec().source.to_string(),
        seed: runner.registry.dataset_seed(id),
        window_us: runner.registry.time_window_us(id),
    }
}

/// Enumerates the matrix exactly as `Runner::run_matrix` would: same
/// compatibility skips, same diagonal restriction under
/// `include_cross = false`.
pub fn plan_tasks(
    runner: &Runner,
    algos: &[AlgorithmId],
    datasets: &[DatasetId],
    include_cross: bool,
) -> Vec<TaskAuditInfo> {
    let mut tasks = Vec::new();
    for &a in algos {
        let algo = algorithm(a);
        for &train in datasets {
            let train_ds = runner.registry.get(train);
            if Runner::compatible(&algo, &train_ds).is_err() {
                continue;
            }
            for &test in datasets {
                if !include_cross && train != test {
                    continue;
                }
                let test_ds = runner.registry.get(test);
                if Runner::compatible(&algo, &test_ds).is_err() {
                    continue;
                }
                let mode = if train == test { "same" } else { "cross" };
                tasks.push(TaskAuditInfo {
                    algo: a.code().to_string(),
                    mode: mode.to_string(),
                    fingerprint: algo.feature_fingerprint(),
                    template: algo.feature_template.clone(),
                    train: dataset_info(runner, train),
                    test: dataset_info(runner, test),
                });
            }
        }
    }
    tasks
}

/// Audits everything a matrix run would execute: Level 1 over each
/// distinct algorithm's templates, Level 2 over the planned task matrix.
/// This is what `--audit` runs before the first task starts.
pub fn audit_plan(
    runner: &Runner,
    algos: &[AlgorithmId],
    datasets: &[DatasetId],
    include_cross: bool,
) -> AuditReport {
    let mut findings = Vec::new();
    let mut seen = BTreeSet::new();
    for &a in algos {
        if !seen.insert(a.code()) {
            continue;
        }
        let algo = algorithm(a);
        for d in audit_algorithm(&algo, runner.config.seed) {
            findings.push(finding(a.code(), &d));
        }
    }
    for (scope, d) in audit_matrix(&plan_tasks(runner, algos, datasets, include_cross)) {
        findings.push(finding(&scope, &d));
    }
    findings.sort_by(|a, b| {
        (&a.scope, &a.rule_id, &a.message).cmp(&(&b.scope, &b.rule_id, &b.message))
    });
    AuditReport { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::{all_datasets, published_algos};
    use crate::runner::RunConfig;
    use lumen_synth::SynthScale;
    use std::sync::Arc;

    fn ds(code: &str, family: &str, seed: u64, window: Option<(u64, u64)>) -> DatasetAuditInfo {
        DatasetAuditInfo {
            code: code.into(),
            family: family.into(),
            seed,
            window_us: window,
        }
    }

    fn task(algo: &str, fp: u64, train: DatasetAuditInfo, test: DatasetAuditInfo) -> TaskAuditInfo {
        let mode = if train.code == test.code { "same" } else { "cross" };
        TaskAuditInfo {
            algo: algo.into(),
            mode: mode.into(),
            fingerprint: fp,
            template: json!([{"func": "ConnExtract", "fields": [algo]}]),
            train,
            test,
        }
    }

    fn rule_ids(found: &[(String, Diagnostic)]) -> Vec<&'static str> {
        found.iter().map(|(_, d)| d.rule_id).collect()
    }

    #[test]
    fn clean_fabricated_matrix_is_clean() {
        let tasks = vec![
            task("A07", 1, ds("F0", "famA", 10, Some((0, 50))), ds("F0", "famA", 10, Some((0, 50)))),
            task("A07", 1, ds("F0", "famA", 10, Some((0, 50))), ds("F1", "famB", 11, Some((5, 60)))),
        ];
        assert!(audit_matrix(&tasks).is_empty());
    }

    #[test]
    fn a200_overlapping_train_test_recipe() {
        // ISSUE-6 fixture: the same recipe family + seed on both sides of
        // a cross-evaluation.
        let tasks = vec![task(
            "A07",
            1,
            ds("F0", "famA", 10, None),
            ds("F9", "famA", 10, None),
        )];
        let found = audit_matrix(&tasks);
        assert_eq!(rule_ids(&found), vec!["A200", "A203"]);
        assert!(found[0].1.message.contains("famA"));
        // Same-mode diagonal tasks never fire A200: the runner splits them.
        let same = vec![task("A07", 1, ds("F0", "famA", 10, None), ds("F0", "famA", 10, None))];
        assert!(audit_matrix(&same).is_empty());
    }

    #[test]
    fn a201_temporal_bias() {
        // Test window [0, 40] ends before train window [100, 200] begins.
        let tasks = vec![task(
            "A07",
            1,
            ds("F0", "famA", 10, Some((100, 200))),
            ds("F1", "famB", 11, Some((0, 40))),
        )];
        let found = audit_matrix(&tasks);
        assert_eq!(rule_ids(&found), vec!["A201"]);
        // Overlapping windows are fine either way round.
        let ok = vec![task(
            "A07",
            1,
            ds("F0", "famA", 10, Some((0, 150))),
            ds("F1", "famB", 11, Some((100, 200))),
        )];
        assert!(audit_matrix(&ok).is_empty());
    }

    #[test]
    fn a202_cache_key_collision() {
        // ISSUE-6 fixture: two algorithms, one fingerprint, different
        // templates — their features would silently alias in the cache.
        let tasks = vec![
            task("A07", 42, ds("F0", "famA", 10, None), ds("F0", "famA", 10, None)),
            task("A08", 42, ds("F0", "famA", 10, None), ds("F0", "famA", 10, None)),
        ];
        let found = audit_matrix(&tasks);
        assert_eq!(rule_ids(&found), vec!["A202"]);
        assert!(found[0].1.message.contains("A07"));
        assert!(found[0].1.message.contains("A08"));
        // The pair is reported once, not once per side.
        assert_eq!(found.len(), 1);
        // Same fingerprint + same template is the cache working as designed.
        let mut shared = vec![
            task("A07", 42, ds("F0", "famA", 10, None), ds("F0", "famA", 10, None)),
            task("A08", 42, ds("F0", "famA", 10, None), ds("F0", "famA", 10, None)),
        ];
        shared[1].template = shared[0].template.clone();
        assert!(audit_matrix(&shared).is_empty());
    }

    #[test]
    fn a203_duplicated_dataset_seed() {
        // ISSUE-6 fixture: two "independent" datasets, one derived seed.
        let tasks = vec![
            task("A07", 1, ds("F0", "famA", 99, None), ds("F0", "famA", 99, None)),
            task("A07", 2, ds("F1", "famB", 99, None), ds("F1", "famB", 99, None)),
        ];
        let found = audit_matrix(&tasks);
        assert_eq!(rule_ids(&found), vec!["A203"]);
        assert!(found[0].1.message.contains("F0"));
        assert!(found[0].1.message.contains("F1"));
    }

    #[test]
    fn report_counts_and_json() {
        let report = AuditReport {
            findings: vec![
                AuditFinding {
                    scope: "A06".into(),
                    rule_id: "A110".into(),
                    severity: "error".into(),
                    message: "label leak".into(),
                },
                AuditFinding {
                    scope: "A06".into(),
                    rule_id: "A121".into(),
                    severity: "warn".into(),
                    message: "train-half fit".into(),
                },
            ],
        };
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warn_count(), 1);
        assert!(report.has_errors());
        assert!(!report.is_clean());
        let js = report.to_json();
        assert!(js.contains("\"A110\""));
        assert!(js.contains("\"schema_version\""));
        let s = report.summary();
        assert!(s.contains("ERROR [A110] A06"));
    }

    #[test]
    fn matrix_catalog_ids_unique_sorted_and_prefixed() {
        let cat = matrix_rule_catalog();
        let ids: Vec<_> = cat.iter().map(|(id, _, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
        assert!(ids.iter().all(|id| id.starts_with("A2")));
    }

    // The catalog-wide clean run: everything the benchmark ships must
    // audit clean at both levels (the acceptance bar for `--audit` deny
    // mode on the real matrix).
    #[test]
    fn shipped_catalog_audits_clean() {
        let registry = Arc::new(
            crate::datasets::DatasetRegistry::new(SynthScale::small(), 7).with_max_packets(500),
        );
        let runner = Runner::new(registry, RunConfig::default());
        let report = audit_plan(&runner, &published_algos(), &all_datasets(), true);
        assert!(
            report.is_clean(),
            "shipped catalog must audit clean:\n{}",
            report.summary()
        );
    }

    #[test]
    fn design_and_readme_tables_track_matrix_catalog() {
        let design = include_str!("../../../DESIGN.md");
        let readme = include_str!("../../../README.md");
        for (id, sev, summary) in matrix_rule_catalog() {
            let row = format!("| {id} | {sev:?} | {summary} |");
            assert!(design.contains(&row), "DESIGN.md §4h missing row: {row}");
            assert!(readme.contains(&row), "README.md audit table missing row: {row}");
        }
    }
}
