//! `audit` — the whole-experiment integrity audit (CI gate).
//!
//! Two levels (DESIGN.md §4h), both static — nothing is trained:
//!
//! * **Level 1** runs the abstract interpreter (`lumen_core::audit`) over
//!   every catalog algorithm's feature and train templates, inferring
//!   shapes and column provenance to catch dimension mismatches, label
//!   leakage, and fit-on-test preprocessing.
//! * **Level 2** audits the full planned evaluation matrix against the
//!   dataset registry (`lumen_bench_suite::audit`): train/test capture
//!   overlap, temporal bias, feature-cache key collisions, and
//!   generation-seed reuse.
//!
//! Exits nonzero when any Error-severity rule fires (deny-by-severity;
//! warnings are reported but never fatal). With `LUMEN_RESULTS_DIR` set,
//! the machine-readable report lands at `audit_AUDIT_report.json`.
//!
//! ```text
//! audit                  audit the full catalog + evaluation matrix
//! audit --rules          print all audit rule catalogs (A1xx + A2xx) and exit
//! audit --template FILE  Level-1 audit of a template JSON file (declared
//!                        input "source", kind Packets) instead of the catalog
//! ```
//!
//! The full sweep also accepts the standard experiment flags (`--fast`,
//! `--seed N`, `--threads N`, ...); the audit itself only loads datasets,
//! so `--fast` keeps it cheap.

use std::process::ExitCode;

use lumen_algorithms::AlgorithmId;
use lumen_bench_suite::audit::{audit_plan, matrix_rule_catalog};
use lumen_bench_suite::exp::{all_datasets, maybe_persist_audit, ExpConfig};
use lumen_core::audit::{audit_rule_catalog, audit_template};
use lumen_core::data::DataKind;
use lumen_core::lint::has_errors;

fn print_rules() {
    println!("Level 1 — template audit (shape / provenance inference):");
    for (id, severity, summary) in audit_rule_catalog() {
        println!("  {id}  {:<5} {summary}", severity.name());
    }
    println!("Level 2 — matrix audit (plan vs. dataset registry):");
    for (id, severity, summary) in matrix_rule_catalog() {
        println!("  {id}  {:<5} {summary}", severity.name());
    }
}

fn audit_file(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("audit: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let template = match serde_json::from_str(&src) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("audit: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diags = audit_template(&template, &[("source", DataKind::Packets)]);
    if diags.is_empty() {
        println!("{path}: clean");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("  {path}: {d}");
    }
    if has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn audit_everything(args: &[String]) -> ExitCode {
    let cfg = match ExpConfig::parse_args(args) {
        Ok(cfg) => cfg,
        Err(why) => {
            eprintln!("audit: {why}");
            return ExitCode::FAILURE;
        }
    };
    let runner = cfg.runner();
    // The whole catalog, published or not: an integrity bug in an
    // experimental algorithm is still a bug.
    let algos: Vec<AlgorithmId> = AlgorithmId::ALL.to_vec();
    let report = audit_plan(&runner, &algos, &all_datasets(), true);
    print!("{}", report.summary());
    maybe_persist_audit(&report, "audit");
    println!(
        "audited {} algorithms x {} datasets: {}",
        algos.len(),
        all_datasets().len(),
        if report.has_errors() {
            "DENY (integrity errors)"
        } else {
            "pass"
        }
    );
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some("--template") => match args.get(1) {
            Some(path) => audit_file(path),
            None => {
                eprintln!("audit: --template requires a file path");
                ExitCode::FAILURE
            }
        },
        _ => audit_everything(&args),
    }
}
