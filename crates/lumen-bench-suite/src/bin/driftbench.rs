//! `driftbench`: sweep every scenario in the drift & adversarial suite
//! (DESIGN.md §4l) through the streaming daemon with online drift
//! detection enabled, and tabulate detection latency, adaptation, and
//! recovery per scenario.
//!
//! Each scenario (S0..S6) replays a seeded capture whose ground-truth
//! breakpoints come from the scenario engine; the daemon trains on the
//! clean pre-breakpoint prefix only, so every regime change is genuinely
//! unseen. Per scenario the run's schema-v7 journal (seeds header +
//! `DriftReport`) is persisted as
//! `$LUMEN_RESULTS_DIR/drift_<code>_journal.json` when that variable is
//! set.
//!
//! Flags:
//!   --fast         smaller captures (quick smoke runs)
//!   --seed N       generator seed (default 7)
//!   --scenario ID  run a single scenario instead of the full sweep
//!
//! Exit codes: 0 when every run finishes with exact accounting, 1
//! otherwise (a missed detection is reported but is a finding, not a
//! failure — evasion scenarios are *designed* to be hard).

use lumen_bench_suite::exp::maybe_persist_journal;
use lumen_bench_suite::journal::{RunJournal, RunSeeds};
use lumen_bench_suite::{run_stream, ServeConfig};
use lumen_ml::DriftConfig;
use lumen_synth::{ScenarioId, SynthScale};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let seed: u64 = arg_value("--seed")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad --seed value {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(7);
    let only = arg_value("--scenario").map(|v| match ScenarioId::parse(&v) {
        Some(id) => id,
        None => {
            eprintln!("bad --scenario {v:?}: use S0..S6 or a scenario name");
            std::process::exit(2);
        }
    });

    let ids: Vec<ScenarioId> = match only {
        Some(id) => vec![id],
        None => ScenarioId::ALL.to_vec(),
    };

    println!(
        "{:<4} {:<16} {:<10} {:>4} {:>4} {:>6} {:>5} {:>7} {:>7} {:>7} {:>7}",
        "id", "scenario", "family", "bps", "det", "lat_ms", "swaps", "before", "during", "after",
        "rules"
    );
    let mut failed = false;
    for id in ids {
        let cfg = ServeConfig {
            scenario: Some(id),
            drift: Some(DriftConfig::default()),
            scale: if fast {
                SynthScale::small()
            } else {
                SynthScale::default()
            },
            seed,
            ..ServeConfig::default()
        };
        let out = match run_stream(&cfg) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("{}: run failed: {e}", id.code());
                failed = true;
                continue;
            }
        };
        if !out.report.accounts_exactly() {
            eprintln!("{}: ACCOUNTING MISMATCH: {:?}", id.code(), out.report);
            failed = true;
        }
        let mut journal = RunJournal::new();
        journal.set_seeds(RunSeeds {
            generator: seed,
            chaos: None,
            scenario: Some(id.code().to_string()),
        });
        journal.set_stream(out.report.clone());
        maybe_persist_journal(&journal, &format!("drift_{}", id.code()));

        let Some(d) = out.report.drift.as_ref() else {
            eprintln!("{}: no drift report", id.code());
            failed = true;
            continue;
        };
        let detected = d.breakpoints.iter().filter(|b| b.detected).count();
        let worst_latency = d.breakpoints.iter().map(|b| b.latency_ms).max().unwrap_or(0);
        println!(
            "{:<4} {:<16} {:<10} {:>4} {:>4} {:>6} {:>5} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            id.code(),
            id.name(),
            id.family().name(),
            d.breakpoints.len(),
            detected,
            worst_latency,
            d.model_swaps,
            d.acc_before,
            d.acc_during,
            d.acc_after,
            d.baseline_acc,
        );
    }
    if failed {
        std::process::exit(1);
    }
}
