//! Regenerates Figure 10: the median precision/recall heatmap per
//! (training dataset × testing dataset) pair, across algorithms. Shows the
//! asymmetry of transfer and the anomalous behaviour of F5 (Torii):
//! Observation 3.

use lumen_bench_suite::exp::{all_datasets, published_algos, ExpConfig};
use lumen_bench_suite::render::heatmap;
use lumen_synth::DatasetId;

fn main() {
    let cfg = ExpConfig::from_args();
    let runner = cfg.matrix_runner("fig10");
    let run = runner.run_matrix(&published_algos(), &all_datasets(), true);
    let store = &run.store;

    let labels: Vec<String> = DatasetId::ALL
        .iter()
        .map(|d| d.code().to_string())
        .collect();
    let grid = |metric: fn(&lumen_bench_suite::ResultRow) -> f64| -> Vec<Vec<Option<f64>>> {
        DatasetId::ALL
            .iter()
            .map(|test| {
                DatasetId::ALL
                    .iter()
                    .map(|train| store.median_metric(train.code(), test.code(), metric))
                    .collect()
            })
            .collect()
    };

    print!(
        "{}",
        heatmap(
            "Figure 10a: median precision (rows: testing dataset, cols: training dataset)",
            &labels,
            &labels,
            &grid(|r| r.precision)
        )
    );
    println!();
    print!(
        "{}",
        heatmap(
            "Figure 10b: median recall (rows: testing dataset, cols: training dataset)",
            &labels,
            &labels,
            &grid(|r| r.recall)
        )
    );

    // Observation 3: asymmetry + F5.
    let p = grid(|r| r.precision);
    let idx = |code: &str| {
        DatasetId::ALL
            .iter()
            .position(|d| d.code() == code)
            .unwrap()
    };
    let (f5, f6) = (idx("F5"), idx("F6"));
    if let (Some(a), Some(b)) = (p[f6][f5], p[f5][f6]) {
        println!(
            "\ntrain F5 -> test F6 median precision: {a:.2}; train F6 -> test F5: {b:.2}\n\
             (paper reports the same asymmetry: Torii-trained models transfer, Torii resists)."
        );
    }
    lumen_bench_suite::exp::finish_run(&cfg, &runner, store, &run.journal, "fig10");
}
