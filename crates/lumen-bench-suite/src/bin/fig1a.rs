//! Regenerates Figure 1a: the number of possible literature comparisons per
//! algorithm (two papers are comparable iff they share an evaluation
//! dataset).

use lumen_bench_suite::literature::{comparison_counts, uncomparable_fraction};
use lumen_bench_suite::render::bar_rows;

fn main() {
    println!("Figure 1a: possible direct comparisons per algorithm (literature metadata)\n");
    let counts = comparison_counts();
    let max = counts.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1) as f64;
    let pairs: Vec<(String, f64)> = counts
        .iter()
        .map(|(id, c)| (format!("{} ({})", id.code(), c), *c as f64 / max))
        .collect();
    print!("{}", bar_rows(&pairs));
    println!(
        "\n{:.0}% of the surveyed algorithms have no possible literature comparison\n\
         (paper: \"for half of the algorithms ... there is no possible comparison\").",
        uncomparable_fraction() * 100.0
    );
}
