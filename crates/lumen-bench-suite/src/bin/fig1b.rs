//! Regenerates Figure 1b: precision spread of each algorithm when trained
//! and tested on (a split of) the same dataset — wide spreads show that even
//! same-source evaluation does not generalize across datasets.

use lumen_bench_suite::exp::{all_datasets, published_algos, ExpConfig};
use lumen_bench_suite::render::distribution_line;

fn main() {
    let cfg = ExpConfig::from_args();
    let runner = cfg.matrix_runner("fig1b");
    println!("Figure 1b: same-dataset precision per algorithm (train/test split of one dataset)\n");
    let run = runner.run_matrix(&published_algos(), &all_datasets(), false);
    for id in published_algos() {
        let values: Vec<f64> = run
            .store
            .for_algo(id.code(), "same")
            .map(|r| r.precision)
            .collect();
        println!("{}", distribution_line(id.code(), &values));
    }
    lumen_bench_suite::exp::finish_run(&cfg, &runner, &run.store, &run.journal, "fig1b");
}
