//! Regenerates Figure 1c: precision spread when training and testing
//! datasets differ — the variance degrades further relative to Figure 1b.

use lumen_bench_suite::exp::{all_datasets, published_algos, ExpConfig};
use lumen_bench_suite::render::distribution_line;

fn main() {
    let cfg = ExpConfig::from_args();
    let runner = cfg.matrix_runner("fig1c");
    println!("Figure 1c: cross-dataset precision per algorithm (train on A, test on B)\n");
    let run = runner.run_matrix(&published_algos(), &all_datasets(), true);
    for id in published_algos() {
        let values: Vec<f64> = run
            .store
            .for_algo(id.code(), "cross")
            .map(|r| r.precision)
            .collect();
        println!("{}", distribution_line(id.code(), &values));
    }
    lumen_bench_suite::exp::finish_run(&cfg, &runner, &run.store, &run.journal, "fig1c");
}
