//! Regenerates Figure 5: the per-attack precision heatmap. The cell for
//! algorithm Y and attack X averages Y's precision over the datasets that
//! contain X (test restricted to benign + X); gray cells (`--`) mark
//! pairings with no faithful run.

use lumen_bench_suite::exp::{all_datasets, published_algos, ExpConfig};
use lumen_bench_suite::render::heatmap;
use lumen_synth::AttackKind;

fn main() {
    let cfg = ExpConfig::from_args();
    let runner = cfg.matrix_runner("fig5");
    let run = runner.run_matrix(&published_algos(), &all_datasets(), false);
    let store = &run.store;

    let attacks: Vec<AttackKind> = AttackKind::ALL
        .into_iter()
        .filter(|k| {
            store
                .per_attack()
                .any(|r| r.attack.as_deref() == Some(k.name()))
        })
        .collect();
    let col_labels: Vec<String> = attacks.iter().map(|a| a.name().to_string()).collect();
    let row_labels: Vec<String> = published_algos()
        .iter()
        .map(|a| a.code().to_string())
        .collect();
    let cells: Vec<Vec<Option<f64>>> = published_algos()
        .iter()
        .map(|id| {
            attacks
                .iter()
                .map(|a| store.attack_precision(id.code(), a.name()))
                .collect()
        })
        .collect();
    print!(
        "{}",
        heatmap(
            "Figure 5: per-attack precision (rows: algorithms, cols: attacks; -- = no faithful run)",
            &row_labels,
            &col_labels,
            &cells
        )
    );
    println!("\nCSV:\n{}", {
        let mut rows = Vec::new();
        for (r, id) in published_algos().iter().enumerate() {
            for (c, a) in attacks.iter().enumerate() {
                if let Some(v) = cells[r][c] {
                    rows.push(vec![
                        id.code().to_string(),
                        a.name().to_string(),
                        format!("{v:.4}"),
                    ]);
                }
            }
        }
        lumen_bench_suite::render::csv_series("algo,attack,precision", &rows)
    });
    lumen_bench_suite::exp::finish_run(&cfg, &runner, store, &run.journal, "fig5");
}
