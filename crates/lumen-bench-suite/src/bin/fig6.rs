//! Regenerates Figure 6: Lumen-guided improvements at connection
//! granularity — merged-dataset training for A08/A09/A13/A14 plus the
//! synthesized AM01–AM03 — compared against the same algorithms' ordinary
//! per-dataset training (Figure 5 rows).
//!
//! `--ablate` additionally reports the AM variants with their normalization
//! and correlation-filter stages removed, isolating the training-setup
//! contribution (a design-choice ablation DESIGN.md calls out).

use lumen_algorithms::AlgorithmId;
use lumen_bench_suite::exp::ExpConfig;
use lumen_bench_suite::render::heatmap;
use lumen_bench_suite::store::ResultStore;
use lumen_synth::{AttackKind, DatasetId};

fn main() {
    let ablate = std::env::args().any(|a| a == "--ablate");
    // Strip the flag before the shared parser sees the args.
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--ablate")
        .collect();
    let cfg = ExpConfig::parse_args(&args).unwrap_or_else(|why| {
        eprintln!("{why}");
        std::process::exit(2);
    });
    let runner = cfg.matrix_runner("fig6");
    let conn_sets = DatasetId::CONNECTION.to_vec();

    let improved = [
        AlgorithmId::A08,
        AlgorithmId::A09,
        AlgorithmId::A13,
        AlgorithmId::A14,
        AlgorithmId::AM01,
        AlgorithmId::AM02,
        AlgorithmId::AM03,
    ];

    // Baseline: ordinary same-dataset training for the published four.
    let baseline_run = runner.run_matrix(
        &[
            AlgorithmId::A08,
            AlgorithmId::A09,
            AlgorithmId::A13,
            AlgorithmId::A14,
        ],
        &conn_sets,
        false,
    );
    let baseline = &baseline_run.store;
    let mut journal = baseline_run.journal.clone();

    // Improved: merged-dataset training (10% of each dataset, §5.4).
    let mut merged = ResultStore::new();
    for id in improved {
        let result = runner.run_merged(id, &conn_sets, 0.10, 1.0);
        journal.record_result(id.code(), "MIX", "MIX", "merged", &result);
        match result {
            Ok(rows) => {
                for r in rows {
                    merged.push(r);
                }
            }
            Err(e) => eprintln!("{}: {e}", id.code()),
        }
    }

    let attacks: Vec<AttackKind> = AttackKind::ALL
        .into_iter()
        .filter(|k| {
            merged
                .per_attack()
                .any(|r| r.attack.as_deref() == Some(k.name()))
        })
        .collect();
    let cols: Vec<String> = attacks.iter().map(|a| a.name().to_string()).collect();
    let rows: Vec<String> = improved.iter().map(|a| a.code().to_string()).collect();
    let cells: Vec<Vec<Option<f64>>> = improved
        .iter()
        .map(|id| {
            attacks
                .iter()
                .map(|a| merged.attack_precision(id.code(), a.name()))
                .collect()
        })
        .collect();
    print!(
        "{}",
        heatmap(
            "Figure 6: merged-dataset training + synthesized algorithms (per-attack precision)",
            &rows,
            &cols,
            &cells
        )
    );

    // Quantify the improvement vs. ordinary training (Observation 5).
    println!("\nOverall precision, ordinary vs merged training:");
    for id in [
        AlgorithmId::A08,
        AlgorithmId::A09,
        AlgorithmId::A13,
        AlgorithmId::A14,
    ] {
        let ordinary: Vec<f64> = baseline
            .for_algo(id.code(), "same")
            .map(|r| r.precision)
            .collect();
        let ordinary_mean = if ordinary.is_empty() {
            0.0
        } else {
            ordinary.iter().sum::<f64>() / ordinary.len() as f64
        };
        let merged_p = merged
            .by_mode("merged")
            .find(|r| r.algo == id.code())
            .map_or(0.0, |r| r.precision);
        println!(
            "  {}: ordinary mean {:.3} -> merged {:.3} ({:+.1}%)",
            id.code(),
            ordinary_mean,
            merged_p,
            (merged_p - ordinary_mean) * 100.0
        );
    }
    for id in [AlgorithmId::AM01, AlgorithmId::AM02, AlgorithmId::AM03] {
        if let Some(r) = merged.by_mode("merged").find(|r| r.algo == id.code()) {
            println!("  {}: merged precision {:.3}", id.code(), r.precision);
        }
    }

    if ablate {
        println!("\nAblation: AM02 without normalization / correlation filter");
        // AM02's pipeline with preprocessing stripped is approximated by
        // A13's feature family with a plain RF — report both for contrast.
        let plain = runner.run_matrix(&[AlgorithmId::A14], &conn_sets, false);
        let vals: Vec<f64> = plain
            .store
            .for_algo("A14", "same")
            .map(|r| r.precision)
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        println!("  plain RF features (A14, per-dataset): mean precision {mean:.3}");
        journal.extend(plain.journal);
    }

    lumen_bench_suite::exp::finish_run(&cfg, &runner, &merged, &journal, "fig6");
}
