//! Regenerates Figure 7: per-algorithm distance-from-best distributions.
//! For every faithful (train, test) pair, the difference between the best
//! precision/recall achieved by any algorithm and this algorithm's score.
//! An optimal algorithm would be a flat line at 0; the paper's Observation 1
//! is that no such algorithm exists.

use lumen_bench_suite::exp::{all_datasets, published_algos, ExpConfig};
use lumen_bench_suite::render::distribution_line;
use lumen_bench_suite::store::ResultStore;

fn diffs(
    store: &ResultStore,
    algo: &str,
    metric: impl Fn(&lumen_bench_suite::ResultRow) -> f64 + Copy,
    best: impl Fn(&ResultStore, &str, &str) -> Option<f64>,
) -> Vec<f64> {
    store
        .rows()
        .iter()
        .filter(|r| r.attack.is_none() && r.algo == algo)
        .filter_map(|r| best(store, &r.train, &r.test).map(|b| b - metric(r)))
        .collect()
}

fn main() {
    let cfg = ExpConfig::from_args();
    let runner = cfg.matrix_runner("fig7");
    let run = runner.run_matrix(&published_algos(), &all_datasets(), true);
    let store = &run.store;

    println!("Figure 7a: precision difference from the best algorithm per (train, test) pair\n");
    for id in published_algos() {
        let d = diffs(
            &store,
            id.code(),
            |r| r.precision,
            |s, a, b| s.best_precision(a, b),
        );
        println!("{}", distribution_line(id.code(), &d));
    }

    println!("\nFigure 7b: recall difference from the best algorithm per (train, test) pair\n");
    for id in published_algos() {
        let d = diffs(
            &store,
            id.code(),
            |r| r.recall,
            |s, a, b| s.best_recall(a, b),
        );
        println!("{}", distribution_line(id.code(), &d));
    }

    // Observation 1 check.
    let optimal = published_algos().iter().any(|id| {
        let d = diffs(
            &store,
            id.code(),
            |r| r.precision,
            |s, a, b| s.best_precision(a, b),
        );
        !d.is_empty() && d.iter().all(|&x| x < 1e-9)
    });
    println!(
        "\nObservation 1: a single always-best algorithm {} (paper: does not exist).",
        if optimal {
            "EXISTS (!)"
        } else {
            "does not exist"
        }
    );
    lumen_bench_suite::exp::finish_run(&cfg, &runner, store, &run.journal, "fig7");
}
