//! Regenerates Figure 8: per-algorithm precision/recall when trained and
//! tested on the same dataset (Observation 2's same-source half).

use lumen_bench_suite::exp::{all_datasets, published_algos, ExpConfig};
use lumen_bench_suite::render::csv_series;

fn main() {
    let cfg = ExpConfig::from_args();
    let runner = cfg.matrix_runner("fig8");
    let run = runner.run_matrix(&published_algos(), &all_datasets(), false);
    let store = &run.store;

    println!("Figure 8: same-dataset precision and recall per algorithm\n");
    println!(
        "{:<6} {:<6} {:>9} {:>9} {:>9} {:>9}",
        "algo", "data", "precision", "recall", "f1", "auc"
    );
    for r in store.by_mode("same") {
        println!(
            "{:<6} {:<6} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            r.algo, r.train, r.precision, r.recall, r.f1, r.auc
        );
    }

    // Observation 2, same-source half.
    let mut low_precision = std::collections::BTreeSet::new();
    let mut low_recall = std::collections::BTreeSet::new();
    for r in store.by_mode("same") {
        if r.precision < 0.2 {
            low_precision.insert(r.algo.clone());
        }
        if r.recall < 0.2 {
            low_recall.insert(r.algo.clone());
        }
    }
    println!(
        "\nAlgorithms with precision < 20% on at least one same-source dataset: {}/16 {:?}",
        low_precision.len(),
        low_precision
    );
    println!(
        "Algorithms with recall   < 20% on at least one same-source dataset: {}/16 {:?}",
        low_recall.len(),
        low_recall
    );
    println!("(Paper's Observation 2 reports 8/16 and 4/16 on the real datasets.)");

    let rows: Vec<Vec<String>> = store
        .by_mode("same")
        .map(|r| {
            vec![
                r.algo.clone(),
                r.train.clone(),
                format!("{:.4}", r.precision),
                format!("{:.4}", r.recall),
            ]
        })
        .collect();
    println!(
        "\nCSV:\n{}",
        csv_series("algo,dataset,precision,recall", &rows)
    );

    lumen_bench_suite::exp::finish_run(&cfg, &runner, store, &run.journal, "fig8");
}
