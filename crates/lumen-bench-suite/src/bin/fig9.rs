//! Regenerates Figure 9: per-algorithm precision/recall with distinct
//! training and testing datasets (Observation 2's cross-source half: every
//! algorithm collapses somewhere).

use lumen_bench_suite::exp::{all_datasets, published_algos, ExpConfig};
use lumen_bench_suite::render::distribution_line;

fn main() {
    let cfg = ExpConfig::from_args();
    let runner = cfg.matrix_runner("fig9");
    let run = runner.run_matrix(&published_algos(), &all_datasets(), true);
    let store = &run.store;

    println!("Figure 9a: cross-dataset precision per algorithm\n");
    for id in published_algos() {
        let v: Vec<f64> = store
            .for_algo(id.code(), "cross")
            .map(|r| r.precision)
            .collect();
        println!("{}", distribution_line(id.code(), &v));
    }
    println!("\nFigure 9b: cross-dataset recall per algorithm\n");
    for id in published_algos() {
        let v: Vec<f64> = store
            .for_algo(id.code(), "cross")
            .map(|r| r.recall)
            .collect();
        println!("{}", distribution_line(id.code(), &v));
    }

    let mut collapse = 0;
    let mut ran = 0;
    for id in published_algos() {
        let v: Vec<f64> = store
            .for_algo(id.code(), "cross")
            .map(|r| r.precision.min(r.recall))
            .collect();
        if v.is_empty() {
            continue;
        }
        ran += 1;
        if v.iter().any(|&x| x < 0.2) {
            collapse += 1;
        }
    }
    println!(
        "\n{collapse}/{ran} cross-capable algorithms drop below 20% precision or recall on\n\
         at least one train/test pair (paper's Observation 2: 16/16)."
    );
    lumen_bench_suite::exp::finish_run(&cfg, &runner, store, &run.journal, "fig9");
}
