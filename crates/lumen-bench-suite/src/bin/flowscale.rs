//! Flow-tracker scalability benchmark: assembles a million-endpoint sweep
//! (`lumen_synth::endpoint_sweep`) across a shard sweep and emits
//! `BENCH_flowscale.json` (to `$LUMEN_RESULTS_DIR` when set, else the
//! working directory) — same discipline as `BENCH_kernels.json`.
//!
//! Because sharding is an execution detail (records merge back into
//! canonical order), every configuration is also checked for bit-identical
//! output against the single-tracker baseline; a mismatch aborts.
//!
//! Flags: `--fast` shrinks the workload, `--devices N` / `--flows N` /
//! `--shards LIST` (comma-separated) resize it, and `--assert-scaling`
//! exits nonzero unless 2 shards beat 1 (skipped with a message on
//! single-core machines, where no speedup is physically possible).

use std::time::Instant;

use lumen_flow::{assemble_sharded, FlowConfig};
use lumen_synth::{endpoint_sweep, SweepSpec};
use lumen_util::par::available_threads;

/// One measured configuration.
struct Record {
    op: &'static str,
    n: usize,
    shards: usize,
    flows_per_sec: f64,
    speedup: f64,
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let assert_scaling = std::env::args().any(|a| a == "--assert-scaling");
    let reps = if fast { 2 } else { 3 };

    let devices: usize = arg_value("--devices")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast { 25_000 } else { 250_000 });
    let flows_per_device: usize = arg_value("--flows")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let shard_sweep: Vec<usize> = arg_value("--shards")
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    let spec = SweepSpec {
        devices,
        flows_per_device,
        pkts_per_flow: 4,
        seed: 42,
    };
    eprintln!(
        "generating sweep: {} devices x {} flows = {} flows, {} packets...",
        spec.devices,
        spec.flows_per_device,
        spec.total_flows(),
        spec.total_packets()
    );
    let t0 = Instant::now();
    let packets = endpoint_sweep(&spec);
    eprintln!(
        "generated {} packets in {:.1}s ({} cores available)\n",
        packets.len(),
        t0.elapsed().as_secs_f64(),
        available_threads()
    );

    let cfg = FlowConfig::default();
    let mut records: Vec<Record> = Vec::new();
    let mut baseline: Option<(f64, Vec<lumen_flow::ConnRecord>)> = None;

    println!(
        "{:<14} {:>9} {:>7} {:>14} {:>9}",
        "op", "n", "shards", "flows/sec", "speedup"
    );
    for &shards in &shard_sweep {
        if shards == 0 {
            continue;
        }
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let asm = assemble_sharded(&packets, cfg, shards);
            best = best.min(t0.elapsed().as_secs_f64());
            out = Some(asm);
        }
        let asm = out.expect("reps >= 1");
        let fps = asm.records.len() as f64 / best;
        // Shard-invariance gate: the merged records must be byte-identical
        // to the single-tracker baseline, or the numbers are meaningless.
        match &baseline {
            None => baseline = Some((fps, asm.records)),
            Some((_, base)) => {
                assert_eq!(
                    &asm.records, base,
                    "shards={shards} changed the records — determinism bug"
                );
            }
        }
        let base_fps = baseline.as_ref().map_or(fps, |(f, _)| *f);
        let speedup = fps / base_fps;
        println!(
            "{:<14} {:>9} {:>7} {:>14.0} {:>8.2}x",
            "flow_assemble",
            packets.len(),
            shards,
            fps,
            speedup
        );
        records.push(Record {
            op: "flow_assemble",
            n: packets.len(),
            shards,
            flows_per_sec: fps,
            speedup,
        });
    }

    let json: Vec<serde_json::Value> = records
        .iter()
        .map(|r| {
            serde_json::json!({
                "op": r.op,
                "n": r.n,
                "shards": r.shards,
                "flows_per_sec": r.flows_per_sec,
                "speedup": r.speedup,
            })
        })
        .collect();
    let dir = std::env::var("LUMEN_RESULTS_DIR").unwrap_or_else(|_| ".".into());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_flowscale.json");
    let body = serde_json::to_string_pretty(&serde_json::Value::Array(json)).unwrap();
    match std::fs::write(&path, body) {
        Ok(()) => eprintln!("\n[flow scalability persisted to {}]", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }

    if assert_scaling {
        if available_threads() < 2 {
            eprintln!(
                "--assert-scaling skipped: only {} core(s) available, multi-shard \
                 speedup is not physically possible here",
                available_threads()
            );
            return;
        }
        let fps_of = |s: usize| {
            records
                .iter()
                .find(|r| r.shards == s)
                .map(|r| r.flows_per_sec)
        };
        match (fps_of(1), fps_of(2)) {
            (Some(f1), Some(f2)) if f2 > f1 => {
                eprintln!("scaling OK: 2 shards {:.2}x over 1", f2 / f1);
            }
            (Some(f1), Some(f2)) => {
                eprintln!(
                    "SCALING REGRESSION: 2 shards ({f2:.0} flows/sec) did not beat \
                     1 shard ({f1:.0} flows/sec)"
                );
                std::process::exit(1);
            }
            _ => {
                eprintln!("--assert-scaling needs shards 1 and 2 in the sweep");
                std::process::exit(1);
            }
        }
    }
}
