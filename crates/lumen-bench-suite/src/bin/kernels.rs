//! Kernel-layer smoke benchmark: times the shared ML compute kernels
//! against their scalar references across a thread sweep and emits
//! `BENCH_kernels.json` (to `$LUMEN_RESULTS_DIR` when set, else the
//! working directory).
//!
//! Baselines: `matmul`, `pairwise_sq_dists` and `knn_predict` are measured
//! against naive scalar implementations (the loops the model zoo used to
//! hand-roll); `kmeans_fit` runs the same fused routine at one thread, so
//! its speedup column reads as parallel scaling. `matmul` and
//! `pairwise_sq_dists` additionally run once per available SIMD backend
//! (`backend` column: `scalar` plus `avx2`/`neon` when the host supports
//! one), so the instruction-set win is a row ratio inside one artifact.
//! The `*_batch_score` rows time the model zoo's batched prediction paths
//! against their own row-by-row loops (same trained model, same probes).
//!
//! `--fast` shrinks every workload *except* the pairwise case, which stays
//! at n=4000, d=32 — the acceptance-criterion configuration.
//!
//! `--baseline PATH` compares the fresh run against a committed
//! `BENCH_kernels.json`: rows are matched on (op, n, d, threads, backend),
//! per-row time ratios are normalized by the run's median ratio (so a
//! uniformly slower or faster host does not trip the gate), and any op
//! regressing more than 25% beyond that median fails the process. Baseline
//! rows for a backend this host cannot run are skipped with a notice.

use std::time::Instant;

use lumen_ml::autoencoder::{Autoencoder, AutoencoderConfig};
use lumen_ml::gmm::{Gmm, GmmConfig};
use lumen_ml::kernels::{self, reference, Backend};
use lumen_ml::kmeans::kmeans_t;
use lumen_ml::knn::{Knn, KnnConfig};
use lumen_ml::linear::{LogisticRegression, SgdConfig};
use lumen_ml::matrix::Matrix;
use lumen_ml::model::{AnomalyDetector, Classifier};
use lumen_ml::Dataset;
use lumen_util::par::available_threads;
use lumen_util::Rng;

/// One measured configuration.
struct Record {
    op: &'static str,
    n: usize,
    d: usize,
    threads: usize,
    backend: &'static str,
    ns_per_iter: f64,
    speedup: f64,
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::new(seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.f64_range(-2.0, 2.0))
        .collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// Best-of-`reps` wall time of `f`, in ns per call.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// Naive scalar k-NN batch scoring: per-query distance loop + full sort —
/// the pre-kernel baseline.
fn naive_knn_scores(train: &Matrix, labels: &[u8], q: &Matrix, k: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(q.rows());
    for qi in 0..q.rows() {
        let qr = q.row(qi);
        let mut pairs: Vec<(f64, u8)> = (0..train.rows())
            .map(|ti| {
                let tr = train.row(ti);
                let mut s = 0.0;
                for j in 0..qr.len() {
                    let d = qr[j] - tr[j];
                    s += d * d;
                }
                (s, labels[ti])
            })
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let pos = pairs[..k].iter().filter(|(_, l)| *l == 1).count();
        out.push(pos as f64 / k as f64);
    }
    out
}

fn thread_sweep() -> Vec<usize> {
    let mut sweep = vec![1, 2, 4, available_threads()];
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

/// The backends this host can execute: scalar always, plus the detected
/// SIMD instruction set when there is one.
fn runnable_backends() -> Vec<Backend> {
    let detected = kernels::detected_backend();
    if detected == Backend::Scalar {
        vec![Backend::Scalar]
    } else {
        vec![Backend::Scalar, detected]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let reps = if fast { 2 } else { 3 };
    let sweep = thread_sweep();
    let backends = runnable_backends();
    let active = kernels::active_backend().name();
    eprintln!(
        "kernel dispatch: active backend {active}, cpu features {}",
        kernels::detected_features()
    );
    let mut records: Vec<Record> = Vec::new();

    // --- matmul (per backend) ----------------------------------------------
    let (mm_n, mm_d) = if fast { (128, 48) } else { (320, 128) };
    let a = random_matrix(mm_n, mm_d, 1);
    let b = random_matrix(mm_d, mm_n, 2);
    let ref_ns = time_ns(reps, || {
        std::hint::black_box(reference::matmul(&a, &b).unwrap());
    });
    for &be in &backends {
        for &t in &sweep {
            let ns = time_ns(reps, || {
                std::hint::black_box(kernels::matmul_with(be, &a, &b, t).unwrap());
            });
            records.push(Record {
                op: "matmul",
                n: mm_n,
                d: mm_d,
                threads: t,
                backend: be.name(),
                ns_per_iter: ns,
                speedup: ref_ns / ns,
            });
        }
    }

    // --- pairwise_sq_dists (acceptance config, never shrunk; per backend) --
    // Both sides write into a preallocated buffer so the measurement is
    // compute vs compute, not dominated by page-faulting a fresh 128 MB
    // output per call.
    let (pw_n, pw_d) = (4000, 32);
    let a = random_matrix(pw_n, pw_d, 3);
    let b = random_matrix(pw_n, pw_d, 4);
    let mut out = Matrix::zeros(pw_n, pw_n);
    let ref_ns = time_ns(reps, || {
        reference::pairwise_sq_dists_into(&a, &b, &mut out);
        std::hint::black_box(out.get(0, 0));
    });
    for &be in &backends {
        for &t in &sweep {
            let ns = time_ns(reps, || {
                kernels::pairwise_sq_dists_into_with(be, &a, &b, &mut out, t).unwrap();
                std::hint::black_box(out.get(0, 0));
            });
            records.push(Record {
                op: "pairwise_sq_dists",
                n: pw_n,
                d: pw_d,
                threads: t,
                backend: be.name(),
                ns_per_iter: ns,
                speedup: ref_ns / ns,
            });
        }
    }

    // --- knn_predict -------------------------------------------------------
    let (kn_train, kn_q, kn_d, k) = if fast {
        (1500, 600, 16, 5)
    } else {
        (4000, 2000, 32, 5)
    };
    let train_x = random_matrix(kn_train, kn_d, 5);
    let mut rng = Rng::new(6);
    let labels: Vec<u8> = (0..kn_train).map(|_| u8::from(rng.chance(0.5))).collect();
    let queries = random_matrix(kn_q, kn_d, 7);
    let ref_ns = time_ns(reps, || {
        std::hint::black_box(naive_knn_scores(&train_x, &labels, &queries, k));
    });
    for &t in &sweep {
        let mut knn = Knn::new(KnnConfig {
            k,
            max_train: kn_train,
            threads: t,
        });
        knn.fit(&Dataset::new(train_x.clone(), labels.clone()).unwrap())
            .unwrap();
        let ns = time_ns(reps, || {
            std::hint::black_box(knn.scores(&queries));
        });
        records.push(Record {
            op: "knn_predict",
            n: kn_q,
            d: kn_d,
            threads: t,
            backend: active,
            ns_per_iter: ns,
            speedup: ref_ns / ns,
        });
    }

    // --- kmeans_fit (speedup = parallel scaling vs one thread) -------------
    let (km_n, km_d, km_k) = if fast { (1500, 16, 8) } else { (6000, 16, 8) };
    let x = random_matrix(km_n, km_d, 8);
    let ref_ns = time_ns(reps, || {
        let mut rng = Rng::new(9);
        std::hint::black_box(kmeans_t(&x, km_k, 10, &mut rng, 1).unwrap());
    });
    for &t in &sweep {
        let ns = time_ns(reps, || {
            let mut rng = Rng::new(9);
            std::hint::black_box(kmeans_t(&x, km_k, 10, &mut rng, t).unwrap());
        });
        records.push(Record {
            op: "kmeans_fit",
            n: km_n,
            d: km_d,
            threads: t,
            backend: active,
            ns_per_iter: ns,
            speedup: ref_ns / ns,
        });
    }

    // --- batched prediction vs row loops (model zoo) -----------------------
    // Same trained model on both sides; the reference is the model's own
    // row-by-row scoring loop, so speedup reads as "batching win". Batch
    // paths take their parallelism from the process default, which we pin
    // to 1 so the ratio isolates batching from threading.
    kernels::set_default_threads(1);
    let (bs_n, bs_d) = if fast { (600, 16) } else { (2000, 32) };
    let fit_x = random_matrix(400, bs_d, 10);
    let probe = random_matrix(bs_n, bs_d, 11);

    let mut gmm = Gmm::new(GmmConfig {
        n_components: 4,
        max_iter: 15,
        threads: 1,
        ..GmmConfig::default()
    });
    gmm.fit_benign(&fit_x).unwrap();
    let ref_ns = time_ns(reps, || {
        let s: Vec<f64> = probe.rows_iter().map(|r| gmm.anomaly_score(r)).collect();
        std::hint::black_box(s);
    });
    let ns = time_ns(reps, || {
        std::hint::black_box(gmm.anomaly_scores(&probe));
    });
    records.push(Record {
        op: "gmm_batch_score",
        n: bs_n,
        d: bs_d,
        threads: 1,
        backend: active,
        ns_per_iter: ns,
        speedup: ref_ns / ns,
    });

    let mut ae = Autoencoder::new(AutoencoderConfig {
        hidden: vec![8],
        epochs: 3,
        ..AutoencoderConfig::default()
    });
    ae.fit_benign(&fit_x).unwrap();
    let ref_ns = time_ns(reps, || {
        let s: Vec<f64> = probe.rows_iter().map(|r| ae.anomaly_score(r)).collect();
        std::hint::black_box(s);
    });
    let ns = time_ns(reps, || {
        std::hint::black_box(ae.anomaly_scores(&probe));
    });
    records.push(Record {
        op: "ae_batch_score",
        n: bs_n,
        d: bs_d,
        threads: 1,
        backend: active,
        ns_per_iter: ns,
        speedup: ref_ns / ns,
    });

    let mut rng = Rng::new(12);
    let fit_y: Vec<u8> = (0..fit_x.rows()).map(|_| u8::from(rng.chance(0.5))).collect();
    let mut logreg = LogisticRegression::new(SgdConfig {
        epochs: 5,
        ..SgdConfig::default()
    });
    logreg
        .fit(&Dataset::new(fit_x.clone(), fit_y).unwrap())
        .unwrap();
    let ref_ns = time_ns(reps, || {
        let s: Vec<f64> = probe.rows_iter().map(|r| logreg.score_row(r)).collect();
        std::hint::black_box(s);
    });
    let ns = time_ns(reps, || {
        std::hint::black_box(logreg.scores(&probe));
    });
    records.push(Record {
        op: "linear_batch_score",
        n: bs_n,
        d: bs_d,
        threads: 1,
        backend: active,
        ns_per_iter: ns,
        speedup: ref_ns / ns,
    });

    // --- report ------------------------------------------------------------
    println!(
        "{:<18} {:>6} {:>4} {:>8} {:>8} {:>14} {:>9}",
        "op", "n", "d", "threads", "backend", "ns/iter", "speedup"
    );
    for r in &records {
        println!(
            "{:<18} {:>6} {:>4} {:>8} {:>8} {:>14.0} {:>8.2}x",
            r.op, r.n, r.d, r.threads, r.backend, r.ns_per_iter, r.speedup
        );
    }

    let json: Vec<serde_json::Value> = records
        .iter()
        .map(|r| {
            serde_json::json!({
                "op": r.op,
                "n": r.n,
                "d": r.d,
                "threads": r.threads,
                "backend": r.backend,
                "ns_per_iter": r.ns_per_iter,
                "speedup": r.speedup,
            })
        })
        .collect();
    let dir = std::env::var("LUMEN_RESULTS_DIR").unwrap_or_else(|_| ".".into());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_kernels.json");
    let body = serde_json::to_string_pretty(&serde_json::Value::Array(json)).unwrap();
    match std::fs::write(&path, body) {
        Ok(()) => eprintln!("\n[kernel benchmarks persisted to {}]", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }

    if let Some(bp) = baseline_path {
        if let Err(regressions) = check_baseline(&bp, &records) {
            eprintln!("kernels-regress: {} op(s) regressed >25% vs {bp}:", regressions.len());
            for r in regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        eprintln!("kernels-regress: no op regressed >25% vs {bp}");
    }
}

/// Compares this run against a committed baseline. Rows match on
/// (op, n, d, threads, backend); per-row fresh/baseline time ratios are
/// normalized by the median ratio so a uniformly different host does not
/// trip the gate, then any row more than 25% slower than that median
/// shift is reported as a regression. Only single-thread rows gate:
/// threads>1 rows measure scheduler contention on small ops (host
/// scaling, noisy on shared runners), not kernel code quality — they stay
/// in the artifact for inspection but are skipped here with a notice.
fn check_baseline(path: &str, records: &[Record]) -> Result<(), Vec<String>> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("kernels-regress notice: cannot read baseline {path}: {e}; skipping");
            return Ok(());
        }
    };
    let rows: Vec<serde_json::Value> = match serde_json::from_str(&body) {
        Ok(serde_json::Value::Array(rows)) => rows,
        _ => {
            eprintln!("kernels-regress notice: baseline {path} is not a JSON array; skipping");
            return Ok(());
        }
    };
    let runnable: Vec<&str> = runnable_backends().iter().map(|b| b.name()).collect();
    let mut compared: Vec<(String, f64)> = Vec::new();
    let mut skipped_mt = 0usize;
    for row in &rows {
        let get_str = |k: &str| row.get(k).and_then(|v| v.as_str()).unwrap_or("");
        let get_u = |k: &str| row.get(k).and_then(|v| v.as_u64()).unwrap_or(0) as usize;
        let get_f = |k: &str| row.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let (op, backend) = (get_str("op").to_string(), get_str("backend").to_string());
        let (n, d, threads) = (get_u("n"), get_u("d"), get_u("threads"));
        let base_ns = get_f("ns_per_iter");
        if base_ns <= 0.0 {
            continue;
        }
        if threads > 1 {
            skipped_mt += 1;
            continue;
        }
        if !backend.is_empty() && !runnable.contains(&backend.as_str()) {
            eprintln!(
                "kernels-regress notice: host lacks backend {backend}; skipping baseline row {op} (n={n}, d={d}, t={threads})"
            );
            continue;
        }
        let fresh = records.iter().find(|r| {
            r.op == op
                && r.n == n
                && r.d == d
                && r.threads == threads
                && (backend.is_empty() || r.backend == backend)
        });
        match fresh {
            Some(r) => compared.push((
                format!("{op} [{backend}] (n={n}, d={d}, t={threads})"),
                r.ns_per_iter / base_ns,
            )),
            None => eprintln!(
                "kernels-regress notice: no fresh row for baseline {op} [{backend}] (n={n}, d={d}, t={threads}); skipping"
            ),
        }
    }
    if skipped_mt > 0 {
        eprintln!(
            "kernels-regress notice: {skipped_mt} multi-thread baseline row(s) excluded from the gate (host-scaling noise)"
        );
    }
    if compared.is_empty() {
        eprintln!("kernels-regress notice: nothing comparable in {path}; skipping");
        return Ok(());
    }
    let mut ratios: Vec<f64> = compared.iter().map(|(_, r)| *r).collect();
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    let regressions: Vec<String> = compared
        .iter()
        .filter(|(_, ratio)| ratio / median > 1.25)
        .map(|(label, ratio)| {
            format!(
                "{label}: {:.0}% slower than the baseline after normalizing host speed (x{median:.2})",
                (ratio / median - 1.0) * 100.0
            )
        })
        .collect();
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(regressions)
    }
}
