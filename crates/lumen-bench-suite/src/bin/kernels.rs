//! Kernel-layer smoke benchmark: times the shared ML compute kernels
//! against their scalar references across a thread sweep and emits
//! `BENCH_kernels.json` (to `$LUMEN_RESULTS_DIR` when set, else the
//! working directory).
//!
//! Baselines: `matmul`, `pairwise_sq_dists` and `knn_predict` are measured
//! against naive scalar implementations (the loops the model zoo used to
//! hand-roll); `kmeans_fit` runs the same fused routine at one thread, so
//! its speedup column reads as parallel scaling.
//!
//! `--fast` shrinks every workload *except* the pairwise case, which stays
//! at n=4000, d=32 — the acceptance-criterion configuration.

use std::time::Instant;

use lumen_ml::kernels::{self, reference};
use lumen_ml::kmeans::kmeans_t;
use lumen_ml::knn::{Knn, KnnConfig};
use lumen_ml::matrix::Matrix;
use lumen_ml::model::Classifier;
use lumen_ml::Dataset;
use lumen_util::par::available_threads;
use lumen_util::Rng;

/// One measured configuration.
struct Record {
    op: &'static str,
    n: usize,
    d: usize,
    threads: usize,
    ns_per_iter: f64,
    speedup: f64,
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::new(seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.f64_range(-2.0, 2.0))
        .collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// Best-of-`reps` wall time of `f`, in ns per call.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// Naive scalar k-NN batch scoring: per-query distance loop + full sort —
/// the pre-kernel baseline.
fn naive_knn_scores(train: &Matrix, labels: &[u8], q: &Matrix, k: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(q.rows());
    for qi in 0..q.rows() {
        let qr = q.row(qi);
        let mut pairs: Vec<(f64, u8)> = (0..train.rows())
            .map(|ti| {
                let tr = train.row(ti);
                let mut s = 0.0;
                for j in 0..qr.len() {
                    let d = qr[j] - tr[j];
                    s += d * d;
                }
                (s, labels[ti])
            })
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let pos = pairs[..k].iter().filter(|(_, l)| *l == 1).count();
        out.push(pos as f64 / k as f64);
    }
    out
}

fn thread_sweep() -> Vec<usize> {
    let mut sweep = vec![1, 2, 4, available_threads()];
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let reps = if fast { 2 } else { 3 };
    let sweep = thread_sweep();
    let mut records: Vec<Record> = Vec::new();

    // --- matmul ------------------------------------------------------------
    let (mm_n, mm_d) = if fast { (128, 48) } else { (320, 128) };
    let a = random_matrix(mm_n, mm_d, 1);
    let b = random_matrix(mm_d, mm_n, 2);
    let ref_ns = time_ns(reps, || {
        std::hint::black_box(reference::matmul(&a, &b).unwrap());
    });
    for &t in &sweep {
        let ns = time_ns(reps, || {
            std::hint::black_box(kernels::matmul(&a, &b, t).unwrap());
        });
        records.push(Record {
            op: "matmul",
            n: mm_n,
            d: mm_d,
            threads: t,
            ns_per_iter: ns,
            speedup: ref_ns / ns,
        });
    }

    // --- pairwise_sq_dists (acceptance config, never shrunk) ---------------
    // Both sides write into a preallocated buffer so the measurement is
    // compute vs compute, not dominated by page-faulting a fresh 128 MB
    // output per call.
    let (pw_n, pw_d) = (4000, 32);
    let a = random_matrix(pw_n, pw_d, 3);
    let b = random_matrix(pw_n, pw_d, 4);
    let mut out = Matrix::zeros(pw_n, pw_n);
    let ref_ns = time_ns(reps, || {
        reference::pairwise_sq_dists_into(&a, &b, &mut out);
        std::hint::black_box(out.get(0, 0));
    });
    for &t in &sweep {
        let ns = time_ns(reps, || {
            kernels::pairwise_sq_dists_into(&a, &b, &mut out, t).unwrap();
            std::hint::black_box(out.get(0, 0));
        });
        records.push(Record {
            op: "pairwise_sq_dists",
            n: pw_n,
            d: pw_d,
            threads: t,
            ns_per_iter: ns,
            speedup: ref_ns / ns,
        });
    }

    // --- knn_predict -------------------------------------------------------
    let (kn_train, kn_q, kn_d, k) = if fast {
        (1500, 600, 16, 5)
    } else {
        (4000, 2000, 32, 5)
    };
    let train_x = random_matrix(kn_train, kn_d, 5);
    let mut rng = Rng::new(6);
    let labels: Vec<u8> = (0..kn_train).map(|_| u8::from(rng.chance(0.5))).collect();
    let queries = random_matrix(kn_q, kn_d, 7);
    let ref_ns = time_ns(reps, || {
        std::hint::black_box(naive_knn_scores(&train_x, &labels, &queries, k));
    });
    for &t in &sweep {
        let mut knn = Knn::new(KnnConfig {
            k,
            max_train: kn_train,
            threads: t,
        });
        knn.fit(&Dataset::new(train_x.clone(), labels.clone()).unwrap())
            .unwrap();
        let ns = time_ns(reps, || {
            std::hint::black_box(knn.scores(&queries));
        });
        records.push(Record {
            op: "knn_predict",
            n: kn_q,
            d: kn_d,
            threads: t,
            ns_per_iter: ns,
            speedup: ref_ns / ns,
        });
    }

    // --- kmeans_fit (speedup = parallel scaling vs one thread) -------------
    let (km_n, km_d, km_k) = if fast { (1500, 16, 8) } else { (6000, 16, 8) };
    let x = random_matrix(km_n, km_d, 8);
    let ref_ns = time_ns(reps, || {
        let mut rng = Rng::new(9);
        std::hint::black_box(kmeans_t(&x, km_k, 10, &mut rng, 1).unwrap());
    });
    for &t in &sweep {
        let ns = time_ns(reps, || {
            let mut rng = Rng::new(9);
            std::hint::black_box(kmeans_t(&x, km_k, 10, &mut rng, t).unwrap());
        });
        records.push(Record {
            op: "kmeans_fit",
            n: km_n,
            d: km_d,
            threads: t,
            ns_per_iter: ns,
            speedup: ref_ns / ns,
        });
    }

    // --- report ------------------------------------------------------------
    println!(
        "{:<18} {:>6} {:>4} {:>8} {:>14} {:>9}",
        "op", "n", "d", "threads", "ns/iter", "speedup"
    );
    for r in &records {
        println!(
            "{:<18} {:>6} {:>4} {:>8} {:>14.0} {:>8.2}x",
            r.op, r.n, r.d, r.threads, r.ns_per_iter, r.speedup
        );
    }

    let json: Vec<serde_json::Value> = records
        .iter()
        .map(|r| {
            serde_json::json!({
                "op": r.op,
                "n": r.n,
                "d": r.d,
                "threads": r.threads,
                "ns_per_iter": r.ns_per_iter,
                "speedup": r.speedup,
            })
        })
        .collect();
    let dir = std::env::var("LUMEN_RESULTS_DIR").unwrap_or_else(|_| ".".into());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_kernels.json");
    let body = serde_json::to_string_pretty(&serde_json::Value::Array(json)).unwrap();
    match std::fs::write(&path, body) {
        Ok(()) => eprintln!("\n[kernel benchmarks persisted to {}]", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}
