//! `lint` — the catalog's static-analysis audit (CI gate).
//!
//! Runs the template linter (`lumen_core::lint`) over every catalog
//! algorithm's feature pipeline and its model/train template, prints every
//! diagnostic with its rule id / severity / node, and exits nonzero when
//! any Error-severity rule fires — so a silently-ignored parameter key or
//! an unfaithful evaluation structure can never ship in the catalog.
//!
//! ```text
//! lint                  audit all catalog algorithms
//! lint --rules          print the rule catalog and exit
//! lint --template FILE  lint a template JSON file (declared input "source",
//!                       kind Packets) instead of the catalog
//! ```

use std::process::ExitCode;

use lumen_algorithms::all_algorithms;
use lumen_core::lint::{has_errors, lint_template, rule_catalog, Diagnostic, Severity};

fn print_diags(context: &str, diags: &[Diagnostic]) -> (usize, usize) {
    let mut errors = 0;
    let mut warns = 0;
    for d in diags {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warn => warns += 1,
            Severity::Info => {}
        }
        println!("  {context}: {d}");
    }
    (errors, warns)
}

fn lint_file(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lint: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let template = match serde_json::from_str(&src) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lint: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diags = lint_template(&template, &["source"]);
    if diags.is_empty() {
        println!("{path}: clean");
        return ExitCode::SUCCESS;
    }
    let (errors, warns) = print_diags(path, &diags);
    println!(
        "{path}: {} diagnostic(s) — {errors} error(s), {warns} warning(s)",
        diags.len()
    );
    if has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn audit_catalog() -> ExitCode {
    let algos = all_algorithms();
    let mut total_errors = 0;
    let mut total_warns = 0;
    let mut dirty = 0;
    for a in &algos {
        let feature = lint_template(&a.feature_template, &["source"]);
        let train = lint_template(&a.train_template(0), &["features"]);
        if feature.is_empty() && train.is_empty() {
            println!("{:>5} {:<12} clean", format!("{:?}", a.id), a.name);
            continue;
        }
        dirty += 1;
        println!("{:>5} {:<12}", format!("{:?}", a.id), a.name);
        let (fe, fw) = print_diags("feature-template", &feature);
        let (te, tw) = print_diags("train-template", &train);
        total_errors += fe + te;
        total_warns += fw + tw;
    }
    println!(
        "audited {} algorithms: {} clean, {} with findings — {} error(s), {} warning(s)",
        algos.len(),
        algos.len() - dirty,
        dirty,
        total_errors,
        total_warns
    );
    if total_errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--rules") => {
            for (id, severity, summary) in rule_catalog() {
                println!("{id}  {:<5} {summary}", severity.name());
            }
            ExitCode::SUCCESS
        }
        Some("--template") => match args.get(1) {
            Some(path) => lint_file(path),
            None => {
                eprintln!("lint: --template requires a file path");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("lint: unknown argument {other:?} (try --rules or --template FILE)");
            ExitCode::FAILURE
        }
        None => audit_catalog(),
    }
}
