//! Checks the paper's five headline observations (§5.3–§5.4) against the
//! measured benchmark matrix and prints a verdict per observation.

use lumen_algorithms::AlgorithmId;
use lumen_bench_suite::exp::{all_datasets, published_algos, ExpConfig};
use lumen_bench_suite::store::ResultStore;
use lumen_synth::DatasetId;

fn main() {
    let cfg = ExpConfig::from_args();
    let runner = cfg.matrix_runner("observations");
    println!("Running the full faithful matrix (same + cross)...\n");
    let run = runner.run_matrix(&published_algos(), &all_datasets(), true);
    let store = &run.store;
    let mut journal = run.journal.clone();

    // --- Observation 1: no single best algorithm ---------------------------
    let mut best_count: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut pairs = std::collections::HashSet::new();
    for r in store.rows().iter().filter(|r| r.attack.is_none()) {
        pairs.insert((r.train.clone(), r.test.clone()));
    }
    for (train, test) in &pairs {
        if let Some(best) = store.best_precision(train, test) {
            for r in store
                .rows()
                .iter()
                .filter(|r| r.attack.is_none() && &r.train == train && &r.test == test)
            {
                if (best - r.precision).abs() < 1e-9 {
                    *best_count.entry(r.algo.clone()).or_insert(0) += 1;
                }
            }
        }
    }
    let top = best_count.iter().max_by_key(|(_, c)| **c);
    println!("Observation 1 — no single best algorithm:");
    if let Some((algo, wins)) = top {
        println!(
            "  most-winning algorithm: {algo} with {wins}/{} pairs -> {}",
            pairs.len(),
            if *wins == pairs.len() {
                "REFUTED (one algorithm always wins)"
            } else {
                "CONFIRMED"
            }
        );
    }

    // --- Observation 2: collapses below 20% --------------------------------
    let count_below = |mode: &str, metric: fn(&lumen_bench_suite::ResultRow) -> f64| {
        let mut set = std::collections::BTreeSet::new();
        for r in store.by_mode(mode) {
            if metric(r) < 0.2 {
                set.insert(r.algo.clone());
            }
        }
        set
    };
    let same_p = count_below("same", |r| r.precision);
    let same_r = count_below("same", |r| r.recall);
    let cross_p = count_below("cross", |r| r.precision);
    println!("\nObservation 2 — generalization failures:");
    println!(
        "  same-source  precision<20% somewhere: {}/16 (paper: 8/16)",
        same_p.len()
    );
    println!(
        "  same-source  recall<20% somewhere:    {}/16 (paper: 4/16)",
        same_r.len()
    );
    println!(
        "  cross-source precision<20% somewhere: {}/{} (paper: 16/16)",
        cross_p.len(),
        published_algos().len()
    );

    // --- Observation 3: training-set selection matters ---------------------
    println!("\nObservation 3 — training-dataset selection (connection datasets):");
    let mut best_train = ("--".to_string(), 0.0f64);
    let mut worst_train = ("--".to_string(), 1.0f64);
    for train in DatasetId::CONNECTION {
        let vals: Vec<f64> = store
            .by_mode("cross")
            .filter(|r| r.train == train.code())
            .map(|r| r.precision)
            .collect();
        if vals.is_empty() {
            continue;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean > best_train.1 {
            best_train = (train.code().to_string(), mean);
        }
        if mean < worst_train.1 {
            worst_train = (train.code().to_string(), mean);
        }
    }
    println!(
        "  best training set {} (mean cross precision {:.2}); worst {} ({:.2}) -> selection matters",
        best_train.0, best_train.1, worst_train.0, worst_train.1
    );

    // --- Observation 4: per-attack specialization --------------------------
    println!("\nObservation 4 — per-attack specialization:");
    let mut per_attack: std::collections::BTreeMap<String, (String, f64)> = Default::default();
    for r in store.per_attack() {
        let a = r.attack.clone().expect("per-attack row");
        let e = per_attack.entry(a).or_insert((r.algo.clone(), r.precision));
        if r.precision > e.1 {
            *e = (r.algo.clone(), r.precision);
        }
    }
    for (attack, (algo, p)) in &per_attack {
        println!("  {attack:<16} best: {algo} ({p:.2})");
    }

    // --- Observation 5: merged training + synthesis improve precision ------
    println!("\nObservation 5 — improvement heuristics (merged training, §5.4):");
    let mut merged = ResultStore::new();
    for id in [
        AlgorithmId::A13,
        AlgorithmId::A14,
        AlgorithmId::AM01,
        AlgorithmId::AM02,
        AlgorithmId::AM03,
    ] {
        let result = runner.run_merged(id, &DatasetId::CONNECTION, 0.10, 1.0);
        journal.record_result(id.code(), "MIX", "MIX", "merged", &result);
        if let Ok(rows) = result {
            for r in rows {
                merged.push(r);
            }
        }
    }
    for id in [AlgorithmId::A13, AlgorithmId::A14] {
        let ordinary: Vec<f64> = store
            .for_algo(id.code(), "same")
            .map(|r| r.precision)
            .collect();
        let base = ordinary.iter().sum::<f64>() / ordinary.len().max(1) as f64;
        if let Some(m) = merged.by_mode("merged").find(|r| r.algo == id.code()) {
            println!(
                "  {}: per-dataset mean {:.3} -> merged {:.3} ({:+.1} points)",
                id.code(),
                base,
                m.precision,
                (m.precision - base) * 100.0
            );
        }
    }
    for id in [AlgorithmId::AM01, AlgorithmId::AM02, AlgorithmId::AM03] {
        if let Some(m) = merged.by_mode("merged").find(|r| r.algo == id.code()) {
            println!(
                "  {}: synthesized algorithm precision {:.3}",
                id.code(),
                m.precision
            );
        }
    }

    lumen_bench_suite::exp::finish_run(&cfg, &runner, store, &journal, "observations");
}
