//! Regenerates §4.2's scalability experiment: chunked-parallel packet
//! processing (Lumen's Ray substitute) versus sequential, on a large
//! synthetic capture.

use std::time::Instant;

use lumen_core::par::parse_capture;
use lumen_synth::{build_dataset, DatasetId, SynthScale};

fn main() {
    let duration = std::env::args()
        .skip_while(|a| a != "--duration")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let scale = SynthScale {
        duration_s: duration,
        benign_density: 10,
        intensity: 2.0,
        devices: 0,
    };
    println!("Generating a large capture (F3-style DDoS, {duration}s)...");
    let cap = build_dataset(DatasetId::F3, scale, 99);
    println!("{} packets\n", cap.len());

    println!("{:>8} {:>12} {:>9}", "threads", "parse (ms)", "speedup");
    let mut base_ms = 0.0;
    for threads in [1usize, 2, 4, 8] {
        // Warm + best-of-3 to stabilize.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let (metas, stats) = parse_capture(cap.link, &cap.packets, threads);
            assert_eq!(stats.total_errors(), 0);
            assert_eq!(metas.len(), cap.len());
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        if threads == 1 {
            base_ms = best;
        }
        println!("{threads:>8} {best:>12.1} {:>8.2}x", base_ms / best);
    }
    println!(
        "\nThe paper's §4.2: per-packet operations parallelize by splitting the\n\
         capture into chunks (their Ray integration; our scoped-thread pool)."
    );
}
