//! `lumen-serve`: long-running streaming detection daemon (DESIGN.md §4k,
//! §4l).
//!
//! Replays a synthetic capture through the staged pipeline — recovering
//! source → decode → sliced flow assembly → ML scoring, with a background
//! retrain stage — with bounded rings, load shedding, a circuit breaker,
//! per-stage watchdogs, online drift detection with adaptive recovery, and
//! a clean SIGTERM drain. Emits the `stream:` summary block and persists
//! the schema-v7 run journal (with its `StreamReport`, seeds header, and
//! `DriftReport`) as `$LUMEN_RESULTS_DIR/serve_journal.json` when that
//! variable is set.
//!
//! Flags:
//!   --fast              smaller capture (quick smoke runs)
//!   --chaos             corrupt the replayed bytes first (ChaosPcap)
//!   --rate N            replay pacing, packets/sec (0 = unpaced)
//!   --slice-ms N        time-slice width in capture milliseconds
//!   --seed N            generator / chaos seed
//!   --fault SPEC        inject a stream fault (STAGE:KIND[:ARG[:N]]),
//!                       repeatable; stages include `retrain`,
//!                       kinds: hang / slow / transient
//!   --watchdog-ms N     heartbeat staleness budget (0 disables)
//!   --breaker-ms N      per-slice scoring budget for the circuit breaker
//!   --ring N            inter-stage ring capacity
//!   --pending N         shed-buffer capacity (parked slices)
//!   --scenario ID       replay a drift/evasion scenario (S0..S6 or a
//!                       name like device-churn) instead of the dataset
//!   --drift             enable online drift detection + adaptation
//!   --retrain-ms N      wall-clock budget per retrain attempt (0 = none)
//!   --assert-drift      exit 1 unless the journal's DriftReport shows
//!                       every breakpoint detected, ≥1 validated swap, and
//!                       post-drift accuracy ≥ the rules baseline
//!
//! Exit codes: 0 on a clean drain (including SIGTERM), 1 on a failed run,
//! 2 on bad flags.

use std::time::Duration;

use lumen_bench_suite::exp::maybe_persist_journal;
use lumen_bench_suite::journal::{RunJournal, RunSeeds};
use lumen_bench_suite::{run_stream, ServeConfig, StreamFault};
use lumen_ml::DriftConfig;
use lumen_synth::{ChaosConfig, ScenarioId, SynthScale};
use lumen_util::shutdown;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_values(name: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

fn num_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    match arg_value(name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad {name} value {v:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let chaos = std::env::args().any(|a| a == "--chaos");

    let mut faults = Vec::new();
    for spec in arg_values("--fault") {
        match StreamFault::parse(&spec) {
            Ok(f) => faults.push(f),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    let scenario = arg_value("--scenario").map(|v| match ScenarioId::parse(&v) {
        Some(id) => id,
        None => {
            eprintln!("bad --scenario {v:?}: use S0..S6 or a scenario name");
            std::process::exit(2);
        }
    });
    let drift = std::env::args().any(|a| a == "--drift") || scenario.is_some();

    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        scale: if fast {
            SynthScale::small()
        } else {
            SynthScale::default()
        },
        seed: num_or("--seed", 7),
        chaos: chaos.then(ChaosConfig::default),
        rate_pps: num_or("--rate", 0),
        slice_us: num_or::<u64>("--slice-ms", 500).max(1) * 1_000,
        ring_capacity: num_or("--ring", defaults.ring_capacity),
        pending_cap: num_or("--pending", defaults.pending_cap),
        score_budget: Duration::from_millis(num_or("--breaker-ms", 250)),
        watchdog_ms: num_or("--watchdog-ms", 2_000),
        faults,
        scenario,
        drift: drift.then(DriftConfig::default),
        retrain_budget_ms: num_or("--retrain-ms", defaults.retrain_budget_ms),
        ..defaults
    };

    // SIGTERM/SIGINT flip the process-global flag; the source stage polls
    // it and starts the drain.
    shutdown::install_term_handler();

    eprintln!(
        "lumen-serve: {} seed {} rate {} pps slice {} ms chaos {} drift {}",
        match cfg.scenario {
            Some(id) => format!("scenario {} ({})", id.code(), id.name()),
            None => format!("dataset {}", cfg.dataset.code()),
        },
        cfg.seed,
        cfg.rate_pps,
        cfg.slice_us / 1_000,
        chaos,
        cfg.drift.is_some(),
    );
    match run_stream(&cfg) {
        Ok(out) => {
            let mut journal = RunJournal::new();
            journal.set_seeds(RunSeeds {
                generator: cfg.seed,
                chaos: cfg.chaos.map(|_| cfg.seed),
                scenario: cfg.scenario.map(|id| id.code().to_string()),
            });
            journal.set_stream(out.report.clone());
            print!("{}", journal.summary(0, 0));
            maybe_persist_journal(&journal, "serve");
            if !out.report.accounts_exactly() {
                eprintln!("ACCOUNTING MISMATCH: {:?}", out.report);
                std::process::exit(1);
            }
            if std::env::args().any(|a| a == "--assert-drift") {
                // Read back through the journal, not the in-memory report:
                // the assertion covers what was actually persisted.
                let Some(d) = journal.stream().and_then(|r| r.drift.as_ref()) else {
                    eprintln!("--assert-drift: no DriftReport in the journal");
                    std::process::exit(1);
                };
                let ok = d.all_breakpoints_detected()
                    && d.model_swaps >= 1
                    && d.acc_after >= d.baseline_acc;
                if !ok {
                    eprintln!("--assert-drift FAILED: {d:?}");
                    std::process::exit(1);
                }
                eprintln!(
                    "--assert-drift OK: {} breakpoint(s) detected, {} swap(s), acc_after {:.3} >= baseline {:.3}",
                    d.breakpoints.len(),
                    d.model_swaps,
                    d.acc_after,
                    d.baseline_acc
                );
            }
            eprintln!(
                "source stats: {} record(s), {} dropped, {} resync(s)",
                out.source_stats.records,
                out.source_stats.dropped_records,
                out.source_stats.resyncs
            );
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    }
}
