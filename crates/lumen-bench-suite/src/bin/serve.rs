//! `lumen-serve`: long-running streaming detection daemon (DESIGN.md §4k).
//!
//! Replays a synthetic capture through the staged pipeline — recovering
//! source → decode → sliced flow assembly → ML scoring — with bounded
//! rings, load shedding, a circuit breaker, per-stage watchdogs, and a
//! clean SIGTERM drain. Emits the `stream:` summary block and persists the
//! schema-v6 run journal (with its `StreamReport`) as
//! `$LUMEN_RESULTS_DIR/serve_journal.json` when that variable is set.
//!
//! Flags:
//!   --fast              smaller capture (quick smoke runs)
//!   --chaos             corrupt the replayed bytes first (ChaosPcap)
//!   --rate N            replay pacing, packets/sec (0 = unpaced)
//!   --slice-ms N        time-slice width in capture milliseconds
//!   --seed N            generator / chaos seed
//!   --fault SPEC        inject a stream fault (STAGE:KIND[:ARG[:N]]),
//!                       repeatable; kinds: hang / slow / transient
//!   --watchdog-ms N     heartbeat staleness budget (0 disables)
//!   --breaker-ms N      per-slice scoring budget for the circuit breaker
//!   --ring N            inter-stage ring capacity
//!   --pending N         shed-buffer capacity (parked slices)
//!
//! Exit codes: 0 on a clean drain (including SIGTERM), 1 on a failed run,
//! 2 on bad flags.

use std::time::Duration;

use lumen_bench_suite::exp::maybe_persist_journal;
use lumen_bench_suite::journal::RunJournal;
use lumen_bench_suite::{run_stream, ServeConfig, StreamFault};
use lumen_synth::{ChaosConfig, SynthScale};
use lumen_util::shutdown;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_values(name: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

fn num_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    match arg_value(name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad {name} value {v:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let chaos = std::env::args().any(|a| a == "--chaos");

    let mut faults = Vec::new();
    for spec in arg_values("--fault") {
        match StreamFault::parse(&spec) {
            Ok(f) => faults.push(f),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        scale: if fast {
            SynthScale::small()
        } else {
            SynthScale::default()
        },
        seed: num_or("--seed", 7),
        chaos: chaos.then(ChaosConfig::default),
        rate_pps: num_or("--rate", 0),
        slice_us: num_or::<u64>("--slice-ms", 500).max(1) * 1_000,
        ring_capacity: num_or("--ring", defaults.ring_capacity),
        pending_cap: num_or("--pending", defaults.pending_cap),
        score_budget: Duration::from_millis(num_or("--breaker-ms", 250)),
        watchdog_ms: num_or("--watchdog-ms", 2_000),
        faults,
        ..defaults
    };

    // SIGTERM/SIGINT flip the process-global flag; the source stage polls
    // it and starts the drain.
    shutdown::install_term_handler();

    eprintln!(
        "lumen-serve: dataset {} seed {} rate {} pps slice {} ms chaos {}",
        cfg.dataset.code(),
        cfg.seed,
        cfg.rate_pps,
        cfg.slice_us / 1_000,
        chaos,
    );
    match run_stream(&cfg) {
        Ok(out) => {
            let mut journal = RunJournal::new();
            journal.set_stream(out.report.clone());
            print!("{}", journal.summary(0, 0));
            maybe_persist_journal(&journal, "serve");
            if !out.report.accounts_exactly() {
                eprintln!("ACCOUNTING MISMATCH: {:?}", out.report);
                std::process::exit(1);
            }
            eprintln!(
                "source stats: {} record(s), {} dropped, {} resync(s)",
                out.source_stats.records,
                out.source_stats.dropped_records,
                out.source_stats.resyncs
            );
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    }
}
