//! Regenerates Table 1: the literature taxonomy of ML-based IoT NIDS.

use lumen_bench_suite::literature::table1_rows;

fn main() {
    println!("Table 1: network-layer ML-based anomaly detection algorithms for IoT devices\n");
    let rows = table1_rows();
    let headers = [
        "Algorithm",
        "ML Model",
        "Granularity",
        "Datasets",
        "Reported",
    ];
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in &rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect();
        println!("| {} |", line.join(" | "));
    };
    print_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for r in &rows {
        print_row(r);
    }
    println!(
        "\nNote: reported numbers are from each original paper on its own dataset(s);\n\
         the heterogeneity of granularities and datasets is exactly why direct\n\
         comparison of these values is meaningless (the paper's Table 1 caption)."
    );
}
