//! Regenerates Tables 2 and 3: the algorithms and datasets of the benchmark.

use lumen_algorithms::all_algorithms;
use lumen_synth::DatasetId;

fn main() {
    println!("Table 2: Algorithms\n");
    println!(
        "{:<6} {:<28} {:<12} Citation",
        "Id", "Description", "Granularity"
    );
    for a in all_algorithms() {
        println!(
            "{:<6} {:<28} {:<12} {}",
            a.id.code(),
            a.name,
            a.granularity.name(),
            a.citation
        );
    }

    println!("\nTable 3: Datasets\n");
    println!(
        "{:<5} {:<28} {:<12} Attacks",
        "Id", "Description", "Granularity"
    );
    for id in DatasetId::ALL {
        let spec = id.spec();
        let attacks: Vec<&str> = spec.attacks.iter().map(|a| a.name()).collect();
        println!(
            "{:<5} {:<28} {:<12} {}",
            id.code(),
            spec.name,
            match spec.granularity {
                lumen_synth::LabelGranularity::Packet => "packet",
                lumen_synth::LabelGranularity::Connection => "connection",
            },
            attacks.join(", ")
        );
    }
    println!("\n10 connection-level (F0-F9) and 5 packet-level (P0-P4) datasets, as in §5.1.");
}
