//! §6 future work, implemented: automatic hyperparameter tuning with Lumen.
//! Compares an algorithm's default hyperparameters against random search and
//! successive halving over the same model family, using the benchmark's own
//! feature pipelines and datasets.

use lumen_algorithms::{algorithm, AlgorithmId};
use lumen_bench_suite::exp::ExpConfig;
use lumen_ml::metrics::confusion;
use lumen_ml::search::{random_search, sample_spec, successive_halving};
use lumen_synth::DatasetId;
use lumen_util::Rng;

fn main() {
    let cfg = ExpConfig::from_args();
    let runner = cfg.runner();

    println!("Hyperparameter tuning with Lumen (paper §6, implemented)\n");
    println!("Algorithm: A14 (Zeek features + random forest); dataset: F8 train, F7 held out\n");

    // Features through the framework's pipelines + cache.
    let a14 = algorithm(AlgorithmId::A14);
    let train_ds = runner.registry.get(DatasetId::F8);
    let test_ds = runner.registry.get(DatasetId::F7);
    let train = runner.features(&a14, &train_ds).expect("train features");
    let test = runner.features(&a14, &test_ds).expect("test features");
    let train_data = train.to_dataset().expect("dataset");

    let eval = |model: &dyn lumen_ml::model::Classifier| {
        let c = confusion(&model.predict(&test.x), &test.labels);
        (c.precision(), c.recall(), c.f1())
    };

    // Baseline: the catalog's default hyperparameters.
    let trained = a14.train(&train, cfg.seed).expect("baseline train");
    let (p, r, f1) = {
        let c = confusion(&trained.model.predict(&test.x), &test.labels);
        (c.precision(), c.recall(), c.f1())
    };
    println!(
        "{:<24} {:>9} {:>9} {:>9}",
        "method", "precision", "recall", "f1"
    );
    println!(
        "{:<24} {p:>9.3} {r:>9.3} {f1:>9.3}",
        "default (rf t=30 d=12)"
    );

    // Random search over the forest family.
    let rs = random_search(
        |rng: &mut Rng| sample_spec("RandomForest", rng),
        &train_data,
        12,
        3,
        cfg.seed,
    )
    .expect("random search");
    let (p, r, f1) = eval(rs.model.as_ref());
    println!(
        "{:<24} {p:>9.3} {r:>9.3} {f1:>9.3}",
        format!("random search ({})", rs.best_spec.label())
    );

    // Successive halving over the same family.
    let sh = successive_halving(
        |rng: &mut Rng| sample_spec("RandomForest", rng),
        &train_data,
        16,
        3,
        cfg.seed,
    )
    .expect("successive halving");
    let (p, r, f1) = eval(sh.model.as_ref());
    println!(
        "{:<24} {p:>9.3} {r:>9.3} {f1:>9.3}",
        format!("succ. halving ({})", sh.best_spec.label())
    );

    println!("\nrandom-search leaderboard (CV F1 on the training dataset):");
    let mut board = rs.leaderboard.clone();
    board.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (label, score) in board.iter().take(8) {
        println!("  {score:.3}  {label}");
    }

    // --- The hyperparameter that really moves anomaly detectors: the alarm
    // threshold (benign quantile). §5.2 attributes Lumen-vs-reported gaps to
    // exactly this kind of choice; the sweep makes the trade-off visible.
    println!("\nA07 (OCSVM) benign-quantile sweep on F1 (train split -> test split):");
    println!(
        "{:>9} {:>10} {:>9} {:>9}",
        "quantile", "precision", "recall", "f1"
    );
    let a07 = algorithm(AlgorithmId::A07);
    let f4 = runner.registry.get(DatasetId::F1);
    let features = runner.features(&a07, &f4).expect("A07 features");
    // Same split as the runner's same-dataset mode.
    let mut rng = Rng::new(cfg.seed);
    let mut pos: Vec<usize> = (0..features.rows())
        .filter(|&i| features.labels[i] == 1)
        .collect();
    let mut neg: Vec<usize> = (0..features.rows())
        .filter(|&i| features.labels[i] == 0)
        .collect();
    rng.shuffle(&mut pos);
    rng.shuffle(&mut neg);
    let (pc, nc) = ((pos.len() * 7) / 10, (neg.len() * 7) / 10);
    let train_idx: Vec<usize> = pos[..pc].iter().chain(neg[..nc].iter()).copied().collect();
    let test_idx: Vec<usize> = pos[pc..].iter().chain(neg[nc..].iter()).copied().collect();
    let tr = features.select_rows(&train_idx);
    let te = features.select_rows(&test_idx);
    for q in [0.90, 0.95, 0.98, 0.99, 0.995, 1.0] {
        use lumen_ml::model::{Calibrated, Classifier};
        use lumen_ml::ocsvm::{OcsvmConfig, OneClassSvm};
        let mut model = Calibrated::with_quantile(
            OneClassSvm::new(OcsvmConfig {
                seed: cfg.seed,
                ..OcsvmConfig::default()
            }),
            q,
        );
        model
            .fit(&tr.to_dataset().expect("dataset"))
            .expect("ocsvm fit");
        let c = confusion(&model.predict(&te.x), &te.labels);
        println!(
            "{q:>9.3} {:>10.3} {:>9.3} {:>9.3}",
            c.precision(),
            c.recall(),
            c.f1()
        );
    }
    println!(
        "\nlow quantiles alarm often (recall up, precision down); high quantiles\n\
         the reverse — the axis the paper blames for score disagreements (§5.2)."
    );
}
