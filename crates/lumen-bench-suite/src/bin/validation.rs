//! Regenerates §5.2 "Validating the correctness of Lumen".
//!
//! Step 1 — feature validation: Lumen's operation pipeline output is
//! compared bit-for-bit / value-for-value against small *independent*
//! reference implementations written directly over raw packet bytes (the
//! role the original paper gives to the `nprint` tool and the authors'
//! Kitsune/smartdet scripts).
//!
//! Step 2 — score validation: Lumen's measured scores on the benchmark are
//! printed next to the scores the original papers report, mirroring the
//! paper's own partial agreement (close for A10/A14, lower for A07).

use std::sync::Arc;

use lumen_algorithms::{algorithm, AlgorithmId};
use lumen_bench_suite::exp::ExpConfig;
use lumen_bench_suite::DatasetRegistry;
use lumen_core::data::Data;
use lumen_ml::metrics::roc_auc;
use lumen_synth::DatasetId;

/// Reference nPrint encoder: bits straight out of the raw frame bytes,
/// independent of `PacketMeta` and the operation pipeline.
fn reference_nprint_tcp_udp_ipv4(frame: &[u8]) -> Vec<f64> {
    let mut out = Vec::with_capacity(160 + 160 + 64);
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    let has_ip = ethertype == 0x0800;
    let ip = &frame[14..];
    let proto = if has_ip { ip[9] } else { 0 };
    let ihl = if has_ip {
        ((ip[0] & 0x0F) as usize) * 4
    } else {
        0
    };

    let emit = |out: &mut Vec<f64>, bytes: Option<&[u8]>, nbits: usize| match bytes {
        Some(b) => {
            for bit in 0..nbits {
                let byte = bit / 8;
                out.push(if byte < b.len() {
                    f64::from((b[byte] >> (7 - bit % 8)) & 1)
                } else {
                    -1.0
                });
            }
        }
        None => out.extend(std::iter::repeat_n(-1.0, nbits)),
    };

    emit(&mut out, has_ip.then(|| &ip[..20]), 160);
    emit(
        &mut out,
        (has_ip && proto == 6).then(|| &ip[ihl..ihl + 20]),
        160,
    );
    emit(
        &mut out,
        (has_ip && proto == 17).then(|| &ip[ihl..ihl + 8]),
        64,
    );
    out
}

/// Reference Kitsune damped statistics for a single stream of
/// (timestamp, value) pairs at one λ.
fn reference_damped(events: &[(u64, f64)], lambda: f64) -> Vec<(f64, f64, f64)> {
    let (mut w, mut ls, mut ss) = (0.0f64, 0.0f64, 0.0f64);
    let mut last: Option<u64> = None;
    let mut out = Vec::new();
    for &(ts, x) in events {
        if let Some(l) = last {
            let dt = (ts - l) as f64 / 1e6;
            let d = (2.0f64).powf(-lambda * dt);
            w *= d;
            ls *= d;
            ss *= d;
        }
        w += 1.0;
        ls += x;
        ss += x * x;
        last = Some(ts);
        let mean = ls / w;
        out.push((w, mean, (ss / w - mean * mean).abs().sqrt()));
    }
    out
}

fn main() {
    let cfg = ExpConfig::from_args();
    println!("== Step 1: feature validation against independent implementations ==\n");

    // --- nPrint bits -------------------------------------------------------
    let registry = DatasetRegistry::new(cfg.scale, cfg.seed).with_max_packets(cfg.max_packets);
    let ds = registry.get(DatasetId::P2);
    let a02 = algorithm(AlgorithmId::A02);
    let features = a02.extract_features(&ds.source).expect("nprint features");
    let Data::Packets(packets) = &ds.source else {
        panic!()
    };
    let mut checked = 0usize;
    let mut mismatches = 0usize;
    for (i, pkt) in ds.capture.packets.iter().enumerate().take(500) {
        // Skip frames the reference parser would misread (non-IPv4 handled
        // fine, but keep it simple: all frames here are Ethernet).
        let reference = reference_nprint_tcp_udp_ipv4(&pkt.data);
        let lumen_row = features.x.row(i);
        checked += 1;
        if reference
            .iter()
            .zip(lumen_row)
            .any(|(a, b)| (a - b).abs() > 0.0)
        {
            mismatches += 1;
        }
    }
    println!(
        "nPrint (A02) encodings: {checked} packets checked against the reference encoder, {mismatches} mismatches {}",
        if mismatches == 0 { "-> MATCH (paper: features match exactly)" } else { "-> MISMATCH" }
    );
    let _ = packets;

    // --- Kitsune damped stats ----------------------------------------------
    let events: Vec<(u64, f64)> = (0..200)
        .map(|i| (i * 50_000, 60.0 + (i % 7) as f64 * 100.0))
        .collect();
    // Lumen path: DampedStats over a single-group source.
    use lumen_core::data::{DataKind, PacketData};
    use lumen_core::Pipeline;
    use lumen_net::builder::{udp_packet, UdpParams};
    use lumen_net::{LinkType, MacAddr, PacketMeta};
    let metas: Vec<PacketMeta> = events
        .iter()
        .map(|&(ts, len)| {
            let payload = vec![0u8; (len as usize).saturating_sub(42)];
            let pkt = udp_packet(UdpParams {
                src_mac: MacAddr::from_id(1),
                dst_mac: MacAddr::from_id(2),
                src_ip: std::net::Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: std::net::Ipv4Addr::new(10, 0, 0, 2),
                src_port: 1,
                dst_port: 2,
                ttl: 64,
                payload: &payload,
            });
            PacketMeta::parse(LinkType::Ethernet, ts, &pkt).unwrap()
        })
        .collect();
    let n = metas.len();
    let source = Data::Packets(Arc::new(PacketData {
        link: LinkType::Ethernet,
        metas,
        labels: vec![0; n],
        tags: vec![0; n],
    }));
    let template = serde_json::json!([
        {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
        {"func": "DampedStats", "input": ["g"], "output": "features",
         "field": "wire_len", "lambdas": [1.0]}
    ]);
    let p = Pipeline::parse(&template, &[("source", DataKind::Packets)]).unwrap();
    let mut b = std::collections::HashMap::new();
    b.insert("source".into(), source);
    let mut out = p.run(b).unwrap();
    let Data::Table(t) = out.take("features").unwrap() else {
        panic!()
    };
    let wire_events: Vec<(u64, f64)> = events.iter().map(|&(ts, l)| (ts, l)).collect();
    let reference = reference_damped(&wire_events, 1.0);
    let max_err = reference
        .iter()
        .enumerate()
        .map(|(i, &(w, mu, sigma))| {
            (t.x.get(i, 0) - w)
                .abs()
                .max((t.x.get(i, 1) - mu).abs())
                .max((t.x.get(i, 2) - sigma).abs())
        })
        .fold(0.0f64, f64::max);
    println!(
        "Kitsune (A06) damped statistics: max |lumen - reference| = {max_err:.2e} {}",
        if max_err < 1e-9 {
            "-> MATCH (paper: matches the author implementation)"
        } else {
            "-> MISMATCH"
        }
    );

    println!("\n== Step 2: measured vs reported scores ==\n");
    let runner = cfg.runner();
    // A10 (smartdet) on F1 (CICIDS 2017 DoS day): paper reports 99%, the
    // Lumen paper measures 99%.
    match runner.run_same(AlgorithmId::A10, DatasetId::F1) {
        Ok(rows) => println!(
            "A10 on F1: measured precision {:.3} (original paper: 0.99; Lumen paper: 0.99)",
            rows[0].precision
        ),
        Err(e) => println!("A10 on F1: {e}"),
    }
    // A14 (Zeek) mean over the CTU datasets F4-F9: reported 99.9%, Lumen 99.6%.
    let mut vals = Vec::new();
    for ds in [
        DatasetId::F4,
        DatasetId::F5,
        DatasetId::F6,
        DatasetId::F7,
        DatasetId::F8,
        DatasetId::F9,
    ] {
        if let Ok(rows) = runner.run_same(AlgorithmId::A14, ds) {
            vals.push(rows[0].precision);
        }
    }
    if !vals.is_empty() {
        println!(
            "A14 mean over F4-F9: measured precision {:.3} (reported: 0.999; Lumen paper: 0.996)",
            vals.iter().sum::<f64>() / vals.len() as f64
        );
    }
    // A07 AUC on the CICIDS family and the CTU family: the Lumen paper
    // itself measures *below* the reported numbers (66% vs 78.6%, 49.2% vs
    // 75%) and attributes the gap to hyperparameters.
    let auc_over = |sets: &[DatasetId]| -> Option<f64> {
        let mut aucs = Vec::new();
        for &ds_id in sets {
            let algo = algorithm(AlgorithmId::A07);
            let ds = runner.registry.get(ds_id);
            let features = runner.features(&algo, &ds).ok()?;
            let trained = algo.train(&features, cfg.seed).ok()?;
            let scores = trained.model.scores(&features.x);
            aucs.push(roc_auc(&scores, &features.labels));
        }
        Some(aucs.iter().sum::<f64>() / aucs.len() as f64)
    };
    if let Some(a) = auc_over(&[DatasetId::F0, DatasetId::F1, DatasetId::F2]) {
        println!("A07 AUC over F0-F2: measured {a:.3} (reported: 0.786; Lumen paper: 0.66)");
    }
    if let Some(a) = auc_over(&[
        DatasetId::F4,
        DatasetId::F5,
        DatasetId::F6,
        DatasetId::F7,
        DatasetId::F8,
        DatasetId::F9,
    ]) {
        println!("A07 AUC over F4-F9: measured {a:.3} (reported: 0.75; Lumen paper: 0.492)");
    }
    println!(
        "\nAs in the paper, score-level agreement is approximate (hyperparameters,\n\
         splits); feature-level agreement is exact."
    );
}
