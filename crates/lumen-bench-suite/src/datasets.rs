//! Dataset registry: builds, parses, and caches the 15 benchmark datasets.

use std::collections::HashMap;
use std::sync::Arc;

use lumen_core::data::{Data, PacketData};
use lumen_core::par::parse_capture;
use lumen_synth::{
    build_dataset, AttackKind, DatasetId, DatasetSpec, LabelGranularity, LabeledCapture, SynthScale,
};
use parking_lot::Mutex;

/// Maps an attack kind to the opaque row tag used inside the framework
/// (0 is reserved for "benign / none").
pub fn attack_tag(kind: AttackKind) -> u32 {
    kind as u32 + 1
}

/// Inverse of [`attack_tag`].
pub fn attack_from_tag(tag: u32) -> Option<AttackKind> {
    if tag == 0 {
        return None;
    }
    AttackKind::ALL.get(tag as usize - 1).copied()
}

/// One materialized benchmark dataset: capture + parsed packet source.
pub struct BenchDataset {
    /// Dataset identity and metadata.
    pub spec: DatasetSpec,
    /// The raw labeled capture.
    pub capture: LabeledCapture,
    /// The framework packet source (parsed, labeled, tagged).
    pub source: Data,
}

impl BenchDataset {
    /// Builds a dataset and its packet source. Packet-level datasets are
    /// deterministically stride-subsampled to `max_packets` *before* feature
    /// extraction: packet-granularity algorithms (nPrint especially) carry
    /// hundreds of features per packet, and the paper itself notes that
    /// per-packet pipelines are the scalability pain point (§4.2).
    pub fn build(id: DatasetId, scale: SynthScale, seed: u64, max_packets: usize) -> BenchDataset {
        let capture = build_dataset(id, scale, seed);
        let spec = id.spec();
        let capture = if spec.granularity == LabelGranularity::Packet && capture.len() > max_packets
        {
            let step = capture.len().div_ceil(max_packets);
            LabeledCapture {
                link: capture.link,
                packets: capture.packets.iter().step_by(step).cloned().collect(),
                labels: capture.labels.iter().step_by(step).copied().collect(),
                granularity: capture.granularity,
            }
        } else {
            capture
        };
        let (metas, _skipped) = parse_capture(capture.link, &capture.packets, 4);
        let labels: Vec<u8> = capture
            .labels
            .iter()
            .map(|l| u8::from(l.malicious))
            .collect();
        let tags: Vec<u32> = capture
            .labels
            .iter()
            .map(|l| l.attack.map_or(0, attack_tag))
            .collect();
        let source = Data::Packets(Arc::new(PacketData {
            link: capture.link,
            metas,
            labels,
            tags,
        }));
        BenchDataset {
            spec,
            capture,
            source,
        }
    }

    /// Short dataset code ("F0").
    pub fn code(&self) -> &'static str {
        self.spec.id.code()
    }

    /// True when labels are per-packet.
    pub fn is_packet_level(&self) -> bool {
        self.spec.granularity == LabelGranularity::Packet
    }
}

/// Lazily-built, thread-safe registry of the benchmark datasets.
pub struct DatasetRegistry {
    scale: SynthScale,
    seed: u64,
    max_packets: usize,
    cache: Mutex<HashMap<DatasetId, Arc<BenchDataset>>>,
}

impl DatasetRegistry {
    /// Creates a registry for a generation scale + base seed. Each dataset
    /// derives its own seed from the base, so different datasets are
    /// independent draws.
    pub fn new(scale: SynthScale, seed: u64) -> DatasetRegistry {
        DatasetRegistry {
            scale,
            seed,
            max_packets: 4000,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the packet-dataset subsample cap.
    pub fn with_max_packets(mut self, max: usize) -> DatasetRegistry {
        self.max_packets = max;
        self
    }

    /// Gets (building on first use) a dataset.
    pub fn get(&self, id: DatasetId) -> Arc<BenchDataset> {
        if let Some(d) = self.cache.lock().get(&id) {
            return Arc::clone(d);
        }
        let built = Arc::new(BenchDataset::build(
            id,
            self.scale,
            self.seed ^ ((0xD5 + id as u64) * 0x9E37_79B9),
            self.max_packets,
        ));
        self.cache.lock().entry(id).or_insert(built).clone()
    }

    /// All connection-level datasets.
    pub fn connection_datasets(&self) -> Vec<Arc<BenchDataset>> {
        DatasetId::CONNECTION
            .iter()
            .map(|&id| self.get(id))
            .collect()
    }

    /// All packet-level datasets.
    pub fn packet_datasets(&self) -> Vec<Arc<BenchDataset>> {
        DatasetId::PACKET.iter().map(|&id| self.get(id)).collect()
    }

    /// Every dataset.
    pub fn all(&self) -> Vec<Arc<BenchDataset>> {
        DatasetId::ALL.iter().map(|&id| self.get(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for kind in AttackKind::ALL {
            assert_eq!(attack_from_tag(attack_tag(kind)), Some(kind));
        }
        assert_eq!(attack_from_tag(0), None);
        assert_eq!(attack_from_tag(999), None);
    }

    #[test]
    fn registry_caches() {
        let reg = DatasetRegistry::new(SynthScale::small(), 1);
        let a = reg.get(DatasetId::F5);
        let b = reg.get(DatasetId::F5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn packet_dataset_is_subsampled() {
        let reg = DatasetRegistry::new(SynthScale::small(), 2).with_max_packets(500);
        let d = reg.get(DatasetId::P2);
        assert!(d.capture.len() <= 500);
        // Subsample retains both classes.
        assert!(d.capture.malicious_fraction() > 0.0);
        assert!(d.capture.malicious_fraction() < 1.0);
    }

    #[test]
    fn connection_dataset_not_subsampled() {
        let reg = DatasetRegistry::new(SynthScale::small(), 3).with_max_packets(100);
        let d = reg.get(DatasetId::F0);
        assert!(d.capture.len() > 100);
    }

    #[test]
    fn source_has_parsed_metas() {
        let reg = DatasetRegistry::new(SynthScale::small(), 4);
        let d = reg.get(DatasetId::F4);
        let Data::Packets(p) = &d.source else {
            panic!()
        };
        assert_eq!(p.len(), d.capture.len());
        assert!(p.labels.contains(&1));
    }
}
