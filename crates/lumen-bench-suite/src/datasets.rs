//! Dataset registry: builds, parses, and caches the 15 benchmark datasets.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use lumen_core::data::{Data, PacketData};
use lumen_core::par::parse_capture_indexed;
use lumen_net::pcap::{from_bytes_recovering, to_bytes, CaptureStats, PcapLimits};
use lumen_synth::{
    build_dataset, AttackKind, ChaosConfig, ChaosPcap, DatasetId, DatasetSpec, Label,
    LabelGranularity, LabeledCapture, SynthScale,
};
use parking_lot::Mutex;

use crate::journal::IngestEntry;

/// Maps an attack kind to the opaque row tag used inside the framework
/// (0 is reserved for "benign / none").
pub fn attack_tag(kind: AttackKind) -> u32 {
    kind as u32 + 1
}

/// Inverse of [`attack_tag`].
pub fn attack_from_tag(tag: u32) -> Option<AttackKind> {
    if tag == 0 {
        return None;
    }
    AttackKind::ALL.get(tag as usize - 1).copied()
}

/// One materialized benchmark dataset: capture + parsed packet source.
pub struct BenchDataset {
    /// Dataset identity and metadata.
    pub spec: DatasetSpec,
    /// The raw labeled capture.
    pub capture: LabeledCapture,
    /// The framework packet source (parsed, labeled, tagged).
    pub source: Data,
    /// What ingestion quarantined between raw bytes and `source` (all-zero
    /// counters for clean captures).
    pub ingest: IngestEntry,
}

impl BenchDataset {
    /// Builds a dataset and its packet source. Packet-level datasets are
    /// deterministically stride-subsampled to `max_packets` *before* feature
    /// extraction: packet-granularity algorithms (nPrint especially) carry
    /// hundreds of features per packet, and the paper itself notes that
    /// per-packet pipelines are the scalability pain point (§4.2).
    pub fn build(id: DatasetId, scale: SynthScale, seed: u64, max_packets: usize) -> BenchDataset {
        Self::build_with_chaos(id, scale, seed, max_packets, None)
    }

    /// Like [`BenchDataset::build`], optionally round-tripping the capture
    /// through the seeded [`ChaosPcap`] corruption engine and the
    /// recovering pcap reader first. Labels are realigned to the surviving
    /// records by timestamp; records whose timestamp was damaged (or that
    /// duplicate one already matched) fall back to benign and are counted
    /// as `label_misses` in the ingest ledger.
    pub fn build_with_chaos(
        id: DatasetId,
        scale: SynthScale,
        seed: u64,
        max_packets: usize,
        chaos: Option<ChaosConfig>,
    ) -> BenchDataset {
        let capture = build_dataset(id, scale, seed);
        let spec = id.spec();
        let capture = if spec.granularity == LabelGranularity::Packet && capture.len() > max_packets
        {
            let step = capture.len().div_ceil(max_packets);
            LabeledCapture {
                link: capture.link,
                packets: capture.packets.iter().step_by(step).cloned().collect(),
                labels: capture.labels.iter().step_by(step).copied().collect(),
                granularity: capture.granularity,
            }
        } else {
            capture
        };

        let mut ingest = IngestEntry {
            dataset: spec.id.code().to_string(),
            ..IngestEntry::default()
        };
        let capture = match chaos {
            Some(cfg) => corrupt_and_recover(capture, seed, cfg, &mut ingest),
            None => capture,
        };

        // Indexed parse: quarantined frames drop out of `metas`, and `kept`
        // tells us which labels survive with them, so labels stay aligned
        // even when the decoder rejects frames mid-capture.
        let (metas, kept, stats) = parse_capture_indexed(capture.link, &capture.packets, 4);
        ingest.frames = capture.packets.len();
        ingest.parsed = metas.len();
        ingest.link_errors = stats.link_errors;
        ingest.net_errors = stats.net_errors;
        ingest.transport_errors = stats.transport_errors;
        let labels: Vec<u8> = kept
            .iter()
            .map(|&i| u8::from(capture.labels[i as usize].malicious))
            .collect();
        let tags: Vec<u32> = kept
            .iter()
            .map(|&i| capture.labels[i as usize].attack.map_or(0, attack_tag))
            .collect();
        let source = Data::Packets(Arc::new(PacketData {
            link: capture.link,
            metas,
            labels,
            tags,
        }));
        BenchDataset {
            spec,
            capture,
            source,
            ingest,
        }
    }

    /// Short dataset code ("F0").
    pub fn code(&self) -> &'static str {
        self.spec.id.code()
    }

    /// True when ingestion dropped or flagged anything for this dataset.
    pub fn ingest_was_noisy(&self) -> bool {
        self.ingest.total_quarantined() > 0
            || self.ingest.label_misses > 0
            || self.ingest.truncated_tail
    }

    /// True when labels are per-packet.
    pub fn is_packet_level(&self) -> bool {
        self.spec.granularity == LabelGranularity::Packet
    }
}

/// Serializes a capture, damages it with [`ChaosPcap`], and re-reads it with
/// the recovering pcap reader, realigning labels to the surviving records by
/// timestamp. Capture-level stats and label misses land in `ingest`.
fn corrupt_and_recover(
    capture: LabeledCapture,
    seed: u64,
    cfg: ChaosConfig,
    ingest: &mut IngestEntry,
) -> LabeledCapture {
    let bytes = to_bytes(capture.link, &capture.packets);
    let (dirty, _report) = ChaosPcap::new(seed, cfg).corrupt(&bytes);
    let Ok(rec) = from_bytes_recovering(&dirty, PcapLimits::default()) else {
        // Chaos never touches the global header, so this is unreachable in
        // practice; keep the clean capture rather than panic if it happens.
        return capture;
    };
    record_capture_stats(&rec.stats, ingest);

    // Timestamp multimap: generated captures may hold equal timestamps, so
    // each match consumes one slot. Damaged timestamps (and any surplus
    // duplicates) miss and fall back to benign.
    let mut by_ts: HashMap<u64, VecDeque<usize>> = HashMap::new();
    for (i, p) in capture.packets.iter().enumerate() {
        by_ts.entry(p.ts_us).or_default().push_back(i);
    }
    let mut labels = Vec::with_capacity(rec.packets.len());
    for p in &rec.packets {
        match by_ts.get_mut(&p.ts_us).and_then(VecDeque::pop_front) {
            Some(i) => labels.push(capture.labels[i]),
            None => {
                ingest.label_misses += 1;
                labels.push(Label::BENIGN);
            }
        }
    }
    LabeledCapture {
        link: rec.link,
        packets: rec.packets,
        labels,
        granularity: capture.granularity,
    }
}

/// Copies the recovering reader's capture-level counters into the ledger.
fn record_capture_stats(stats: &CaptureStats, ingest: &mut IngestEntry) {
    ingest.records_dropped = stats.dropped_records;
    ingest.resyncs = stats.resyncs;
    ingest.bytes_skipped = stats.bytes_skipped;
    ingest.ts_regressions = stats.ts_regressions;
    ingest.truncated_tail = stats.truncated_tail;
}

/// Lazily-built, thread-safe registry of the benchmark datasets.
pub struct DatasetRegistry {
    scale: SynthScale,
    seed: u64,
    max_packets: usize,
    chaos: Option<ChaosConfig>,
    cache: Mutex<HashMap<DatasetId, Arc<BenchDataset>>>,
}

impl DatasetRegistry {
    /// Creates a registry for a generation scale + base seed. Each dataset
    /// derives its own seed from the base, so different datasets are
    /// independent draws.
    pub fn new(scale: SynthScale, seed: u64) -> DatasetRegistry {
        DatasetRegistry {
            scale,
            seed,
            max_packets: 4000,
            chaos: None,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the packet-dataset subsample cap.
    pub fn with_max_packets(mut self, max: usize) -> DatasetRegistry {
        self.max_packets = max;
        self
    }

    /// Corrupts every dataset's capture with the seeded chaos engine before
    /// ingestion (the `--chaos` robustness mode).
    pub fn with_chaos(mut self, cfg: ChaosConfig) -> DatasetRegistry {
        self.chaos = Some(cfg);
        self
    }

    /// The generation seed a dataset derives from the registry's base seed.
    /// Exposed so the matrix audit (rule A203) can verify that supposedly
    /// independent datasets really draw from distinct streams.
    pub fn dataset_seed(&self, id: DatasetId) -> u64 {
        self.seed ^ ((0xD5 + id as u64) * 0x9E37_79B9)
    }

    /// Gets (building on first use) a dataset.
    pub fn get(&self, id: DatasetId) -> Arc<BenchDataset> {
        if let Some(d) = self.cache.lock().get(&id) {
            return Arc::clone(d);
        }
        let built = Arc::new(BenchDataset::build_with_chaos(
            id,
            self.scale,
            self.dataset_seed(id),
            self.max_packets,
            self.chaos,
        ));
        self.cache.lock().entry(id).or_insert(built).clone()
    }

    /// Capture time window `(first_ts_us, last_ts_us)`, building the
    /// dataset if needed. Captures are emitted time-sorted, so the ends are
    /// the extremes; `None` for an empty capture.
    pub fn time_window_us(&self, id: DatasetId) -> Option<(u64, u64)> {
        let d = self.get(id);
        let first = d.capture.packets.first()?.ts_us;
        let last = d.capture.packets.last()?.ts_us;
        Some((first, last))
    }

    /// Ingestion ledgers of every dataset built so far, in dataset-code
    /// order — what the run journal records for the whole matrix.
    pub fn ingest_entries(&self) -> Vec<IngestEntry> {
        let mut entries: Vec<IngestEntry> = self
            .cache
            .lock()
            .values()
            .map(|d| d.ingest.clone())
            .collect();
        entries.sort_by(|a, b| a.dataset.cmp(&b.dataset));
        entries
    }

    /// All connection-level datasets.
    pub fn connection_datasets(&self) -> Vec<Arc<BenchDataset>> {
        DatasetId::CONNECTION
            .iter()
            .map(|&id| self.get(id))
            .collect()
    }

    /// All packet-level datasets.
    pub fn packet_datasets(&self) -> Vec<Arc<BenchDataset>> {
        DatasetId::PACKET.iter().map(|&id| self.get(id)).collect()
    }

    /// Every dataset.
    pub fn all(&self) -> Vec<Arc<BenchDataset>> {
        DatasetId::ALL.iter().map(|&id| self.get(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for kind in AttackKind::ALL {
            assert_eq!(attack_from_tag(attack_tag(kind)), Some(kind));
        }
        assert_eq!(attack_from_tag(0), None);
        assert_eq!(attack_from_tag(999), None);
    }

    #[test]
    fn registry_caches() {
        let reg = DatasetRegistry::new(SynthScale::small(), 1);
        let a = reg.get(DatasetId::F5);
        let b = reg.get(DatasetId::F5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn packet_dataset_is_subsampled() {
        let reg = DatasetRegistry::new(SynthScale::small(), 2).with_max_packets(500);
        let d = reg.get(DatasetId::P2);
        assert!(d.capture.len() <= 500);
        // Subsample retains both classes.
        assert!(d.capture.malicious_fraction() > 0.0);
        assert!(d.capture.malicious_fraction() < 1.0);
    }

    #[test]
    fn connection_dataset_not_subsampled() {
        let reg = DatasetRegistry::new(SynthScale::small(), 3).with_max_packets(100);
        let d = reg.get(DatasetId::F0);
        assert!(d.capture.len() > 100);
    }

    #[test]
    fn source_has_parsed_metas() {
        let reg = DatasetRegistry::new(SynthScale::small(), 4);
        let d = reg.get(DatasetId::F4);
        let Data::Packets(p) = &d.source else {
            panic!()
        };
        assert_eq!(p.len(), d.capture.len());
        assert!(p.labels.contains(&1));
    }

    #[test]
    fn clean_build_has_silent_ingest_ledger() {
        let reg = DatasetRegistry::new(SynthScale::small(), 5);
        let d = reg.get(DatasetId::F1);
        assert!(!d.ingest_was_noisy(), "{:?}", d.ingest);
        assert_eq!(d.ingest.frames, d.ingest.parsed);
        assert_eq!(d.ingest.dataset, "F1");
    }

    #[test]
    fn chaos_build_survives_and_accounts() {
        let cfg = ChaosConfig {
            fault_rate: 0.2,
            truncate_tail: true,
        };
        let reg = DatasetRegistry::new(SynthScale::small(), 6).with_chaos(cfg);
        let d = reg.get(DatasetId::F0);
        // A heavily damaged capture must still yield a usable source...
        let Data::Packets(p) = &d.source else {
            panic!()
        };
        assert!(p.len() > 0, "chaos must not destroy the whole dataset");
        assert_eq!(p.len(), p.labels.len());
        assert_eq!(p.len(), p.tags.len());
        // ...and the damage must be visible in the ledger.
        assert!(d.ingest_was_noisy(), "{:?}", d.ingest);
        assert!(d.ingest.frames >= d.ingest.parsed);
        let entries = reg.ingest_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0], d.ingest);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let cfg = ChaosConfig {
            fault_rate: 0.15,
            truncate_tail: true,
        };
        let a = BenchDataset::build_with_chaos(DatasetId::F2, SynthScale::small(), 9, 4000, Some(cfg));
        let b = BenchDataset::build_with_chaos(DatasetId::F2, SynthScale::small(), 9, 4000, Some(cfg));
        assert_eq!(a.ingest, b.ingest);
        assert_eq!(a.capture.len(), b.capture.len());
    }
}
