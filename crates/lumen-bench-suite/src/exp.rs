//! Shared scaffolding for the experiment binaries (one per paper artifact).

use std::sync::Arc;

use lumen_algorithms::AlgorithmId;
use lumen_synth::{DatasetId, SynthScale};

use crate::datasets::DatasetRegistry;
use crate::runner::{FaultKind, FaultSpec, RunBudget, RunConfig, Runner};

/// Command-line configuration shared by every experiment binary.
///
/// Flags: `--fast` (small datasets for smoke runs), `--strict` (exit
/// nonzero when any journaled task genuinely failed), `--chaos` (corrupt
/// every capture with the seeded fault-injection engine before ingestion),
/// `--seed N`, `--threads N`, `--kernel-threads N`,
/// `--kernel-backend scalar|auto`, `--flow-shards N`,
/// `--devices N` (synth device-roster override; counts above 245 spread
/// past the home /24), `--duration SECONDS`,
/// `--max-packets N`; supervision flags `--task-deadline-ms N`,
/// `--max-attempts N`, `--backoff-ms N`, `--resume JOURNAL.jsonl`, and
/// `--fault ALGO:DATASET:KIND[:N]` (kinds: error, panic, hang:MS, slow:MS,
/// transient:N).
#[derive(Debug, Clone)]
pub struct ExpConfig {
    pub scale: SynthScale,
    pub seed: u64,
    pub threads: usize,
    /// ML compute-kernel threads per matrix task (0 = auto share).
    pub kernel_threads: usize,
    /// SIMD dispatch mode for ML kernels (`--kernel-backend scalar|auto`).
    /// Scalar pins the portable path for A/B runs; predictions are
    /// bit-identical either way.
    pub kernel_backend: lumen_ml::kernels::BackendMode,
    /// Flow-tracker shards per `FlowAssemble` (0 = auto share). Sharding
    /// never changes records, features, or predictions — only throughput.
    pub flow_shards: usize,
    pub max_packets: usize,
    /// When true, a non-skip failure in the run journal flips the process
    /// exit code (faithfulness skips stay non-fatal).
    pub strict: bool,
    /// When true, captures are chaos-corrupted before ingestion and the
    /// journal records what the hardened decode path quarantined.
    pub chaos: bool,
    /// Per-attempt task deadline, ms (0 = unlimited).
    pub task_deadline_ms: u64,
    /// Maximum attempts per task (transient failures/timeouts retry).
    pub max_attempts: u32,
    /// Base retry backoff, ms (doubles per attempt, capped).
    pub backoff_ms: u64,
    /// Path of a prior run's `{name}_journal.jsonl` write-ahead log to
    /// resume from: completed tasks are replayed, the rest re-run.
    pub resume: Option<String>,
    /// Injected fault (`--fault`), for supervision testing end to end.
    pub fault: Option<FaultSpec>,
    /// When true (`--audit`), the experiment-integrity audit (DESIGN.md
    /// §4h) runs over the planned matrix before execution; findings are
    /// journaled, written to `AUDIT_report.json`, and any error-severity
    /// finding flips the process exit code (deny-by-severity).
    pub audit: bool,
}

impl ExpConfig {
    /// The defaults every experiment binary starts from.
    pub fn defaults() -> ExpConfig {
        ExpConfig {
            scale: SynthScale::default(),
            seed: 7,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            kernel_threads: 0,
            kernel_backend: lumen_ml::kernels::BackendMode::Auto,
            flow_shards: 0,
            max_packets: 4000,
            strict: false,
            chaos: false,
            task_deadline_ms: 0,
            max_attempts: 1,
            backoff_ms: 100,
            resume: None,
            fault: None,
            audit: false,
        }
    }

    /// Parses `std::env::args`; unknown flags abort with usage.
    pub fn from_args() -> ExpConfig {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_args(&args) {
            Ok(cfg) => cfg,
            Err(why) => {
                eprintln!(
                    "{why}; known flags: --fast --strict --chaos --audit --seed N --threads N --kernel-threads N --kernel-backend scalar|auto --flow-shards N --devices N --duration S --max-packets N \
                     --task-deadline-ms N --max-attempts N --backoff-ms N --resume JOURNAL.jsonl --fault ALGO:DATASET:KIND[:N]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses a flag list (testable core of [`ExpConfig::from_args`]).
    pub fn parse_args(args: &[String]) -> Result<ExpConfig, String> {
        let mut cfg = Self::defaults();
        let mut i = 0;
        let value = |i: &mut usize| -> Result<&str, String> {
            *i += 1;
            args.get(*i)
                .map(String::as_str)
                .ok_or_else(|| format!("flag {} needs a value", args[*i - 1]))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--fast" => {
                    cfg.scale = SynthScale::small();
                    cfg.max_packets = 1500;
                }
                "--strict" => {
                    cfg.strict = true;
                }
                "--chaos" => {
                    cfg.chaos = true;
                }
                "--audit" => {
                    cfg.audit = true;
                }
                "--seed" => {
                    cfg.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                }
                "--threads" => {
                    cfg.threads = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--kernel-threads" => {
                    cfg.kernel_threads = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--kernel-threads: {e}"))?;
                }
                "--kernel-backend" => {
                    let v = value(&mut i)?;
                    cfg.kernel_backend =
                        lumen_ml::kernels::BackendMode::parse(v).ok_or_else(|| {
                            format!("--kernel-backend: {v:?} (want \"scalar\" or \"auto\")")
                        })?;
                }
                "--flow-shards" => {
                    cfg.flow_shards = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--flow-shards: {e}"))?;
                }
                "--devices" => {
                    cfg.scale.devices = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--devices: {e}"))?;
                }
                "--duration" => {
                    cfg.scale.duration_s = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?;
                }
                "--max-packets" => {
                    cfg.max_packets = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--max-packets: {e}"))?;
                }
                "--task-deadline-ms" => {
                    cfg.task_deadline_ms = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--task-deadline-ms: {e}"))?;
                }
                "--max-attempts" => {
                    cfg.max_attempts = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--max-attempts: {e}"))?;
                    if cfg.max_attempts == 0 {
                        return Err("--max-attempts must be >= 1".into());
                    }
                }
                "--backoff-ms" => {
                    cfg.backoff_ms = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--backoff-ms: {e}"))?;
                }
                "--resume" => {
                    cfg.resume = Some(value(&mut i)?.to_string());
                }
                "--fault" => {
                    cfg.fault = Some(parse_fault(value(&mut i)?)?);
                }
                other => return Err(format!("unknown flag {other}")),
            }
            i += 1;
        }
        Ok(cfg)
    }

    /// Builds the standard runner (per-attack rows enabled).
    pub fn runner(&self) -> Runner {
        let mut registry =
            DatasetRegistry::new(self.scale, self.seed).with_max_packets(self.max_packets);
        if self.chaos {
            registry = registry.with_chaos(lumen_synth::ChaosConfig::default());
        }
        let registry = Arc::new(registry);
        Runner::new(
            registry,
            RunConfig {
                train_frac: 0.7,
                seed: self.seed,
                threads: self.threads,
                kernel_threads: self.kernel_threads,
                kernel_backend: self.kernel_backend,
                per_attack: true,
                fault: self.fault,
                budget: RunBudget {
                    task_deadline_ms: self.task_deadline_ms,
                    max_attempts: self.max_attempts,
                    backoff_ms: self.backoff_ms,
                },
                audit: self.audit,
                flow_shards: self.flow_shards,
            },
        )
    }

    /// Builds the supervised runner for the matrix binary `name`: the
    /// standard runner plus crash-safe checkpointing. The write-ahead log
    /// lands at `$LUMEN_RESULTS_DIR/{name}_journal.jsonl` (or appends to
    /// the `--resume` journal when no results dir is set); `--resume`
    /// replays completed tasks from a prior run's log.
    pub fn matrix_runner(&self, name: &str) -> Runner {
        let mut runner = self.runner();
        if let Some(path) = &self.resume {
            runner = runner
                .with_resume_from(std::path::Path::new(path))
                .unwrap_or_else(|e| {
                    eprintln!("--resume {path}: {e}");
                    std::process::exit(2);
                });
        }
        let wal_path = std::env::var("LUMEN_RESULTS_DIR")
            .ok()
            .map(|dir| std::path::PathBuf::from(dir).join(format!("{name}_journal.jsonl")))
            .or_else(|| self.resume.as_ref().map(std::path::PathBuf::from));
        if let Some(path) = wal_path {
            // A fresh (non-resume) run starts a fresh log: stale records
            // from an earlier run must not leak into a later `--resume`.
            let resuming_same_file = self
                .resume
                .as_ref()
                .is_some_and(|r| std::path::Path::new(r) == path.as_path());
            if !resuming_same_file {
                std::fs::remove_file(&path).ok();
            }
            runner = runner.with_wal_path(&path).unwrap_or_else(|e| {
                eprintln!("cannot open write-ahead log {}: {e}", path.display());
                std::process::exit(2);
            });
        }
        runner
    }
}

fn algo_by_code(code: &str) -> Result<AlgorithmId, String> {
    AlgorithmId::ALL
        .iter()
        .copied()
        .find(|a| a.code() == code)
        .ok_or_else(|| format!("unknown algorithm code {code:?}"))
}

fn dataset_by_code(code: &str) -> Result<DatasetId, String> {
    DatasetId::ALL
        .iter()
        .copied()
        .find(|d| d.code() == code)
        .ok_or_else(|| format!("unknown dataset code {code:?}"))
}

/// Parses a `--fault` spec: `ALGO:DATASET:KIND[:N]`, e.g. `A14:F4:error`,
/// `A14:F4:hang:60000`, `A14:F4:transient:2`.
pub fn parse_fault(spec: &str) -> Result<FaultSpec, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() < 3 {
        return Err(format!(
            "--fault needs ALGO:DATASET:KIND[:N], got {spec:?}"
        ));
    }
    let algo = algo_by_code(parts[0])?;
    let dataset = dataset_by_code(parts[1])?;
    let num = |what: &str| -> Result<u64, String> {
        parts
            .get(3)
            .ok_or_else(|| format!("--fault kind {what} needs a value, e.g. {what}:500"))?
            .parse()
            .map_err(|e| format!("--fault {what} value: {e}"))
    };
    let kind = match parts[2] {
        "error" => FaultKind::Error,
        "panic" => FaultKind::Panic,
        "hang" => FaultKind::Hang { ms: num("hang")? },
        "slow" => FaultKind::Slow { ms: num("slow")? },
        "transient" => FaultKind::Transient {
            fail_first_n: num("transient")? as u32,
        },
        other => {
            return Err(format!(
                "unknown fault kind {other:?} (error, panic, hang:MS, slow:MS, transient:N)"
            ))
        }
    };
    Ok(FaultSpec {
        algo,
        dataset,
        kind,
    })
}

/// The packet-granularity published algorithms (A00–A06).
pub fn packet_algos() -> Vec<AlgorithmId> {
    vec![
        AlgorithmId::A00,
        AlgorithmId::A01,
        AlgorithmId::A02,
        AlgorithmId::A03,
        AlgorithmId::A04,
        AlgorithmId::A05,
        AlgorithmId::A06,
    ]
}

/// The flow/connection-granularity published algorithms (A07–A15).
pub fn conn_algos() -> Vec<AlgorithmId> {
    vec![
        AlgorithmId::A07,
        AlgorithmId::A08,
        AlgorithmId::A09,
        AlgorithmId::A10,
        AlgorithmId::A11,
        AlgorithmId::A12,
        AlgorithmId::A13,
        AlgorithmId::A14,
        AlgorithmId::A15,
    ]
}

/// All published algorithms.
pub fn published_algos() -> Vec<AlgorithmId> {
    AlgorithmId::PUBLISHED.to_vec()
}

/// All dataset ids.
pub fn all_datasets() -> Vec<DatasetId> {
    DatasetId::ALL.to_vec()
}

/// Persists a result store as JSON + CSV when `LUMEN_RESULTS_DIR` is set —
/// the query-friendly format §3.3 promises, available from every
/// experiment binary.
pub fn maybe_persist(store: &crate::store::ResultStore, name: &str) {
    let Ok(dir) = std::env::var("LUMEN_RESULTS_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let json = dir.join(format!("{name}.json"));
    let csv = dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&json, store.to_json()) {
        eprintln!("cannot write {}: {e}", json.display());
    }
    if let Err(e) = std::fs::write(&csv, store.to_csv()) {
        eprintln!("cannot write {}: {e}", csv.display());
    }
    eprintln!(
        "[results persisted to {} and {}]",
        json.display(),
        csv.display()
    );
}

/// Persists a run journal as `{name}_journal.json` when
/// `LUMEN_RESULTS_DIR` is set — the accounting sidecar of every persisted
/// result store.
pub fn maybe_persist_journal(journal: &crate::journal::RunJournal, name: &str) {
    let Ok(dir) = std::env::var("LUMEN_RESULTS_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}_journal.json"));
    if let Err(e) = std::fs::write(&path, journal.to_json()) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        eprintln!("[run journal persisted to {}]", path.display());
    }
}

/// Persists the machine-readable audit report as
/// `{name}_AUDIT_report.json` when `LUMEN_RESULTS_DIR` is set.
pub fn maybe_persist_audit(report: &crate::audit::AuditReport, name: &str) {
    let Ok(dir) = std::env::var("LUMEN_RESULTS_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}_AUDIT_report.json"));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        eprintln!("[audit report persisted to {}]", path.display());
    }
}

/// Standard end-of-experiment accounting: persists the store and journal
/// (when `LUMEN_RESULTS_DIR` is set), prints the journal summary with the
/// runner's cache hit ratio, and — under `--strict` — exits nonzero when
/// any task genuinely failed. Faithfulness skips never flip the exit code.
/// Under `--audit`, the journaled audit findings are also written out as
/// `{name}_AUDIT_report.json` and any error-severity finding is fatal
/// (deny-by-severity; warnings never flip the exit code).
pub fn finish_run(
    cfg: &ExpConfig,
    runner: &Runner,
    store: &crate::store::ResultStore,
    journal: &crate::journal::RunJournal,
    name: &str,
) {
    maybe_persist(store, name);
    maybe_persist_journal(journal, name);
    let (hits, misses) = runner.cache.stats();
    eprintln!("\n{}", journal.summary(hits, misses));
    let ops = runner.ops_profile.lock();
    if !ops.is_empty() {
        eprintln!("ops-level profile (extraction pipelines, aggregated):");
        for (op, st) in ops.top_by_time(5) {
            eprintln!(
                "  {:<18} {:>6} calls {:>12} us {:>14} bytes",
                op, st.calls, st.micros, st.output_bytes
            );
        }
    }
    if cfg.audit {
        let report = crate::audit::AuditReport {
            findings: journal.audit().to_vec(),
        };
        maybe_persist_audit(&report, name);
        if report.has_errors() {
            eprintln!(
                "--audit: {} integrity error(s) in the experiment plan; exiting nonzero",
                report.error_count()
            );
            std::process::exit(1);
        }
    }
    if cfg.strict && journal.has_failures() {
        eprintln!(
            "--strict: {} task(s) genuinely failed; exiting nonzero",
            journal.failed_count()
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpConfig, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        ExpConfig::parse_args(&owned)
    }

    #[test]
    fn defaults_without_flags() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.max_packets, 4000);
    }

    #[test]
    fn fast_shrinks_scale() {
        let cfg = parse(&["--fast"]).unwrap();
        assert_eq!(cfg.max_packets, 1500);
        assert!(cfg.scale.duration_s < ExpConfig::defaults().scale.duration_s);
    }

    #[test]
    fn flags_with_values() {
        let cfg = parse(&["--seed", "42", "--threads", "2", "--duration", "12.5"]).unwrap();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.threads, 2);
        assert!((cfg.scale.duration_s - 12.5).abs() < 1e-9);
    }

    #[test]
    fn kernel_threads_flag_is_parsed() {
        assert_eq!(parse(&[]).unwrap().kernel_threads, 0);
        let cfg = parse(&["--kernel-threads", "3"]).unwrap();
        assert_eq!(cfg.kernel_threads, 3);
        assert!(parse(&["--kernel-threads", "x"]).is_err());
    }

    #[test]
    fn kernel_backend_flag_is_parsed() {
        use lumen_ml::kernels::BackendMode;
        assert_eq!(parse(&[]).unwrap().kernel_backend, BackendMode::Auto);
        let cfg = parse(&["--kernel-backend", "scalar"]).unwrap();
        assert_eq!(cfg.kernel_backend, BackendMode::ForceScalar);
        let cfg = parse(&["--kernel-backend", "auto"]).unwrap();
        assert_eq!(cfg.kernel_backend, BackendMode::Auto);
        assert!(parse(&["--kernel-backend", "avx2"]).is_err(), "only scalar/auto are pinnable");
        assert!(parse(&["--kernel-backend"]).is_err());
    }

    #[test]
    fn flow_shards_and_devices_flags_are_parsed() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg.flow_shards, 0, "auto by default");
        assert_eq!(cfg.scale.devices, 0, "recipe default by default");
        let cfg = parse(&["--flow-shards", "4", "--devices", "1000000"]).unwrap();
        assert_eq!(cfg.flow_shards, 4);
        assert_eq!(cfg.scale.devices, 1_000_000);
        assert!(parse(&["--flow-shards", "x"]).is_err());
        assert!(parse(&["--devices"]).is_err());
    }

    #[test]
    fn unknown_flag_and_missing_value_error() {
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
    }

    #[test]
    fn strict_flag_is_parsed() {
        assert!(!parse(&[]).unwrap().strict);
        assert!(parse(&["--strict"]).unwrap().strict);
        assert!(parse(&["--fast", "--strict"]).unwrap().strict);
    }

    #[test]
    fn audit_flag_is_parsed() {
        assert!(!parse(&[]).unwrap().audit);
        assert!(parse(&["--audit"]).unwrap().audit);
        let cfg = parse(&["--fast", "--strict", "--audit"]).unwrap();
        assert!(cfg.audit && cfg.strict);
    }

    #[test]
    fn chaos_flag_is_parsed() {
        assert!(!parse(&[]).unwrap().chaos);
        assert!(parse(&["--chaos"]).unwrap().chaos);
        assert!(parse(&["--fast", "--chaos", "--strict"]).unwrap().chaos);
    }

    #[test]
    fn supervision_flags_are_parsed() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg.task_deadline_ms, 0);
        assert_eq!(cfg.max_attempts, 1);
        assert!(cfg.resume.is_none());
        let cfg = parse(&[
            "--task-deadline-ms",
            "5000",
            "--max-attempts",
            "3",
            "--backoff-ms",
            "50",
            "--resume",
            "results/fig8_journal.jsonl",
        ])
        .unwrap();
        assert_eq!(cfg.task_deadline_ms, 5000);
        assert_eq!(cfg.max_attempts, 3);
        assert_eq!(cfg.backoff_ms, 50);
        assert_eq!(cfg.resume.as_deref(), Some("results/fig8_journal.jsonl"));
        assert!(parse(&["--max-attempts", "0"]).is_err());
        assert!(parse(&["--task-deadline-ms", "x"]).is_err());
        assert!(parse(&["--resume"]).is_err());
    }

    #[test]
    fn fault_specs_parse_every_kind() {
        use crate::runner::FaultKind;
        let f = parse_fault("A14:F4:error").unwrap();
        assert_eq!(f.algo, AlgorithmId::A14);
        assert_eq!(f.dataset, DatasetId::F4);
        assert_eq!(f.kind, FaultKind::Error);
        assert_eq!(parse_fault("A14:F4:panic").unwrap().kind, FaultKind::Panic);
        assert_eq!(
            parse_fault("A14:F4:hang:60000").unwrap().kind,
            FaultKind::Hang { ms: 60000 }
        );
        assert_eq!(
            parse_fault("A14:F4:slow:250").unwrap().kind,
            FaultKind::Slow { ms: 250 }
        );
        assert_eq!(
            parse_fault("A14:F4:transient:2").unwrap().kind,
            FaultKind::Transient { fail_first_n: 2 }
        );
        assert!(parse_fault("A99:F4:error").is_err());
        assert!(parse_fault("A14:F99:error").is_err());
        assert!(parse_fault("A14:F4:wat").is_err());
        assert!(parse_fault("A14:F4:hang").is_err(), "hang needs ms");
        assert!(parse_fault("A14").is_err());
        let cfg = parse(&["--fault", "A14:F4:transient:1"]).unwrap();
        assert!(cfg.fault.is_some());
        assert!(parse(&["--fault", "nope"]).is_err());
    }

    #[test]
    fn algo_helpers_cover_the_published_set() {
        let mut all = packet_algos();
        all.extend(conn_algos());
        assert_eq!(all.len(), 16);
        let pubs = published_algos();
        assert!(all.iter().all(|a| pubs.contains(a)));
    }
}
