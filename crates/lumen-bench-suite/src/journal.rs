//! The run journal: per-task outcome accounting for matrix runs.
//!
//! The result store (§3.3) records what *succeeded*; the journal records
//! what happened to **every** (algorithm, train, test) task — success,
//! faithfulness skip, or failure — so a genuine training failure can never
//! disappear into the same silence as a legitimate incompatibility skip.
//! Serialized as `{name}_journal.json` next to the store's JSON/CSV, and
//! summarized (counts, slowest tasks, cache hit ratio) at the end of every
//! experiment binary.

use serde::{Deserialize, Serialize};

use crate::store::ResultRow;
use crate::{BenchError, BenchResult};

/// What happened to one task.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum TaskOutcome {
    /// The task ran and produced result rows.
    Ok,
    /// The faithfulness rule (or a single-class split) skipped the pairing —
    /// expected, never fatal.
    SkippedIncompatible {
        /// Why the pairing is unfaithful.
        why: String,
    },
    /// The task genuinely failed (training error, panic, I/O, ...). Fatal
    /// under `--strict`.
    Failed {
        /// The error text.
        error: String,
    },
}

/// One journal entry: a task identity, its outcome, and its stage timings.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct JournalEntry {
    /// Algorithm code ("A06").
    pub algo: String,
    /// Training dataset code.
    pub train: String,
    /// Testing dataset code.
    pub test: String,
    /// "same", "cross", or "merged".
    pub mode: String,
    /// The outcome.
    pub outcome: TaskOutcome,
    /// Feature-extraction wall time, ms (0 unless the task ran).
    #[serde(default)]
    pub extract_ms: u64,
    /// Training wall time, ms.
    #[serde(default)]
    pub train_ms: u64,
    /// Testing/evaluation wall time, ms.
    #[serde(default)]
    pub test_ms: u64,
    /// Total wall time, ms (= extract + train + test for completed tasks).
    #[serde(default)]
    pub wall_ms: u64,
}

impl JournalEntry {
    /// An entry with no timings (skips, failures before any stage ran).
    pub fn untimed(algo: &str, train: &str, test: &str, mode: &str, outcome: TaskOutcome) -> Self {
        JournalEntry {
            algo: algo.into(),
            train: train.into(),
            test: test.into(),
            mode: mode.into(),
            outcome,
            extract_ms: 0,
            train_ms: 0,
            test_ms: 0,
            wall_ms: 0,
        }
    }
}

/// Per-dataset ingestion accounting: what the hardened decode path
/// quarantined between raw capture bytes and the packet source. All-zero
/// (and absent from older journals, hence `serde(default)`) for clean
/// synthetic captures; populated when `--chaos` corrupts them first.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct IngestEntry {
    /// Dataset code ("F0").
    pub dataset: String,
    /// Frames that survived capture-level recovery.
    #[serde(default)]
    pub frames: usize,
    /// Frames that parsed into packet metadata.
    #[serde(default)]
    pub parsed: usize,
    /// Link-layer decode errors (quarantined frames).
    #[serde(default)]
    pub link_errors: u64,
    /// Network-layer decode errors.
    #[serde(default)]
    pub net_errors: u64,
    /// Transport-layer decode errors.
    #[serde(default)]
    pub transport_errors: u64,
    /// Capture records dropped by the recovering pcap reader.
    #[serde(default)]
    pub records_dropped: u64,
    /// Resync scans the recovering reader performed.
    #[serde(default)]
    pub resyncs: u64,
    /// Capture bytes skipped while resyncing.
    #[serde(default)]
    pub bytes_skipped: u64,
    /// Records whose timestamp ran backwards.
    #[serde(default)]
    pub ts_regressions: u64,
    /// Labels that could not be realigned to a surviving record.
    #[serde(default)]
    pub label_misses: u64,
    /// True when the capture ended mid-record.
    #[serde(default)]
    pub truncated_tail: bool,
}

impl IngestEntry {
    /// Total quarantined items across capture and decode layers.
    pub fn total_quarantined(&self) -> u64 {
        self.link_errors + self.net_errors + self.transport_errors + self.records_dropped
    }
}

/// Append-only journal over a whole experiment run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunJournal {
    entries: Vec<JournalEntry>,
    /// Per-dataset ingestion/quarantine accounting (absent pre-PR-4).
    #[serde(default)]
    ingest: Vec<IngestEntry>,
    /// Flow-table LRU evictions observed over the whole run.
    #[serde(default)]
    flow_evictions: u64,
}

impl RunJournal {
    /// Empty journal.
    pub fn new() -> RunJournal {
        RunJournal::default()
    }

    /// Appends one entry.
    pub fn push(&mut self, entry: JournalEntry) {
        self.entries.push(entry);
    }

    /// Appends every entry of another journal, merging its ingestion
    /// accounting and eviction counts.
    pub fn extend(&mut self, other: RunJournal) {
        self.entries.extend(other.entries);
        self.ingest.extend(other.ingest);
        self.flow_evictions += other.flow_evictions;
    }

    /// Replaces the per-dataset ingestion accounting.
    pub fn set_ingest(&mut self, ingest: Vec<IngestEntry>) {
        self.ingest = ingest;
    }

    /// Per-dataset ingestion accounting, in dataset-code order.
    pub fn ingest(&self) -> &[IngestEntry] {
        &self.ingest
    }

    /// Records the run's flow-table eviction count.
    pub fn set_flow_evictions(&mut self, n: u64) {
        self.flow_evictions = n;
    }

    /// Flow-table LRU evictions over the run.
    pub fn flow_evictions(&self) -> u64 {
        self.flow_evictions
    }

    /// Total quarantined items across all datasets.
    pub fn total_quarantined(&self) -> u64 {
        self.ingest.iter().map(IngestEntry::total_quarantined).sum()
    }

    /// Classifies a runner result into an entry and appends it: `Ok` rows
    /// carry their stage timings, [`BenchError::Incompatible`] becomes a
    /// skip, and every other error becomes a failure.
    pub fn record_result(
        &mut self,
        algo: &str,
        train: &str,
        test: &str,
        mode: &str,
        result: &BenchResult<Vec<ResultRow>>,
    ) {
        let entry = match result {
            Ok(rows) => {
                let mut e = JournalEntry::untimed(algo, train, test, mode, TaskOutcome::Ok);
                // The whole-test row (attack == None) carries the timings.
                if let Some(r) = rows.iter().find(|r| r.attack.is_none()) {
                    e.extract_ms = r.extract_ms;
                    e.train_ms = r.train_ms;
                    e.test_ms = r.test_ms;
                    e.wall_ms = r.wall_ms;
                }
                e
            }
            Err(BenchError::Incompatible { why, .. }) => JournalEntry::untimed(
                algo,
                train,
                test,
                mode,
                TaskOutcome::SkippedIncompatible { why: why.clone() },
            ),
            Err(e) => JournalEntry::untimed(
                algo,
                train,
                test,
                mode,
                TaskOutcome::Failed {
                    error: e.to_string(),
                },
            ),
        };
        self.push(entry);
    }

    /// All entries.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Completed tasks.
    pub fn ok_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.outcome == TaskOutcome::Ok)
            .count()
    }

    /// Faithfulness skips.
    pub fn skipped_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.outcome, TaskOutcome::SkippedIncompatible { .. }))
            .count()
    }

    /// Genuine failures.
    pub fn failed_count(&self) -> usize {
        self.failures().count()
    }

    /// True when at least one task genuinely failed (drives `--strict`).
    pub fn has_failures(&self) -> bool {
        self.failures().next().is_some()
    }

    /// The failed entries.
    pub fn failures(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries
            .iter()
            .filter(|e| matches!(e.outcome, TaskOutcome::Failed { .. }))
    }

    /// The `n` slowest completed tasks, descending by wall time.
    pub fn slowest(&self, n: usize) -> Vec<&JournalEntry> {
        let mut done: Vec<&JournalEntry> = self
            .entries
            .iter()
            .filter(|e| e.outcome == TaskOutcome::Ok)
            .collect();
        done.sort_by(|a, b| {
            b.wall_ms
                .cmp(&a.wall_ms)
                .then_with(|| (&a.algo, &a.train, &a.test).cmp(&(&b.algo, &b.train, &b.test)))
        });
        done.truncate(n);
        done
    }

    /// Sorts entries by (algo, train, test, mode) so journals are identical
    /// run to run regardless of worker scheduling.
    pub fn sort(&mut self) {
        self.entries.sort_by(|a, b| {
            (&a.algo, &a.train, &a.test, &a.mode).cmp(&(&b.algo, &b.train, &b.test, &b.mode))
        });
        self.ingest.sort_by(|a, b| a.dataset.cmp(&b.dataset));
    }

    /// Multi-line human summary: counts, failures (with error text), the
    /// slowest tasks, and the feature-cache hit ratio.
    pub fn summary(&self, cache_hits: u64, cache_misses: u64) -> String {
        let mut s = format!(
            "run journal: {} ok / {} skipped (faithfulness) / {} FAILED of {} tasks\n",
            self.ok_count(),
            self.skipped_count(),
            self.failed_count(),
            self.len()
        );
        for e in self.failures() {
            if let TaskOutcome::Failed { error } = &e.outcome {
                s.push_str(&format!(
                    "  FAILED {} {}->{} [{}]: {error}\n",
                    e.algo, e.train, e.test, e.mode
                ));
            }
        }
        let slow = self.slowest(3);
        if !slow.is_empty() {
            s.push_str("slowest tasks:\n");
            for e in slow {
                s.push_str(&format!(
                    "  {} {}->{} [{}]: {} ms (extract {} / train {} / test {})\n",
                    e.algo, e.train, e.test, e.mode, e.wall_ms, e.extract_ms, e.train_ms, e.test_ms
                ));
            }
        }
        let total = cache_hits + cache_misses;
        if total > 0 {
            s.push_str(&format!(
                "feature cache: {cache_hits} hits / {cache_misses} misses ({:.0}% hit ratio)\n",
                100.0 * cache_hits as f64 / total as f64
            ));
        }
        if self.total_quarantined() > 0 {
            s.push_str(&format!(
                "ingestion quarantine: {} item(s) dropped across {} dataset(s)\n",
                self.total_quarantined(),
                self.ingest
                    .iter()
                    .filter(|e| e.total_quarantined() > 0)
                    .count()
            ));
            for e in self.ingest.iter().filter(|e| e.total_quarantined() > 0) {
                s.push_str(&format!(
                    "  {}: {}/{} frames parsed, {} record(s) dropped ({} resync(s), {} bytes skipped), \
                     decode errors link {} / net {} / transport {}, {} label miss(es){}\n",
                    e.dataset,
                    e.parsed,
                    e.frames,
                    e.records_dropped,
                    e.resyncs,
                    e.bytes_skipped,
                    e.link_errors,
                    e.net_errors,
                    e.transport_errors,
                    e.label_misses,
                    if e.truncated_tail { ", truncated tail" } else { "" }
                ));
            }
        }
        if self.flow_evictions > 0 {
            s.push_str(&format!(
                "flow table: {} LRU eviction(s) under the active-connection cap\n",
                self.flow_evictions
            ));
        }
        s
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("journal serializes")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<RunJournal, BenchError> {
        serde_json::from_str(s).map_err(|e| BenchError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::CoreError;

    fn entry(algo: &str, outcome: TaskOutcome, wall_ms: u64) -> JournalEntry {
        JournalEntry {
            wall_ms,
            ..JournalEntry::untimed(algo, "F0", "F0", "same", outcome)
        }
    }

    #[test]
    fn counts_by_outcome() {
        let mut j = RunJournal::new();
        j.push(entry("A1", TaskOutcome::Ok, 10));
        j.push(entry(
            "A2",
            TaskOutcome::SkippedIncompatible {
                why: "granularity".into(),
            },
            0,
        ));
        j.push(entry(
            "A3",
            TaskOutcome::Failed {
                error: "train blew up".into(),
            },
            0,
        ));
        assert_eq!(
            (j.ok_count(), j.skipped_count(), j.failed_count()),
            (1, 1, 1)
        );
        assert!(j.has_failures());
        let s = j.summary(3, 1);
        assert!(s.contains("1 ok / 1 skipped"), "{s}");
        assert!(s.contains("train blew up"), "{s}");
        assert!(s.contains("75% hit ratio"), "{s}");
    }

    #[test]
    fn record_result_classifies_errors() {
        let mut j = RunJournal::new();
        j.record_result(
            "A1",
            "F0",
            "F1",
            "cross",
            &Err(crate::BenchError::Incompatible {
                algo: "A1".into(),
                dataset: "F1".into(),
                why: "link type unsupported".into(),
            }),
        );
        j.record_result(
            "A2",
            "F0",
            "F0",
            "same",
            &Err(crate::BenchError::Core(CoreError::Ml("singular".into()))),
        );
        assert_eq!(j.skipped_count(), 1);
        assert_eq!(j.failed_count(), 1);
        let failed = j.failures().next().unwrap();
        assert!(
            matches!(&failed.outcome, TaskOutcome::Failed { error } if error.contains("singular"))
        );
    }

    #[test]
    fn slowest_orders_descending_and_skips_incomplete() {
        let mut j = RunJournal::new();
        j.push(entry("A1", TaskOutcome::Ok, 5));
        j.push(entry("A2", TaskOutcome::Ok, 50));
        j.push(entry("A3", TaskOutcome::Failed { error: "x".into() }, 999));
        let slow = j.slowest(2);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].algo, "A2");
        assert_eq!(slow[1].algo, "A1");
    }

    #[test]
    fn json_roundtrip_preserves_outcomes() {
        if serde_json::to_string(&RunJournal::new()).is_err() {
            eprintln!("offline serde_json stub without serialization support; skipping");
            return;
        }
        let mut j = RunJournal::new();
        j.push(entry("A1", TaskOutcome::Ok, 7));
        j.push(entry(
            "A2",
            TaskOutcome::Failed {
                error: "panic: boom".into(),
            },
            0,
        ));
        let back = RunJournal::from_json(&j.to_json()).unwrap();
        assert_eq!(back.entries(), j.entries());
        // The serialized form is explicit about status.
        assert!(j.to_json().contains("\"status\": \"failed\""));
    }

    #[test]
    fn ingest_and_evictions_surface_in_summary() {
        let mut j = RunJournal::new();
        j.set_ingest(vec![
            IngestEntry {
                dataset: "F0".into(),
                frames: 100,
                parsed: 97,
                link_errors: 2,
                net_errors: 1,
                records_dropped: 3,
                resyncs: 2,
                bytes_skipped: 640,
                label_misses: 1,
                truncated_tail: true,
                ..IngestEntry::default()
            },
            IngestEntry {
                dataset: "F1".into(),
                frames: 50,
                parsed: 50,
                ..IngestEntry::default()
            },
        ]);
        j.set_flow_evictions(12);
        assert_eq!(j.total_quarantined(), 6);
        let s = j.summary(0, 0);
        assert!(s.contains("6 item(s) dropped across 1 dataset(s)"), "{s}");
        assert!(s.contains("97/100 frames parsed"), "{s}");
        assert!(s.contains("truncated tail"), "{s}");
        assert!(s.contains("12 LRU eviction(s)"), "{s}");
        assert!(!s.contains("F1:"), "clean datasets stay out of the summary");
    }

    #[test]
    fn clean_run_summary_has_no_quarantine_noise() {
        let mut j = RunJournal::new();
        j.push(entry("A1", TaskOutcome::Ok, 10));
        let s = j.summary(0, 0);
        assert!(!s.contains("quarantine"), "{s}");
        assert!(!s.contains("eviction"), "{s}");
    }

    #[test]
    fn extend_merges_ingest_and_evictions() {
        let mut a = RunJournal::new();
        a.set_flow_evictions(3);
        a.set_ingest(vec![IngestEntry {
            dataset: "P2".into(),
            ..IngestEntry::default()
        }]);
        let mut b = RunJournal::new();
        b.set_flow_evictions(4);
        a.extend(b);
        assert_eq!(a.flow_evictions(), 7);
        assert_eq!(a.ingest().len(), 1);
    }

    #[test]
    fn sort_is_deterministic() {
        let mut j = RunJournal::new();
        j.push(entry("B", TaskOutcome::Ok, 1));
        j.push(entry("A", TaskOutcome::Ok, 2));
        j.sort();
        assert_eq!(j.entries()[0].algo, "A");
    }
}
