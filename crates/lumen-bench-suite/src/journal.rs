//! The run journal: per-task outcome accounting for matrix runs.
//!
//! The result store (§3.3) records what *succeeded*; the journal records
//! what happened to **every** (algorithm, train, test) task — success,
//! faithfulness skip, or failure — so a genuine training failure can never
//! disappear into the same silence as a legitimate incompatibility skip.
//! Serialized as `{name}_journal.json` next to the store's JSON/CSV, and
//! summarized (counts, slowest tasks, cache hit ratio) at the end of every
//! experiment binary.
//!
//! Since schema version 2 the journal also records *supervision*: per-task
//! attempt history (retries with backoff), `TimedOut` outcomes from the
//! cooperative deadline, and — as `{name}_journal.jsonl` — a line-per-task
//! write-ahead log ([`WalRecord`]) that makes a killed run resumable.

use serde::{Deserialize, Serialize};

use crate::store::ResultRow;
use crate::{BenchError, BenchResult};

/// What happened to one task.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum TaskOutcome {
    /// The task ran and produced result rows.
    Ok,
    /// The faithfulness rule (or a single-class split) skipped the pairing —
    /// expected, never fatal.
    SkippedIncompatible {
        /// Why the pairing is unfaithful.
        why: String,
    },
    /// The task genuinely failed (training error, panic, I/O, ...). Fatal
    /// under `--strict`.
    Failed {
        /// The error text.
        error: String,
    },
    /// The task exceeded its per-attempt deadline on every attempt — the
    /// cooperative [`lumen_util::cancel::CancelToken`] unwound it instead
    /// of wedging the worker. Fatal under `--strict`; re-run on `--resume`.
    TimedOut {
        /// The attempt that produced the final timeout (1-based).
        attempt: u32,
        /// The per-attempt deadline that was exceeded, ms.
        deadline_ms: u64,
    },
}

/// One execution attempt of a task: the retry ledger the supervised runner
/// records so a journal shows *how* a task reached its final outcome.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// "ok", "failed", or "timed_out".
    pub status: String,
    /// Error text for non-ok attempts (empty for ok).
    #[serde(default)]
    pub error: String,
    /// Wall time of this attempt, ms.
    #[serde(default)]
    pub wall_ms: u64,
}

/// One journal entry: a task identity, its outcome, and its stage timings.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct JournalEntry {
    /// Algorithm code ("A06").
    pub algo: String,
    /// Training dataset code.
    pub train: String,
    /// Testing dataset code.
    pub test: String,
    /// "same", "cross", or "merged".
    pub mode: String,
    /// The outcome.
    pub outcome: TaskOutcome,
    /// Feature-extraction wall time, ms (0 unless the task ran).
    #[serde(default)]
    pub extract_ms: u64,
    /// Training wall time, ms.
    #[serde(default)]
    pub train_ms: u64,
    /// Testing/evaluation wall time, ms.
    #[serde(default)]
    pub test_ms: u64,
    /// Total wall time, ms (= extract + train + test for completed tasks).
    #[serde(default)]
    pub wall_ms: u64,
    /// Per-attempt history (absent in v1 journals and for tasks that never
    /// executed, e.g. faithfulness skips).
    #[serde(default)]
    pub attempts: Vec<AttemptRecord>,
}

impl JournalEntry {
    /// An entry with no timings (skips, failures before any stage ran).
    pub fn untimed(algo: &str, train: &str, test: &str, mode: &str, outcome: TaskOutcome) -> Self {
        JournalEntry {
            algo: algo.into(),
            train: train.into(),
            test: test.into(),
            mode: mode.into(),
            outcome,
            extract_ms: 0,
            train_ms: 0,
            test_ms: 0,
            wall_ms: 0,
            attempts: Vec::new(),
        }
    }
}

/// One line of the `{name}_journal.jsonl` write-ahead log: the journal
/// entry of a task the runner just finished (in any way) plus the result
/// rows it produced. Appended (and fsync'd) the moment the task completes,
/// so a crash loses at most the line being written — `--resume` replays
/// `Ok` records and re-runs everything else.
///
/// The line format is a hand-rolled JSON codec ([`WalRecord::to_wal_line`]
/// / [`WalRecord::from_wal_line`]) rather than the serde derive: the WAL is
/// the crash-safety hot path, and owning its codec keeps the byte format
/// explicit, dependency-free, and identical everywhere. The schema matches
/// the derive output, so the lines stay readable with ordinary JSON tools.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct WalRecord {
    /// The task's journal entry (identity, outcome, timings, attempts).
    pub entry: JournalEntry,
    /// Result rows the task produced (empty unless `Ok`).
    #[serde(default)]
    pub rows: Vec<ResultRow>,
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
fn wal_push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON number for `v`: the shortest round-tripping decimal for finite
/// values, `null` for NaN/infinity (JSON has no non-finite numbers).
fn wal_push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn wal_get_str(v: &serde_json::Value, key: &str) -> Option<String> {
    v.get(key)?.as_str().map(str::to_string)
}

fn wal_get_u64(v: &serde_json::Value, key: &str) -> u64 {
    v.get(key).and_then(serde_json::Value::as_u64).unwrap_or(0)
}

fn wal_get_f64(v: &serde_json::Value, key: &str) -> f64 {
    // `null` encodes a non-finite metric; missing means a corrupt line
    // already survived the shape checks, so NaN (not a fake 0.0) either way.
    v.get(key)
        .and_then(serde_json::Value::as_f64)
        .unwrap_or(f64::NAN)
}

fn wal_outcome(v: &serde_json::Value) -> Option<TaskOutcome> {
    match v.get("status")?.as_str()? {
        "ok" => Some(TaskOutcome::Ok),
        "skipped_incompatible" => Some(TaskOutcome::SkippedIncompatible {
            why: wal_get_str(v, "why").unwrap_or_default(),
        }),
        "failed" => Some(TaskOutcome::Failed {
            error: wal_get_str(v, "error").unwrap_or_default(),
        }),
        "timed_out" => Some(TaskOutcome::TimedOut {
            attempt: wal_get_u64(v, "attempt") as u32,
            deadline_ms: wal_get_u64(v, "deadline_ms"),
        }),
        _ => None,
    }
}

impl WalRecord {
    /// Encodes this record as one WAL line (compact JSON, no trailing
    /// newline).
    pub fn to_wal_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let e = &self.entry;
        out.push_str("{\"entry\":{\"algo\":");
        wal_push_str(&mut out, &e.algo);
        out.push_str(",\"train\":");
        wal_push_str(&mut out, &e.train);
        out.push_str(",\"test\":");
        wal_push_str(&mut out, &e.test);
        out.push_str(",\"mode\":");
        wal_push_str(&mut out, &e.mode);
        out.push_str(",\"outcome\":{");
        match &e.outcome {
            TaskOutcome::Ok => out.push_str("\"status\":\"ok\""),
            TaskOutcome::SkippedIncompatible { why } => {
                out.push_str("\"status\":\"skipped_incompatible\",\"why\":");
                wal_push_str(&mut out, why);
            }
            TaskOutcome::Failed { error } => {
                out.push_str("\"status\":\"failed\",\"error\":");
                wal_push_str(&mut out, error);
            }
            TaskOutcome::TimedOut {
                attempt,
                deadline_ms,
            } => {
                out.push_str(&format!(
                    "\"status\":\"timed_out\",\"attempt\":{attempt},\"deadline_ms\":{deadline_ms}"
                ));
            }
        }
        out.push_str(&format!(
            "}},\"extract_ms\":{},\"train_ms\":{},\"test_ms\":{},\"wall_ms\":{},\"attempts\":[",
            e.extract_ms, e.train_ms, e.test_ms, e.wall_ms
        ));
        for (i, a) in e.attempts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"attempt\":{},\"status\":", a.attempt));
            wal_push_str(&mut out, &a.status);
            out.push_str(",\"error\":");
            wal_push_str(&mut out, &a.error);
            out.push_str(&format!(",\"wall_ms\":{}}}", a.wall_ms));
        }
        out.push_str("]},\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"algo\":");
            wal_push_str(&mut out, &r.algo);
            out.push_str(",\"train\":");
            wal_push_str(&mut out, &r.train);
            out.push_str(",\"test\":");
            wal_push_str(&mut out, &r.test);
            out.push_str(",\"mode\":");
            wal_push_str(&mut out, &r.mode);
            out.push_str(",\"attack\":");
            match &r.attack {
                Some(a) => wal_push_str(&mut out, a),
                None => out.push_str("null"),
            }
            out.push_str(",\"precision\":");
            wal_push_f64(&mut out, r.precision);
            out.push_str(",\"recall\":");
            wal_push_f64(&mut out, r.recall);
            out.push_str(",\"f1\":");
            wal_push_f64(&mut out, r.f1);
            out.push_str(",\"accuracy\":");
            wal_push_f64(&mut out, r.accuracy);
            out.push_str(",\"auc\":");
            wal_push_f64(&mut out, r.auc);
            out.push_str(&format!(
                ",\"n_train\":{},\"n_test\":{},\"extract_ms\":{},\"train_ms\":{},\"test_ms\":{},\"wall_ms\":{}}}",
                r.n_train, r.n_test, r.extract_ms, r.train_ms, r.test_ms, r.wall_ms
            ));
        }
        out.push_str("]}");
        out
    }

    /// Decodes one WAL line; `None` for anything torn or malformed (the
    /// loader skips such lines rather than failing the whole journal).
    pub fn from_wal_line(line: &str) -> Option<WalRecord> {
        let v: serde_json::Value = serde_json::from_str(line).ok()?;
        let e = v.get("entry")?;
        let entry = JournalEntry {
            algo: wal_get_str(e, "algo")?,
            train: wal_get_str(e, "train")?,
            test: wal_get_str(e, "test")?,
            mode: wal_get_str(e, "mode")?,
            outcome: wal_outcome(e.get("outcome")?)?,
            extract_ms: wal_get_u64(e, "extract_ms"),
            train_ms: wal_get_u64(e, "train_ms"),
            test_ms: wal_get_u64(e, "test_ms"),
            wall_ms: wal_get_u64(e, "wall_ms"),
            attempts: e
                .get("attempts")
                .and_then(serde_json::Value::as_array)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|a| {
                            Some(AttemptRecord {
                                attempt: wal_get_u64(a, "attempt") as u32,
                                status: wal_get_str(a, "status")?,
                                error: wal_get_str(a, "error").unwrap_or_default(),
                                wall_ms: wal_get_u64(a, "wall_ms"),
                            })
                        })
                        .collect()
                })
                .unwrap_or_default(),
        };
        let rows = v
            .get("rows")
            .and_then(serde_json::Value::as_array)
            .map(|arr| {
                arr.iter()
                    .filter_map(|r| {
                        Some(ResultRow {
                            algo: wal_get_str(r, "algo")?,
                            train: wal_get_str(r, "train")?,
                            test: wal_get_str(r, "test")?,
                            mode: wal_get_str(r, "mode")?,
                            attack: wal_get_str(r, "attack"),
                            precision: wal_get_f64(r, "precision"),
                            recall: wal_get_f64(r, "recall"),
                            f1: wal_get_f64(r, "f1"),
                            accuracy: wal_get_f64(r, "accuracy"),
                            auc: wal_get_f64(r, "auc"),
                            n_train: wal_get_u64(r, "n_train") as usize,
                            n_test: wal_get_u64(r, "n_test") as usize,
                            extract_ms: wal_get_u64(r, "extract_ms"),
                            train_ms: wal_get_u64(r, "train_ms"),
                            test_ms: wal_get_u64(r, "test_ms"),
                            wall_ms: wal_get_u64(r, "wall_ms"),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        Some(WalRecord { entry, rows })
    }
}

/// Loads a `.jsonl` write-ahead log, skipping unparseable lines — a
/// SIGKILL mid-append tears at most the final line, and a torn tail must
/// not make the whole journal unreadable.
pub fn load_wal(path: &std::path::Path) -> BenchResult<Vec<WalRecord>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(WalRecord::from_wal_line)
        .collect())
}

/// Per-dataset ingestion accounting: what the hardened decode path
/// quarantined between raw capture bytes and the packet source. All-zero
/// (and absent from older journals, hence `serde(default)`) for clean
/// synthetic captures; populated when `--chaos` corrupts them first.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct IngestEntry {
    /// Dataset code ("F0").
    pub dataset: String,
    /// Frames that survived capture-level recovery.
    #[serde(default)]
    pub frames: usize,
    /// Frames that parsed into packet metadata.
    #[serde(default)]
    pub parsed: usize,
    /// Link-layer decode errors (quarantined frames).
    #[serde(default)]
    pub link_errors: u64,
    /// Network-layer decode errors.
    #[serde(default)]
    pub net_errors: u64,
    /// Transport-layer decode errors.
    #[serde(default)]
    pub transport_errors: u64,
    /// Capture records dropped by the recovering pcap reader.
    #[serde(default)]
    pub records_dropped: u64,
    /// Resync scans the recovering reader performed.
    #[serde(default)]
    pub resyncs: u64,
    /// Capture bytes skipped while resyncing.
    #[serde(default)]
    pub bytes_skipped: u64,
    /// Records whose timestamp ran backwards.
    #[serde(default)]
    pub ts_regressions: u64,
    /// Labels that could not be realigned to a surviving record.
    #[serde(default)]
    pub label_misses: u64,
    /// True when the capture ended mid-record.
    #[serde(default)]
    pub truncated_tail: bool,
}

impl IngestEntry {
    /// Total quarantined items across capture and decode layers.
    pub fn total_quarantined(&self) -> u64 {
        self.link_errors + self.net_errors + self.transport_errors + self.records_dropped
    }
}

/// One experiment-audit finding (DESIGN.md §4h), journaled with the run it
/// was raised against. A flattened, string-typed mirror of
/// `lumen_core::Diagnostic` plus the scope it applies to, so journals stay
/// readable without the core crate's types.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct AuditFinding {
    /// What was audited: an algorithm code ("A06") for Level-1 template
    /// findings, or "`algo train->test [mode]`" for Level-2 matrix
    /// findings.
    pub scope: String,
    /// Stable rule id ("A110", "A200", ...).
    pub rule_id: String,
    /// Severity name ("error" / "warn" / "info").
    pub severity: String,
    /// Human-readable description.
    pub message: String,
}

/// Per-shard flow-tracker accounting: what one shard of the sharded flow
/// tracker did across every assembly of the run. Attribution is exact —
/// the numbers come from each tracker's own [`lumen_flow::FlowStats`], so
/// concurrent matrices in one process cannot bleed into each other.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct FlowShardEntry {
    /// Shard index.
    pub shard: usize,
    /// LRU evictions under this shard's share of the active-table cap.
    pub evictions: u64,
    /// Connection records this shard finalized.
    pub records: u64,
    /// Sum of per-assembly high-water marks of concurrently-tracked
    /// connections in this shard.
    pub peak_active: u64,
}

/// Per-stage accounting for one pipeline stage of a streaming run: how
/// deep its input ring got, and how often its watchdog had to restart it.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct StreamStageEntry {
    /// Stage name (`source`/`decode`/`flow`/`score`).
    pub stage: String,
    /// Capacity of the stage's input ring (0 for the source, which has
    /// no input ring).
    pub queue_capacity: u64,
    /// High-water mark of the stage's input ring depth.
    pub queue_peak: u64,
    /// Times the stage's watchdog cancelled and restarted it after a
    /// wedge (stale heartbeat while holding work).
    pub restarts: u64,
}

/// Ground truth vs detection for one scenario breakpoint (schema v7): did
/// the online drift monitor confirm drift after this ground-truth change
/// point, and how long did confirmation take in capture time.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct DriftBreakpointEntry {
    /// Ground-truth breakpoint timestamp (µs, capture clock).
    #[serde(default)]
    pub ts_us: u64,
    /// Breakpoint kind name (`feature-shift`/`rate-cycle`/`device-churn`/
    /// `evasion-onset`/`regime-change`).
    #[serde(default)]
    pub kind: String,
    /// True when a confirmed detection landed at or after this breakpoint
    /// (and before the next one).
    #[serde(default)]
    pub detected: bool,
    /// Capture timestamp of the confirming detection (µs; 0 when missed).
    #[serde(default)]
    pub detected_ts_us: u64,
    /// Detection latency in capture-clock milliseconds (0 when missed).
    #[serde(default)]
    pub latency_ms: u64,
}

/// Drift-and-adaptation report for one streaming run (schema v7): the
/// detection ledger against scenario ground truth, accuracy across the
/// before/during/after phases of the drift, and the full retrain history —
/// attempts, failures, aborts, validated swaps, and the rule-engine
/// prefilter's workload while the daemon was adapting. Every number comes
/// from the journal, never from stdout.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct DriftReport {
    /// Scenario code (`S0`..`S6`; empty when the run had no scenario).
    #[serde(default)]
    pub scenario: String,
    /// Scenario family (`drift`/`evasion`/`encryption`).
    #[serde(default)]
    pub family: String,
    /// Per-breakpoint detection ledger vs the [`ScenarioReport`] ground
    /// truth the capture was generated with.
    ///
    /// [`ScenarioReport`]: lumen_synth::ScenarioReport
    #[serde(default)]
    pub breakpoints: Vec<DriftBreakpointEntry>,
    /// Total confirmed drift detections over the run.
    #[serde(default)]
    pub detections: u64,
    /// Confirmed detections not attributable to any ground-truth
    /// breakpoint.
    #[serde(default)]
    pub false_alarms: u64,
    /// ML slice accuracy before the first breakpoint.
    #[serde(default)]
    pub acc_before: f64,
    /// Slice accuracy between the first breakpoint and the model swap
    /// (the degraded window).
    #[serde(default)]
    pub acc_during: f64,
    /// ML slice accuracy after the validated model swap.
    #[serde(default)]
    pub acc_after: f64,
    /// Rule-engine baseline accuracy over the post-drift phase — the
    /// floor the swapped model must beat.
    #[serde(default)]
    pub baseline_acc: f64,
    /// Times the daemon entered the journaled `Adapting` state.
    #[serde(default)]
    pub adapt_entries: u64,
    /// Rule-engine prefilter classifications while `Adapting` (the
    /// prefilter is promoted full-time during adaptation).
    #[serde(default)]
    pub prefilter_hits: u64,
    /// Warm-start retrain attempts launched.
    #[serde(default)]
    pub retrain_attempts: u64,
    /// Retrain attempts that failed (injected fault, training error, or
    /// validation-gate rejection).
    #[serde(default)]
    pub retrain_failures: u64,
    /// Retrains aborted by cancellation (budget deadline or drain).
    #[serde(default)]
    pub retrains_aborted: u64,
    /// Validated model swaps installed.
    #[serde(default)]
    pub model_swaps: u64,
    /// Total wall time spent in retrain attempts, ms.
    #[serde(default)]
    pub retrain_ms_total: u64,
}

impl DriftReport {
    /// True when every ground-truth breakpoint has a confirmed detection
    /// with finite latency (and the scenario had breakpoints at all).
    pub fn all_breakpoints_detected(&self) -> bool {
        !self.breakpoints.is_empty() && self.breakpoints.iter().all(|b| b.detected)
    }
}

/// End-of-run report from the `lumen-serve` streaming daemon (schema v6):
/// packet-exact accounting across every stage, overload behavior (shed and
/// degraded slices, breaker trips), scoring latency quantiles, and how the
/// run ended. The load-bearing invariants, asserted in the serve tests:
/// `packets_read == packets_parsed + decode_errors` and
/// `records_scored + records_degraded + records_shed == records_finalized`
/// — nothing is ever dropped silently.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct StreamReport {
    /// Packets the recovering source yielded.
    #[serde(default)]
    pub packets_read: u64,
    /// Packets that decoded to usable metadata.
    #[serde(default)]
    pub packets_parsed: u64,
    /// Packets quarantined by the decode stage (link/net/transport).
    #[serde(default)]
    pub decode_errors: u64,
    /// Parsed packets without an IP five-tuple (ignored by flow tracking).
    #[serde(default)]
    pub non_ip: u64,
    /// Connection records the flow stage finalized.
    #[serde(default)]
    pub records_finalized: u64,
    /// Time slices emitted by the flow stage.
    #[serde(default)]
    pub slices_total: u64,
    /// Slices scored by the ML model.
    #[serde(default)]
    pub slices_scored: u64,
    /// Slices classified by the rule-engine prefilter while the breaker
    /// was open (degraded mode).
    #[serde(default)]
    pub slices_degraded: u64,
    /// Slices shed under overload (counted, never silent).
    #[serde(default)]
    pub slices_shed: u64,
    /// Records on ML-scored slices.
    #[serde(default)]
    pub records_scored: u64,
    /// Records on degraded (rule-engine) slices.
    #[serde(default)]
    pub records_degraded: u64,
    /// Records on shed slices.
    #[serde(default)]
    pub records_shed: u64,
    /// Alarms raised (ML or rule engine).
    #[serde(default)]
    pub alarms: u64,
    /// Median per-slice scoring latency, milliseconds.
    #[serde(default)]
    pub score_p50_ms: f64,
    /// 99th-percentile per-slice scoring latency, milliseconds.
    #[serde(default)]
    pub score_p99_ms: f64,
    /// Times the circuit breaker tripped open.
    #[serde(default)]
    pub breaker_trips: u64,
    /// Breaker state at end of run (`closed`/`open`/`half-open`).
    #[serde(default)]
    pub breaker_final: String,
    /// Per-stage queue/restart accounting.
    #[serde(default)]
    pub stages: Vec<StreamStageEntry>,
    /// True when the run drained cleanly (all stages joined, journal
    /// flushed) rather than aborting.
    #[serde(default)]
    pub drained_clean: bool,
    /// True when the drain was initiated by SIGTERM/SIGINT rather than
    /// end-of-source.
    #[serde(default)]
    pub sigterm: bool,
    /// Drift-and-adaptation report (schema v7; absent for runs without a
    /// drift monitor).
    #[serde(default)]
    pub drift: Option<DriftReport>,
}

impl StreamReport {
    /// True when every finalized record is accounted for by exactly one
    /// of scored/degraded/shed, and every read packet either parsed or
    /// was quarantined.
    pub fn accounts_exactly(&self) -> bool {
        self.packets_read == self.packets_parsed + self.decode_errors
            && self.records_scored + self.records_degraded + self.records_shed
                == self.records_finalized
            && self.slices_scored + self.slices_degraded + self.slices_shed == self.slices_total
    }
}

/// Current journal schema version. v1 (implicit) predates supervision;
/// v2 adds `schema_version` itself, `TimedOut` outcomes, and per-task
/// attempt history; v3 adds experiment-audit findings; v4 adds per-shard
/// flow-tracker accounting (`flow_shards`) and re-scopes `flow_evictions`
/// to per-tracker stats summed over the run's own assemblies, instead of a
/// process-global counter diff that misattributed evictions across
/// concurrently-running matrices; v5 records the ML kernel dispatch
/// decision in the header (`kernel_backend`: scalar/avx2/neon, and
/// `kernel_features`: the detected CPU feature list) so perf numbers are
/// attributable to the instruction set that produced them; v6 adds the
/// optional `stream` section (`StreamReport`): the lumen-serve daemon's
/// packet-exact overload accounting — shed/degraded/restart counters,
/// breaker state, per-stage queue depths, and p50/p99 scoring latency;
/// v7 adds the `seeds` header ([`RunSeeds`]: generator/chaos/scenario
/// seeds, so any run regenerates from the journal alone) and the optional
/// `stream.drift` section ([`DriftReport`]: per-breakpoint detection
/// latency vs scenario ground truth, before/during/after accuracy, and
/// the warm-start retrain ledger).
pub const SCHEMA_VERSION: u32 = 7;

/// The seeds that produced a run's input capture (schema v7 header):
/// everything needed to regenerate the exact capture — and therefore
/// reproduce the run — from the journal alone, with no out-of-band notes.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct RunSeeds {
    /// Seed handed to the dataset/scenario generator.
    #[serde(default)]
    pub generator: u64,
    /// Chaos-engine seed, when the capture was corrupted before ingest.
    #[serde(default)]
    pub chaos: Option<u64>,
    /// Scenario code (`S0`..`S6`) when the capture came from the scenario
    /// engine rather than a static dataset recipe.
    #[serde(default)]
    pub scenario: Option<String>,
}

fn v1_schema_version() -> u32 {
    1
}

/// Append-only journal over a whole experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunJournal {
    /// Journal schema version; v1 journals omit the field entirely.
    #[serde(default = "v1_schema_version")]
    schema_version: u32,
    entries: Vec<JournalEntry>,
    /// Per-dataset ingestion/quarantine accounting (absent pre-PR-4).
    #[serde(default)]
    ingest: Vec<IngestEntry>,
    /// Flow-table LRU evictions observed over the whole run, summed from
    /// the run's own trackers (never a process-global counter diff).
    #[serde(default)]
    flow_evictions: u64,
    /// Per-shard flow-tracker accounting for this run (absent pre-v4 and
    /// when the run assembled no flows). Indexed by shard number.
    #[serde(default)]
    flow_shards: Vec<FlowShardEntry>,
    /// Experiment-audit findings for this run (absent pre-v3 and when the
    /// run did not audit).
    #[serde(default)]
    audit: Vec<AuditFinding>,
    /// ML kernel backend the run dispatched to (`scalar`/`avx2`/`neon`;
    /// absent pre-v5). Captured at journal creation from the process-wide
    /// dispatch state (`--kernel-backend`).
    #[serde(default)]
    kernel_backend: String,
    /// Detected CPU features relevant to kernel dispatch (absent pre-v5).
    #[serde(default)]
    kernel_features: String,
    /// Streaming-daemon report (absent pre-v6 and for batch runs).
    #[serde(default)]
    stream: Option<StreamReport>,
    /// Capture-generation seeds (absent pre-v7); present, the run is
    /// reproducible from the journal alone.
    #[serde(default)]
    seeds: Option<RunSeeds>,
}

impl Default for RunJournal {
    fn default() -> Self {
        RunJournal::new()
    }
}

impl RunJournal {
    /// Empty journal at the current schema version. The kernel-dispatch
    /// header is captured here, so it reflects the backend in force when
    /// the run started (`--kernel-backend` is applied before any journal
    /// exists).
    pub fn new() -> RunJournal {
        RunJournal {
            schema_version: SCHEMA_VERSION,
            entries: Vec::new(),
            ingest: Vec::new(),
            flow_evictions: 0,
            flow_shards: Vec::new(),
            audit: Vec::new(),
            kernel_backend: lumen_ml::kernels::active_backend().name().to_string(),
            kernel_features: lumen_ml::kernels::detected_features().to_string(),
            stream: None,
            seeds: None,
        }
    }

    /// The schema version this journal was written with.
    pub fn schema_version(&self) -> u32 {
        self.schema_version
    }

    /// The ML kernel backend this run dispatched to (empty pre-v5).
    pub fn kernel_backend(&self) -> &str {
        &self.kernel_backend
    }

    /// The CPU features detected at run start (empty pre-v5).
    pub fn kernel_features(&self) -> &str {
        &self.kernel_features
    }

    /// Appends one entry.
    pub fn push(&mut self, entry: JournalEntry) {
        self.entries.push(entry);
    }

    /// Appends every entry of another journal, merging its ingestion
    /// accounting and eviction counts. Per-shard flow accounting merges
    /// index-wise (shard i of both runs is the same hash partition only if
    /// both used the same shard count; merged journals report the union).
    pub fn extend(&mut self, other: RunJournal) {
        self.entries.extend(other.entries);
        self.ingest.extend(other.ingest);
        self.flow_evictions += other.flow_evictions;
        if self.flow_shards.len() < other.flow_shards.len() {
            self.flow_shards.resize(other.flow_shards.len(), FlowShardEntry::default());
            for (i, e) in self.flow_shards.iter_mut().enumerate() {
                e.shard = i;
            }
        }
        for o in &other.flow_shards {
            let e = &mut self.flow_shards[o.shard];
            e.shard = o.shard;
            e.evictions += o.evictions;
            e.records += o.records;
            e.peak_active += o.peak_active;
        }
        // Stream reports and seed headers are per-run and do not
        // aggregate; keep the first one rather than inventing a merge.
        if self.stream.is_none() {
            self.stream = other.stream;
        }
        if self.seeds.is_none() {
            self.seeds = other.seeds;
        }
    }

    /// Replaces the per-dataset ingestion accounting.
    pub fn set_ingest(&mut self, ingest: Vec<IngestEntry>) {
        self.ingest = ingest;
    }

    /// Per-dataset ingestion accounting, in dataset-code order.
    pub fn ingest(&self) -> &[IngestEntry] {
        &self.ingest
    }

    /// Replaces the run's experiment-audit findings.
    pub fn set_audit(&mut self, findings: Vec<AuditFinding>) {
        self.audit = findings;
    }

    /// Experiment-audit findings journaled with this run.
    pub fn audit(&self) -> &[AuditFinding] {
        &self.audit
    }

    /// Number of error-severity audit findings.
    pub fn audit_error_count(&self) -> usize {
        self.audit.iter().filter(|f| f.severity == "error").count()
    }

    /// Records the run's flow-table eviction count.
    pub fn set_flow_evictions(&mut self, n: u64) {
        self.flow_evictions = n;
    }

    /// Flow-table LRU evictions over the run.
    pub fn flow_evictions(&self) -> u64 {
        self.flow_evictions
    }

    /// Replaces the per-shard flow-tracker accounting.
    pub fn set_flow_shards(&mut self, shards: Vec<FlowShardEntry>) {
        self.flow_shards = shards;
    }

    /// Per-shard flow-tracker accounting, indexed by shard.
    pub fn flow_shards(&self) -> &[FlowShardEntry] {
        &self.flow_shards
    }

    /// Attaches the streaming-daemon report (schema v6).
    pub fn set_stream(&mut self, report: StreamReport) {
        self.stream = Some(report);
    }

    /// The streaming-daemon report, when this journal came from a
    /// `lumen-serve` run (always `None` pre-v6 and for batch runs).
    pub fn stream(&self) -> Option<&StreamReport> {
        self.stream.as_ref()
    }

    /// Records the capture-generation seeds in the header (schema v7).
    pub fn set_seeds(&mut self, seeds: RunSeeds) {
        self.seeds = Some(seeds);
    }

    /// The capture-generation seeds (always `None` pre-v7).
    pub fn seeds(&self) -> Option<&RunSeeds> {
        self.seeds.as_ref()
    }

    /// Total quarantined items across all datasets.
    pub fn total_quarantined(&self) -> u64 {
        self.ingest.iter().map(IngestEntry::total_quarantined).sum()
    }

    /// Classifies a runner result into an entry and appends it: `Ok` rows
    /// carry their stage timings, [`BenchError::Incompatible`] becomes a
    /// skip, and every other error becomes a failure.
    pub fn record_result(
        &mut self,
        algo: &str,
        train: &str,
        test: &str,
        mode: &str,
        result: &BenchResult<Vec<ResultRow>>,
    ) {
        let entry = match result {
            Ok(rows) => {
                let mut e = JournalEntry::untimed(algo, train, test, mode, TaskOutcome::Ok);
                // The whole-test row (attack == None) carries the timings.
                if let Some(r) = rows.iter().find(|r| r.attack.is_none()) {
                    e.extract_ms = r.extract_ms;
                    e.train_ms = r.train_ms;
                    e.test_ms = r.test_ms;
                    e.wall_ms = r.wall_ms;
                }
                e
            }
            Err(BenchError::Incompatible { why, .. }) => JournalEntry::untimed(
                algo,
                train,
                test,
                mode,
                TaskOutcome::SkippedIncompatible { why: why.clone() },
            ),
            Err(e) => JournalEntry::untimed(
                algo,
                train,
                test,
                mode,
                TaskOutcome::Failed {
                    error: e.to_string(),
                },
            ),
        };
        self.push(entry);
    }

    /// All entries.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Completed tasks.
    pub fn ok_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.outcome == TaskOutcome::Ok)
            .count()
    }

    /// Faithfulness skips.
    pub fn skipped_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.outcome, TaskOutcome::SkippedIncompatible { .. }))
            .count()
    }

    /// Genuine failures (timeouts counted separately).
    pub fn failed_count(&self) -> usize {
        self.failures().count()
    }

    /// Tasks whose final outcome was a deadline timeout.
    pub fn timed_out_count(&self) -> usize {
        self.timeouts().count()
    }

    /// Tasks that needed more than one attempt (any final outcome).
    pub fn retried_count(&self) -> usize {
        self.entries.iter().filter(|e| e.attempts.len() > 1).count()
    }

    /// True when at least one task genuinely failed or timed out (drives
    /// `--strict`). Faithfulness skips never count.
    pub fn has_failures(&self) -> bool {
        self.failures().next().is_some() || self.timeouts().next().is_some()
    }

    /// The failed entries.
    pub fn failures(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries
            .iter()
            .filter(|e| matches!(e.outcome, TaskOutcome::Failed { .. }))
    }

    /// The timed-out entries.
    pub fn timeouts(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries
            .iter()
            .filter(|e| matches!(e.outcome, TaskOutcome::TimedOut { .. }))
    }

    /// The `n` slowest completed tasks, descending by wall time.
    pub fn slowest(&self, n: usize) -> Vec<&JournalEntry> {
        let mut done: Vec<&JournalEntry> = self
            .entries
            .iter()
            .filter(|e| e.outcome == TaskOutcome::Ok)
            .collect();
        done.sort_by(|a, b| {
            b.wall_ms
                .cmp(&a.wall_ms)
                .then_with(|| (&a.algo, &a.train, &a.test).cmp(&(&b.algo, &b.train, &b.test)))
        });
        done.truncate(n);
        done
    }

    /// Sorts entries by (algo, train, test, mode) so journals are identical
    /// run to run regardless of worker scheduling.
    pub fn sort(&mut self) {
        self.entries.sort_by(|a, b| {
            (&a.algo, &a.train, &a.test, &a.mode).cmp(&(&b.algo, &b.train, &b.test, &b.mode))
        });
        self.ingest.sort_by(|a, b| a.dataset.cmp(&b.dataset));
        self.audit
            .sort_by(|a, b| (&a.scope, &a.rule_id).cmp(&(&b.scope, &b.rule_id)));
    }

    /// Multi-line human summary: counts, failures (with error text), the
    /// slowest tasks, and the feature-cache hit ratio.
    pub fn summary(&self, cache_hits: u64, cache_misses: u64) -> String {
        let mut s = format!(
            "run journal: {} ok / {} skipped (faithfulness) / {} FAILED / {} timed out of {} tasks\n",
            self.ok_count(),
            self.skipped_count(),
            self.failed_count(),
            self.timed_out_count(),
            self.len()
        );
        if !self.kernel_backend.is_empty() {
            s.push_str(&format!(
                "kernel backend: {} (cpu features: {})\n",
                self.kernel_backend, self.kernel_features
            ));
        }
        if let Some(seeds) = &self.seeds {
            s.push_str(&format!("seeds: generator {}", seeds.generator));
            if let Some(c) = seeds.chaos {
                s.push_str(&format!(", chaos {c}"));
            }
            if let Some(sc) = &seeds.scenario {
                s.push_str(&format!(", scenario {sc}"));
            }
            s.push('\n');
        }
        for e in self.failures() {
            if let TaskOutcome::Failed { error } = &e.outcome {
                s.push_str(&format!(
                    "  FAILED {} {}->{} [{}]: {error}\n",
                    e.algo, e.train, e.test, e.mode
                ));
            }
        }
        for e in self.timeouts() {
            if let TaskOutcome::TimedOut {
                attempt,
                deadline_ms,
            } = &e.outcome
            {
                s.push_str(&format!(
                    "  TIMED OUT {} {}->{} [{}]: attempt {attempt} exceeded the {deadline_ms} ms deadline\n",
                    e.algo, e.train, e.test, e.mode
                ));
            }
        }
        if self.retried_count() > 0 {
            s.push_str(&format!(
                "retries: {} task(s) needed more than one attempt\n",
                self.retried_count()
            ));
        }
        let slow = self.slowest(3);
        if !slow.is_empty() {
            s.push_str("slowest tasks:\n");
            for e in slow {
                s.push_str(&format!(
                    "  {} {}->{} [{}]: {} ms (extract {} / train {} / test {})\n",
                    e.algo, e.train, e.test, e.mode, e.wall_ms, e.extract_ms, e.train_ms, e.test_ms
                ));
            }
        }
        let total = cache_hits + cache_misses;
        if total > 0 {
            s.push_str(&format!(
                "feature cache: {cache_hits} hits / {cache_misses} misses ({:.0}% hit ratio)\n",
                100.0 * cache_hits as f64 / total as f64
            ));
        }
        if !self.audit.is_empty() {
            let errors = self.audit_error_count();
            s.push_str(&format!(
                "experiment audit: {} finding(s), {} error(s)\n",
                self.audit.len(),
                errors
            ));
            for f in &self.audit {
                s.push_str(&format!(
                    "  {} [{}] {}: {}\n",
                    f.severity.to_uppercase(),
                    f.rule_id,
                    f.scope,
                    f.message
                ));
            }
        }
        if self.total_quarantined() > 0 {
            s.push_str(&format!(
                "ingestion quarantine: {} item(s) dropped across {} dataset(s)\n",
                self.total_quarantined(),
                self.ingest
                    .iter()
                    .filter(|e| e.total_quarantined() > 0)
                    .count()
            ));
            for e in self.ingest.iter().filter(|e| e.total_quarantined() > 0) {
                s.push_str(&format!(
                    "  {}: {}/{} frames parsed, {} record(s) dropped ({} resync(s), {} bytes skipped), \
                     decode errors link {} / net {} / transport {}, {} label miss(es){}\n",
                    e.dataset,
                    e.parsed,
                    e.frames,
                    e.records_dropped,
                    e.resyncs,
                    e.bytes_skipped,
                    e.link_errors,
                    e.net_errors,
                    e.transport_errors,
                    e.label_misses,
                    if e.truncated_tail { ", truncated tail" } else { "" }
                ));
            }
        }
        if self.flow_evictions > 0 {
            s.push_str(&format!(
                "flow table: {} LRU eviction(s) under the active-connection cap\n",
                self.flow_evictions
            ));
        }
        // An all-zero shard table (a run that assembled no flows) says
        // nothing; render the block only when some shard did work.
        let shards_active = self
            .flow_shards
            .iter()
            .any(|e| e.records > 0 || e.evictions > 0 || e.peak_active > 0);
        if shards_active {
            let records: u64 = self.flow_shards.iter().map(|e| e.records).sum();
            s.push_str(&format!(
                "flow shards: {} shard(s), {} record(s) finalized\n",
                self.flow_shards.len(),
                records
            ));
            for e in self.flow_shards.iter().filter(|e| e.evictions > 0) {
                s.push_str(&format!(
                    "  shard {}: {} eviction(s), {} record(s)\n",
                    e.shard, e.evictions, e.records
                ));
            }
        }
        if let Some(r) = &self.stream {
            s.push_str(&format!(
                "stream: {} packet(s) read ({} parsed / {} quarantined / {} non-IP), \
                 {} record(s) over {} slice(s)\n",
                r.packets_read,
                r.packets_parsed,
                r.decode_errors,
                r.non_ip,
                r.records_finalized,
                r.slices_total
            ));
            s.push_str(&format!(
                "  scored {} / degraded {} / shed {} slice(s) \
                 (records {} / {} / {}), {} alarm(s)\n",
                r.slices_scored,
                r.slices_degraded,
                r.slices_shed,
                r.records_scored,
                r.records_degraded,
                r.records_shed,
                r.alarms
            ));
            s.push_str(&format!(
                "  scoring latency p50 {:.2} ms / p99 {:.2} ms, breaker: {} trip(s), final {}\n",
                r.score_p50_ms,
                r.score_p99_ms,
                r.breaker_trips,
                if r.breaker_final.is_empty() {
                    "closed"
                } else {
                    &r.breaker_final
                }
            ));
            for st in &r.stages {
                s.push_str(&format!(
                    "  stage {}: queue peak {}/{}, {} restart(s)\n",
                    st.stage, st.queue_peak, st.queue_capacity, st.restarts
                ));
            }
            if let Some(d) = &r.drift {
                s.push_str(&format!(
                    "  drift: scenario {} [{}], {} detection(s) ({} false alarm(s)), \
                     {} adapt entr{}\n",
                    if d.scenario.is_empty() { "-" } else { &d.scenario },
                    d.family,
                    d.detections,
                    d.false_alarms,
                    d.adapt_entries,
                    if d.adapt_entries == 1 { "y" } else { "ies" }
                ));
                for b in &d.breakpoints {
                    s.push_str(&format!(
                        "    breakpoint {} @ {} us: {}\n",
                        b.kind,
                        b.ts_us,
                        if b.detected {
                            format!("detected +{} ms", b.latency_ms)
                        } else {
                            "MISSED".to_string()
                        }
                    ));
                }
                s.push_str(&format!(
                    "    accuracy before {:.3} / during {:.3} / after {:.3} \
                     (rules baseline {:.3})\n",
                    d.acc_before, d.acc_during, d.acc_after, d.baseline_acc
                ));
                s.push_str(&format!(
                    "    retrain: {} attempt(s), {} failure(s), {} aborted, \
                     {} swap(s), {} ms total, {} prefilter hit(s)\n",
                    d.retrain_attempts,
                    d.retrain_failures,
                    d.retrains_aborted,
                    d.model_swaps,
                    d.retrain_ms_total,
                    d.prefilter_hits
                ));
            }
            s.push_str(&format!(
                "  drain: {}{}\n",
                if r.drained_clean { "clean" } else { "ABORTED" },
                if r.sigterm { " (SIGTERM)" } else { "" }
            ));
        }
        s
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("journal serializes")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<RunJournal, BenchError> {
        serde_json::from_str(s).map_err(|e| BenchError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::CoreError;

    fn entry(algo: &str, outcome: TaskOutcome, wall_ms: u64) -> JournalEntry {
        JournalEntry {
            wall_ms,
            ..JournalEntry::untimed(algo, "F0", "F0", "same", outcome)
        }
    }

    #[test]
    fn counts_by_outcome() {
        let mut j = RunJournal::new();
        j.push(entry("A1", TaskOutcome::Ok, 10));
        j.push(entry(
            "A2",
            TaskOutcome::SkippedIncompatible {
                why: "granularity".into(),
            },
            0,
        ));
        j.push(entry(
            "A3",
            TaskOutcome::Failed {
                error: "train blew up".into(),
            },
            0,
        ));
        assert_eq!(
            (j.ok_count(), j.skipped_count(), j.failed_count()),
            (1, 1, 1)
        );
        assert!(j.has_failures());
        let s = j.summary(3, 1);
        assert!(s.contains("1 ok / 1 skipped"), "{s}");
        assert!(s.contains("train blew up"), "{s}");
        assert!(s.contains("75% hit ratio"), "{s}");
    }

    #[test]
    fn record_result_classifies_errors() {
        let mut j = RunJournal::new();
        j.record_result(
            "A1",
            "F0",
            "F1",
            "cross",
            &Err(crate::BenchError::Incompatible {
                algo: "A1".into(),
                dataset: "F1".into(),
                why: "link type unsupported".into(),
            }),
        );
        j.record_result(
            "A2",
            "F0",
            "F0",
            "same",
            &Err(crate::BenchError::Core(CoreError::Ml("singular".into()))),
        );
        assert_eq!(j.skipped_count(), 1);
        assert_eq!(j.failed_count(), 1);
        let failed = j.failures().next().unwrap();
        assert!(
            matches!(&failed.outcome, TaskOutcome::Failed { error } if error.contains("singular"))
        );
    }

    #[test]
    fn slowest_orders_descending_and_skips_incomplete() {
        let mut j = RunJournal::new();
        j.push(entry("A1", TaskOutcome::Ok, 5));
        j.push(entry("A2", TaskOutcome::Ok, 50));
        j.push(entry("A3", TaskOutcome::Failed { error: "x".into() }, 999));
        let slow = j.slowest(2);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].algo, "A2");
        assert_eq!(slow[1].algo, "A1");
    }

    #[test]
    fn json_roundtrip_preserves_outcomes() {
        if serde_json::to_string(&RunJournal::new()).is_err() {
            eprintln!("offline serde_json stub without serialization support; skipping");
            return;
        }
        let mut j = RunJournal::new();
        j.push(entry("A1", TaskOutcome::Ok, 7));
        j.push(entry(
            "A2",
            TaskOutcome::Failed {
                error: "panic: boom".into(),
            },
            0,
        ));
        let back = RunJournal::from_json(&j.to_json()).unwrap();
        assert_eq!(back.entries(), j.entries());
        // The serialized form is explicit about status.
        assert!(j.to_json().contains("\"status\": \"failed\""));
    }

    #[test]
    fn ingest_and_evictions_surface_in_summary() {
        let mut j = RunJournal::new();
        j.set_ingest(vec![
            IngestEntry {
                dataset: "F0".into(),
                frames: 100,
                parsed: 97,
                link_errors: 2,
                net_errors: 1,
                records_dropped: 3,
                resyncs: 2,
                bytes_skipped: 640,
                label_misses: 1,
                truncated_tail: true,
                ..IngestEntry::default()
            },
            IngestEntry {
                dataset: "F1".into(),
                frames: 50,
                parsed: 50,
                ..IngestEntry::default()
            },
        ]);
        j.set_flow_evictions(12);
        assert_eq!(j.total_quarantined(), 6);
        let s = j.summary(0, 0);
        assert!(s.contains("6 item(s) dropped across 1 dataset(s)"), "{s}");
        assert!(s.contains("97/100 frames parsed"), "{s}");
        assert!(s.contains("truncated tail"), "{s}");
        assert!(s.contains("12 LRU eviction(s)"), "{s}");
        assert!(!s.contains("F1:"), "clean datasets stay out of the summary");
    }

    #[test]
    fn clean_run_summary_has_no_quarantine_noise() {
        let mut j = RunJournal::new();
        j.push(entry("A1", TaskOutcome::Ok, 10));
        let s = j.summary(0, 0);
        assert!(!s.contains("quarantine"), "{s}");
        assert!(!s.contains("eviction"), "{s}");
    }

    #[test]
    fn extend_merges_ingest_and_evictions() {
        let mut a = RunJournal::new();
        a.set_flow_evictions(3);
        a.set_ingest(vec![IngestEntry {
            dataset: "P2".into(),
            ..IngestEntry::default()
        }]);
        let mut b = RunJournal::new();
        b.set_flow_evictions(4);
        a.extend(b);
        assert_eq!(a.flow_evictions(), 7);
        assert_eq!(a.ingest().len(), 1);
    }

    #[test]
    fn extend_merges_per_shard_flow_accounting() {
        let mut a = RunJournal::new();
        a.set_flow_shards(vec![FlowShardEntry {
            shard: 0,
            evictions: 2,
            records: 10,
            peak_active: 5,
        }]);
        let mut b = RunJournal::new();
        b.set_flow_shards(vec![
            FlowShardEntry {
                shard: 0,
                evictions: 1,
                records: 4,
                peak_active: 2,
            },
            FlowShardEntry {
                shard: 1,
                evictions: 7,
                records: 9,
                peak_active: 3,
            },
        ]);
        a.extend(b);
        assert_eq!(a.flow_shards().len(), 2);
        assert_eq!(a.flow_shards()[0].evictions, 3);
        assert_eq!(a.flow_shards()[0].records, 14);
        assert_eq!(a.flow_shards()[1].shard, 1);
        assert_eq!(a.flow_shards()[1].evictions, 7);
    }

    #[test]
    fn shard_accounting_appears_in_the_summary() {
        let mut j = RunJournal::new();
        j.set_flow_shards(vec![
            FlowShardEntry {
                shard: 0,
                evictions: 0,
                records: 6,
                peak_active: 4,
            },
            FlowShardEntry {
                shard: 1,
                evictions: 2,
                records: 5,
                peak_active: 3,
            },
        ]);
        let s = j.summary(0, 0);
        assert!(s.contains("flow shards: 2 shard(s), 11 record(s) finalized"), "{s}");
        assert!(s.contains("shard 1: 2 eviction(s), 5 record(s)"), "{s}");
        assert!(!s.contains("shard 0:"), "clean shards stay out of the summary");
    }

    #[test]
    fn all_zero_shard_table_stays_out_of_the_summary() {
        // A run that sharded the tracker but assembled no flows (e.g. a
        // pure non-IP capture) must not render a noise-only block.
        let mut j = RunJournal::new();
        j.set_flow_shards(vec![FlowShardEntry::default(), FlowShardEntry::default()]);
        let s = j.summary(0, 0);
        assert!(
            !s.contains("flow shards:"),
            "all-zero shard table must be suppressed: {s}"
        );
        // One nonzero counter anywhere brings the block back.
        j.set_flow_shards(vec![
            FlowShardEntry::default(),
            FlowShardEntry {
                shard: 1,
                peak_active: 1,
                ..FlowShardEntry::default()
            },
        ]);
        assert!(j.summary(0, 0).contains("flow shards: 2 shard(s)"));
    }

    /// Doc drift: the journal's flow-accounting fields are documented in
    /// DESIGN.md §4i and the README performance section; renaming a field
    /// (or bumping the schema) without updating the docs fails here.
    #[test]
    fn design_and_readme_document_flow_shard_accounting() {
        let design = include_str!("../../../DESIGN.md");
        let readme = include_str!("../../../README.md");
        for field in ["flow_shards", "flow_evictions", "FlowShardEntry"] {
            assert!(design.contains(field), "DESIGN.md missing `{field}`");
        }
        assert!(design.contains("schema v7"), "DESIGN.md missing schema v7");
        assert!(
            readme.contains("flow_shards") && readme.contains("schema v7"),
            "README missing journal v7 fields"
        );
        for field in ["kernel_backend", "kernel_features"] {
            assert!(design.contains(field), "DESIGN.md missing `{field}`");
        }
        // Backend names are part of the published schema: journals, bench
        // artifacts and the CLI all use these exact strings.
        for backend in ["scalar", "avx2", "neon"] {
            assert!(
                design.contains(backend),
                "DESIGN.md missing backend name `{backend}`"
            );
        }
        // v6 streaming: the StreamReport fields and the daemon's overload
        // machinery are documented in DESIGN.md §4k and the README
        // "Streaming mode" section.
        for field in ["StreamReport", "slices_shed", "breaker_trips", "score_p99_ms"] {
            assert!(design.contains(field), "DESIGN.md missing `{field}`");
        }
        for concept in ["backpressure", "circuit breaker", "load shedding", "watchdog"] {
            assert!(design.contains(concept), "DESIGN.md missing `{concept}`");
        }
        assert!(
            readme.contains("Streaming mode"),
            "README missing the Streaming mode section"
        );
        // v7 drift: the DriftReport/RunSeeds schema and the adaptive
        // recovery machinery are documented in DESIGN.md §4l and the
        // README "Drift & adversarial scenarios" section.
        for field in [
            "DriftReport",
            "RunSeeds",
            "false_alarms",
            "latency_ms",
            "baseline_acc",
            "retrains_aborted",
            "model_swaps",
            "prefilter_hits",
        ] {
            assert!(design.contains(field), "DESIGN.md missing `{field}`");
        }
        for concept in ["drift monitor", "Page", "Adapting", "warm-start", "validation gate"] {
            assert!(design.contains(concept), "DESIGN.md missing `{concept}`");
        }
        assert!(
            readme.contains("Drift & adversarial scenarios"),
            "README missing the drift scenarios section"
        );
        assert_eq!(SCHEMA_VERSION, 7, "schema bumped: update DESIGN.md/README");
    }

    #[test]
    fn journal_header_records_kernel_backend() {
        let j = RunJournal::new();
        assert!(
            ["scalar", "avx2", "neon"].contains(&j.kernel_backend()),
            "unexpected backend {:?}",
            j.kernel_backend()
        );
        assert!(!j.kernel_features().is_empty());
        let s = j.summary(0, 0);
        assert!(s.contains("kernel backend: "), "{s}");
        // Pre-v5 journals deserialize with an empty header and must not
        // fabricate a backend line.
        let mut old = RunJournal::new();
        old.kernel_backend = String::new();
        assert!(!old.summary(0, 0).contains("kernel backend"));
    }

    #[test]
    fn timed_out_counts_as_failure_for_strict() {
        let mut j = RunJournal::new();
        j.push(entry("A1", TaskOutcome::Ok, 10));
        j.push(entry(
            "A2",
            TaskOutcome::TimedOut {
                attempt: 2,
                deadline_ms: 500,
            },
            0,
        ));
        assert_eq!(j.failed_count(), 0, "timeouts are not Failed entries");
        assert_eq!(j.timed_out_count(), 1);
        assert!(j.has_failures(), "--strict must flag timeouts");
        let s = j.summary(0, 0);
        assert!(s.contains("1 timed out"), "{s}");
        assert!(s.contains("attempt 2 exceeded the 500 ms deadline"), "{s}");
    }

    #[test]
    fn roundtrip_preserves_timeout_and_attempt_history() {
        if serde_json::to_string(&RunJournal::new()).is_err() {
            eprintln!("offline serde_json stub without serialization support; skipping");
            return;
        }
        let mut j = RunJournal::new();
        let mut e = entry(
            "A7",
            TaskOutcome::TimedOut {
                attempt: 3,
                deadline_ms: 250,
            },
            0,
        );
        e.attempts = vec![
            AttemptRecord {
                attempt: 1,
                status: "failed".into(),
                error: "transient".into(),
                wall_ms: 12,
            },
            AttemptRecord {
                attempt: 2,
                status: "timed_out".into(),
                error: "cancelled".into(),
                wall_ms: 260,
            },
            AttemptRecord {
                attempt: 3,
                status: "timed_out".into(),
                error: "cancelled".into(),
                wall_ms: 255,
            },
        ];
        j.push(e);
        let json = j.to_json();
        assert!(json.contains("\"status\": \"timed_out\""), "{json}");
        assert!(
            json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")),
            "{json}"
        );
        let back = RunJournal::from_json(&json).unwrap();
        assert_eq!(back.schema_version(), SCHEMA_VERSION);
        assert_eq!(back.entries(), j.entries());
        assert_eq!(back.entries()[0].attempts.len(), 3);
        assert_eq!(back.timed_out_count(), 1);
        assert_eq!(back.retried_count(), 1);
    }

    #[test]
    fn v1_journal_without_schema_version_still_loads() {
        // A journal written before supervision: no schema_version, no
        // attempts, no timed_out status.
        let v1 = r#"{
            "entries": [
                {"algo": "A14", "train": "F4", "test": "F4", "mode": "same",
                 "outcome": {"status": "ok"}, "wall_ms": 5},
                {"algo": "A14", "train": "F4", "test": "F6", "mode": "cross",
                 "outcome": {"status": "failed", "error": "boom"}}
            ]
        }"#;
        let j = match RunJournal::from_json(v1) {
            Ok(j) => j,
            Err(_) => {
                eprintln!("offline serde_json stub without deserialization support; skipping");
                return;
            }
        };
        assert_eq!(j.schema_version(), 1);
        assert_eq!(j.len(), 2);
        assert_eq!(j.ok_count(), 1);
        assert_eq!(j.failed_count(), 1);
        assert!(j.entries().iter().all(|e| e.attempts.is_empty()));
    }

    #[test]
    fn v5_journal_without_stream_section_still_loads() {
        // A journal written by the v5 (pre-streaming) suite: kernel header
        // present, no `stream` section. It must load with `stream: None`
        // and keep its recorded version — never fabricate a StreamReport.
        let v5 = r#"{
            "schema_version": 5,
            "entries": [
                {"algo": "A14", "train": "F4", "test": "F4", "mode": "same",
                 "outcome": {"status": "ok"}, "wall_ms": 7}
            ],
            "flow_evictions": 3,
            "flow_shards": [
                {"shard": 0, "evictions": 3, "records": 12, "peak_active": 5}
            ],
            "kernel_backend": "scalar",
            "kernel_features": "sse2"
        }"#;
        let j = match RunJournal::from_json(v5) {
            Ok(j) => j,
            Err(_) => {
                eprintln!("offline serde_json stub without deserialization support; skipping");
                return;
            }
        };
        assert_eq!(j.schema_version(), 5);
        assert_eq!(j.ok_count(), 1);
        assert_eq!(j.flow_evictions(), 3);
        assert_eq!(j.flow_shards().len(), 1);
        assert_eq!(j.kernel_backend(), "scalar");
        assert!(j.stream().is_none(), "v5 journals carry no stream report");
        assert!(!j.summary(0, 0).contains("stream:"));
    }

    #[test]
    fn v6_journal_without_drift_or_seeds_still_loads() {
        // A journal written by the v6 (pre-drift) suite: stream section
        // present, no `drift` inside it and no `seeds` header. It must
        // load with both absent and keep its recorded version — never
        // fabricate a drift report or a seed header.
        let v6 = r#"{
            "schema_version": 6,
            "entries": [
                {"algo": "A14", "train": "F4", "test": "F4", "mode": "same",
                 "outcome": {"status": "ok"}, "wall_ms": 7}
            ],
            "kernel_backend": "scalar",
            "kernel_features": "sse2",
            "stream": {
                "packets_read": 10,
                "packets_parsed": 10,
                "records_finalized": 4,
                "slices_total": 2,
                "slices_scored": 2,
                "records_scored": 4,
                "breaker_final": "closed",
                "drained_clean": true
            }
        }"#;
        let j = match RunJournal::from_json(v6) {
            Ok(j) => j,
            Err(_) => {
                eprintln!("offline serde_json stub without deserialization support; skipping");
                return;
            }
        };
        assert_eq!(j.schema_version(), 6);
        let r = j.stream().expect("v6 stream section loads");
        assert!(r.accounts_exactly());
        assert!(r.drift.is_none(), "v6 stream reports carry no drift section");
        assert!(j.seeds().is_none(), "v6 journals carry no seeds header");
        let s = j.summary(0, 0);
        assert!(!s.contains("drift:"), "{s}");
        assert!(!s.contains("seeds:"), "{s}");
    }

    #[test]
    fn seeds_header_roundtrips_and_renders() {
        let mut j = RunJournal::new();
        assert!(j.seeds().is_none());
        j.set_seeds(RunSeeds {
            generator: 42,
            chaos: Some(7),
            scenario: Some("S2".into()),
        });
        let s = j.summary(0, 0);
        assert!(s.contains("seeds: generator 42, chaos 7, scenario S2"), "{s}");
        // Absent chaos/scenario stay out of the line entirely.
        j.set_seeds(RunSeeds {
            generator: 9,
            chaos: None,
            scenario: None,
        });
        let s = j.summary(0, 0);
        assert!(s.contains("seeds: generator 9\n"), "{s}");
        assert!(!s.contains("chaos"), "{s}");

        if serde_json::to_string(&j).is_err() {
            eprintln!("offline serde_json stub without serialization support; skipping");
            return;
        }
        j.set_seeds(RunSeeds {
            generator: 42,
            chaos: Some(7),
            scenario: Some("S2".into()),
        });
        let back = RunJournal::from_json(&j.to_json()).unwrap();
        assert_eq!(back.seeds(), j.seeds());
        assert_eq!(back.seeds().unwrap().scenario.as_deref(), Some("S2"));
    }

    #[test]
    fn stream_report_roundtrips_and_renders() {
        let mut j = RunJournal::new();
        let report = StreamReport {
            packets_read: 1000,
            packets_parsed: 990,
            decode_errors: 10,
            non_ip: 5,
            records_finalized: 200,
            slices_total: 20,
            slices_scored: 14,
            slices_degraded: 4,
            slices_shed: 2,
            records_scored: 150,
            records_degraded: 40,
            records_shed: 10,
            alarms: 7,
            score_p50_ms: 1.25,
            score_p99_ms: 9.5,
            breaker_trips: 1,
            breaker_final: "closed".into(),
            stages: vec![StreamStageEntry {
                stage: "score".into(),
                queue_capacity: 8,
                queue_peak: 8,
                restarts: 1,
            }],
            drained_clean: true,
            sigterm: true,
            drift: Some(DriftReport {
                scenario: "S2".into(),
                family: "drift".into(),
                breakpoints: vec![
                    DriftBreakpointEntry {
                        ts_us: 14_500_000,
                        kind: "device-churn".into(),
                        detected: true,
                        detected_ts_us: 16_100_000,
                        latency_ms: 1600,
                    },
                    DriftBreakpointEntry {
                        ts_us: 25_000_000,
                        kind: "rate-cycle".into(),
                        ..DriftBreakpointEntry::default()
                    },
                ],
                detections: 1,
                false_alarms: 0,
                acc_before: 0.95,
                acc_during: 0.6,
                acc_after: 0.9,
                baseline_acc: 0.7,
                adapt_entries: 1,
                prefilter_hits: 40,
                retrain_attempts: 2,
                retrain_failures: 1,
                retrains_aborted: 0,
                model_swaps: 1,
                retrain_ms_total: 310,
            }),
        };
        assert!(report.accounts_exactly());
        assert!(!report.drift.as_ref().unwrap().all_breakpoints_detected());
        j.set_stream(report.clone());
        let s = j.summary(0, 0);
        assert!(s.contains("stream: 1000 packet(s) read"), "{s}");
        assert!(s.contains("shed 2 slice(s)"), "{s}");
        assert!(s.contains("p50 1.25 ms / p99 9.50 ms"), "{s}");
        assert!(s.contains("stage score: queue peak 8/8, 1 restart(s)"), "{s}");
        assert!(s.contains("drain: clean (SIGTERM)"), "{s}");
        assert!(s.contains("drift: scenario S2 [drift]"), "{s}");
        assert!(s.contains("breakpoint device-churn @ 14500000 us: detected +1600 ms"), "{s}");
        assert!(s.contains("breakpoint rate-cycle @ 25000000 us: MISSED"), "{s}");
        assert!(
            s.contains("accuracy before 0.950 / during 0.600 / after 0.900 (rules baseline 0.700)"),
            "{s}"
        );
        assert!(
            s.contains("retrain: 2 attempt(s), 1 failure(s), 0 aborted, 1 swap(s), 310 ms total, 40 prefilter hit(s)"),
            "{s}"
        );

        if serde_json::to_string(&j).is_err() {
            eprintln!("offline serde_json stub without serialization support; skipping");
            return;
        }
        let json = j.to_json();
        assert!(json.contains("\"slices_shed\""), "{json}");
        let back = RunJournal::from_json(&json).unwrap();
        assert_eq!(back.stream(), Some(&report));
        assert_eq!(back.schema_version(), SCHEMA_VERSION);
    }

    #[test]
    fn broken_stream_accounting_is_detected() {
        let mut r = StreamReport {
            packets_read: 10,
            packets_parsed: 9,
            decode_errors: 1,
            ..StreamReport::default()
        };
        assert!(r.accounts_exactly());
        r.records_finalized = 5; // five records, none attributed
        assert!(!r.accounts_exactly(), "silent record loss must be caught");
    }

    #[test]
    fn wal_line_roundtrip_covers_every_outcome() {
        let outcomes = [
            TaskOutcome::Ok,
            TaskOutcome::SkippedIncompatible {
                why: "granularity \"mismatch\"\npacket vs connection".into(),
            },
            TaskOutcome::Failed {
                error: "panic: \\boom\t{json: \"chars\"}".into(),
            },
            TaskOutcome::TimedOut {
                attempt: 3,
                deadline_ms: 250,
            },
        ];
        for outcome in outcomes {
            let mut e = entry("A14", outcome, 42);
            e.extract_ms = 7;
            e.attempts = vec![AttemptRecord {
                attempt: 1,
                status: "failed".into(),
                error: "line1\nline2".into(),
                wall_ms: 12,
            }];
            let rec = WalRecord {
                entry: e,
                rows: vec![
                    ResultRow {
                        algo: "A14".into(),
                        train: "F4".into(),
                        test: "F6".into(),
                        mode: "cross".into(),
                        attack: Some("syn-flood".into()),
                        precision: 0.123456789012345,
                        recall: 1.0,
                        f1: 0.5,
                        accuracy: 1e-9,
                        auc: 0.75,
                        n_train: 700,
                        n_test: 300,
                        extract_ms: 1,
                        train_ms: 2,
                        test_ms: 3,
                        wall_ms: 6,
                    },
                    ResultRow {
                        algo: "A14".into(),
                        train: "F4".into(),
                        test: "F6".into(),
                        mode: "cross".into(),
                        attack: None,
                        precision: 0.0,
                        recall: 0.0,
                        f1: 0.0,
                        accuracy: 0.0,
                        auc: 0.5,
                        n_train: 1,
                        n_test: 1,
                        extract_ms: 0,
                        train_ms: 0,
                        test_ms: 0,
                        wall_ms: 0,
                    },
                ],
            };
            let line = rec.to_wal_line();
            assert!(!line.contains('\n'), "a WAL record must be one line");
            let back = WalRecord::from_wal_line(&line).expect("line decodes");
            assert_eq!(back, rec, "lossless roundtrip for {line}");
        }
        // Garbage and torn prefixes decode to None, never panic.
        assert!(WalRecord::from_wal_line("").is_none());
        assert!(WalRecord::from_wal_line("{\"entry\":{\"algo\":\"A1\"").is_none());
        assert!(WalRecord::from_wal_line("{\"rows\":[]}").is_none());
    }

    #[test]
    fn wal_loader_tolerates_torn_tail() {
        let rec = WalRecord {
            entry: entry("A14", TaskOutcome::Ok, 9),
            rows: Vec::new(),
        };
        let line = rec.to_wal_line();
        let dir = std::env::temp_dir().join("lumen_wal_torn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        // Two good lines, then a line torn mid-write by a crash.
        let torn = &line[..line.len() / 2];
        std::fs::write(&path, format!("{line}\n{line}\n{torn}")).unwrap();
        let records = load_wal(&path).unwrap();
        assert_eq!(records.len(), 2, "torn tail must be skipped, not fatal");
        assert!(records.iter().all(|r| r.entry.algo == "A14"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sort_is_deterministic() {
        let mut j = RunJournal::new();
        j.push(entry("B", TaskOutcome::Ok, 1));
        j.push(entry("A", TaskOutcome::Ok, 2));
        j.sort();
        assert_eq!(j.entries()[0].algo, "A");
    }
}
