//! The Lumen benchmarking suite (§3.3).
//!
//! Pairs the algorithm catalog with the 15-dataset registry, enforces
//! faithful algorithm/dataset pairing (matching classification granularity,
//! link support, and restrictions), runs same-dataset and cross-dataset
//! evaluations with a shared feature cache, stores every result in a
//! query-friendly store, and renders the paper's tables/figures as aligned
//! text heatmaps and CSV series.
//!
//! One binary per paper artifact lives in `src/bin/` (`fig5`, `fig7`, ...,
//! `table1`, `validation`, `scalability`, `observations`); each prints the
//! rows/series of the corresponding table or figure.

#![forbid(unsafe_code)]

pub mod audit;
pub mod datasets;
pub mod exp;
pub mod journal;
pub mod literature;
pub mod render;
pub mod runner;
pub mod serve;
pub mod store;

pub use audit::{
    audit_matrix, audit_plan, matrix_rule_catalog, AuditReport, DatasetAuditInfo, TaskAuditInfo,
};
pub use datasets::{attack_from_tag, attack_tag, BenchDataset, DatasetRegistry};
pub use journal::{
    AttemptRecord, AuditFinding, DriftBreakpointEntry, DriftReport, FlowShardEntry, IngestEntry,
    JournalEntry, RunJournal, RunSeeds, TaskOutcome, WalRecord,
};
pub use runner::{EvalMode, FaultKind, FaultSpec, MatrixRun, RunBudget, RunConfig, Runner};
pub use serve::{
    build_serve_capture, run_stream, BreakerState, CircuitBreaker, RuleEngine, ServeConfig,
    ShedBuffer, StageId, StreamFault, StreamFaultKind, StreamOutcome,
};
pub use store::{ResultRow, ResultStore};

/// Errors surfaced by the suite.
#[derive(Debug)]
pub enum BenchError {
    /// An algorithm/dataset pairing is not faithful.
    Incompatible {
        algo: String,
        dataset: String,
        why: String,
    },
    /// Framework-core failure.
    Core(lumen_core::CoreError),
    /// I/O failure (result persistence).
    Io(std::io::Error),
    /// Serialization failure.
    Serde(String),
    /// A failure worth retrying (injected transient faults, resource
    /// contention); the supervised runner re-runs these with backoff up to
    /// `RunBudget::max_attempts`.
    Transient {
        /// What went wrong.
        why: String,
    },
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Incompatible { algo, dataset, why } => {
                write!(f, "{algo} cannot faithfully run on {dataset}: {why}")
            }
            BenchError::Core(e) => write!(f, "core: {e}"),
            BenchError::Io(e) => write!(f, "io: {e}"),
            BenchError::Serde(e) => write!(f, "serde: {e}"),
            BenchError::Transient { why } => write!(f, "transient: {why}"),
        }
    }
}

impl BenchError {
    /// Transient vs. permanent classification for the retry loop.
    ///
    /// | variant                      | class      | runner behavior        |
    /// |------------------------------|------------|------------------------|
    /// | `Incompatible`               | skip       | journal skip, no retry |
    /// | `Core(CoreError::Cancelled)` | timeout    | retryable, `TimedOut`  |
    /// | `Transient`                  | transient  | retry with backoff     |
    /// | `Io`                         | transient  | retry with backoff     |
    /// | everything else              | permanent  | journal `Failed`       |
    pub fn is_transient(&self) -> bool {
        matches!(self, BenchError::Transient { .. } | BenchError::Io(_))
    }

    /// True when the error is the cooperative-cancellation signal (the
    /// per-task deadline fired and unwound the work).
    pub fn is_cancelled(&self) -> bool {
        matches!(self, BenchError::Core(lumen_core::CoreError::Cancelled))
    }
}

impl std::error::Error for BenchError {}

impl From<lumen_core::CoreError> for BenchError {
    fn from(e: lumen_core::CoreError) -> Self {
        BenchError::Core(e)
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

/// Result alias.
pub type BenchResult<T> = std::result::Result<T, BenchError>;
