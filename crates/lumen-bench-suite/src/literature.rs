//! Literature meta-analysis (§2.2, Figure 1a): which published algorithms
//! could be compared at all, based on the datasets their papers evaluate on.

use lumen_algorithms::{all_algorithms, Algorithm, AlgorithmId};

/// For each published algorithm, the number of *other* algorithms whose
/// papers share at least one evaluation dataset — Figure 1a's bar heights.
pub fn comparison_counts() -> Vec<(AlgorithmId, usize)> {
    let algos: Vec<Algorithm> = all_algorithms()
        .into_iter()
        .filter(|a| AlgorithmId::PUBLISHED.contains(&a.id))
        .collect();
    algos
        .iter()
        .map(|a| {
            let count = algos
                .iter()
                .filter(|b| {
                    b.id != a.id && a.lit_datasets.iter().any(|d| b.lit_datasets.contains(d))
                })
                .count();
            (a.id, count)
        })
        .collect()
}

/// Fraction of published algorithms with no possible literature comparison
/// (the paper: "for half of the algorithms ... no possible comparison").
pub fn uncomparable_fraction() -> f64 {
    let counts = comparison_counts();
    counts.iter().filter(|(_, c)| *c == 0).count() as f64 / counts.len() as f64
}

/// Table-1 rows: (name, model, granularity, datasets, reported performance).
pub fn table1_rows() -> Vec<[String; 5]> {
    all_algorithms()
        .into_iter()
        .filter(|a| AlgorithmId::PUBLISHED.contains(&a.id))
        .map(|a| {
            [
                format!("{} {}", a.name, a.citation),
                a.ml_model.to_string(),
                a.granularity.name().to_string(),
                a.lit_datasets.join(", "),
                a.reported.to_string(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nprint_variants_compare_with_smartdet() {
        // nPrint (cicids2017) and smartdet (cicids2017) share a dataset.
        let counts = comparison_counts();
        let a01 = counts
            .iter()
            .find(|(id, _)| *id == AlgorithmId::A01)
            .unwrap();
        assert!(a01.1 >= 1, "nprint should be comparable: {}", a01.1);
    }

    #[test]
    fn custom_dataset_papers_are_uncomparable() {
        let counts = comparison_counts();
        for id in [AlgorithmId::A00, AlgorithmId::A05, AlgorithmId::A13] {
            let (_, c) = counts.iter().find(|(i, _)| *i == id).unwrap();
            assert_eq!(*c, 0, "{id:?} used only a custom dataset");
        }
    }

    #[test]
    fn roughly_half_have_no_comparison() {
        let f = uncomparable_fraction();
        assert!(
            (0.3..=0.7).contains(&f),
            "uncomparable fraction {f} (paper: ~half)"
        );
    }

    #[test]
    fn table1_has_sixteen_rows() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().all(|r| !r[0].is_empty()));
    }
}
