//! Terminal renderers for the paper's figures: heatmaps, per-algorithm
//! series, and distribution summaries.

/// Renders a heatmap of optional values in `[0, 1]` as an aligned text
/// table. `None` cells print as `--` (the paper's gray squares: no faithful
/// run possible).
pub fn heatmap(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    cells: &[Vec<Option<f64>>],
) -> String {
    assert_eq!(cells.len(), row_labels.len());
    let rw = row_labels.iter().map(String::len).max().unwrap_or(4).max(4);
    let cw = col_labels.iter().map(String::len).max().unwrap_or(5).max(5);
    let mut out = format!("# {title}\n{:rw$} ", "");
    for c in col_labels {
        out.push_str(&format!("{c:>cw$} "));
    }
    out.push('\n');
    for (r, label) in row_labels.iter().enumerate() {
        out.push_str(&format!("{label:<rw$} "));
        for cell in &cells[r] {
            match cell {
                Some(v) => out.push_str(&format!("{:>cw$} ", format!("{:.2}", v))),
                None => out.push_str(&format!("{:>cw$} ", "--")),
            }
        }
        out.push('\n');
    }
    out
}

/// A five-number summary line for one algorithm's score distribution
/// (Figure 1b/1c and Figure 7's box-plot data, as text).
pub fn distribution_line(label: &str, values: &[f64]) -> String {
    if values.is_empty() {
        return format!("{label:<22} (no runs)");
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = |p: f64| lumen_util::stats::quantile_sorted(&sorted, p);
    format!(
        "{label:<22} n={:<3} min={:.2} q25={:.2} med={:.2} q75={:.2} max={:.2}",
        sorted.len(),
        q(0.0),
        q(0.25),
        q(0.5),
        q(0.75),
        q(1.0)
    )
}

/// Renders aligned `label value` rows (bar-chart data as text).
pub fn bar_rows(pairs: &[(String, f64)]) -> String {
    let w = pairs.iter().map(|(l, _)| l.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    for (label, v) in pairs {
        let bar = "#".repeat((v * 40.0).round().clamp(0.0, 60.0) as usize);
        out.push_str(&format!("{label:<w$} {v:>6.2} {bar}\n"));
    }
    out
}

/// CSV series: header + one row per entry, for plotting outside.
pub fn csv_series(header: &str, rows: &[Vec<String>]) -> String {
    let mut out = format!("{header}\n");
    for r in rows {
        out.push_str(&r.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_renders_values_and_gaps() {
        let s = heatmap(
            "test",
            &["A06".into(), "A14".into()],
            &["F0".into(), "F1".into()],
            &[vec![Some(0.987), None], vec![Some(0.5), Some(0.25)]],
        );
        assert!(s.contains("# test"));
        assert!(s.contains("0.99"));
        assert!(s.contains("--"));
        assert!(s.contains("0.25"));
    }

    #[test]
    fn distribution_line_quartiles() {
        let line = distribution_line("A10", &[0.1, 0.2, 0.3, 0.4, 0.5]);
        assert!(line.contains("med=0.30"));
        assert!(line.contains("min=0.10"));
        assert!(line.contains("max=0.50"));
    }

    #[test]
    fn distribution_line_empty() {
        assert!(distribution_line("A00", &[]).contains("no runs"));
    }

    #[test]
    fn bar_rows_scale() {
        let s = bar_rows(&[("x".into(), 0.5), ("y".into(), 1.0)]);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].matches('#').count() > lines[0].matches('#').count());
    }
}
