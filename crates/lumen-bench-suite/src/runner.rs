//! The faithful evaluation runner.
//!
//! Enforces §3.3's faithfulness rule — an algorithm only runs against
//! datasets of its own classification granularity (and a link type it can
//! parse) — then executes same-dataset (70/30 stratified split),
//! cross-dataset (train on all of A, test on all of B), and merged-dataset
//! (§5.4) evaluations. Feature extraction is shared across algorithms and
//! runs through the framework's [`lumen_core::cache::FeatureCache`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lumen_algorithms::{algorithm, Algorithm, AlgorithmId};
use lumen_core::cache::FeatureCache;
use lumen_core::data::PredOutput;
use lumen_core::{CoreError, Table};
use lumen_ml::metrics::{confusion, roc_auc};
use lumen_synth::{AttackKind, DatasetId};
use lumen_util::Rng;
use parking_lot::Mutex;

use crate::datasets::{attack_tag, BenchDataset, DatasetRegistry};
use crate::store::{ResultRow, ResultStore};
use crate::{BenchError, BenchResult};

/// Evaluation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Train and test on a stratified split of one dataset.
    Same,
    /// Train on one dataset, test on another.
    Cross,
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Training fraction for same-dataset splits.
    pub train_frac: f64,
    /// Base seed for splits and model training.
    pub seed: u64,
    /// Worker threads for matrix runs.
    pub threads: usize,
    /// Whether to also emit per-attack rows.
    pub per_attack: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            train_frac: 0.7,
            seed: 7,
            threads: 4,
            per_attack: false,
        }
    }
}

/// The evaluation runner.
pub struct Runner {
    /// Dataset registry (shared, lazily built).
    pub registry: Arc<DatasetRegistry>,
    /// Shared feature cache.
    pub cache: FeatureCache,
    /// Configuration.
    pub config: RunConfig,
}

impl Runner {
    /// Creates a runner over a registry.
    pub fn new(registry: Arc<DatasetRegistry>, config: RunConfig) -> Runner {
        Runner {
            registry,
            cache: FeatureCache::new(),
            config,
        }
    }

    /// Checks the faithfulness rules; `Err` explains the violation.
    pub fn compatible(algo: &Algorithm, ds: &BenchDataset) -> Result<(), String> {
        if !algo.matches_granularity(ds.is_packet_level()) {
            return Err(format!(
                "granularity mismatch: {} algorithm vs {} labels",
                algo.granularity.name(),
                if ds.is_packet_level() {
                    "packet"
                } else {
                    "connection"
                }
            ));
        }
        if !algo.supports_link(ds.capture.link) {
            return Err("link type unsupported".into());
        }
        if !algo.allowed_on(ds.code()) {
            return Err("algorithm restricted to other datasets".into());
        }
        Ok(())
    }

    /// Extracts (or fetches cached) features of an algorithm on a dataset.
    pub fn features(&self, algo: &Algorithm, ds: &BenchDataset) -> BenchResult<Arc<Table>> {
        let fp = algo.feature_fingerprint();
        self.cache
            .get_or_compute(ds.code(), fp, || algo.extract_features(&ds.source))
            .map_err(BenchError::from)
    }

    fn split(table: &Table, frac: f64, seed: u64) -> (Table, Table) {
        let mut rng = Rng::new(seed);
        let mut pos: Vec<usize> = (0..table.rows())
            .filter(|&i| table.labels[i] == 1)
            .collect();
        let mut neg: Vec<usize> = (0..table.rows())
            .filter(|&i| table.labels[i] == 0)
            .collect();
        rng.shuffle(&mut pos);
        rng.shuffle(&mut neg);
        let cut = |v: &[usize]| ((v.len() as f64) * frac).round() as usize;
        let (pc, nc) = (cut(&pos), cut(&neg));
        let train: Vec<usize> = pos[..pc].iter().chain(neg[..nc].iter()).copied().collect();
        let test: Vec<usize> = pos[pc..].iter().chain(neg[nc..].iter()).copied().collect();
        (table.select_rows(&train), table.select_rows(&test))
    }

    fn incompatible(algo: &Algorithm, ds: &BenchDataset, why: String) -> BenchError {
        BenchError::Incompatible {
            algo: algo.id.code().into(),
            dataset: ds.code().into(),
            why,
        }
    }

    fn make_row(
        algo: &Algorithm,
        train_code: &str,
        test_code: &str,
        mode: &str,
        preds: &PredOutput,
        n_train: usize,
        wall_ms: u64,
    ) -> ResultRow {
        let c = confusion(&preds.preds, &preds.labels);
        ResultRow {
            algo: algo.id.code().into(),
            train: train_code.into(),
            test: test_code.into(),
            mode: mode.into(),
            attack: None,
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
            accuracy: c.accuracy(),
            auc: roc_auc(&preds.scores, &preds.labels),
            n_train,
            n_test: preds.labels.len(),
            wall_ms,
        }
    }

    /// Per-attack breakdown: restricts the test rows to benign + one attack
    /// and recomputes precision/recall per attack present (Figure 5's
    /// methodology).
    pub fn per_attack_rows(
        algo: &Algorithm,
        train_code: &str,
        test_code: &str,
        mode: &str,
        preds: &PredOutput,
        n_train: usize,
    ) -> Vec<ResultRow> {
        let mut rows = Vec::new();
        for kind in AttackKind::ALL {
            let tag = attack_tag(kind);
            let idx: Vec<usize> = (0..preds.labels.len())
                .filter(|&i| preds.labels[i] == 0 || preds.tags[i] == tag)
                .collect();
            let has_attack = idx
                .iter()
                .any(|&i| preds.tags[i] == tag && preds.labels[i] == 1);
            if !has_attack {
                continue;
            }
            let sub_preds: Vec<u8> = idx.iter().map(|&i| preds.preds[i]).collect();
            let sub_truth: Vec<u8> = idx.iter().map(|&i| preds.labels[i]).collect();
            let sub_scores: Vec<f64> = idx.iter().map(|&i| preds.scores[i]).collect();
            let c = confusion(&sub_preds, &sub_truth);
            rows.push(ResultRow {
                algo: algo.id.code().into(),
                train: train_code.into(),
                test: test_code.into(),
                mode: mode.into(),
                attack: Some(kind.name().into()),
                precision: c.precision(),
                recall: c.recall(),
                f1: c.f1(),
                accuracy: c.accuracy(),
                auc: roc_auc(&sub_scores, &sub_truth),
                n_train,
                n_test: idx.len(),
                wall_ms: 0,
            });
        }
        rows
    }

    /// Same-dataset evaluation: stratified split, train, test.
    pub fn run_same(&self, id: AlgorithmId, ds_id: DatasetId) -> BenchResult<Vec<ResultRow>> {
        let algo = algorithm(id);
        let ds = self.registry.get(ds_id);
        Self::compatible(&algo, &ds).map_err(|why| Self::incompatible(&algo, &ds, why))?;
        let start = Instant::now();
        let features = self.features(&algo, &ds)?;
        let (train, test) = Self::split(&features, self.config.train_frac, self.config.seed);
        if train.labels.iter().all(|&l| l == 1) || train.labels.iter().all(|&l| l == 0) {
            return Err(Self::incompatible(
                &algo,
                &ds,
                "training split is single-class".into(),
            ));
        }
        let train = Arc::new(train);
        let test = Arc::new(test);
        let trained = algo
            .train(&train, self.config.seed)
            .map_err(BenchError::from)?;
        let (_report, preds) = algo.evaluate(&trained, &test).map_err(BenchError::from)?;
        let wall_ms = start.elapsed().as_millis() as u64;
        let mut rows = vec![Self::make_row(
            &algo,
            ds.code(),
            ds.code(),
            "same",
            &preds,
            train.rows(),
            wall_ms,
        )];
        if self.config.per_attack {
            rows.extend(Self::per_attack_rows(
                &algo,
                ds.code(),
                ds.code(),
                "same",
                &preds,
                train.rows(),
            ));
        }
        Ok(rows)
    }

    /// Cross-dataset evaluation: train on all of `train_id`, test on all of
    /// `test_id`.
    pub fn run_cross(
        &self,
        id: AlgorithmId,
        train_id: DatasetId,
        test_id: DatasetId,
    ) -> BenchResult<Vec<ResultRow>> {
        let algo = algorithm(id);
        let train_ds = self.registry.get(train_id);
        let test_ds = self.registry.get(test_id);
        Self::compatible(&algo, &train_ds)
            .map_err(|why| Self::incompatible(&algo, &train_ds, why))?;
        Self::compatible(&algo, &test_ds)
            .map_err(|why| Self::incompatible(&algo, &test_ds, why))?;
        let start = Instant::now();
        let train = self.features(&algo, &train_ds)?;
        let test = self.features(&algo, &test_ds)?;
        if train.labels.iter().all(|&l| l == 1) || train.labels.iter().all(|&l| l == 0) {
            return Err(Self::incompatible(
                &algo,
                &train_ds,
                "training data is single-class".into(),
            ));
        }
        let trained = algo
            .train(&train, self.config.seed)
            .map_err(BenchError::from)?;
        let (_report, preds) = algo.evaluate(&trained, &test).map_err(BenchError::from)?;
        let wall_ms = start.elapsed().as_millis() as u64;
        let mut rows = vec![Self::make_row(
            &algo,
            train_ds.code(),
            test_ds.code(),
            "cross",
            &preds,
            train.rows(),
            wall_ms,
        )];
        if self.config.per_attack {
            rows.extend(Self::per_attack_rows(
                &algo,
                train_ds.code(),
                test_ds.code(),
                "cross",
                &preds,
                train.rows(),
            ));
        }
        Ok(rows)
    }

    /// Merged-dataset evaluation (§5.4): the training set concatenates
    /// `train_frac_of_each` of every dataset's training split (the paper
    /// uses 10%, keeping the training-set size constant); the test set
    /// concatenates `test_frac_of_each` of every dataset's held-out split.
    /// The paper also subsamples the test side; with the suite's smaller
    /// synthetic captures, evaluating on the full held-out halves keeps the
    /// per-attack slices statistically meaningful.
    pub fn run_merged(
        &self,
        id: AlgorithmId,
        datasets: &[DatasetId],
        train_frac_of_each: f64,
        test_frac_of_each: f64,
    ) -> BenchResult<Vec<ResultRow>> {
        let algo = algorithm(id);
        let start = Instant::now();
        let mut merged_train: Option<Table> = None;
        let mut merged_test: Option<Table> = None;
        let mut test_origins: Vec<DatasetId> = Vec::new();
        for &ds_id in datasets {
            let ds = self.registry.get(ds_id);
            if Self::compatible(&algo, &ds).is_err() {
                continue;
            }
            let features = self.features(&algo, &ds)?;
            let (train, test) = Self::split(&features, self.config.train_frac, self.config.seed);
            // Take a prefix of each split — `split` already shuffled, so a
            // prefix is a stratified-ish random sample.
            let take = |t: &Table, frac: f64| {
                let keep = ((t.rows() as f64) * frac).ceil() as usize;
                let idx: Vec<usize> = (0..t.rows().min(keep.max(2))).collect();
                t.select_rows(&idx)
            };
            let (tr, te) = (
                take(&train, train_frac_of_each),
                take(&test, test_frac_of_each),
            );
            // Remember each test row's origin dataset so the per-attack
            // breakdown can mirror the paper's "subset of datasets that
            // contain the attack" rule.
            test_origins.extend(std::iter::repeat_n(ds_id, te.rows()));
            merged_train = Some(match merged_train {
                None => tr,
                Some(acc) => acc.vcat(&tr).map_err(BenchError::from)?,
            });
            merged_test = Some(match merged_test {
                None => te,
                Some(acc) => acc.vcat(&te).map_err(BenchError::from)?,
            });
        }
        let (Some(train), Some(test)) = (merged_train, merged_test) else {
            return Err(BenchError::Core(CoreError::TypeError(format!(
                "no compatible datasets for {}",
                algo.id.code()
            ))));
        };
        let train = Arc::new(train);
        let test = Arc::new(test);
        let trained = algo
            .train(&train, self.config.seed)
            .map_err(BenchError::from)?;
        let (_report, preds) = algo.evaluate(&trained, &test).map_err(BenchError::from)?;
        let wall_ms = start.elapsed().as_millis() as u64;
        let mut rows = vec![Self::make_row(
            &algo,
            "MIX",
            "MIX",
            "merged",
            &preds,
            train.rows(),
            wall_ms,
        )];
        // Per-attack breakdown with the paper's restriction: algorithm Y ×
        // attack X is computed over the datasets that contain X, so benign
        // traffic from unrelated datasets does not dilute the precision of
        // rare attacks.
        for kind in AttackKind::ALL {
            let tag = attack_tag(kind);
            let allowed: Vec<DatasetId> = datasets
                .iter()
                .copied()
                .filter(|d| d.spec().attacks.contains(&kind))
                .collect();
            if allowed.is_empty() {
                continue;
            }
            let idx: Vec<usize> = (0..preds.labels.len())
                .filter(|&i| {
                    allowed.contains(&test_origins[i])
                        && (preds.labels[i] == 0 || preds.tags[i] == tag)
                })
                .collect();
            let has_attack = idx
                .iter()
                .any(|&i| preds.tags[i] == tag && preds.labels[i] == 1);
            if !has_attack {
                continue;
            }
            let sub_preds: Vec<u8> = idx.iter().map(|&i| preds.preds[i]).collect();
            let sub_truth: Vec<u8> = idx.iter().map(|&i| preds.labels[i]).collect();
            let sub_scores: Vec<f64> = idx.iter().map(|&i| preds.scores[i]).collect();
            let c = confusion(&sub_preds, &sub_truth);
            rows.push(ResultRow {
                algo: algo.id.code().into(),
                train: "MIX".into(),
                test: "MIX".into(),
                mode: "merged".into(),
                attack: Some(kind.name().into()),
                precision: c.precision(),
                recall: c.recall(),
                f1: c.f1(),
                accuracy: c.accuracy(),
                auc: roc_auc(&sub_scores, &sub_truth),
                n_train: train.rows(),
                n_test: idx.len(),
                wall_ms: 0,
            });
        }
        Ok(rows)
    }

    /// Runs the full faithful matrix: every compatible (algorithm, train,
    /// test) combination. `include_cross = false` restricts to the diagonal.
    /// Incompatible pairings are silently skipped (they are not failures —
    /// they are the faithfulness rule working).
    pub fn run_matrix(
        &self,
        algos: &[AlgorithmId],
        datasets: &[DatasetId],
        include_cross: bool,
    ) -> ResultStore {
        // Build the task list.
        let mut tasks: Vec<(AlgorithmId, DatasetId, DatasetId)> = Vec::new();
        for &a in algos {
            let algo = algorithm(a);
            for &train in datasets {
                let train_ds = self.registry.get(train);
                if Self::compatible(&algo, &train_ds).is_err() {
                    continue;
                }
                for &test in datasets {
                    if !include_cross && train != test {
                        continue;
                    }
                    let test_ds = self.registry.get(test);
                    if Self::compatible(&algo, &test_ds).is_err() {
                        continue;
                    }
                    tasks.push((a, train, test));
                }
            }
        }

        // Pre-warm feature extraction sequentially per dataset so the cache
        // is shared rather than raced (extraction dominates; models are the
        // parallel part).
        let store = Mutex::new(ResultStore::new());
        let next = AtomicUsize::new(0);
        let threads = self.config.threads.max(1);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() {
                        break;
                    }
                    let (a, train, test) = tasks[i];
                    let result = if train == test {
                        self.run_same(a, train)
                    } else {
                        self.run_cross(a, train, test)
                    };
                    if let Ok(rows) = result {
                        let mut s = store.lock();
                        for r in rows {
                            s.push(r);
                        }
                    }
                });
            }
        })
        .expect("runner scope");
        let mut store = store.into_inner();
        sort_store(&mut store);
        store
    }
}

/// Deterministic ordering regardless of thread scheduling.
fn sort_store(store: &mut ResultStore) {
    let mut rows = std::mem::take(store).rows().to_vec();
    rows.sort_by(|a, b| {
        (&a.algo, &a.train, &a.test, &a.mode, &a.attack)
            .cmp(&(&b.algo, &b.train, &b.test, &b.mode, &b.attack))
    });
    let mut fresh = ResultStore::new();
    for r in rows {
        fresh.push(r);
    }
    *store = fresh;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_synth::SynthScale;

    fn runner() -> Runner {
        let registry =
            Arc::new(DatasetRegistry::new(SynthScale::small(), 3).with_max_packets(1500));
        Runner::new(
            registry,
            RunConfig {
                threads: 2,
                per_attack: true,
                ..RunConfig::default()
            },
        )
    }

    #[test]
    fn same_dataset_run_produces_rows() {
        let r = runner();
        let rows = r.run_same(AlgorithmId::A14, DatasetId::F4).unwrap();
        assert!(!rows.is_empty());
        let main = &rows[0];
        assert_eq!(main.mode, "same");
        assert_eq!(main.train, "F4");
        assert!(main.precision >= 0.0 && main.precision <= 1.0);
        // Per-attack rows cover the Mirai attack present in F4.
        assert!(rows
            .iter()
            .any(|r| r.attack.as_deref() == Some("botnet-mirai")));
    }

    #[test]
    fn granularity_mismatch_is_rejected() {
        let r = runner();
        // Kitsune (packet) on a connection dataset.
        let err = r.run_same(AlgorithmId::A06, DatasetId::F0).unwrap_err();
        assert!(matches!(err, BenchError::Incompatible { .. }));
        // Zeek (connection) on a packet dataset.
        assert!(r.run_same(AlgorithmId::A14, DatasetId::P1).is_err());
    }

    #[test]
    fn cross_run_works() {
        let r = runner();
        let rows = r
            .run_cross(AlgorithmId::A14, DatasetId::F4, DatasetId::F6)
            .unwrap();
        assert_eq!(rows[0].mode, "cross");
        assert_eq!(rows[0].train, "F4");
        assert_eq!(rows[0].test, "F6");
    }

    #[test]
    fn feature_cache_is_shared_across_runs() {
        let r = runner();
        r.run_same(AlgorithmId::A14, DatasetId::F4).unwrap();
        let (_h0, m0) = r.cache.stats();
        r.run_cross(AlgorithmId::A14, DatasetId::F4, DatasetId::F6)
            .unwrap();
        let (h1, m1) = r.cache.stats();
        // The cross run reuses F4's features: one hit, one new miss (F6).
        assert!(h1 >= 1, "hits {h1}");
        assert_eq!(m1, m0 + 1);
    }

    #[test]
    fn small_matrix_runs_in_parallel() {
        let r = runner();
        let store = r.run_matrix(
            &[AlgorithmId::A14, AlgorithmId::A15],
            &[DatasetId::F4, DatasetId::F6],
            true,
        );
        // 2 algos × 2×2 pairs, all compatible.
        let whole: Vec<_> = store.rows().iter().filter(|r| r.attack.is_none()).collect();
        assert_eq!(whole.len(), 8);
        // Deterministic order.
        let store2 = r.run_matrix(
            &[AlgorithmId::A14, AlgorithmId::A15],
            &[DatasetId::F4, DatasetId::F6],
            true,
        );
        let p1: Vec<&String> = store.rows().iter().map(|r| &r.algo).collect();
        let p2: Vec<&String> = store2.rows().iter().map(|r| &r.algo).collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn merged_run_produces_per_attack_rows() {
        let r = runner();
        let rows = r
            .run_merged(AlgorithmId::A14, &[DatasetId::F4, DatasetId::F9], 0.5, 1.0)
            .unwrap();
        assert_eq!(rows[0].mode, "merged");
        assert!(rows.len() > 1, "expected per-attack rows");
    }
}
