//! The faithful evaluation runner.
//!
//! Enforces §3.3's faithfulness rule — an algorithm only runs against
//! datasets of its own classification granularity (and a link type it can
//! parse) — then executes same-dataset (70/30 stratified split),
//! cross-dataset (train on all of A, test on all of B), and merged-dataset
//! (§5.4) evaluations. Feature extraction is shared across algorithms and
//! runs through the framework's [`lumen_core::cache::FeatureCache`].

use std::collections::HashMap;
use std::fs::File;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lumen_algorithms::{algorithm, Algorithm, AlgorithmId};
use lumen_core::cache::FeatureCache;
use lumen_core::data::PredOutput;
use lumen_core::par::panic_message;
use lumen_core::{CoreError, OpsProfile, Table};
use lumen_ml::metrics::{confusion, roc_auc};
use lumen_synth::{AttackKind, DatasetId};
use lumen_util::cancel::CancelToken;
use lumen_util::Rng;
use parking_lot::Mutex;

use crate::datasets::{attack_tag, BenchDataset, DatasetRegistry};
use crate::journal::{load_wal, AttemptRecord, JournalEntry, RunJournal, TaskOutcome, WalRecord};
use crate::store::{ResultRow, ResultStore};
use crate::{BenchError, BenchResult};

/// Evaluation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Train and test on a stratified split of one dataset.
    Same,
    /// Train on one dataset, test on another.
    Cross,
}

/// Which way an injected fault fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The task returns an error.
    Error,
    /// The task panics in its worker thread.
    Panic,
    /// The task hangs for `ms` before proceeding — stands in for a wedged
    /// trainer. Polls the thread's [`CancelToken`] every few ms, so under a
    /// deadline it unwinds as `Cancelled` well within 2x the budget.
    Hang {
        /// How long the hang lasts if never cancelled, ms.
        ms: u64,
    },
    /// The task is delayed by `ms` (cancellable) and then runs normally.
    Slow {
        /// Added latency, ms.
        ms: u64,
    },
    /// The task fails transiently on its first `fail_first_n` attempts and
    /// succeeds afterwards — exercises the retry-with-backoff path.
    Transient {
        /// Number of leading attempts that fail.
        fail_first_n: u32,
    },
}

/// Fault-injection point: every matrix task that trains `algo` on `dataset`
/// fails with the given kind. Exists to validate the failure accounting
/// end to end (journal entries, panic containment, `--strict` exit codes) —
/// the observability equivalent of a failpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Algorithm whose tasks fail.
    pub algo: AlgorithmId,
    /// Training dataset whose tasks fail.
    pub dataset: DatasetId,
    /// How the task fails.
    pub kind: FaultKind,
}

/// Per-task execution budget for supervised matrix runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Per-*attempt* deadline enforced by a cooperative [`CancelToken`]
    /// (0 = unlimited). A task that exceeds it unwinds as `Cancelled` and
    /// is journaled `TimedOut` once its attempts are exhausted.
    pub task_deadline_ms: u64,
    /// Maximum attempts per task (>= 1). Transient failures and timeouts
    /// are retried up to this bound; permanent failures never retry.
    pub max_attempts: u32,
    /// Base backoff between attempts; doubles per retry, capped at 10 s.
    pub backoff_ms: u64,
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget {
            task_deadline_ms: 0,
            max_attempts: 1,
            backoff_ms: 100,
        }
    }
}

impl RunBudget {
    /// Bounded exponential backoff before attempt `attempt + 1`.
    fn backoff_for(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(6);
        Duration::from_millis(self.backoff_ms.saturating_mul(1 << shift).min(10_000))
    }
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Training fraction for same-dataset splits.
    pub train_frac: f64,
    /// Base seed for splits and model training.
    pub seed: u64,
    /// Worker threads for matrix runs.
    pub threads: usize,
    /// Worker threads for ML compute kernels *inside* each matrix task
    /// (0 = auto: available parallelism divided by the matrix thread
    /// count, so matrix- and kernel-level parallelism don't oversubscribe
    /// the machine).
    pub kernel_threads: usize,
    /// SIMD dispatch mode for the ML kernels (`--kernel-backend`): `Auto`
    /// picks the best detected instruction set, `ForceScalar` pins the
    /// portable path. Either way predictions are bit-identical — the knob
    /// affects throughput only.
    pub kernel_backend: lumen_ml::kernels::BackendMode,
    /// Whether to also emit per-attack rows.
    pub per_attack: bool,
    /// Optional injected fault (test/chaos instrumentation).
    pub fault: Option<FaultSpec>,
    /// Per-task deadline/retry budget.
    pub budget: RunBudget,
    /// Run the experiment-integrity audit (DESIGN.md §4h) over the planned
    /// matrix and journal its findings; `finish_run` then denies (exit 1)
    /// on any error-severity finding.
    pub audit: bool,
    /// Flow-tracker shards for `FlowAssemble` operations (0 = auto: like
    /// `kernel_threads`, each matrix worker gets an equal share of the
    /// machine). Sharding never changes records — only throughput.
    pub flow_shards: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            train_frac: 0.7,
            seed: 7,
            threads: 4,
            kernel_threads: 0,
            kernel_backend: lumen_ml::kernels::BackendMode::Auto,
            per_attack: false,
            fault: None,
            budget: RunBudget::default(),
            audit: false,
            flow_shards: 0,
        }
    }
}

/// Wall time of each pipeline stage, milliseconds.
#[derive(Debug, Clone, Copy, Default)]
struct StageTimes {
    extract_ms: u64,
    train_ms: u64,
    test_ms: u64,
}

impl StageTimes {
    fn wall_ms(self) -> u64 {
        self.extract_ms + self.train_ms + self.test_ms
    }
}

/// Everything a matrix run produces: the successful rows *and* the journal
/// accounting for every task (ok / skipped / failed).
#[derive(Debug, Default)]
pub struct MatrixRun {
    /// Result rows from completed tasks.
    pub store: ResultStore,
    /// Per-task outcomes, including skips and failures.
    pub journal: RunJournal,
}

/// A task's identity key in the write-ahead log: (algo, train, test, mode).
type TaskKey = (String, String, String, String);

/// Per-runner flow-tracker accounting, accumulated from each assembly's
/// own [`lumen_flow::FlowStats`] as feature extractions complete. This is
/// the per-run eviction source of truth: unlike the process-global
/// `lumen_flow::counters` (which stays useful as a whole-process total),
/// it cannot absorb evictions from other runners in the same process.
#[derive(Debug, Clone, Default)]
pub struct FlowAccounting {
    /// Aggregate across all shards and assemblies.
    pub total: lumen_flow::FlowStats,
    /// Per-shard aggregates, indexed by shard.
    pub per_shard: Vec<lumen_flow::FlowStats>,
}

impl FlowAccounting {
    fn absorb(&mut self, total: &lumen_flow::FlowStats, per_shard: &[lumen_flow::FlowStats]) {
        self.total.absorb(total);
        if self.per_shard.len() < per_shard.len() {
            self.per_shard
                .resize(per_shard.len(), lumen_flow::FlowStats::default());
        }
        for (acc, s) in self.per_shard.iter_mut().zip(per_shard) {
            acc.absorb(s);
        }
    }
}

/// The evaluation runner.
pub struct Runner {
    /// Dataset registry (shared, lazily built).
    pub registry: Arc<DatasetRegistry>,
    /// Shared feature cache.
    pub cache: FeatureCache,
    /// Aggregated per-operation profile across every feature extraction
    /// this runner performed (cache hits add nothing — no work ran).
    pub ops_profile: Mutex<OpsProfile>,
    /// Flow-tracker accounting across this runner's feature extractions
    /// (cache hits add nothing — no assembly ran).
    pub flow_accounting: Mutex<FlowAccounting>,
    /// Configuration.
    pub config: RunConfig,
    /// Write-ahead log: one fsync'd [`WalRecord`] line per finished task.
    wal: Option<Mutex<File>>,
    /// Completed-task records loaded from a prior run's WAL (last record
    /// per task key wins); `Ok` tasks are replayed instead of re-run.
    resume: HashMap<TaskKey, WalRecord>,
}

impl Runner {
    /// Creates a runner over a registry. Also sets the process-wide ML
    /// kernel thread default from [`RunConfig::kernel_threads`]: with the
    /// auto value (`0`), each matrix worker gets an equal share of the
    /// machine so nested parallelism never oversubscribes it.
    pub fn new(registry: Arc<DatasetRegistry>, config: RunConfig) -> Runner {
        let kernel_threads = if config.kernel_threads > 0 {
            config.kernel_threads
        } else {
            (lumen_util::par::available_threads() / config.threads.max(1)).max(1)
        };
        lumen_ml::kernels::set_default_threads(kernel_threads);
        // Pin or auto-select the SIMD backend before any kernel runs; the
        // journal header records the resolved choice.
        lumen_ml::kernels::set_backend_mode(config.kernel_backend);
        // Same share-the-machine discipline for flow-tracker shards: each
        // matrix worker's assemblies split the remaining parallelism.
        let flow_shards = if config.flow_shards > 0 {
            config.flow_shards
        } else {
            (lumen_util::par::available_threads() / config.threads.max(1)).max(1)
        };
        lumen_flow::set_default_shards(flow_shards);
        Runner {
            registry,
            cache: FeatureCache::new(),
            ops_profile: Mutex::new(OpsProfile::new()),
            flow_accounting: Mutex::new(FlowAccounting::default()),
            config,
            wal: None,
            resume: HashMap::new(),
        }
    }

    /// Enables the crash-safe write-ahead log: every finished matrix task
    /// is appended to `path` as one JSON line (entry + rows) and fsync'd,
    /// so a killed run loses at most the line being written.
    pub fn with_wal_path(mut self, path: &Path) -> BenchResult<Runner> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        self.wal = Some(Mutex::new(file));
        Ok(self)
    }

    /// Loads a prior run's write-ahead log for resume: tasks recorded `Ok`
    /// are replayed (entry + rows) without re-executing; failed/timed-out
    /// tasks re-run. Torn trailing lines (SIGKILL mid-append) are skipped.
    pub fn with_resume_from(mut self, path: &Path) -> BenchResult<Runner> {
        for rec in load_wal(path)? {
            let key = (
                rec.entry.algo.clone(),
                rec.entry.train.clone(),
                rec.entry.test.clone(),
                rec.entry.mode.clone(),
            );
            self.resume.insert(key, rec);
        }
        Ok(self)
    }

    /// Appends one finished task to the WAL (no-op without a WAL). WAL
    /// write errors are reported but never abort the matrix — the journal
    /// in memory stays authoritative.
    fn wal_append(&self, entry: &JournalEntry, rows: &[ResultRow]) {
        let Some(wal) = &self.wal else {
            return;
        };
        let rec = WalRecord {
            entry: entry.clone(),
            rows: rows.to_vec(),
        };
        let line = rec.to_wal_line();
        let mut f = wal.lock();
        if let Err(e) = f
            .write_all(line.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .and_then(|()| f.sync_data())
        {
            eprintln!("wal append failed (continuing without checkpoint): {e}");
        }
    }

    /// Checks the faithfulness rules; `Err` explains the violation.
    pub fn compatible(algo: &Algorithm, ds: &BenchDataset) -> Result<(), String> {
        if !algo.matches_granularity(ds.is_packet_level()) {
            return Err(format!(
                "granularity mismatch: {} algorithm vs {} labels",
                algo.granularity.name(),
                if ds.is_packet_level() {
                    "packet"
                } else {
                    "connection"
                }
            ));
        }
        if !algo.supports_link(ds.capture.link) {
            return Err("link type unsupported".into());
        }
        if !algo.allowed_on(ds.code()) {
            return Err("algorithm restricted to other datasets".into());
        }
        Ok(())
    }

    /// Extracts (or fetches cached) features of an algorithm on a dataset,
    /// folding the engine's per-op profile of any cold extraction into
    /// [`Runner::ops_profile`].
    pub fn features(&self, algo: &Algorithm, ds: &BenchDataset) -> BenchResult<Arc<Table>> {
        let fp = algo.feature_fingerprint();
        self.cache
            .get_or_compute(ds.code(), fp, || {
                let (table, profile) = algo.extract_features_profiled(&ds.source)?;
                // Route each assembly's own tracker stats into the runner's
                // per-run accounting — never the process-global counter,
                // which other concurrent runners also bump.
                let mut acct = self.flow_accounting.lock();
                for p in &profile {
                    if let Some((total, per_shard)) = &p.flow {
                        acct.absorb(total, per_shard);
                    }
                }
                drop(acct);
                self.ops_profile.lock().record(&profile);
                Ok(table)
            })
            .map_err(BenchError::from)
    }

    fn split(table: &Table, frac: f64, seed: u64) -> (Table, Table) {
        let mut rng = Rng::new(seed);
        let mut pos: Vec<usize> = (0..table.rows())
            .filter(|&i| table.labels[i] == 1)
            .collect();
        let mut neg: Vec<usize> = (0..table.rows())
            .filter(|&i| table.labels[i] == 0)
            .collect();
        rng.shuffle(&mut pos);
        rng.shuffle(&mut neg);
        // Clamp the cut so each side keeps ≥1 sample of the class whenever
        // the class has ≥2 members: a bare `.round()` can place *all* of a
        // rare class on the training side, yielding a positive-free test
        // set and meaningless precision/recall.
        let cut = |v: &[usize]| -> usize {
            let n = v.len();
            let c = ((n as f64) * frac).round() as usize;
            if n >= 2 {
                c.clamp(1, n - 1)
            } else {
                c.min(n)
            }
        };
        let (pc, nc) = (cut(&pos), cut(&neg));
        let train: Vec<usize> = pos[..pc].iter().chain(neg[..nc].iter()).copied().collect();
        let test: Vec<usize> = pos[pc..].iter().chain(neg[nc..].iter()).copied().collect();
        (table.select_rows(&train), table.select_rows(&test))
    }

    fn incompatible(algo: &Algorithm, ds: &BenchDataset, why: String) -> BenchError {
        BenchError::Incompatible {
            algo: algo.id.code().into(),
            dataset: ds.code().into(),
            why,
        }
    }

    fn make_row(
        algo: &Algorithm,
        train_code: &str,
        test_code: &str,
        mode: &str,
        preds: &PredOutput,
        n_train: usize,
        stages: StageTimes,
    ) -> ResultRow {
        let c = confusion(&preds.preds, &preds.labels);
        ResultRow {
            algo: algo.id.code().into(),
            train: train_code.into(),
            test: test_code.into(),
            mode: mode.into(),
            attack: None,
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
            accuracy: c.accuracy(),
            auc: roc_auc(&preds.scores, &preds.labels),
            n_train,
            n_test: preds.labels.len(),
            extract_ms: stages.extract_ms,
            train_ms: stages.train_ms,
            test_ms: stages.test_ms,
            wall_ms: stages.wall_ms(),
        }
    }

    /// Per-attack breakdown: restricts the test rows to benign + one attack
    /// and recomputes precision/recall per attack present (Figure 5's
    /// methodology).
    pub fn per_attack_rows(
        algo: &Algorithm,
        train_code: &str,
        test_code: &str,
        mode: &str,
        preds: &PredOutput,
        n_train: usize,
    ) -> Vec<ResultRow> {
        let mut rows = Vec::new();
        for kind in AttackKind::ALL {
            let tag = attack_tag(kind);
            let idx: Vec<usize> = (0..preds.labels.len())
                .filter(|&i| preds.labels[i] == 0 || preds.tags[i] == tag)
                .collect();
            let has_attack = idx
                .iter()
                .any(|&i| preds.tags[i] == tag && preds.labels[i] == 1);
            if !has_attack {
                continue;
            }
            let sub_preds: Vec<u8> = idx.iter().map(|&i| preds.preds[i]).collect();
            let sub_truth: Vec<u8> = idx.iter().map(|&i| preds.labels[i]).collect();
            let sub_scores: Vec<f64> = idx.iter().map(|&i| preds.scores[i]).collect();
            let c = confusion(&sub_preds, &sub_truth);
            rows.push(ResultRow {
                algo: algo.id.code().into(),
                train: train_code.into(),
                test: test_code.into(),
                mode: mode.into(),
                attack: Some(kind.name().into()),
                precision: c.precision(),
                recall: c.recall(),
                f1: c.f1(),
                accuracy: c.accuracy(),
                auc: roc_auc(&sub_scores, &sub_truth),
                n_train,
                n_test: idx.len(),
                extract_ms: 0,
                train_ms: 0,
                test_ms: 0,
                wall_ms: 0,
            });
        }
        rows
    }

    /// The shared train -> evaluate -> stage-timing block of every
    /// evaluation mode. Polls `token` between stages so a supervised task
    /// stops at the next stage boundary once its deadline fires (the
    /// trainers and the pipeline engine poll the same thread-current token
    /// at finer grain).
    fn train_and_eval(
        &self,
        algo: &Algorithm,
        token: &CancelToken,
        train: &Arc<Table>,
        test: &Arc<Table>,
        extract_ms: u64,
    ) -> BenchResult<(Arc<PredOutput>, StageTimes)> {
        if token.is_cancelled() {
            return Err(BenchError::Core(CoreError::Cancelled));
        }
        let start = Instant::now();
        let trained = algo
            .train(train, self.config.seed)
            .map_err(BenchError::from)?;
        let train_ms = start.elapsed().as_millis() as u64;
        if token.is_cancelled() {
            return Err(BenchError::Core(CoreError::Cancelled));
        }
        let start = Instant::now();
        let (_report, preds) = algo.evaluate(&trained, test).map_err(BenchError::from)?;
        let test_ms = start.elapsed().as_millis() as u64;
        Ok((
            preds,
            StageTimes {
                extract_ms,
                train_ms,
                test_ms,
            },
        ))
    }

    /// Same-dataset evaluation: stratified split, train, test.
    pub fn run_same(&self, id: AlgorithmId, ds_id: DatasetId) -> BenchResult<Vec<ResultRow>> {
        let algo = algorithm(id);
        let ds = self.registry.get(ds_id);
        Self::compatible(&algo, &ds).map_err(|why| Self::incompatible(&algo, &ds, why))?;
        let start = Instant::now();
        let features = self.features(&algo, &ds)?;
        let extract_ms = start.elapsed().as_millis() as u64;
        let (train, test) = Self::split(&features, self.config.train_frac, self.config.seed);
        if train.labels.iter().all(|&l| l == 1) || train.labels.iter().all(|&l| l == 0) {
            return Err(Self::incompatible(
                &algo,
                &ds,
                "training split is single-class".into(),
            ));
        }
        let train = Arc::new(train);
        let test = Arc::new(test);
        let (preds, stages) =
            self.train_and_eval(&algo, &CancelToken::current(), &train, &test, extract_ms)?;
        let mut rows = vec![Self::make_row(
            &algo,
            ds.code(),
            ds.code(),
            "same",
            &preds,
            train.rows(),
            stages,
        )];
        if self.config.per_attack {
            rows.extend(Self::per_attack_rows(
                &algo,
                ds.code(),
                ds.code(),
                "same",
                &preds,
                train.rows(),
            ));
        }
        Ok(rows)
    }

    /// Cross-dataset evaluation: train on all of `train_id`, test on all of
    /// `test_id`.
    pub fn run_cross(
        &self,
        id: AlgorithmId,
        train_id: DatasetId,
        test_id: DatasetId,
    ) -> BenchResult<Vec<ResultRow>> {
        let algo = algorithm(id);
        let train_ds = self.registry.get(train_id);
        let test_ds = self.registry.get(test_id);
        Self::compatible(&algo, &train_ds)
            .map_err(|why| Self::incompatible(&algo, &train_ds, why))?;
        Self::compatible(&algo, &test_ds)
            .map_err(|why| Self::incompatible(&algo, &test_ds, why))?;
        let start = Instant::now();
        let train = self.features(&algo, &train_ds)?;
        let test = self.features(&algo, &test_ds)?;
        let extract_ms = start.elapsed().as_millis() as u64;
        if train.labels.iter().all(|&l| l == 1) || train.labels.iter().all(|&l| l == 0) {
            return Err(Self::incompatible(
                &algo,
                &train_ds,
                "training data is single-class".into(),
            ));
        }
        let (preds, stages) =
            self.train_and_eval(&algo, &CancelToken::current(), &train, &test, extract_ms)?;
        let mut rows = vec![Self::make_row(
            &algo,
            train_ds.code(),
            test_ds.code(),
            "cross",
            &preds,
            train.rows(),
            stages,
        )];
        if self.config.per_attack {
            rows.extend(Self::per_attack_rows(
                &algo,
                train_ds.code(),
                test_ds.code(),
                "cross",
                &preds,
                train.rows(),
            ));
        }
        Ok(rows)
    }

    /// Merged-dataset evaluation (§5.4): the training set concatenates
    /// `train_frac_of_each` of every dataset's training split (the paper
    /// uses 10%, keeping the training-set size constant); the test set
    /// concatenates `test_frac_of_each` of every dataset's held-out split.
    /// The paper also subsamples the test side; with the suite's smaller
    /// synthetic captures, evaluating on the full held-out halves keeps the
    /// per-attack slices statistically meaningful.
    pub fn run_merged(
        &self,
        id: AlgorithmId,
        datasets: &[DatasetId],
        train_frac_of_each: f64,
        test_frac_of_each: f64,
    ) -> BenchResult<Vec<ResultRow>> {
        let algo = algorithm(id);
        let start = Instant::now();
        let mut merged_train: Option<Table> = None;
        let mut merged_test: Option<Table> = None;
        let mut test_origins: Vec<DatasetId> = Vec::new();
        for &ds_id in datasets {
            let ds = self.registry.get(ds_id);
            if Self::compatible(&algo, &ds).is_err() {
                continue;
            }
            let features = self.features(&algo, &ds)?;
            let (train, test) = Self::split(&features, self.config.train_frac, self.config.seed);
            // Take a prefix of each split — `split` already shuffled, so a
            // prefix is a stratified-ish random sample.
            let take = |t: &Table, frac: f64| {
                let keep = ((t.rows() as f64) * frac).ceil() as usize;
                let idx: Vec<usize> = (0..t.rows().min(keep.max(2))).collect();
                t.select_rows(&idx)
            };
            let (tr, te) = (
                take(&train, train_frac_of_each),
                take(&test, test_frac_of_each),
            );
            // Remember each test row's origin dataset so the per-attack
            // breakdown can mirror the paper's "subset of datasets that
            // contain the attack" rule.
            test_origins.extend(std::iter::repeat_n(ds_id, te.rows()));
            merged_train = Some(match merged_train {
                None => tr,
                Some(acc) => acc.vcat(&tr).map_err(BenchError::from)?,
            });
            merged_test = Some(match merged_test {
                None => te,
                Some(acc) => acc.vcat(&te).map_err(BenchError::from)?,
            });
        }
        let (Some(train), Some(test)) = (merged_train, merged_test) else {
            return Err(BenchError::Core(CoreError::TypeError(format!(
                "no compatible datasets for {}",
                algo.id.code()
            ))));
        };
        let extract_ms = start.elapsed().as_millis() as u64;
        let train = Arc::new(train);
        let test = Arc::new(test);
        let (preds, stages) =
            self.train_and_eval(&algo, &CancelToken::current(), &train, &test, extract_ms)?;
        let mut rows = vec![Self::make_row(
            &algo,
            "MIX",
            "MIX",
            "merged",
            &preds,
            train.rows(),
            stages,
        )];
        // Per-attack breakdown with the paper's restriction: algorithm Y ×
        // attack X is computed over the datasets that contain X, so benign
        // traffic from unrelated datasets does not dilute the precision of
        // rare attacks.
        for kind in AttackKind::ALL {
            let tag = attack_tag(kind);
            let allowed: Vec<DatasetId> = datasets
                .iter()
                .copied()
                .filter(|d| d.spec().attacks.contains(&kind))
                .collect();
            if allowed.is_empty() {
                continue;
            }
            let idx: Vec<usize> = (0..preds.labels.len())
                .filter(|&i| {
                    allowed.contains(&test_origins[i])
                        && (preds.labels[i] == 0 || preds.tags[i] == tag)
                })
                .collect();
            let has_attack = idx
                .iter()
                .any(|&i| preds.tags[i] == tag && preds.labels[i] == 1);
            if !has_attack {
                continue;
            }
            let sub_preds: Vec<u8> = idx.iter().map(|&i| preds.preds[i]).collect();
            let sub_truth: Vec<u8> = idx.iter().map(|&i| preds.labels[i]).collect();
            let sub_scores: Vec<f64> = idx.iter().map(|&i| preds.scores[i]).collect();
            let c = confusion(&sub_preds, &sub_truth);
            rows.push(ResultRow {
                algo: algo.id.code().into(),
                train: "MIX".into(),
                test: "MIX".into(),
                mode: "merged".into(),
                attack: Some(kind.name().into()),
                precision: c.precision(),
                recall: c.recall(),
                f1: c.f1(),
                accuracy: c.accuracy(),
                auc: roc_auc(&sub_scores, &sub_truth),
                n_train: train.rows(),
                n_test: idx.len(),
                extract_ms: 0,
                train_ms: 0,
                test_ms: 0,
                wall_ms: 0,
            });
        }
        Ok(rows)
    }

    /// Sleeps for `total_ms`, polling the thread's [`CancelToken`] every
    /// few ms; unwinds as `Cancelled` once a deadline fires, so an injected
    /// hang under a deadline resolves well within 2x the budget.
    fn cooperative_sleep(total_ms: u64) -> BenchResult<()> {
        let until = Instant::now() + Duration::from_millis(total_ms);
        while Instant::now() < until {
            if CancelToken::current_cancelled() {
                return Err(BenchError::Core(CoreError::Cancelled));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }

    /// Executes one matrix task, honoring the fault-injection hook.
    /// `attempt` is 1-based — the `Transient` fault kind fails while
    /// `attempt <= fail_first_n` and succeeds afterwards.
    fn exec_task(
        &self,
        a: AlgorithmId,
        train: DatasetId,
        test: DatasetId,
        attempt: u32,
    ) -> BenchResult<Vec<ResultRow>> {
        if let Some(fault) = self.config.fault {
            if fault.algo == a && fault.dataset == train {
                match fault.kind {
                    FaultKind::Error => {
                        return Err(BenchError::Core(CoreError::OpFailed {
                            op: "fault-injection".into(),
                            why: "injected failure".into(),
                        }))
                    }
                    FaultKind::Panic => panic!("injected fault panic"),
                    FaultKind::Hang { ms } | FaultKind::Slow { ms } => {
                        Self::cooperative_sleep(ms)?;
                    }
                    FaultKind::Transient { fail_first_n } => {
                        if attempt <= fail_first_n {
                            return Err(BenchError::Transient {
                                why: format!("injected transient failure (attempt {attempt})"),
                            });
                        }
                    }
                }
            }
        }
        if train == test {
            self.run_same(a, train)
        } else {
            self.run_cross(a, train, test)
        }
    }

    /// Runs one task under supervision: a per-attempt deadline token,
    /// bounded-exponential-backoff retries for transient failures and
    /// timeouts, panic containment, and a full attempt ledger. Returns the
    /// final journal entry plus any result rows.
    fn run_supervised(
        &self,
        a: AlgorithmId,
        train: DatasetId,
        test: DatasetId,
        mode: &str,
    ) -> (JournalEntry, Vec<ResultRow>) {
        let budget = self.config.budget;
        let max_attempts = budget.max_attempts.max(1);
        let mut attempts: Vec<AttemptRecord> = Vec::new();
        let (outcome, rows) = loop {
            let attempt = attempts.len() as u32 + 1;
            let token = CancelToken::with_deadline_ms(budget.task_deadline_ms);
            let guard = token.set_current();
            let started = Instant::now();
            // A panic in one task must not take down the matrix: catch it
            // and classify it as a permanent failure.
            let result =
                catch_unwind(AssertUnwindSafe(|| self.exec_task(a, train, test, attempt)))
                    .unwrap_or_else(|payload| {
                        Err(BenchError::Core(CoreError::OpFailed {
                            op: "matrix task".into(),
                            why: format!("panic: {}", panic_message(payload.as_ref())),
                        }))
                    });
            drop(guard);
            let wall_ms = started.elapsed().as_millis() as u64;
            match result {
                Ok(rows) => {
                    attempts.push(AttemptRecord {
                        attempt,
                        status: "ok".into(),
                        error: String::new(),
                        wall_ms,
                    });
                    break (TaskOutcome::Ok, rows);
                }
                Err(BenchError::Incompatible { why, .. }) => {
                    // Late incompatibility (e.g. single-class split) is the
                    // faithfulness rule working, not a failure — no retry.
                    break (TaskOutcome::SkippedIncompatible { why }, Vec::new());
                }
                Err(e) => {
                    let timed_out = token.deadline_expired() || e.is_cancelled();
                    let retryable = timed_out || e.is_transient();
                    attempts.push(AttemptRecord {
                        attempt,
                        status: if timed_out { "timed_out" } else { "failed" }.into(),
                        error: e.to_string(),
                        wall_ms,
                    });
                    if !retryable || attempt >= max_attempts {
                        break if timed_out {
                            (
                                TaskOutcome::TimedOut {
                                    attempt,
                                    deadline_ms: budget.task_deadline_ms,
                                },
                                Vec::new(),
                            )
                        } else {
                            (
                                TaskOutcome::Failed {
                                    error: e.to_string(),
                                },
                                Vec::new(),
                            )
                        };
                    }
                    std::thread::sleep(budget.backoff_for(attempt));
                }
            }
        };
        let mut entry = JournalEntry::untimed(a.code(), train.code(), test.code(), mode, outcome);
        // The whole-test row (attack == None) carries the stage timings.
        if let Some(r) = rows.iter().find(|r| r.attack.is_none()) {
            entry.extract_ms = r.extract_ms;
            entry.train_ms = r.train_ms;
            entry.test_ms = r.test_ms;
            entry.wall_ms = r.wall_ms;
        }
        entry.attempts = attempts;
        (entry, rows)
    }

    /// Runs the full faithful matrix: every (algorithm, train, test)
    /// combination. `include_cross = false` restricts to the diagonal.
    ///
    /// Every task is accounted for in the returned [`RunJournal`]:
    /// incompatible pairings become `SkippedIncompatible` entries (they are
    /// not failures — they are the faithfulness rule working), completed
    /// tasks become `Ok` entries with stage timings, and a task that errors
    /// or panics becomes a `Failed` entry **without** aborting the rest of
    /// the matrix.
    pub fn run_matrix(
        &self,
        algos: &[AlgorithmId],
        datasets: &[DatasetId],
        include_cross: bool,
    ) -> MatrixRun {
        // Kernel counters are process-global; the snapshot delta across the
        // matrix attributes ML compute time to this run. Flow evictions are
        // NOT attributed this way: a counter diff absorbs whatever other
        // matrices run concurrently in the process, so eviction accounting
        // comes from each tracker's own stats via `flow_accounting`.
        let kernels_before = lumen_ml::kernels::profile_snapshot();
        let flow_before = self.flow_accounting.lock().clone();
        // Build the task list; unfaithful pairings go straight to the
        // journal as skips.
        let mut tasks: Vec<(AlgorithmId, DatasetId, DatasetId)> = Vec::new();
        let mut journal = RunJournal::new();
        for &a in algos {
            let algo = algorithm(a);
            for &train in datasets {
                let train_ds = self.registry.get(train);
                for &test in datasets {
                    if !include_cross && train != test {
                        continue;
                    }
                    let test_ds = self.registry.get(test);
                    let mode = if train == test { "same" } else { "cross" };
                    let why = Self::compatible(&algo, &train_ds)
                        .err()
                        .or_else(|| Self::compatible(&algo, &test_ds).err());
                    match why {
                        Some(why) => journal.push(JournalEntry::untimed(
                            a.code(),
                            train_ds.code(),
                            test_ds.code(),
                            mode,
                            TaskOutcome::SkippedIncompatible { why },
                        )),
                        None => tasks.push((a, train, test)),
                    }
                }
            }
        }

        // Static integrity audit of the plan we are about to execute —
        // before any task runs, so a doomed experiment is cheap to reject.
        // Findings travel in the journal; `finish_run` applies the deny
        // policy and emits AUDIT_report.json.
        if self.config.audit {
            let report = crate::audit::audit_plan(self, algos, datasets, include_cross);
            if !report.findings.is_empty() {
                eprint!("{}", report.summary());
            }
            journal.set_audit(report.findings);
        }

        let store = Mutex::new(ResultStore::new());
        let journal = Mutex::new(journal);
        let next = AtomicUsize::new(0);
        let reused = AtomicUsize::new(0);
        let threads = self.config.threads.max(1);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() {
                        break;
                    }
                    let (a, train, test) = tasks[i];
                    let mode = if train == test { "same" } else { "cross" };
                    // Resume: a task the prior run completed is replayed
                    // from its WAL record — entry and rows, no re-execution.
                    // Failed/timed-out records fall through and re-run.
                    let key = (
                        a.code().to_string(),
                        train.code().to_string(),
                        test.code().to_string(),
                        mode.to_string(),
                    );
                    if let Some(rec) = self.resume.get(&key) {
                        if rec.entry.outcome == TaskOutcome::Ok {
                            reused.fetch_add(1, Ordering::Relaxed);
                            self.wal_append(&rec.entry, &rec.rows);
                            journal.lock().push(rec.entry.clone());
                            let mut s = store.lock();
                            for r in rec.rows.iter().cloned() {
                                s.push(r);
                            }
                            continue;
                        }
                    }
                    let (entry, rows) = self.run_supervised(a, train, test, mode);
                    // Checkpoint before publishing: once the line is
                    // fsync'd, a crash cannot lose this task.
                    self.wal_append(&entry, &rows);
                    journal.lock().push(entry);
                    let mut s = store.lock();
                    for r in rows {
                        s.push(r);
                    }
                });
            }
        })
        .expect("runner scope");
        let reused = reused.into_inner();
        if reused > 0 {
            eprintln!("resume: replayed {reused} completed task(s) from the write-ahead log");
        }
        // Fold the per-op kernel timings accumulated during this matrix
        // into the ops profile, next to the feature-extraction ops. Rows
        // are tagged with the dispatch backend so profiles from different
        // instruction sets never aggregate silently.
        let delta = lumen_ml::kernels::profile_snapshot().delta_since(&kernels_before);
        if delta.total_calls() > 0 {
            let backend = lumen_ml::kernels::active_backend().name();
            let mut ops = self.ops_profile.lock();
            for (name, calls, nanos) in delta.entries() {
                ops.add_timing(
                    &format!("Kernel::{name}[{backend}]"),
                    calls,
                    u128::from(nanos) / 1_000,
                );
            }
        }
        let mut store = store.into_inner();
        // Resume merges WAL-replayed rows with freshly computed ones; if a
        // WAL ever carries both a stale and a fresh record for one task,
        // the newest row per (algo, train, test, mode, attack) wins.
        store.dedup_by_task();
        sort_store(&mut store);
        let mut journal = journal.into_inner();
        // Ingestion quarantine + flow-table eviction accounting: what the
        // hardened decode path dropped while this matrix ran, per dataset.
        journal.set_ingest(self.registry.ingest_entries());
        // Per-tracker flow accounting delta for exactly this matrix. Every
        // field is a monotone sum, so before/after subtraction is exact even
        // when several matrices share the runner sequentially; concurrent
        // runners in the same process each have their own accounting and
        // cannot bleed into this journal (the global counter remains as a
        // process-wide total only).
        let flow_now = self.flow_accounting.lock().clone();
        let evictions = flow_now.total.evictions - flow_before.total.evictions;
        journal.set_flow_evictions(evictions);
        let shards: Vec<crate::journal::FlowShardEntry> = flow_now
            .per_shard
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let before = flow_before.per_shard.get(i).copied().unwrap_or_default();
                crate::journal::FlowShardEntry {
                    shard: i,
                    evictions: s.evictions - before.evictions,
                    records: s.records - before.records,
                    peak_active: (s.peak_active - before.peak_active) as u64,
                }
            })
            .collect();
        if shards.iter().any(|e| e.records > 0 || e.evictions > 0) {
            journal.set_flow_shards(shards);
        }
        if evictions > 0 {
            self.ops_profile
                .lock()
                .add_timing("Flow::lru_evictions", evictions, 0);
        }
        journal.sort();
        MatrixRun { store, journal }
    }
}

/// Deterministic ordering regardless of thread scheduling.
fn sort_store(store: &mut ResultStore) {
    let mut rows = std::mem::take(store).rows().to_vec();
    rows.sort_by(|a, b| {
        (&a.algo, &a.train, &a.test, &a.mode, &a.attack)
            .cmp(&(&b.algo, &b.train, &b.test, &b.mode, &b.attack))
    });
    let mut fresh = ResultStore::new();
    for r in rows {
        fresh.push(r);
    }
    *store = fresh;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_synth::SynthScale;

    fn runner() -> Runner {
        let registry =
            Arc::new(DatasetRegistry::new(SynthScale::small(), 3).with_max_packets(1500));
        Runner::new(
            registry,
            RunConfig {
                threads: 2,
                per_attack: true,
                ..RunConfig::default()
            },
        )
    }

    #[test]
    fn same_dataset_run_produces_rows() {
        let r = runner();
        let rows = r.run_same(AlgorithmId::A14, DatasetId::F4).unwrap();
        assert!(!rows.is_empty());
        let main = &rows[0];
        assert_eq!(main.mode, "same");
        assert_eq!(main.train, "F4");
        assert!(main.precision >= 0.0 && main.precision <= 1.0);
        // Per-attack rows cover the Mirai attack present in F4.
        assert!(rows
            .iter()
            .any(|r| r.attack.as_deref() == Some("botnet-mirai")));
    }

    #[test]
    fn granularity_mismatch_is_rejected() {
        let r = runner();
        // Kitsune (packet) on a connection dataset.
        let err = r.run_same(AlgorithmId::A06, DatasetId::F0).unwrap_err();
        assert!(matches!(err, BenchError::Incompatible { .. }));
        // Zeek (connection) on a packet dataset.
        assert!(r.run_same(AlgorithmId::A14, DatasetId::P1).is_err());
    }

    #[test]
    fn cross_run_works() {
        let r = runner();
        let rows = r
            .run_cross(AlgorithmId::A14, DatasetId::F4, DatasetId::F6)
            .unwrap();
        assert_eq!(rows[0].mode, "cross");
        assert_eq!(rows[0].train, "F4");
        assert_eq!(rows[0].test, "F6");
    }

    #[test]
    fn feature_cache_is_shared_across_runs() {
        let r = runner();
        r.run_same(AlgorithmId::A14, DatasetId::F4).unwrap();
        let (_h0, m0) = r.cache.stats();
        r.run_cross(AlgorithmId::A14, DatasetId::F4, DatasetId::F6)
            .unwrap();
        let (h1, m1) = r.cache.stats();
        // The cross run reuses F4's features: one hit, one new miss (F6).
        assert!(h1 >= 1, "hits {h1}");
        assert_eq!(m1, m0 + 1);
    }

    #[test]
    fn small_matrix_runs_in_parallel() {
        let r = runner();
        let run = r.run_matrix(
            &[AlgorithmId::A14, AlgorithmId::A15],
            &[DatasetId::F4, DatasetId::F6],
            true,
        );
        // 2 algos × 2×2 pairs, all compatible.
        let whole: Vec<_> = run
            .store
            .rows()
            .iter()
            .filter(|r| r.attack.is_none())
            .collect();
        assert_eq!(whole.len(), 8);
        // Every task is accounted for in the journal.
        assert_eq!(run.journal.ok_count(), 8);
        assert_eq!(run.journal.skipped_count(), 0);
        assert!(!run.journal.has_failures());
        // Deterministic order.
        let run2 = r.run_matrix(
            &[AlgorithmId::A14, AlgorithmId::A15],
            &[DatasetId::F4, DatasetId::F6],
            true,
        );
        let p1: Vec<&String> = run.store.rows().iter().map(|r| &r.algo).collect();
        let p2: Vec<&String> = run2.store.rows().iter().map(|r| &r.algo).collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn chaos_corrupted_matrix_completes_and_accounts() {
        use lumen_synth::ChaosConfig;
        // Every capture is damaged before ingestion: lying lengths, bit
        // flips, truncated tails. The matrix must still run end to end and
        // the journal must say what was dropped.
        let registry = Arc::new(
            DatasetRegistry::new(SynthScale::small(), 11)
                .with_max_packets(1500)
                .with_chaos(ChaosConfig {
                    fault_rate: 0.1,
                    truncate_tail: true,
                }),
        );
        let r = Runner::new(
            registry,
            RunConfig {
                threads: 2,
                per_attack: false,
                ..RunConfig::default()
            },
        );
        let run = r.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4, DatasetId::F6], false);
        assert_eq!(run.journal.ok_count(), 2, "corrupted captures must still run");
        assert!(!run.journal.has_failures());
        // Both datasets carry an ingest ledger, and the damage is visible.
        let ingest = run.journal.ingest();
        assert_eq!(ingest.len(), 2);
        assert_eq!(ingest[0].dataset, "F4");
        assert_eq!(ingest[1].dataset, "F6");
        assert!(
            ingest.iter().any(|e| e.total_quarantined() > 0
                || e.label_misses > 0
                || e.truncated_tail),
            "chaos damage must show up in the journal: {ingest:?}"
        );
        // The human summary surfaces the quarantine when anything dropped.
        if run.journal.total_quarantined() > 0 {
            assert!(run.journal.summary(0, 0).contains("ingestion quarantine"));
        }
    }

    #[test]
    fn incompatible_pairs_are_journaled_as_skips() {
        let r = runner();
        // A06 (Kitsune, packet granularity) over connection datasets: every
        // pairing is an expected faithfulness skip, not a failure.
        let run = r.run_matrix(&[AlgorithmId::A06], &[DatasetId::F4, DatasetId::F6], true);
        assert!(run.store.is_empty());
        assert_eq!(run.journal.ok_count(), 0);
        assert_eq!(run.journal.skipped_count(), 4);
        assert!(!run.journal.has_failures());
        assert!(run.journal.entries().iter().all(|e| matches!(
            &e.outcome,
            TaskOutcome::SkippedIncompatible { why } if why.contains("granularity")
        )));
    }

    #[test]
    fn failing_task_lands_in_journal_not_silence() {
        let registry =
            Arc::new(DatasetRegistry::new(SynthScale::small(), 3).with_max_packets(1500));
        let r = Runner::new(
            registry,
            RunConfig {
                threads: 2,
                fault: Some(FaultSpec {
                    algo: AlgorithmId::A14,
                    dataset: DatasetId::F4,
                    kind: FaultKind::Error,
                }),
                ..RunConfig::default()
            },
        );
        let run = r.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4, DatasetId::F6], false);
        // The healthy task completed; the faulted one is journaled Failed
        // with its error text — not silently absent.
        assert_eq!(run.journal.ok_count(), 1);
        assert_eq!(run.journal.failed_count(), 1);
        let failed = run.journal.failures().next().unwrap();
        assert_eq!((failed.algo.as_str(), failed.train.as_str()), ("A14", "F4"));
        assert!(matches!(
            &failed.outcome,
            TaskOutcome::Failed { error } if error.contains("injected failure")
        ));
        assert!(run.store.rows().iter().all(|row| row.train != "F4"));
        assert!(run.store.rows().iter().any(|row| row.train == "F6"));
    }

    #[test]
    fn panicking_task_is_contained_and_journaled() {
        let registry =
            Arc::new(DatasetRegistry::new(SynthScale::small(), 3).with_max_packets(1500));
        let r = Runner::new(
            registry,
            RunConfig {
                threads: 2,
                fault: Some(FaultSpec {
                    algo: AlgorithmId::A14,
                    dataset: DatasetId::F4,
                    kind: FaultKind::Panic,
                }),
                ..RunConfig::default()
            },
        );
        let run = r.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4, DatasetId::F6], false);
        // The panic neither aborted the matrix nor poisoned the other task.
        assert_eq!(run.journal.ok_count(), 1);
        assert_eq!(run.journal.failed_count(), 1);
        let failed = run.journal.failures().next().unwrap();
        assert!(matches!(
            &failed.outcome,
            TaskOutcome::Failed { error } if error.contains("panic") && error.contains("injected")
        ));
        assert!(run.store.rows().iter().any(|row| row.train == "F6"));
    }

    #[test]
    fn stage_timings_populated_and_sum_to_wall() {
        let r = runner();
        let rows = r.run_same(AlgorithmId::A14, DatasetId::F4).unwrap();
        let cold = &rows[0];
        assert_eq!(
            cold.wall_ms,
            cold.extract_ms + cold.train_ms + cold.test_ms,
            "wall_ms must equal the stage sum"
        );
        // Second run hits the feature cache: extraction is a map lookup, so
        // extract_ms collapses to ~0 and no longer distorts the wall clock.
        let rows = r.run_same(AlgorithmId::A14, DatasetId::F4).unwrap();
        let warm = &rows[0];
        assert_eq!(warm.extract_ms, 0, "cache hit should cost ~0 extract time");
        assert_eq!(warm.wall_ms, warm.train_ms + warm.test_ms);
        let (hits, _misses) = r.cache.stats();
        assert!(hits >= 1);
    }

    #[test]
    fn matrix_feeds_ops_level_profile() {
        let r = runner();
        assert!(r.ops_profile.lock().is_empty());
        r.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4], false);
        let profile = r.ops_profile.lock();
        assert!(!profile.is_empty());
        // Cold extraction ran the feature pipeline exactly once per dataset;
        // every recorded op therefore has at least one call.
        assert!(profile.stats().values().all(|s| s.calls >= 1));
    }

    #[test]
    fn matrix_folds_kernel_timings_into_profile() {
        let r = runner();
        // A07 (OCSVM) trains through the RFF-map kernel path.
        let run = r.run_matrix(&[AlgorithmId::A07], &[DatasetId::F4], false);
        assert_eq!(run.journal.ok_count(), 1);
        let profile = r.ops_profile.lock();
        let kernel_ops: Vec<&String> = profile
            .stats()
            .keys()
            .filter(|k| k.starts_with("Kernel::"))
            .collect();
        assert!(
            !kernel_ops.is_empty(),
            "expected Kernel::* rows in the ops profile, got {:?}",
            profile.stats().keys().collect::<Vec<_>>()
        );
        // Every row carries the dispatch-backend tag.
        let tag = format!("[{}]", lumen_ml::kernels::active_backend().name());
        assert!(
            kernel_ops.iter().all(|k| k.ends_with(&tag)),
            "Kernel rows missing backend tag {tag}: {kernel_ops:?}"
        );
        assert!(profile
            .stats()
            .iter()
            .filter(|(k, _)| k.starts_with("Kernel::"))
            .all(|(_, s)| s.calls >= 1 && s.output_bytes == 0));
    }

    #[test]
    fn split_keeps_minority_class_on_both_sides() {
        use lumen_ml::matrix::Matrix;
        // 3 positives among 8 rows: round(3 * 0.9) = 3 would put every
        // positive in training, leaving a positive-free test set.
        let n = 8;
        let labels: Vec<u8> = (0..n).map(|i| u8::from(i < 3)).collect();
        let tags: Vec<u32> = labels.iter().map(|&l| u32::from(l)).collect();
        let x = Matrix::from_rows((0..n).map(|i| vec![i as f64]).collect()).unwrap();
        let table = Table::new(vec!["x".into()], x, labels, tags).unwrap();
        let (train, test) = Runner::split(&table, 0.9, 1);
        for (name, side) in [("train", &train), ("test", &test)] {
            assert!(
                side.labels.iter().any(|&l| l == 1),
                "{name} side lost every positive"
            );
            assert!(
                side.labels.iter().any(|&l| l == 0),
                "{name} side lost every negative"
            );
        }
        // A single-member class still goes wholly to one side.
        let labels1: Vec<u8> = (0..n).map(|i| u8::from(i == 0)).collect();
        let tags1: Vec<u32> = labels1.iter().map(|&l| u32::from(l)).collect();
        let x1 = Matrix::from_rows((0..n).map(|i| vec![i as f64]).collect()).unwrap();
        let t1 = Table::new(vec!["x".into()], x1, labels1, tags1).unwrap();
        let (tr1, te1) = Runner::split(&t1, 0.7, 1);
        assert_eq!(
            tr1.labels.iter().filter(|&&l| l == 1).count()
                + te1.labels.iter().filter(|&&l| l == 1).count(),
            1
        );
    }

    fn small_registry(seed: u64) -> Arc<DatasetRegistry> {
        Arc::new(DatasetRegistry::new(SynthScale::small(), seed).with_max_packets(1500))
    }

    #[test]
    fn expired_token_cancels_a_direct_run() {
        let r = runner();
        let token = CancelToken::with_deadline_ms(1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let _g = token.set_current();
        let err = r.run_same(AlgorithmId::A14, DatasetId::F4).unwrap_err();
        assert!(err.is_cancelled(), "got: {err}");
    }

    #[test]
    fn hang_fault_times_out_and_matrix_completes() {
        let r = Runner::new(
            small_registry(3),
            RunConfig {
                threads: 2,
                fault: Some(FaultSpec {
                    algo: AlgorithmId::A14,
                    dataset: DatasetId::F4,
                    kind: FaultKind::Hang { ms: 60_000 },
                }),
                budget: RunBudget {
                    task_deadline_ms: 200,
                    max_attempts: 1,
                    backoff_ms: 1,
                },
                ..RunConfig::default()
            },
        );
        let run = r.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4, DatasetId::F6], false);
        // The hung task became a journaled timeout; the rest completed.
        assert_eq!(run.journal.ok_count(), 1);
        assert_eq!(run.journal.timed_out_count(), 1);
        assert!(run.journal.has_failures(), "--strict must flag the timeout");
        let t = run.journal.timeouts().next().unwrap();
        assert_eq!((t.algo.as_str(), t.train.as_str()), ("A14", "F4"));
        assert!(matches!(
            t.outcome,
            TaskOutcome::TimedOut {
                attempt: 1,
                deadline_ms: 200
            }
        ));
        // The cooperative unwind resolved within ~2x the deadline.
        assert_eq!(t.attempts.len(), 1);
        assert_eq!(t.attempts[0].status, "timed_out");
        assert!(
            t.attempts[0].wall_ms < 400,
            "attempt took {} ms under a 200 ms deadline",
            t.attempts[0].wall_ms
        );
        assert!(run.store.rows().iter().any(|row| row.train == "F6"));
    }

    #[test]
    fn slow_fault_without_deadline_just_delays() {
        let r = Runner::new(
            small_registry(3),
            RunConfig {
                threads: 1,
                fault: Some(FaultSpec {
                    algo: AlgorithmId::A14,
                    dataset: DatasetId::F4,
                    kind: FaultKind::Slow { ms: 30 },
                }),
                ..RunConfig::default()
            },
        );
        let run = r.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4], false);
        assert_eq!(run.journal.ok_count(), 1);
        assert!(!run.journal.has_failures());
    }

    #[test]
    fn transient_fault_succeeds_on_retry_with_attempt_history() {
        let r = Runner::new(
            small_registry(3),
            RunConfig {
                threads: 2,
                fault: Some(FaultSpec {
                    algo: AlgorithmId::A14,
                    dataset: DatasetId::F4,
                    kind: FaultKind::Transient { fail_first_n: 2 },
                }),
                budget: RunBudget {
                    task_deadline_ms: 0,
                    max_attempts: 3,
                    backoff_ms: 1,
                },
                ..RunConfig::default()
            },
        );
        let run = r.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4], false);
        assert_eq!(run.journal.ok_count(), 1);
        assert!(!run.journal.has_failures());
        assert_eq!(run.journal.retried_count(), 1);
        let e = &run.journal.entries()[0];
        assert_eq!(e.attempts.len(), 3, "every attempt must be recorded");
        assert_eq!(e.attempts[0].status, "failed");
        assert!(e.attempts[0].error.contains("transient"));
        assert_eq!(e.attempts[1].status, "failed");
        assert_eq!(e.attempts[2].status, "ok");
        assert_eq!(e.attempts[2].attempt, 3);
    }

    #[test]
    fn transient_fault_exhausts_bounded_attempts() {
        let r = Runner::new(
            small_registry(3),
            RunConfig {
                threads: 1,
                fault: Some(FaultSpec {
                    algo: AlgorithmId::A14,
                    dataset: DatasetId::F4,
                    kind: FaultKind::Transient { fail_first_n: 99 },
                }),
                budget: RunBudget {
                    task_deadline_ms: 0,
                    max_attempts: 2,
                    backoff_ms: 1,
                },
                ..RunConfig::default()
            },
        );
        let run = r.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4], false);
        assert_eq!(run.journal.failed_count(), 1);
        let e = run.journal.failures().next().unwrap();
        assert_eq!(e.attempts.len(), 2, "retries stop at max_attempts");
    }

    #[test]
    fn permanent_failure_never_retries() {
        let r = Runner::new(
            small_registry(3),
            RunConfig {
                threads: 1,
                fault: Some(FaultSpec {
                    algo: AlgorithmId::A14,
                    dataset: DatasetId::F4,
                    kind: FaultKind::Error,
                }),
                budget: RunBudget {
                    task_deadline_ms: 0,
                    max_attempts: 5,
                    backoff_ms: 1,
                },
                ..RunConfig::default()
            },
        );
        let run = r.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4], false);
        let e = run.journal.failures().next().unwrap();
        assert_eq!(e.attempts.len(), 1, "permanent errors must not retry");
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        let dir = std::env::temp_dir().join("lumen_resume_merge_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("matrix_journal.jsonl");
        let algos = [AlgorithmId::A14, AlgorithmId::A15];
        let sets = [DatasetId::F4, DatasetId::F6];

        // "Crashed" run: one task fails (stands in for work lost to a
        // SIGKILL — its WAL record is non-Ok, so resume re-runs it).
        let r1 = Runner::new(
            small_registry(3),
            RunConfig {
                threads: 2,
                fault: Some(FaultSpec {
                    algo: AlgorithmId::A14,
                    dataset: DatasetId::F4,
                    kind: FaultKind::Error,
                }),
                ..RunConfig::default()
            },
        )
        .with_wal_path(&wal)
        .unwrap();
        let run1 = r1.run_matrix(&algos, &sets, true);
        assert!(run1.journal.has_failures());
        assert!(wal.exists());

        // Resume run: fault gone, same WAL for both replay and append.
        let r2 = Runner::new(
            small_registry(3),
            RunConfig {
                threads: 2,
                ..RunConfig::default()
            },
        )
        .with_resume_from(&wal)
        .unwrap()
        .with_wal_path(&wal)
        .unwrap();
        let run2 = r2.run_matrix(&algos, &sets, true);
        assert_eq!(run2.journal.ok_count(), 8);
        assert!(!run2.journal.has_failures());

        // Journal accounts for every task exactly once.
        let mut keys: Vec<_> = run2
            .journal
            .entries()
            .iter()
            .map(|e| (e.algo.clone(), e.train.clone(), e.test.clone(), e.mode.clone()))
            .collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate journal entries after resume");

        // Store has exactly one row per (algo, train, test, mode, attack).
        let mut row_keys: Vec<_> = run2
            .store
            .rows()
            .iter()
            .map(|r| {
                (
                    r.algo.clone(),
                    r.train.clone(),
                    r.test.clone(),
                    r.mode.clone(),
                    r.attack.clone(),
                )
            })
            .collect();
        let n = row_keys.len();
        row_keys.sort();
        row_keys.dedup();
        assert_eq!(row_keys.len(), n, "duplicate result rows after resume");

        // The merged store matches an uninterrupted run row for row
        // (metrics; timings legitimately differ between runs).
        let clean = Runner::new(
            small_registry(3),
            RunConfig {
                threads: 2,
                ..RunConfig::default()
            },
        )
        .run_matrix(&algos, &sets, true);
        let metric_view = |s: &ResultStore| -> Vec<(String, String, String, String, String, String, String)> {
            s.rows()
                .iter()
                .map(|r| {
                    (
                        r.algo.clone(),
                        r.train.clone(),
                        r.test.clone(),
                        r.mode.clone(),
                        format!("{:?}", r.attack),
                        format!("{:.12}/{:.12}/{:.12}", r.precision, r.recall, r.f1),
                        format!("{}/{}", r.n_train, r.n_test),
                    )
                })
                .collect()
        };
        assert_eq!(
            metric_view(&run2.store),
            metric_view(&clean.store),
            "resumed store must equal an uninterrupted run's store"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_replays_without_reexecuting_ok_tasks() {
        let dir = std::env::temp_dir().join("lumen_resume_replay_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("m_journal.jsonl");
        let r1 = Runner::new(
            small_registry(3),
            RunConfig {
                threads: 1,
                ..RunConfig::default()
            },
        )
        .with_wal_path(&wal)
        .unwrap();
        let run1 = r1.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4], false);
        assert_eq!(run1.journal.ok_count(), 1);

        // Resume with a fault armed on the same task: if resume *replays*
        // instead of re-running, the fault is never reached.
        let r2 = Runner::new(
            small_registry(3),
            RunConfig {
                threads: 1,
                fault: Some(FaultSpec {
                    algo: AlgorithmId::A14,
                    dataset: DatasetId::F4,
                    kind: FaultKind::Panic,
                }),
                ..RunConfig::default()
            },
        )
        .with_resume_from(&wal)
        .unwrap();
        let run2 = r2.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4], false);
        assert_eq!(run2.journal.ok_count(), 1);
        assert!(!run2.journal.has_failures(), "task must be replayed, not re-run");
        // Replayed rows carry the original run's numbers.
        assert_eq!(run2.store.rows().len(), run1.store.rows().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_run_produces_per_attack_rows() {
        let r = runner();
        let rows = r
            .run_merged(AlgorithmId::A14, &[DatasetId::F4, DatasetId::F9], 0.5, 1.0)
            .unwrap();
        assert_eq!(rows[0].mode, "merged");
        assert!(rows.len() > 1, "expected per-attack rows");
    }
}
