//! `lumen-serve`: the overload-resilient streaming detection daemon
//! (DESIGN.md §4k).
//!
//! A replayed capture flows through four staged workers connected by
//! bounded rings — source → decode → flow → score — so backpressure
//! propagates source-ward instead of growing unbounded queues. Overload is
//! a first-class condition, not an accident:
//!
//! * the flow→score edge absorbs pressure through a priority shed buffer
//!   ([`ShedBuffer`]): when the scorer falls behind, the lowest-priority
//!   pending slices (fewest records) are dropped, counted, and journaled —
//!   never silently;
//! * a circuit breaker ([`CircuitBreaker`]) around the ML scorer trips to
//!   a cheap threshold [`RuleEngine`] prefilter after consecutive
//!   over-budget scorings, then probes its way back (half-open) once the
//!   cooldown elapses;
//! * a watchdog thread supervises per-stage heartbeats and cancels the
//!   attempt token of any stage that wedges while holding work, forcing a
//!   counted restart instead of a hung run;
//! * SIGTERM (or a cooperative stop flag) drains the pipeline stage by
//!   stage and flushes the journal, so an operator kill never loses the
//!   run's accounting.
//!
//! Everything is packet-exact: `packets_read == packets_parsed +
//! decode_errors` and `records_scored + records_degraded + records_shed ==
//! records_finalized`, enforced by [`StreamReport::accounts_exactly`] and
//! asserted by the tests below.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lumen_core::data::{ConnData, Data, PacketData};
use lumen_core::ops::{build_op, Operation};
use lumen_core::par::parse_capture_indexed;
use lumen_core::table::Table;
use lumen_flow::{ConnRecord, ConnState, ConnectionTracker, FlowConfig, FlowStats};
use lumen_ml::linear::{LogisticRegression, SgdConfig};
use lumen_ml::{Classifier, Pretrained};
use lumen_net::pcap::{to_bytes, CaptureStats, CapturedPacket, PcapLimits, RecoveringReader};
use lumen_net::{LinkType, PacketMeta};
use lumen_synth::{build_dataset, ChaosConfig, ChaosPcap, DatasetId, SynthScale};
use lumen_util::shutdown;
use lumen_util::{ring, CancelToken, RingSender, TrySendError};

use crate::datasets::attack_tag;
use crate::journal::{StreamReport, StreamStageEntry};
use crate::{BenchError, BenchResult};

// ---------------------------------------------------------------------------
// Stage identity and fault injection
// ---------------------------------------------------------------------------

/// The four pipeline stages, in flow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageId {
    /// Replayed pcap bytes through the recovering reader.
    Source,
    /// Frame → [`PacketMeta`] decode.
    Decode,
    /// Sliced incremental flow assembly.
    Flow,
    /// ML scoring (or rule-engine prefilter in degraded mode).
    Score,
}

impl StageId {
    /// All stages in pipeline order.
    pub const ALL: [StageId; 4] = [
        StageId::Source,
        StageId::Decode,
        StageId::Flow,
        StageId::Score,
    ];

    /// Journal/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            StageId::Source => "source",
            StageId::Decode => "decode",
            StageId::Flow => "flow",
            StageId::Score => "score",
        }
    }

    fn parse(s: &str) -> Option<StageId> {
        match s {
            "source" => Some(StageId::Source),
            "decode" => Some(StageId::Decode),
            "flow" => Some(StageId::Flow),
            "score" => Some(StageId::Score),
            _ => None,
        }
    }
}

/// What an injected stream fault does to its stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFaultKind {
    /// The stage stops making progress for `ms` while holding work — the
    /// watchdog must cancel and restart it. Fires once.
    Hang { ms: u64 },
    /// The first `n` items at the stage each take an extra `ms` — the
    /// overload / breaker-trip lever.
    Slow { ms: u64, n: u32 },
    /// The first item at the stage fails `n` times before succeeding;
    /// each failure is a counted stage restart.
    Transient { n: u32 },
}

/// One injected fault, bound to a stage. Parsed from
/// `STAGE:KIND[:ARG[:N]]` — e.g. `score:hang:30000`, `score:slow:50`,
/// `score:slow:50:4`, `decode:transient:2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFault {
    /// Which stage the fault hits.
    pub stage: StageId,
    /// What it does there.
    pub kind: StreamFaultKind,
}

impl StreamFault {
    /// Parses a `STAGE:KIND[:ARG[:N]]` spec. `hang`/`slow` default to
    /// 10 000 ms / 25 ms, `slow` to all items, `transient` to 1 failure.
    pub fn parse(spec: &str) -> BenchResult<StreamFault> {
        let bad = |why: &str| BenchError::Serde(format!("bad --fault {spec:?}: {why}"));
        let mut parts = spec.split(':');
        let stage = parts
            .next()
            .and_then(StageId::parse)
            .ok_or_else(|| bad("stage must be source/decode/flow/score"))?;
        let kind = parts.next().unwrap_or("");
        let mut num = |p: Option<&str>| -> BenchResult<Option<u64>> {
            match p {
                None => Ok(None),
                Some(a) => a
                    .parse()
                    .map(Some)
                    .map_err(|_| bad("arguments must be integers")),
            }
        };
        let arg = num(parts.next())?;
        let count = num(parts.next())?;
        if parts.next().is_some() {
            return Err(bad("too many ':' segments"));
        }
        let clamp32 = |v: u64| v.min(u64::from(u32::MAX)) as u32;
        let kind = match kind {
            "hang" => StreamFaultKind::Hang {
                ms: arg.unwrap_or(10_000),
            },
            "slow" => StreamFaultKind::Slow {
                ms: arg.unwrap_or(25),
                n: count.map_or(u32::MAX, clamp32),
            },
            "transient" => StreamFaultKind::Transient {
                n: clamp32(arg.unwrap_or(1)),
            },
            _ => return Err(bad("kind must be hang/slow/transient")),
        };
        Ok(StreamFault { stage, kind })
    }
}

// ---------------------------------------------------------------------------
// Rule engine (degraded-mode prefilter)
// ---------------------------------------------------------------------------

/// Cheap threshold rules over flow features — the degraded-mode prefilter
/// the breaker falls back to when ML scoring is too slow. No featurization,
/// no matrix: a handful of comparisons per [`ConnRecord`], so it keeps up
/// at rates that drown the model.
///
/// The rules target the attack shapes the synthetic corpus actually
/// produces: connection attempts that never get an answer (scans, SYN
/// floods) and high-volume one-way chatter (UDP floods).
#[derive(Debug, Clone, Copy)]
pub struct RuleEngine {
    /// A TCP flow with at least this many originator SYNs and no responder
    /// packets looks like a flood probe.
    pub syn_burst: u32,
    /// A no-response (non-TCP) flow with at least this many originator
    /// packets looks like a flood.
    pub oneway_pkts: u32,
}

impl Default for RuleEngine {
    fn default() -> RuleEngine {
        RuleEngine {
            syn_burst: 3,
            oneway_pkts: 20,
        }
    }
}

impl RuleEngine {
    /// True when the record trips any rule.
    pub fn alarm(&self, rec: &ConnRecord) -> bool {
        // Rule 1: connection attempt the responder never answered — the
        // Zeek S0/REJ states cover vertical scans and SYN probes.
        if rec.proto == 6 && matches!(rec.state, ConnState::S0 | ConnState::Rej) {
            return true;
        }
        // Rule 2: SYN burst with a silent responder (flood shape even when
        // the state machine saw enough to leave S0).
        if rec.proto == 6 && rec.orig_flags.syn() >= self.syn_burst && rec.resp_pkts == 0 {
            return true;
        }
        // Rule 3: high-volume one-way non-TCP chatter (UDP/ICMP flood).
        if rec.proto != 6 && rec.resp_pkts == 0 && rec.orig_pkts >= self.oneway_pkts {
            return true;
        }
        false
    }

    /// Alarm count over a slice of records.
    pub fn alarms(&self, recs: &[ConnRecord]) -> u64 {
        recs.iter().filter(|r| self.alarm(r)).count() as u64
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Breaker state: closed (ML scoring), open (rule engine), half-open
/// (probing one slice through the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: slices go through the ML model.
    Closed,
    /// Degraded: slices go through the rule engine until the cooldown
    /// (counted in slices) elapses.
    Open,
    /// Cooldown over: the next slice probes the model; a fast probe closes
    /// the breaker, a slow one re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Journal name (`closed`/`open`/`half-open`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Pure breaker state machine around the scorer. The score stage reports
/// each model-scored slice's latency; the breaker decides whether the
/// *next* slice is scored by the model or the rule engine. Deterministic
/// and clock-free, so it unit-tests without timers.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Per-slice scoring budget: a slice slower than this is "over budget".
    budget: Duration,
    /// Consecutive over-budget slices that trip the breaker.
    threshold: u32,
    /// Degraded slices to serve before probing.
    cooldown_slices: u32,
    consecutive_slow: u32,
    cooldown_left: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// Builds a closed breaker. Threshold and cooldown are clamped ≥ 1.
    pub fn new(budget: Duration, threshold: u32, cooldown_slices: u32) -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            budget,
            threshold: threshold.max(1),
            cooldown_slices: cooldown_slices.max(1),
            consecutive_slow: 0,
            cooldown_left: 0,
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker tripped open (including re-opens after a failed
    /// half-open probe).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether the next slice should be scored by the ML model (`true`) or
    /// the rule engine (`false`). Open-state calls also tick the cooldown.
    pub fn use_model(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                }
                false
            }
        }
    }

    /// Reports the latency of a model-scored slice and advances the state
    /// machine.
    pub fn observe(&mut self, elapsed: Duration) {
        let slow = elapsed > self.budget;
        match self.state {
            BreakerState::Closed => {
                if slow {
                    self.consecutive_slow += 1;
                    if self.consecutive_slow >= self.threshold {
                        self.trip();
                    }
                } else {
                    self.consecutive_slow = 0;
                }
            }
            BreakerState::HalfOpen => {
                if slow {
                    // Failed probe: straight back to degraded mode.
                    self.trip();
                } else {
                    self.state = BreakerState::Closed;
                    self.consecutive_slow = 0;
                }
            }
            // A rule-engine slice never reaches observe(); nothing to do.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.trips += 1;
        self.consecutive_slow = 0;
        self.cooldown_left = self.cooldown_slices;
    }
}

// ---------------------------------------------------------------------------
// Shed buffer
// ---------------------------------------------------------------------------

/// One time-slice of finalized connection records headed for the scorer.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Monotonic slice number (for logs; accounting is by record count).
    pub seq: u64,
    /// Records finalized in this slice.
    pub records: Vec<ConnRecord>,
}

/// Bounded holding pen between the flow stage and the score ring. When the
/// ring is full the flow stage parks slices here instead of blocking; when
/// the pen itself is full, the *lowest-priority* slice (fewest records —
/// the least evidence lost per drop) is shed and counted. Shedding is the
/// explicit, journaled overload valve: nothing ever vanishes silently.
#[derive(Debug)]
pub struct ShedBuffer {
    pending: Vec<Slice>,
    capacity: usize,
    shed_slices: u64,
    shed_records: u64,
}

impl ShedBuffer {
    /// A pen holding at most `capacity` parked slices (clamped ≥ 1).
    pub fn new(capacity: usize) -> ShedBuffer {
        ShedBuffer {
            pending: Vec::new(),
            capacity: capacity.max(1),
            shed_slices: 0,
            shed_records: 0,
        }
    }

    /// Parks a slice; sheds the lowest-priority parked slice when over
    /// capacity. Returns the shed slice (already counted) so callers can
    /// log it.
    pub fn park(&mut self, slice: Slice) -> Option<Slice> {
        self.pending.push(slice);
        if self.pending.len() <= self.capacity {
            return None;
        }
        // Priority = record count; ties broken toward the older slice so
        // shedding is deterministic.
        let victim = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|&(i, s)| (s.records.len(), i))
            .map(|(i, _)| i)?;
        let shed = self.pending.remove(victim);
        self.shed_slices += 1;
        self.shed_records += shed.records.len() as u64;
        Some(shed)
    }

    /// Oldest parked slice, if any.
    pub fn next_ready(&mut self) -> Option<Slice> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.pending.remove(0))
        }
    }

    /// Puts a slice back at the front (the ring refused it after
    /// [`ShedBuffer::next_ready`]).
    pub fn unpark_front(&mut self, slice: Slice) {
        self.pending.insert(0, slice);
    }

    /// Parked slices right now.
    pub fn parked(&self) -> usize {
        self.pending.len()
    }

    /// (slices, records) shed so far.
    pub fn shed(&self) -> (u64, u64) {
        (self.shed_slices, self.shed_records)
    }
}

// ---------------------------------------------------------------------------
// Stage health (watchdog surface)
// ---------------------------------------------------------------------------

/// Heartbeat cell one stage shares with the watchdog. `working` is only
/// true while the stage holds an item — a stage blocked on its input ring
/// is *waiting*, not wedged, and must never be restarted for it.
struct StageHealth {
    working: AtomicBool,
    /// Milliseconds since run start at the last heartbeat.
    beat_ms: AtomicU64,
    restarts: AtomicU64,
    /// Cancel token of the in-flight attempt, installed while working.
    attempt: Mutex<Option<CancelToken>>,
}

impl StageHealth {
    fn new() -> StageHealth {
        StageHealth {
            working: AtomicBool::new(false),
            beat_ms: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            attempt: Mutex::new(None),
        }
    }

    fn beat(&self, epoch: Instant) {
        self.beat_ms
            .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    fn begin_work(&self, epoch: Instant, token: &CancelToken) {
        if let Ok(mut slot) = self.attempt.lock() {
            *slot = Some(token.clone());
        }
        self.beat(epoch);
        self.working.store(true, Ordering::Release);
    }

    fn end_work(&self, epoch: Instant) {
        self.working.store(false, Ordering::Release);
        if let Ok(mut slot) = self.attempt.lock() {
            *slot = None;
        }
        self.beat(epoch);
    }

    /// Watchdog side: cancel the in-flight attempt of a wedged stage.
    fn kick(&self) {
        if let Ok(slot) = self.attempt.lock() {
            if let Some(token) = slot.as_ref() {
                token.cancel();
            }
        }
    }
}

/// Per-stage fault arm: which injected faults are still pending here.
struct FaultArm {
    hang_ms: Option<u64>,
    slow_ms: u64,
    slow_left: u32,
    transient_left: u32,
}

impl FaultArm {
    fn for_stage(stage: StageId, faults: &[StreamFault]) -> FaultArm {
        let mut arm = FaultArm {
            hang_ms: None,
            slow_ms: 0,
            slow_left: 0,
            transient_left: 0,
        };
        for f in faults.iter().filter(|f| f.stage == stage) {
            match f.kind {
                StreamFaultKind::Hang { ms } => arm.hang_ms = Some(ms),
                StreamFaultKind::Slow { ms, n } => {
                    arm.slow_ms = ms;
                    arm.slow_left = n;
                }
                StreamFaultKind::Transient { n } => arm.transient_left = n,
            }
        }
        arm
    }
}

/// Runs one stage work item under the watchdog contract: heartbeats while
/// working, injected faults applied first, cancellation surfacing as a
/// counted restart followed by one clean retry (the hang fault is consumed
/// by the restart, so accounting stays exact).
fn supervised<T>(
    health: &StageHealth,
    epoch: Instant,
    arm: &mut FaultArm,
    mut work: impl FnMut() -> T,
) -> T {
    loop {
        let token = CancelToken::unbounded();
        health.begin_work(epoch, &token);
        // Injected transient fault: fail the attempt, count a restart,
        // retry the same item.
        if arm.transient_left > 0 {
            arm.transient_left -= 1;
            health.restarts.fetch_add(1, Ordering::Relaxed);
            health.end_work(epoch);
            continue;
        }
        // Injected hang: stop heartbeating while "holding" the item until
        // the watchdog cancels the attempt token.
        if let Some(ms) = arm.hang_ms.take() {
            let until = Instant::now() + Duration::from_millis(ms);
            let mut cancelled = false;
            while Instant::now() < until {
                if token.is_cancelled() {
                    cancelled = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            health.end_work(epoch);
            if cancelled {
                // Watchdog restart: the fault is consumed (taken above),
                // so the retry processes the item cleanly.
                health.restarts.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Hang outlived the configured watchdog budget without a kick
            // (e.g. watchdog disabled): fall through and do the work.
            health.begin_work(epoch, &token);
        }
        // Injected slowdown: cooperative, so drains stay prompt.
        if arm.slow_ms > 0 && arm.slow_left > 0 {
            arm.slow_left -= 1;
            let until = Instant::now() + Duration::from_millis(arm.slow_ms);
            while Instant::now() < until && !token.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let out = work();
        health.end_work(epoch);
        return out;
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Everything [`run_stream`] needs. Defaults give a small, fast, clean run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Which synthetic dataset to replay (and to train on, clean).
    pub dataset: DatasetId,
    /// Generator size knobs.
    pub scale: SynthScale,
    /// Generator / chaos seed.
    pub seed: u64,
    /// Corrupt the replayed bytes with [`ChaosPcap`] before streaming.
    pub chaos: Option<ChaosConfig>,
    /// Replay pacing in packets/sec; 0 replays as fast as possible.
    pub rate_pps: u64,
    /// Time-slice width in capture microseconds.
    pub slice_us: u64,
    /// Tracker timeouts for the streaming path. Streaming wants far more
    /// aggressive idle finalization than the batch default (Zeek's 5-minute
    /// TCP timeout would park every flow of a short replay until EOF).
    pub flow: FlowConfig,
    /// Capacity of each inter-stage ring.
    pub ring_capacity: usize,
    /// Packets per batch on the source→decode→flow rings.
    pub batch: usize,
    /// Per-slice scoring budget (breaker input).
    pub score_budget: Duration,
    /// Consecutive over-budget slices that trip the breaker.
    pub breaker_threshold: u32,
    /// Degraded slices before the breaker probes (half-open).
    pub breaker_cooldown_slices: u32,
    /// Shed-buffer capacity (parked slices before shedding starts).
    pub pending_cap: usize,
    /// Heartbeat staleness that counts as a wedge; 0 disables the watchdog.
    pub watchdog_ms: u64,
    /// Injected stream faults.
    pub faults: Vec<StreamFault>,
    /// Cooperative stop flag (the SIGTERM path for tests; the binary also
    /// wires the process-global [`shutdown`] flag).
    pub stop: Option<Arc<AtomicBool>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            dataset: DatasetId::F1,
            scale: SynthScale::small(),
            seed: 7,
            chaos: None,
            rate_pps: 0,
            slice_us: 500_000,
            flow: FlowConfig {
                tcp_idle_us: 2_000_000,
                udp_idle_us: 1_000_000,
                icmp_idle_us: 1_000_000,
                ..FlowConfig::default()
            },
            ring_capacity: 8,
            batch: 256,
            score_budget: Duration::from_millis(250),
            breaker_threshold: 3,
            breaker_cooldown_slices: 2,
            pending_cap: 4,
            watchdog_ms: 0,
            faults: Vec::new(),
            stop: None,
        }
    }
}

fn stop_requested(cfg: &ServeConfig) -> bool {
    shutdown::termination_requested()
        || cfg
            .stop
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// Model bootstrap
// ---------------------------------------------------------------------------

/// Feature list the daemon extracts per connection — a stable subset of
/// `ConnExtract`'s catalog plus the one-hot state encoding.
const SERVE_FIELDS: [&str; 16] = [
    "duration",
    "orig_pkts",
    "resp_pkts",
    "orig_bytes",
    "resp_bytes",
    "bandwidth",
    "symmetry",
    "iat_mean",
    "iat_std",
    "orig_len_mean",
    "resp_len_mean",
    "orig_syn",
    "resp_ack",
    "orig_ttl_mean",
    "resp_port_wellknown",
    "state",
];

fn conn_extract_op() -> BenchResult<Box<dyn Operation>> {
    let fields: Vec<serde_json::Value> = SERVE_FIELDS
        .iter()
        .map(|f| serde_json::Value::String((*f).to_string()))
        .collect();
    Ok(build_op(
        "ConnExtract",
        &serde_json::json!({ "fields": fields }),
    )?)
}

/// Trains the daemon's scorer offline on the *clean* capture (labeled
/// ground truth), exactly as a deployment would train on a curated corpus
/// before going live, and freezes it behind [`Pretrained`]. Training uses
/// the same tracker timeouts and feature list as the live path so the
/// model sees the same record distribution it will score.
pub fn train_scorer(cfg: &ServeConfig) -> BenchResult<Pretrained> {
    let capture = build_dataset(cfg.dataset, cfg.scale, cfg.seed);
    let (metas, kept, _stats) = parse_capture_indexed(capture.link, &capture.packets, 1);
    let labels: Vec<u8> = kept
        .iter()
        .map(|&i| u8::from(capture.labels[i as usize].malicious))
        .collect();
    let tags: Vec<u32> = kept
        .iter()
        .map(|&i| capture.labels[i as usize].attack.map_or(0, attack_tag))
        .collect();
    let pd = PacketData {
        link: capture.link,
        metas,
        labels,
        tags,
    };
    let assemble = build_op(
        "FlowAssemble",
        &serde_json::json!({
            "tcp_idle_s": cfg.flow.tcp_idle_us as f64 / 1e6,
            "udp_idle_s": cfg.flow.udp_idle_us as f64 / 1e6,
            "shards": 1,
        }),
    )?;
    let conns = assemble.execute(&[&Data::Packets(Arc::new(pd))])?;
    let extract = conn_extract_op()?;
    let Data::Table(table) = extract.execute(&[&conns])? else {
        return Err(BenchError::Serde("ConnExtract did not yield a table".into()));
    };
    let data = table.to_dataset()?;
    let mut model = LogisticRegression::new(SgdConfig::default());
    model
        .fit(&data)
        .map_err(|e| BenchError::Serde(format!("scorer training failed: {e}")))?;
    Ok(Pretrained::new(model))
}

/// Featurizes one slice of records through the same `ConnExtract` op the
/// training path used. Labels/tags are unknown at runtime (all zero) and
/// the parent packet store is empty — `ConnExtract` reads only the records.
fn featurize(
    extract: &dyn Operation,
    link: LinkType,
    records: &[ConnRecord],
) -> BenchResult<Arc<Table>> {
    let n = records.len();
    let cd = ConnData {
        parent: Arc::new(PacketData::unlabeled(link, Vec::new())),
        conns: records.to_vec(),
        labels: vec![0; n],
        tags: vec![0; n],
        flow: FlowStats::default(),
        shard_flow: Vec::new(),
    };
    let Data::Table(table) = extract.execute(&[&Data::Connections(Arc::new(cd))])? else {
        return Err(BenchError::Serde("ConnExtract did not yield a table".into()));
    };
    Ok(table)
}

// ---------------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------------

struct DecodedBatch {
    metas: Vec<PacketMeta>,
    read: u64,
    parse_errors: u64,
    non_ip: u64,
}

/// Output of [`run_stream`]: the journal-ready report plus the source
/// reader's own accounting, so callers can cross-check the two.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Journal-ready stream report (schema v6).
    pub report: StreamReport,
    /// The recovering reader's capture accounting.
    pub source_stats: CaptureStats,
}

/// Offers a slice to the scorer without blocking: parked slices drain
/// first (order preserved), the ring's `Full` verdict parks, and the pen
/// sheds when over capacity. Returns false once the score stage is gone.
fn offer_slice(tx: &RingSender<Slice>, shed: &mut ShedBuffer, slice: Slice) -> bool {
    while let Some(ready) = shed.next_ready() {
        match tx.try_send(ready) {
            Ok(()) => {}
            Err(TrySendError::Full(back)) => {
                shed.unpark_front(back);
                break;
            }
            Err(TrySendError::Closed(_)) => return false,
        }
    }
    match tx.try_send(slice) {
        Ok(()) => true,
        Err(TrySendError::Full(back)) => {
            shed.park(back);
            true
        }
        Err(TrySendError::Closed(_)) => false,
    }
}

/// Runs the streaming daemon to completion (end of capture or requested
/// stop) and returns the packet-exact [`StreamReport`].
///
/// Stage layout (all on scoped threads, joined before return):
///
/// ```text
/// source ──ring──▶ decode ──ring──▶ flow ──ring+shed──▶ score
///    ▲                                                    │
///    └──────────── backpressure (bounded rings) ──────────┘
///                      watchdog supervises all four
/// ```
pub fn run_stream(cfg: &ServeConfig) -> BenchResult<StreamOutcome> {
    let scorer = train_scorer(cfg)?;
    let extract = conn_extract_op()?;
    let rules = RuleEngine::default();

    // Replay bytes: the dirty stream the daemon actually sees.
    let capture = build_dataset(cfg.dataset, cfg.scale, cfg.seed);
    let link = capture.link;
    let mut bytes = to_bytes(link, &capture.packets);
    if let Some(chaos_cfg) = cfg.chaos {
        let (dirty, _report) = ChaosPcap::new(cfg.seed, chaos_cfg).corrupt(&bytes);
        bytes = dirty;
    }

    let epoch = Instant::now();
    let health: Vec<Arc<StageHealth>> = (0..4).map(|_| Arc::new(StageHealth::new())).collect();
    let done = Arc::new(AtomicBool::new(false));

    let (pkt_tx, pkt_rx) = ring::<Vec<CapturedPacket>>(cfg.ring_capacity);
    let (meta_tx, meta_rx) = ring::<DecodedBatch>(cfg.ring_capacity);
    let (slice_tx, slice_rx) = ring::<Slice>(cfg.ring_capacity);
    let pkt_mon = pkt_rx.monitor();
    let meta_mon = meta_rx.monitor();
    let slice_mon = slice_rx.monitor();

    let mut outcome: Option<BenchResult<StreamOutcome>> = None;
    std::thread::scope(|s| {
        // --- watchdog ------------------------------------------------
        let wd_handle = {
            let health = health.clone();
            let done = done.clone();
            let watchdog_ms = cfg.watchdog_ms;
            s.spawn(move || {
                if watchdog_ms == 0 {
                    return;
                }
                let tick = Duration::from_millis((watchdog_ms / 4).max(1));
                while !done.load(Ordering::Acquire) {
                    let now_ms = epoch.elapsed().as_millis() as u64;
                    for h in &health {
                        let working = h.working.load(Ordering::Acquire);
                        let beat = h.beat_ms.load(Ordering::Relaxed);
                        // Waiting (blocked on a ring) is healthy; only a
                        // stage *holding work* with a stale heartbeat is
                        // wedged.
                        if working && now_ms.saturating_sub(beat) > watchdog_ms {
                            h.kick();
                        }
                    }
                    std::thread::sleep(tick);
                }
            })
        };

        // --- source --------------------------------------------------
        let src_handle = {
            let bytes = &bytes;
            let cfg_ref = cfg;
            let health = health[0].clone();
            let mut arm = FaultArm::for_stage(StageId::Source, &cfg.faults);
            s.spawn(move || {
                let mut reader = match RecoveringReader::new(bytes, PcapLimits::default()) {
                    Ok(r) => r,
                    // Header too corrupt to stream at all: empty run.
                    Err(_) => return (CaptureStats::default(), false),
                };
                let mut sigterm = false;
                let mut sent_total: u64 = 0;
                'read: loop {
                    if stop_requested(cfg_ref) {
                        sigterm = true;
                        break;
                    }
                    let mut batch = Vec::with_capacity(cfg_ref.batch);
                    while batch.len() < cfg_ref.batch {
                        match reader.next_packet() {
                            Some(p) => batch.push(p),
                            None => break,
                        }
                    }
                    if batch.is_empty() {
                        break;
                    }
                    let n = batch.len() as u64;
                    // Faults run inside the supervised window; the
                    // (possibly blocking) send happens outside it, so
                    // backpressure reads as waiting, never as a wedge.
                    supervised(&health, epoch, &mut arm, || ());
                    if pkt_tx.send(batch).is_err() {
                        break 'read; // downstream gone
                    }
                    sent_total += n;
                    // Pace the replay. Source-side sleeps also give the
                    // bounded rings room to drain: pacing and backpressure
                    // meet here.
                    if cfg_ref.rate_pps > 0 {
                        let due =
                            Duration::from_secs_f64(sent_total as f64 / cfg_ref.rate_pps as f64);
                        while epoch.elapsed() < due {
                            if stop_requested(cfg_ref) {
                                sigterm = true;
                                break 'read;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
                let stats = reader.stats();
                drop(pkt_tx); // close the ring: the drain cascades downstream
                (stats, sigterm)
            })
        };

        // --- decode --------------------------------------------------
        let dec_handle = {
            let health = health[1].clone();
            let mut arm = FaultArm::for_stage(StageId::Decode, &cfg.faults);
            s.spawn(move || {
                while let Some(batch) = pkt_rx.recv() {
                    let out = supervised(&health, epoch, &mut arm, || {
                        let mut d = DecodedBatch {
                            metas: Vec::with_capacity(batch.len()),
                            read: batch.len() as u64,
                            parse_errors: 0,
                            non_ip: 0,
                        };
                        for p in &batch {
                            match PacketMeta::parse(link, p.ts_us, &p.data) {
                                Ok(m) => {
                                    if m.five_tuple().is_none() {
                                        d.non_ip += 1;
                                    }
                                    d.metas.push(m);
                                }
                                Err(_) => d.parse_errors += 1,
                            }
                        }
                        d
                    });
                    if meta_tx.send(out).is_err() {
                        break;
                    }
                }
            })
        };

        // --- flow ----------------------------------------------------
        let flow_handle = {
            let health = health[2].clone();
            let mut arm = FaultArm::for_stage(StageId::Flow, &cfg.faults);
            let slice_us = cfg.slice_us.max(1);
            let pending_cap = cfg.pending_cap;
            let flow_cfg = cfg.flow;
            s.spawn(move || {
                let mut tracker = ConnectionTracker::new(flow_cfg);
                let mut shed = ShedBuffer::new(pending_cap);
                let mut read: u64 = 0;
                let mut parse_errors: u64 = 0;
                let mut non_ip: u64 = 0;
                let mut boundary: Option<u64> = None;
                let mut seq: u64 = 0;
                let mut index: u32 = 0;

                'pump: while let Some(batch) = meta_rx.recv() {
                    read += batch.read;
                    parse_errors += batch.parse_errors;
                    non_ip += batch.non_ip;
                    let slices = supervised(&health, epoch, &mut arm, || {
                        let mut out: Vec<Slice> = Vec::new();
                        for m in &batch.metas {
                            let mut bb = *boundary.get_or_insert_with(|| {
                                (m.ts_us / slice_us).saturating_add(1).saturating_mul(slice_us)
                            });
                            if m.ts_us >= bb {
                                let target = (m.ts_us / slice_us)
                                    .saturating_add(1)
                                    .saturating_mul(slice_us);
                                // Bound per-packet boundary work: a corrupt
                                // far-future timestamp fast-forwards in one
                                // flush instead of spinning per slice.
                                if (target - bb) / slice_us > 1024 {
                                    tracker.flush_idle(m.ts_us);
                                    let records = tracker.drain_done();
                                    if !records.is_empty() {
                                        out.push(Slice { seq, records });
                                        seq += 1;
                                    }
                                    bb = target;
                                } else {
                                    while m.ts_us >= bb {
                                        tracker.flush_idle(bb);
                                        let records = tracker.drain_done();
                                        if !records.is_empty() {
                                            out.push(Slice { seq, records });
                                            seq += 1;
                                        }
                                        bb += slice_us;
                                    }
                                }
                                boundary = Some(bb);
                            }
                            tracker.push(index, m);
                            index = index.wrapping_add(1);
                        }
                        out
                    });
                    for slice in slices {
                        if !offer_slice(&slice_tx, &mut shed, slice) {
                            break 'pump;
                        }
                    }
                }
                // End of stream (or stop): finalize every active flow and
                // drain the pen with *blocking* sends — the drain path
                // never sheds.
                let (records, flow_stats) = tracker.finish_remaining();
                if !records.is_empty() {
                    let _ = slice_tx.send(Slice { seq, records });
                }
                while let Some(ready) = shed.next_ready() {
                    if slice_tx.send(ready).is_err() {
                        break;
                    }
                }
                let (shed_slices, shed_records) = shed.shed();
                drop(slice_tx);
                (
                    read,
                    parse_errors,
                    non_ip,
                    flow_stats,
                    shed_slices,
                    shed_records,
                )
            })
        };

        // --- score ---------------------------------------------------
        let score_handle = {
            let health = health[3].clone();
            let mut arm = FaultArm::for_stage(StageId::Score, &cfg.faults);
            let scorer = scorer.clone();
            let extract = &extract;
            let mut breaker = CircuitBreaker::new(
                cfg.score_budget,
                cfg.breaker_threshold,
                cfg.breaker_cooldown_slices,
            );
            s.spawn(move || {
                let mut latencies_ms: Vec<f64> = Vec::new();
                let mut scored = (0u64, 0u64); // (slices, records)
                let mut degraded = (0u64, 0u64);
                let mut alarms: u64 = 0;
                while let Some(slice) = slice_rx.recv() {
                    let n = slice.records.len() as u64;
                    if breaker.use_model() {
                        let t0 = Instant::now();
                        let slice_alarms = supervised(&health, epoch, &mut arm, || {
                            match featurize(extract.as_ref(), link, &slice.records) {
                                Ok(table) => scorer
                                    .predict(&table.x)
                                    .iter()
                                    .filter(|&&p| p == 1)
                                    .count() as u64,
                                // Degenerate slice: fall back to the rules
                                // so the records still get a verdict.
                                Err(_) => rules.alarms(&slice.records),
                            }
                        });
                        let elapsed = t0.elapsed();
                        breaker.observe(elapsed);
                        latencies_ms.push(elapsed.as_secs_f64() * 1e3);
                        alarms += slice_alarms;
                        scored.0 += 1;
                        scored.1 += n;
                    } else {
                        alarms +=
                            supervised(&health, epoch, &mut arm, || rules.alarms(&slice.records));
                        degraded.0 += 1;
                        degraded.1 += n;
                    }
                }
                latencies_ms
                    .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let q = |p: f64| -> f64 {
                    if latencies_ms.is_empty() {
                        return 0.0;
                    }
                    let i = ((latencies_ms.len() - 1) as f64 * p).round() as usize;
                    latencies_ms[i.min(latencies_ms.len() - 1)]
                };
                (
                    scored,
                    degraded,
                    alarms,
                    q(0.50),
                    q(0.99),
                    breaker.trips(),
                    breaker.state().name().to_string(),
                )
            })
        };

        // --- join + assemble the report ------------------------------
        let src_out = src_handle.join();
        let dec_out = dec_handle.join();
        let flow_out = flow_handle.join();
        let score_out = score_handle.join();
        done.store(true, Ordering::Release);
        let _ = wd_handle.join();

        let (Ok((source_stats, sigterm)), Ok(()), Ok(flow_out), Ok(score_out)) =
            (src_out, dec_out, flow_out, score_out)
        else {
            outcome = Some(Err(BenchError::Serde("a pipeline stage panicked".into())));
            return;
        };
        let (read, parse_errors, non_ip, flow_stats, shed_slices, shed_records) = flow_out;
        let (scored, degraded, alarms, p50, p99, trips, breaker_final) = score_out;

        let stages = vec![
            StreamStageEntry {
                stage: "source".into(),
                queue_capacity: 0,
                queue_peak: 0,
                restarts: health[0].restarts.load(Ordering::Relaxed),
            },
            StreamStageEntry {
                stage: "decode".into(),
                queue_capacity: pkt_mon.capacity() as u64,
                queue_peak: pkt_mon.peak_depth() as u64,
                restarts: health[1].restarts.load(Ordering::Relaxed),
            },
            StreamStageEntry {
                stage: "flow".into(),
                queue_capacity: meta_mon.capacity() as u64,
                queue_peak: meta_mon.peak_depth() as u64,
                restarts: health[2].restarts.load(Ordering::Relaxed),
            },
            StreamStageEntry {
                stage: "score".into(),
                queue_capacity: slice_mon.capacity() as u64,
                queue_peak: slice_mon.peak_depth() as u64,
                restarts: health[3].restarts.load(Ordering::Relaxed),
            },
        ];
        let report = StreamReport {
            packets_read: read,
            packets_parsed: read - parse_errors,
            decode_errors: parse_errors,
            non_ip,
            records_finalized: flow_stats.records,
            slices_total: scored.0 + degraded.0 + shed_slices,
            slices_scored: scored.0,
            slices_degraded: degraded.0,
            slices_shed: shed_slices,
            records_scored: scored.1,
            records_degraded: degraded.1,
            records_shed: shed_records,
            alarms,
            score_p50_ms: p50,
            score_p99_ms: p99,
            breaker_trips: trips,
            breaker_final,
            stages,
            drained_clean: true,
            sigterm,
        };
        outcome = Some(Ok(StreamOutcome {
            report,
            source_stats,
        }));
    });
    outcome.unwrap_or_else(|| Err(BenchError::Serde("stream produced no outcome".into())))
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    // ---- pure components -------------------------------------------------

    #[test]
    fn fault_specs_parse_and_reject() {
        assert_eq!(
            StreamFault::parse("score:hang:30000").unwrap(),
            StreamFault {
                stage: StageId::Score,
                kind: StreamFaultKind::Hang { ms: 30_000 }
            }
        );
        assert_eq!(
            StreamFault::parse("decode:transient:2").unwrap(),
            StreamFault {
                stage: StageId::Decode,
                kind: StreamFaultKind::Transient { n: 2 }
            }
        );
        assert_eq!(
            StreamFault::parse("score:slow:50:4").unwrap(),
            StreamFault {
                stage: StageId::Score,
                kind: StreamFaultKind::Slow { ms: 50, n: 4 }
            }
        );
        // Defaults: slow applies to every item, hang 10s.
        assert_eq!(
            StreamFault::parse("flow:slow").unwrap().kind,
            StreamFaultKind::Slow {
                ms: 25,
                n: u32::MAX
            }
        );
        assert!(StreamFault::parse("turbo:hang").is_err());
        assert!(StreamFault::parse("score:explode").is_err());
        assert!(StreamFault::parse("score:slow:abc").is_err());
        assert!(StreamFault::parse("score:slow:1:2:3").is_err());
    }

    #[test]
    fn breaker_trips_after_consecutive_slow_and_recovers_via_probe() {
        let fast = Duration::from_millis(1);
        let slow = Duration::from_millis(100);
        let mut b = CircuitBreaker::new(Duration::from_millis(10), 2, 2);

        // One slow slice is noise; a fast one resets the streak.
        assert!(b.use_model());
        b.observe(slow);
        assert!(b.use_model());
        b.observe(fast);
        assert_eq!(b.state(), BreakerState::Closed);

        // Two consecutive slow slices trip it.
        assert!(b.use_model());
        b.observe(slow);
        assert!(b.use_model());
        b.observe(slow);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);

        // Cooldown: two degraded slices, then a half-open probe.
        assert!(!b.use_model());
        assert!(!b.use_model());
        assert_eq!(b.state(), BreakerState::HalfOpen);

        // Failed probe re-opens (and counts as a trip)...
        assert!(b.use_model());
        b.observe(slow);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);

        // ...and a successful probe after the next cooldown closes it.
        assert!(!b.use_model());
        assert!(!b.use_model());
        assert!(b.use_model());
        b.observe(fast);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 2);
    }

    /// A minimal hand-built record for the pure-component tests.
    fn test_record(proto: u8, state: ConnState, orig_pkts: u32, resp_pkts: u32) -> ConnRecord {
        ConnRecord {
            orig: (std::net::Ipv4Addr::new(10, 0, 0, 1), 40_000),
            resp: (std::net::Ipv4Addr::new(10, 0, 0, 2), 80),
            proto,
            start_us: 0,
            end_us: 1_000,
            orig_pkts,
            resp_pkts,
            orig_bytes: 100,
            resp_bytes: 100,
            orig_wire_bytes: 150,
            resp_wire_bytes: 150,
            orig_flags: lumen_flow::record::FlagCounts::default(),
            resp_flags: lumen_flow::record::FlagCounts::default(),
            iat: lumen_util::Summary::of(&[]),
            orig_len: lumen_util::Summary::of(&[]),
            resp_len: lumen_util::Summary::of(&[]),
            state,
            history: String::new(),
            first_n: Vec::new(),
            orig_ttl_mean: 64.0,
            packet_indices: Vec::new(),
        }
    }

    fn slice_of(seq: u64, n: usize) -> Slice {
        let rec = test_record(6, ConnState::SF, 4, 4);
        Slice {
            seq,
            records: vec![rec; n],
        }
    }

    #[test]
    fn shed_buffer_drops_the_smallest_slice_and_counts_it() {
        let mut pen = ShedBuffer::new(2);
        assert!(pen.park(slice_of(0, 5)).is_none());
        assert!(pen.park(slice_of(1, 2)).is_none());
        // Overflow: slice 1 (2 records) is the lowest-priority victim.
        let shed = pen.park(slice_of(2, 9)).expect("over capacity must shed");
        assert_eq!(shed.seq, 1);
        assert_eq!(pen.shed(), (1, 2));
        assert_eq!(pen.parked(), 2);
        // Ties shed the older slice, deterministically.
        let shed = pen.park(slice_of(3, 5)).expect("over capacity must shed");
        assert_eq!(shed.seq, 0);
        assert_eq!(pen.shed(), (2, 7));
        // FIFO drain of what's left.
        assert_eq!(pen.next_ready().map(|s| s.seq), Some(2));
        assert_eq!(pen.next_ready().map(|s| s.seq), Some(3));
        assert!(pen.next_ready().is_none());
    }

    #[test]
    fn rule_engine_flags_scan_and_flood_shapes() {
        let rules = RuleEngine::default();
        // Benign established flow.
        assert!(!rules.alarm(&test_record(6, ConnState::SF, 10, 9)));
        // Unanswered SYN (scan shape).
        assert!(rules.alarm(&test_record(6, ConnState::S0, 1, 0)));
        // SYN burst with a silent responder.
        let mut flood = test_record(6, ConnState::S1, 10, 0);
        flood.orig_flags = lumen_flow::record::FlagCounts([5, 0, 0, 0, 0, 0]);
        assert!(rules.alarm(&flood));
        // UDP flood: one-way, high volume.
        assert!(rules.alarm(&test_record(17, ConnState::Oth, 50, 0)));
        // Low-volume one-way UDP (DNS-ish) stays quiet.
        assert!(!rules.alarm(&test_record(17, ConnState::Oth, 2, 0)));
    }

    // ---- the daemon end to end -------------------------------------------

    fn overload_config() -> ServeConfig {
        ServeConfig {
            scale: SynthScale {
                duration_s: 8.0,
                benign_density: 3,
                intensity: 1.0,
                devices: 0,
            },
            slice_us: 250_000,
            ring_capacity: 2,
            batch: 64,
            pending_cap: 1,
            ..ServeConfig::default()
        }
    }

    /// Satellite 3 + tentpole acceptance: an unsustainable scoring rate
    /// must engage backpressure and shedding, never deadlock, and account
    /// for every packet and record against the source's own stats.
    #[test]
    fn overload_sheds_slices_and_accounts_exactly() {
        let cfg = ServeConfig {
            // Every slice takes ~30 ms at the scorer; the breaker is set
            // unreachable so pure load shedding carries the overload.
            faults: vec![StreamFault::parse("score:slow:30").unwrap()],
            score_budget: Duration::from_secs(60),
            breaker_threshold: u32::MAX,
            ..overload_config()
        };
        let out = run_stream(&cfg).expect("overloaded stream must still finish");
        let r = &out.report;
        assert!(
            r.accounts_exactly(),
            "every packet and record must be accounted for: {r:?}"
        );
        assert_eq!(
            r.packets_read, out.source_stats.records,
            "daemon accounting must match the reader's own stats"
        );
        assert!(r.packets_read > 0 && r.records_finalized > 0);
        assert!(
            r.slices_shed > 0 && r.records_shed > 0,
            "an unsustainable rate must shed, and shedding must be counted: {r:?}"
        );
        assert!(r.slices_scored > 0, "the drain path still scores: {r:?}");
        assert!(r.score_p50_ms > 0.0 && r.score_p99_ms >= r.score_p50_ms);
        assert!(r.drained_clean && !r.sigterm);
        // Backpressure engaged: the score ring hit its bound.
        let score_stage = r.stages.iter().find(|s| s.stage == "score").unwrap();
        assert_eq!(score_stage.queue_peak, score_stage.queue_capacity);
    }

    /// Satellite 3: a slow-scorer fault trips the breaker into degraded
    /// (rule-engine) mode, the run recovers after the fault clears, and
    /// degraded slices are exactly accounted.
    #[test]
    fn slow_scorer_trips_breaker_then_recovers() {
        let cfg = ServeConfig {
            // First 4 scorer items take ~100 ms against a 40 ms budget;
            // afterwards scoring is fast again and a probe must close the
            // breaker.
            faults: vec![StreamFault::parse("score:slow:100:4").unwrap()],
            score_budget: Duration::from_millis(40),
            breaker_threshold: 2,
            breaker_cooldown_slices: 1,
            // A roomy pen: this test is about the breaker, not shedding.
            ring_capacity: 8,
            pending_cap: 64,
            ..overload_config()
        };
        let out = run_stream(&cfg).expect("degraded stream must still finish");
        let r = &out.report;
        assert!(r.accounts_exactly(), "accounting broke: {r:?}");
        assert!(r.breaker_trips >= 1, "the slow fault must trip: {r:?}");
        assert!(
            r.slices_degraded > 0 && r.records_degraded > 0,
            "open-breaker slices go through the rule engine: {r:?}"
        );
        assert_eq!(
            r.breaker_final, "closed",
            "after the fault clears a probe must re-close the breaker: {r:?}"
        );
        assert!(r.slices_scored > 0);
        assert!(r.drained_clean && !r.sigterm);
    }

    /// Tentpole acceptance: a hung stage is detected by the watchdog,
    /// restarted, and the run still finishes cleanly with exact accounting.
    #[test]
    fn watchdog_restarts_a_hung_scorer() {
        let cfg = ServeConfig {
            faults: vec![StreamFault::parse("score:hang:30000").unwrap()],
            watchdog_ms: 50,
            ..overload_config()
        };
        let t0 = Instant::now();
        let out = run_stream(&cfg).expect("a hung stage must not hang the run");
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "watchdog should cut the 30 s hang short"
        );
        let r = &out.report;
        assert!(r.accounts_exactly(), "accounting broke: {r:?}");
        let score_stage = r.stages.iter().find(|s| s.stage == "score").unwrap();
        assert!(
            score_stage.restarts >= 1,
            "the watchdog must log the restart: {r:?}"
        );
        assert!(r.drained_clean && r.slices_scored > 0);
    }

    /// Transient faults are retried in place and counted as restarts.
    #[test]
    fn transient_decode_fault_is_retried_and_counted() {
        let cfg = ServeConfig {
            faults: vec![StreamFault::parse("decode:transient:2").unwrap()],
            ..overload_config()
        };
        let out = run_stream(&cfg).expect("transient faults must be absorbed");
        let r = &out.report;
        assert!(r.accounts_exactly(), "accounting broke: {r:?}");
        assert_eq!(r.packets_read, out.source_stats.records);
        let decode_stage = r.stages.iter().find(|s| s.stage == "decode").unwrap();
        assert_eq!(decode_stage.restarts, 2, "both injected failures count");
    }

    /// Clean termination drain: a SIGTERM-equivalent stop mid-replay stops
    /// the source, drains every stage, and the partial run still accounts
    /// exactly.
    #[test]
    fn requested_stop_drains_cleanly_mid_replay() {
        let stop = Arc::new(AtomicBool::new(false));
        let total = build_dataset(
            overload_config().dataset,
            overload_config().scale,
            overload_config().seed,
        )
        .packets
        .len() as u64;
        let cfg = ServeConfig {
            // Pace the replay so the whole capture would take ~60 s; the
            // stop lands long before that.
            rate_pps: (total / 60).max(10),
            stop: Some(stop.clone()),
            ..overload_config()
        };
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            stop.store(true, Ordering::Relaxed);
        });
        let out = run_stream(&cfg).expect("a requested stop is a clean exit");
        setter.join().unwrap();
        let r = &out.report;
        assert!(r.sigterm, "the stop must be recorded: {r:?}");
        assert!(r.drained_clean);
        assert!(r.accounts_exactly(), "partial runs still account: {r:?}");
        assert_eq!(r.packets_read, out.source_stats.records);
        assert!(
            r.packets_read < total,
            "the stop should land mid-replay ({} of {total} packets)",
            r.packets_read
        );
    }

    /// `--chaos`: corrupted replay bytes stream through the recovering
    /// reader; damage shows up as reader stats, not lost accounting.
    #[test]
    fn chaos_capture_streams_with_exact_accounting() {
        let cfg = ServeConfig {
            chaos: Some(ChaosConfig::default()),
            ..overload_config()
        };
        let out = run_stream(&cfg).expect("chaos bytes must still stream");
        let r = &out.report;
        assert!(r.accounts_exactly(), "accounting broke: {r:?}");
        assert_eq!(r.packets_read, out.source_stats.records);
        assert!(r.packets_read > 0);
        assert!(
            out.source_stats.dropped_records > 0 || out.source_stats.resyncs > 0,
            "default chaos config should damage something: {:?}",
            out.source_stats
        );
    }
}
