//! `lumen-serve`: the overload-resilient streaming detection daemon
//! (DESIGN.md §4k), with online drift detection and adaptive recovery
//! (DESIGN.md §4l).
//!
//! A replayed capture flows through staged workers connected by
//! bounded rings — source → decode → flow → score, plus a background
//! retrain stage — so backpressure propagates source-ward instead of
//! growing unbounded queues. Overload is a first-class condition, not an
//! accident:
//!
//! * the flow→score edge absorbs pressure through a priority shed buffer
//!   ([`ShedBuffer`]): when the scorer falls behind, the lowest-priority
//!   pending slices (fewest records) are dropped, counted, and journaled —
//!   never silently;
//! * a circuit breaker ([`CircuitBreaker`]) around the ML scorer trips to
//!   a cheap threshold [`RuleEngine`] prefilter after consecutive
//!   over-budget scorings, then probes its way back (half-open) once the
//!   cooldown elapses;
//! * a watchdog thread supervises per-stage heartbeats and cancels the
//!   attempt token of any stage that wedges while holding work, forcing a
//!   counted restart instead of a hung run;
//! * SIGTERM (or a cooperative stop flag) drains the pipeline stage by
//!   stage and flushes the journal, so an operator kill never loses the
//!   run's accounting.
//!
//! Concept drift is the other first-class failure mode (DESIGN.md §4l).
//! With a [`DriftConfig`] set, the score stage feeds every ML-scored slice
//! to a [`DriftMonitor`]; a confirmed detection moves the daemon into a
//! journaled *Adapting* state: the rule-engine prefilter is promoted
//! full-time (hits counted), the frozen scorer is handed to the retrain
//! stage, which thaws it ([`Pretrained::into_inner`]), warm-starts a
//! snapshot on reservoir-sampled recent slices under a cancellable,
//! deadline-budgeted token, and swaps the candidate in only after it
//! beats the prefilter on held-back slices. Failed or aborted retrains
//! reinstate the untouched original and are counted — never silent.
//! Scenario runs ([`ServeConfig::scenario`]) replay a capture with drift
//! ground truth, so detection latency per breakpoint is measurable.
//!
//! Everything is packet-exact: `packets_read == packets_parsed +
//! decode_errors` and `records_scored + records_degraded + records_shed ==
//! records_finalized`, enforced by [`StreamReport::accounts_exactly`] and
//! asserted by the tests below.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lumen_core::data::{ConnData, Data, PacketData};
use lumen_core::ops::{build_op, Operation};
use lumen_core::par::parse_capture_indexed;
use lumen_core::table::Table;
use lumen_flow::{ConnRecord, ConnState, ConnectionTracker, FlowConfig, FlowStats};
use lumen_ml::linear::{LogisticRegression, SgdConfig};
use lumen_ml::{Classifier, Dataset, DriftConfig, DriftMonitor, Matrix, MlError, Pretrained};
use lumen_net::pcap::{to_bytes, CaptureStats, CapturedPacket, PcapLimits, RecoveringReader};
use lumen_net::{LinkType, PacketMeta};
use lumen_synth::{
    build_dataset, build_scenario, ChaosConfig, ChaosPcap, DatasetId, Label, LabeledCapture,
    ScenarioId, ScenarioReport, SynthScale,
};
use lumen_util::shutdown;
use lumen_util::{ring, CancelToken, Rng, RingSender, TryRecvError, TrySendError};

use crate::datasets::attack_tag;
use crate::journal::{DriftBreakpointEntry, DriftReport, StreamReport, StreamStageEntry};
use crate::{BenchError, BenchResult};

// ---------------------------------------------------------------------------
// Stage identity and fault injection
// ---------------------------------------------------------------------------

/// The five pipeline stages: four in flow order plus the background
/// retrain stage the score stage delegates adaptation to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageId {
    /// Replayed pcap bytes through the recovering reader.
    Source,
    /// Frame → [`PacketMeta`] decode.
    Decode,
    /// Sliced incremental flow assembly.
    Flow,
    /// ML scoring (or rule-engine prefilter in degraded mode).
    Score,
    /// Background warm-start retraining while the daemon is adapting.
    Retrain,
}

impl StageId {
    /// All stages in pipeline order (retrain last: it hangs off score).
    pub const ALL: [StageId; 5] = [
        StageId::Source,
        StageId::Decode,
        StageId::Flow,
        StageId::Score,
        StageId::Retrain,
    ];

    /// Journal/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            StageId::Source => "source",
            StageId::Decode => "decode",
            StageId::Flow => "flow",
            StageId::Score => "score",
            StageId::Retrain => "retrain",
        }
    }

    fn parse(s: &str) -> Option<StageId> {
        match s {
            "source" => Some(StageId::Source),
            "decode" => Some(StageId::Decode),
            "flow" => Some(StageId::Flow),
            "score" => Some(StageId::Score),
            "retrain" => Some(StageId::Retrain),
            _ => None,
        }
    }
}

/// What an injected stream fault does to its stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFaultKind {
    /// The stage stops making progress for `ms` while holding work — the
    /// watchdog must cancel and restart it. Fires once.
    Hang { ms: u64 },
    /// The first `n` items at the stage each take an extra `ms` — the
    /// overload / breaker-trip lever.
    Slow { ms: u64, n: u32 },
    /// The first item at the stage fails `n` times before succeeding;
    /// each failure is a counted stage restart.
    Transient { n: u32 },
}

/// One injected fault, bound to a stage. Parsed from
/// `STAGE:KIND[:ARG[:N]]` — e.g. `score:hang:30000`, `score:slow:50`,
/// `score:slow:50:4`, `decode:transient:2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFault {
    /// Which stage the fault hits.
    pub stage: StageId,
    /// What it does there.
    pub kind: StreamFaultKind,
}

impl StreamFault {
    /// Parses a `STAGE:KIND[:ARG[:N]]` spec. `hang`/`slow` default to
    /// 10 000 ms / 25 ms, `slow` to all items, `transient` to 1 failure.
    pub fn parse(spec: &str) -> BenchResult<StreamFault> {
        let bad = |why: &str| BenchError::Serde(format!("bad --fault {spec:?}: {why}"));
        let mut parts = spec.split(':');
        let stage = parts
            .next()
            .and_then(StageId::parse)
            .ok_or_else(|| bad("stage must be source/decode/flow/score/retrain"))?;
        let kind = parts.next().unwrap_or("");
        let mut num = |p: Option<&str>| -> BenchResult<Option<u64>> {
            match p {
                None => Ok(None),
                Some(a) => a
                    .parse()
                    .map(Some)
                    .map_err(|_| bad("arguments must be integers")),
            }
        };
        let arg = num(parts.next())?;
        let count = num(parts.next())?;
        if parts.next().is_some() {
            return Err(bad("too many ':' segments"));
        }
        let clamp32 = |v: u64| v.min(u64::from(u32::MAX)) as u32;
        let kind = match kind {
            "hang" => StreamFaultKind::Hang {
                ms: arg.unwrap_or(10_000),
            },
            "slow" => StreamFaultKind::Slow {
                ms: arg.unwrap_or(25),
                n: count.map_or(u32::MAX, clamp32),
            },
            "transient" => StreamFaultKind::Transient {
                n: clamp32(arg.unwrap_or(1)),
            },
            _ => return Err(bad("kind must be hang/slow/transient")),
        };
        Ok(StreamFault { stage, kind })
    }
}

// ---------------------------------------------------------------------------
// Rule engine (degraded-mode prefilter)
// ---------------------------------------------------------------------------

/// Cheap threshold rules over flow features — the degraded-mode prefilter
/// the breaker falls back to when ML scoring is too slow. No featurization,
/// no matrix: a handful of comparisons per [`ConnRecord`], so it keeps up
/// at rates that drown the model.
///
/// The rules target the attack shapes the synthetic corpus actually
/// produces: connection attempts that never get an answer (scans, SYN
/// floods) and high-volume one-way chatter (UDP floods).
#[derive(Debug, Clone, Copy)]
pub struct RuleEngine {
    /// A TCP flow with at least this many originator SYNs and no responder
    /// packets looks like a flood probe.
    pub syn_burst: u32,
    /// A no-response (non-TCP) flow with at least this many originator
    /// packets looks like a flood.
    pub oneway_pkts: u32,
}

impl Default for RuleEngine {
    fn default() -> RuleEngine {
        RuleEngine {
            syn_burst: 3,
            oneway_pkts: 20,
        }
    }
}

impl RuleEngine {
    /// True when the record trips any rule.
    pub fn alarm(&self, rec: &ConnRecord) -> bool {
        // Rule 1: connection attempt the responder never answered — the
        // Zeek S0/REJ states cover vertical scans and SYN probes.
        if rec.proto == 6 && matches!(rec.state, ConnState::S0 | ConnState::Rej) {
            return true;
        }
        // Rule 2: SYN burst with a silent responder (flood shape even when
        // the state machine saw enough to leave S0).
        if rec.proto == 6 && rec.orig_flags.syn() >= self.syn_burst && rec.resp_pkts == 0 {
            return true;
        }
        // Rule 3: high-volume one-way non-TCP chatter (UDP/ICMP flood).
        if rec.proto != 6 && rec.resp_pkts == 0 && rec.orig_pkts >= self.oneway_pkts {
            return true;
        }
        false
    }

    /// Alarm count over a slice of records.
    pub fn alarms(&self, recs: &[ConnRecord]) -> u64 {
        recs.iter().filter(|r| self.alarm(r)).count() as u64
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Breaker state: closed (ML scoring), open (rule engine), half-open
/// (probing one slice through the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: slices go through the ML model.
    Closed,
    /// Degraded: slices go through the rule engine until the cooldown
    /// (counted in slices) elapses.
    Open,
    /// Cooldown over: the next slice probes the model; a fast probe closes
    /// the breaker, a slow one re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Journal name (`closed`/`open`/`half-open`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Pure breaker state machine around the scorer. The score stage reports
/// each model-scored slice's latency; the breaker decides whether the
/// *next* slice is scored by the model or the rule engine. Deterministic
/// and clock-free, so it unit-tests without timers.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Per-slice scoring budget: a slice slower than this is "over budget".
    budget: Duration,
    /// Consecutive over-budget slices that trip the breaker.
    threshold: u32,
    /// Degraded slices to serve before probing.
    cooldown_slices: u32,
    consecutive_slow: u32,
    cooldown_left: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// Builds a closed breaker. Threshold and cooldown are clamped ≥ 1.
    pub fn new(budget: Duration, threshold: u32, cooldown_slices: u32) -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            budget,
            threshold: threshold.max(1),
            cooldown_slices: cooldown_slices.max(1),
            consecutive_slow: 0,
            cooldown_left: 0,
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker tripped open (including re-opens after a failed
    /// half-open probe).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether the next slice should be scored by the ML model (`true`) or
    /// the rule engine (`false`). Open-state calls also tick the cooldown.
    pub fn use_model(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                }
                false
            }
        }
    }

    /// Reports the latency of a model-scored slice and advances the state
    /// machine.
    pub fn observe(&mut self, elapsed: Duration) {
        let slow = elapsed > self.budget;
        match self.state {
            BreakerState::Closed => {
                if slow {
                    self.consecutive_slow += 1;
                    if self.consecutive_slow >= self.threshold {
                        self.trip();
                    }
                } else {
                    self.consecutive_slow = 0;
                }
            }
            BreakerState::HalfOpen => {
                if slow {
                    // Failed probe: straight back to degraded mode.
                    self.trip();
                } else {
                    self.state = BreakerState::Closed;
                    self.consecutive_slow = 0;
                }
            }
            // A rule-engine slice never reaches observe(); nothing to do.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.trips += 1;
        self.consecutive_slow = 0;
        self.cooldown_left = self.cooldown_slices;
    }
}

// ---------------------------------------------------------------------------
// Shed buffer
// ---------------------------------------------------------------------------

/// One time-slice of finalized connection records headed for the scorer.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Monotonic slice number (for logs; accounting is by record count).
    pub seq: u64,
    /// Records finalized in this slice.
    pub records: Vec<ConnRecord>,
    /// Ground-truth label per record (any member packet malicious) — the
    /// replay harness's stand-in for operator feedback, consumed by drift
    /// accuracy accounting and warm-start retraining. All-false when the
    /// capture's labels could not be realigned.
    pub labels: Vec<bool>,
    /// Capture timestamp of the slice boundary that closed this slice
    /// (µs), used to match drift detections to scenario breakpoints.
    pub end_ts_us: u64,
}

/// Bounded holding pen between the flow stage and the score ring. When the
/// ring is full the flow stage parks slices here instead of blocking; when
/// the pen itself is full, the *lowest-priority* slice (fewest records —
/// the least evidence lost per drop) is shed and counted. Shedding is the
/// explicit, journaled overload valve: nothing ever vanishes silently.
#[derive(Debug)]
pub struct ShedBuffer {
    pending: Vec<Slice>,
    capacity: usize,
    shed_slices: u64,
    shed_records: u64,
}

impl ShedBuffer {
    /// A pen holding at most `capacity` parked slices (clamped ≥ 1).
    pub fn new(capacity: usize) -> ShedBuffer {
        ShedBuffer {
            pending: Vec::new(),
            capacity: capacity.max(1),
            shed_slices: 0,
            shed_records: 0,
        }
    }

    /// Parks a slice; sheds the lowest-priority parked slice when over
    /// capacity. Returns the shed slice (already counted) so callers can
    /// log it.
    pub fn park(&mut self, slice: Slice) -> Option<Slice> {
        self.pending.push(slice);
        if self.pending.len() <= self.capacity {
            return None;
        }
        // Priority = record count; ties broken toward the older slice so
        // shedding is deterministic.
        let victim = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|&(i, s)| (s.records.len(), i))
            .map(|(i, _)| i)?;
        let shed = self.pending.remove(victim);
        self.shed_slices += 1;
        self.shed_records += shed.records.len() as u64;
        Some(shed)
    }

    /// Oldest parked slice, if any.
    pub fn next_ready(&mut self) -> Option<Slice> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.pending.remove(0))
        }
    }

    /// Puts a slice back at the front (the ring refused it after
    /// [`ShedBuffer::next_ready`]).
    pub fn unpark_front(&mut self, slice: Slice) {
        self.pending.insert(0, slice);
    }

    /// Parked slices right now.
    pub fn parked(&self) -> usize {
        self.pending.len()
    }

    /// (slices, records) shed so far.
    pub fn shed(&self) -> (u64, u64) {
        (self.shed_slices, self.shed_records)
    }
}

// ---------------------------------------------------------------------------
// Stage health (watchdog surface)
// ---------------------------------------------------------------------------

/// Heartbeat cell one stage shares with the watchdog. `working` is only
/// true while the stage holds an item — a stage blocked on its input ring
/// is *waiting*, not wedged, and must never be restarted for it.
struct StageHealth {
    working: AtomicBool,
    /// Milliseconds since run start at the last heartbeat.
    beat_ms: AtomicU64,
    restarts: AtomicU64,
    /// Cancel token of the in-flight attempt, installed while working.
    attempt: Mutex<Option<CancelToken>>,
}

impl StageHealth {
    fn new() -> StageHealth {
        StageHealth {
            working: AtomicBool::new(false),
            beat_ms: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            attempt: Mutex::new(None),
        }
    }

    fn beat(&self, epoch: Instant) {
        self.beat_ms
            .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    fn begin_work(&self, epoch: Instant, token: &CancelToken) {
        if let Ok(mut slot) = self.attempt.lock() {
            *slot = Some(token.clone());
        }
        self.beat(epoch);
        self.working.store(true, Ordering::Release);
    }

    fn end_work(&self, epoch: Instant) {
        self.working.store(false, Ordering::Release);
        if let Ok(mut slot) = self.attempt.lock() {
            *slot = None;
        }
        self.beat(epoch);
    }

    /// Watchdog side: cancel the in-flight attempt of a wedged stage.
    fn kick(&self) {
        if let Ok(slot) = self.attempt.lock() {
            if let Some(token) = slot.as_ref() {
                token.cancel();
            }
        }
    }
}

/// Per-stage fault arm: which injected faults are still pending here.
struct FaultArm {
    hang_ms: Option<u64>,
    slow_ms: u64,
    slow_left: u32,
    transient_left: u32,
}

impl FaultArm {
    fn for_stage(stage: StageId, faults: &[StreamFault]) -> FaultArm {
        let mut arm = FaultArm {
            hang_ms: None,
            slow_ms: 0,
            slow_left: 0,
            transient_left: 0,
        };
        for f in faults.iter().filter(|f| f.stage == stage) {
            match f.kind {
                StreamFaultKind::Hang { ms } => arm.hang_ms = Some(ms),
                StreamFaultKind::Slow { ms, n } => {
                    arm.slow_ms = ms;
                    arm.slow_left = n;
                }
                StreamFaultKind::Transient { n } => arm.transient_left = n,
            }
        }
        arm
    }
}

/// Runs one stage work item under the watchdog contract: heartbeats while
/// working, injected faults applied first, cancellation surfacing as a
/// counted restart followed by one clean retry (the hang fault is consumed
/// by the restart, so accounting stays exact).
fn supervised<T>(
    health: &StageHealth,
    epoch: Instant,
    arm: &mut FaultArm,
    mut work: impl FnMut() -> T,
) -> T {
    loop {
        let token = CancelToken::unbounded();
        health.begin_work(epoch, &token);
        // Injected transient fault: fail the attempt, count a restart,
        // retry the same item.
        if arm.transient_left > 0 {
            arm.transient_left -= 1;
            health.restarts.fetch_add(1, Ordering::Relaxed);
            health.end_work(epoch);
            continue;
        }
        // Injected hang: stop heartbeating while "holding" the item until
        // the watchdog cancels the attempt token.
        if let Some(ms) = arm.hang_ms.take() {
            let until = Instant::now() + Duration::from_millis(ms);
            let mut cancelled = false;
            while Instant::now() < until {
                if token.is_cancelled() {
                    cancelled = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            health.end_work(epoch);
            if cancelled {
                // Watchdog restart: the fault is consumed (taken above),
                // so the retry processes the item cleanly.
                health.restarts.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Hang outlived the configured watchdog budget without a kick
            // (e.g. watchdog disabled): fall through and do the work.
            health.begin_work(epoch, &token);
        }
        // Injected slowdown: cooperative, so drains stay prompt.
        if arm.slow_ms > 0 && arm.slow_left > 0 {
            arm.slow_left -= 1;
            let until = Instant::now() + Duration::from_millis(arm.slow_ms);
            while Instant::now() < until && !token.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let out = work();
        health.end_work(epoch);
        return out;
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Everything [`run_stream`] needs. Defaults give a small, fast, clean run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Which synthetic dataset to replay (and to train on, clean).
    pub dataset: DatasetId,
    /// Generator size knobs.
    pub scale: SynthScale,
    /// Generator / chaos seed.
    pub seed: u64,
    /// Corrupt the replayed bytes with [`ChaosPcap`] before streaming.
    pub chaos: Option<ChaosConfig>,
    /// Replay pacing in packets/sec; 0 replays as fast as possible.
    pub rate_pps: u64,
    /// Time-slice width in capture microseconds.
    pub slice_us: u64,
    /// Tracker timeouts for the streaming path. Streaming wants far more
    /// aggressive idle finalization than the batch default (Zeek's 5-minute
    /// TCP timeout would park every flow of a short replay until EOF).
    pub flow: FlowConfig,
    /// Capacity of each inter-stage ring.
    pub ring_capacity: usize,
    /// Packets per batch on the source→decode→flow rings.
    pub batch: usize,
    /// Per-slice scoring budget (breaker input).
    pub score_budget: Duration,
    /// Consecutive over-budget slices that trip the breaker.
    pub breaker_threshold: u32,
    /// Degraded slices before the breaker probes (half-open).
    pub breaker_cooldown_slices: u32,
    /// Shed-buffer capacity (parked slices before shedding starts).
    pub pending_cap: usize,
    /// Heartbeat staleness that counts as a wedge; 0 disables the watchdog.
    pub watchdog_ms: u64,
    /// Injected stream faults.
    pub faults: Vec<StreamFault>,
    /// Cooperative stop flag (the SIGTERM path for tests; the binary also
    /// wires the process-global [`shutdown`] flag).
    pub stop: Option<Arc<AtomicBool>>,
    /// Replay a scenario-engine capture (with drift/evasion ground truth)
    /// instead of the static `dataset` recipe. The scorer then trains on
    /// the clean pre-breakpoint prefix only.
    pub scenario: Option<ScenarioId>,
    /// Online drift detection tuning; `None` disables drift detection and
    /// adaptation entirely (the pre-v7 behavior).
    pub drift: Option<DriftConfig>,
    /// Wall-clock budget per warm-start retrain attempt, ms (0 =
    /// unbounded). The retrain token carries this as its deadline.
    pub retrain_budget_ms: u64,
    /// Reservoir capacity (slices) for the warm-start training sample.
    pub reservoir_cap: usize,
    /// Most-recent slices held back from training for the validation gate.
    pub holdback: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            dataset: DatasetId::F1,
            scale: SynthScale::small(),
            seed: 7,
            chaos: None,
            rate_pps: 0,
            slice_us: 500_000,
            flow: FlowConfig {
                tcp_idle_us: 2_000_000,
                udp_idle_us: 1_000_000,
                icmp_idle_us: 1_000_000,
                ..FlowConfig::default()
            },
            ring_capacity: 8,
            batch: 256,
            score_budget: Duration::from_millis(250),
            breaker_threshold: 3,
            breaker_cooldown_slices: 2,
            pending_cap: 4,
            watchdog_ms: 0,
            faults: Vec::new(),
            stop: None,
            scenario: None,
            drift: None,
            retrain_budget_ms: 30_000,
            reservoir_cap: 16,
            holdback: 4,
        }
    }
}

fn stop_requested(cfg: &ServeConfig) -> bool {
    shutdown::termination_requested()
        || cfg
            .stop
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// Model bootstrap
// ---------------------------------------------------------------------------

/// Feature list the daemon extracts per connection — a stable subset of
/// `ConnExtract`'s catalog plus the one-hot state encoding.
const SERVE_FIELDS: [&str; 16] = [
    "duration",
    "orig_pkts",
    "resp_pkts",
    "orig_bytes",
    "resp_bytes",
    "bandwidth",
    "symmetry",
    "iat_mean",
    "iat_std",
    "orig_len_mean",
    "resp_len_mean",
    "orig_syn",
    "resp_ack",
    "orig_ttl_mean",
    "resp_port_wellknown",
    "state",
];

fn conn_extract_op() -> BenchResult<Box<dyn Operation>> {
    let fields: Vec<serde_json::Value> = SERVE_FIELDS
        .iter()
        .map(|f| serde_json::Value::String((*f).to_string()))
        .collect();
    Ok(build_op(
        "ConnExtract",
        &serde_json::json!({ "fields": fields }),
    )?)
}

/// The capture a serve run replays: the static `dataset` recipe, or —
/// when [`ServeConfig::scenario`] is set — a scenario-engine capture with
/// its drift/evasion ground truth.
pub fn build_serve_capture(cfg: &ServeConfig) -> (LabeledCapture, Option<ScenarioReport>) {
    match cfg.scenario {
        Some(id) => {
            let (capture, report) = build_scenario(id, cfg.scale, cfg.seed);
            (capture, Some(report))
        }
        None => (build_dataset(cfg.dataset, cfg.scale, cfg.seed), None),
    }
}

/// Packets before the first ground-truth breakpoint — the clean prefix a
/// scenario run trains on, so the model genuinely meets the drifted regime
/// cold. Without a scenario the whole capture is the training corpus.
fn training_cut(capture: &LabeledCapture, scenario: Option<&ScenarioReport>) -> usize {
    match scenario.and_then(|r| r.breakpoints.first()) {
        Some(bp) => capture.packets.partition_point(|p| p.ts_us < bp.ts_us),
        None => capture.packets.len(),
    }
}

/// Trains the daemon's scorer offline on the *clean* capture (labeled
/// ground truth), exactly as a deployment would train on a curated corpus
/// before going live, and freezes it behind [`Pretrained`]. Training uses
/// the same tracker timeouts and feature list as the live path so the
/// model sees the same record distribution it will score.
pub fn train_scorer(cfg: &ServeConfig) -> BenchResult<Pretrained> {
    let (capture, scenario) = build_serve_capture(cfg);
    let cut = training_cut(&capture, scenario.as_ref());
    train_on_packets(cfg, capture.link, &capture.packets[..cut], &capture.labels[..cut])
}

/// The shared training path: flow-assembles `packets`, featurizes, and
/// fits the logistic scorer.
fn train_on_packets(
    cfg: &ServeConfig,
    link: LinkType,
    packets: &[CapturedPacket],
    pkt_labels: &[Label],
) -> BenchResult<Pretrained> {
    let (metas, kept, _stats) = parse_capture_indexed(link, packets, 1);
    let labels: Vec<u8> = kept
        .iter()
        .map(|&i| u8::from(pkt_labels[i as usize].malicious))
        .collect();
    let tags: Vec<u32> = kept
        .iter()
        .map(|&i| pkt_labels[i as usize].attack.map_or(0, attack_tag))
        .collect();
    let pd = PacketData {
        link,
        metas,
        labels,
        tags,
    };
    let assemble = build_op(
        "FlowAssemble",
        &serde_json::json!({
            "tcp_idle_s": cfg.flow.tcp_idle_us as f64 / 1e6,
            "udp_idle_s": cfg.flow.udp_idle_us as f64 / 1e6,
            "shards": 1,
        }),
    )?;
    let conns = assemble.execute(&[&Data::Packets(Arc::new(pd))])?;
    let extract = conn_extract_op()?;
    let Data::Table(table) = extract.execute(&[&conns])? else {
        return Err(BenchError::Serde("ConnExtract did not yield a table".into()));
    };
    let data = table.to_dataset()?;
    let mut model = LogisticRegression::new(SgdConfig::default());
    model
        .fit(&data)
        .map_err(|e| BenchError::Serde(format!("scorer training failed: {e}")))?;
    Ok(Pretrained::new(model))
}

/// Featurizes one slice of records through the same `ConnExtract` op the
/// training path used. Labels/tags are unknown at runtime (all zero) and
/// the parent packet store is empty — `ConnExtract` reads only the records.
fn featurize(
    extract: &dyn Operation,
    link: LinkType,
    records: &[ConnRecord],
) -> BenchResult<Arc<Table>> {
    let n = records.len();
    let cd = ConnData {
        parent: Arc::new(PacketData::unlabeled(link, Vec::new())),
        conns: records.to_vec(),
        labels: vec![0; n],
        tags: vec![0; n],
        flow: FlowStats::default(),
        shard_flow: Vec::new(),
    };
    let Data::Table(table) = extract.execute(&[&Data::Connections(Arc::new(cd))])? else {
        return Err(BenchError::Serde("ConnExtract did not yield a table".into()));
    };
    Ok(table)
}

/// Per-column means of a feature matrix — the drift monitor's per-slice
/// feature observation.
fn column_means(x: &Matrix) -> Vec<f64> {
    let (rows, cols) = (x.rows(), x.cols());
    let mut means = vec![0.0; cols];
    for row in x.rows_iter() {
        for (m, v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    if rows > 0 {
        for m in &mut means {
            *m /= rows as f64;
        }
    }
    means
}

/// Ground-truth label per finalized record: malicious when any member
/// packet was. `pkt_labels` is indexed by the tracker's packet index.
fn record_labels(records: &[ConnRecord], pkt_labels: &[bool]) -> Vec<bool> {
    records
        .iter()
        .map(|r| {
            r.packet_indices
                .iter()
                .any(|&i| pkt_labels.get(i as usize).copied().unwrap_or(false))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Adaptive retraining
// ---------------------------------------------------------------------------

/// What the score stage hands the retrain stage when drift is confirmed:
/// its only scorer handle (so the checked thaw succeeds), the
/// reservoir-sampled training slices, and the held-back validation
/// slices.
struct RetrainJob {
    scorer: Pretrained,
    train: Vec<Slice>,
    holdback: Vec<Slice>,
}

/// The retrain stage's verdict, sent back on the result ring.
enum RetrainReply {
    /// The warm-started candidate passed the validation gate; install it.
    Swapped(Pretrained),
    /// Training failed, was aborted, or lost the gate: reinstate the
    /// untouched original.
    Reinstated(Pretrained),
}

/// How one retrain attempt ended (drives the failure/abort counters).
enum RetrainOutcome {
    Swapped(Pretrained),
    /// The candidate did not beat the rule-engine baseline on holdback.
    GateFailed(Pretrained),
    /// Thaw, featurize, or fit failed.
    TrainError(Pretrained),
    /// The budget deadline (or a drain kick) cancelled the fit.
    Cancelled(Pretrained),
}

/// One warm-start retrain: thaw the frozen scorer, snapshot it (the
/// candidate trains; the original stays pristine for fallback),
/// warm-start on the reservoir slices, then gate on the holdback slices —
/// the candidate must at least match the rule-engine prefilter it would
/// be replacing. The caller installs the thread-current cancel token;
/// `fit_incremental` polls it cooperatively.
fn run_retrain(
    job: RetrainJob,
    extract: &dyn Operation,
    link: LinkType,
    rules: &RuleEngine,
) -> RetrainOutcome {
    let original: Box<dyn Classifier> = match job.scorer.into_inner() {
        Ok(boxed) => boxed,
        // Shared weights cannot be warm-started without violating the
        // freeze guarantee; fall back unchanged.
        Err(frozen) => return RetrainOutcome::TrainError(frozen),
    };
    let Some(mut candidate) = original.snapshot() else {
        return RetrainOutcome::TrainError(Pretrained::new_boxed(original));
    };

    let mut records: Vec<ConnRecord> = Vec::new();
    let mut labels: Vec<u8> = Vec::new();
    for s in &job.train {
        records.extend(s.records.iter().cloned());
        labels.extend(s.labels.iter().map(|&l| u8::from(l)));
    }
    let data = match featurize(extract, link, &records) {
        Ok(t) if t.x.rows() == labels.len() && t.x.rows() > 0 => {
            match Dataset::new(t.x.clone(), labels) {
                Ok(d) => d,
                Err(_) => return RetrainOutcome::TrainError(Pretrained::new_boxed(original)),
            }
        }
        _ => return RetrainOutcome::TrainError(Pretrained::new_boxed(original)),
    };
    match candidate.fit_incremental(&data) {
        Ok(()) => {}
        Err(MlError::Cancelled) => {
            return RetrainOutcome::Cancelled(Pretrained::new_boxed(original))
        }
        Err(_) => return RetrainOutcome::TrainError(Pretrained::new_boxed(original)),
    }

    // Validation gate: candidate accuracy vs the prefilter's, on slices
    // the training reservoir never saw.
    let mut cand_ok = 0u64;
    let mut rules_ok = 0u64;
    let mut total = 0u64;
    for s in &job.holdback {
        let Ok(t) = featurize(extract, link, &s.records) else {
            continue;
        };
        if t.x.rows() != s.labels.len() {
            continue;
        }
        let preds = candidate.predict(&t.x);
        for ((p, r), l) in preds.iter().zip(&s.records).zip(&s.labels) {
            cand_ok += u64::from((*p == 1) == *l);
            rules_ok += u64::from(rules.alarm(r) == *l);
            total += 1;
        }
    }
    if total == 0 || cand_ok < rules_ok {
        return RetrainOutcome::GateFailed(Pretrained::new_boxed(original));
    }
    RetrainOutcome::Swapped(Pretrained::new_boxed(candidate))
}

/// Per-slice verdict-vs-truth accounting the score stage keeps so the
/// before/during/after accuracy phases can be assembled after the join.
struct SliceAcc {
    end_ts_us: u64,
    /// Scored by the ML model (vs the rule engine).
    ml: bool,
    /// Records whose installed verdict matched ground truth.
    correct: u64,
    /// Records the rule engine alone would have gotten right.
    rules_correct: u64,
    total: u64,
}

/// Everything the score stage returns at join time.
struct ScoreOut {
    scored: (u64, u64),
    degraded: (u64, u64),
    alarms: u64,
    p50: f64,
    p99: f64,
    trips: u64,
    breaker_final: String,
    accs: Vec<SliceAcc>,
    /// Slice-boundary timestamps of confirmed drift detections.
    detections: Vec<u64>,
    /// Slice-boundary timestamp of the last validated model swap.
    swap_ts: Option<u64>,
    adapt_entries: u64,
    prefilter_hits: u64,
    model_swaps: u64,
}

// ---------------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------------

struct DecodedBatch {
    metas: Vec<PacketMeta>,
    read: u64,
    parse_errors: u64,
    non_ip: u64,
}

/// Output of [`run_stream`]: the journal-ready report plus the source
/// reader's own accounting, so callers can cross-check the two.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Journal-ready stream report (schema v6).
    pub report: StreamReport,
    /// The recovering reader's capture accounting.
    pub source_stats: CaptureStats,
}

/// Offers a slice to the scorer without blocking: parked slices drain
/// first (order preserved), the ring's `Full` verdict parks, and the pen
/// sheds when over capacity. Returns false once the score stage is gone.
fn offer_slice(tx: &RingSender<Slice>, shed: &mut ShedBuffer, slice: Slice) -> bool {
    while let Some(ready) = shed.next_ready() {
        match tx.try_send(ready) {
            Ok(()) => {}
            Err(TrySendError::Full(back)) => {
                shed.unpark_front(back);
                break;
            }
            Err(TrySendError::Closed(_)) => return false,
        }
    }
    match tx.try_send(slice) {
        Ok(()) => true,
        Err(TrySendError::Full(back)) => {
            shed.park(back);
            true
        }
        Err(TrySendError::Closed(_)) => false,
    }
}

/// Runs the streaming daemon to completion (end of capture or requested
/// stop) and returns the packet-exact [`StreamReport`].
///
/// Stage layout (all on scoped threads, joined before return):
///
/// ```text
/// source ──ring──▶ decode ──ring──▶ flow ──ring+shed──▶ score
///    ▲                                                    │
///    └──────────── backpressure (bounded rings) ──────────┘
///                      watchdog supervises all four
/// ```
pub fn run_stream(cfg: &ServeConfig) -> BenchResult<StreamOutcome> {
    // Build the capture once: training prefix, replay bytes, and ground
    // truth all come from the same generation.
    let (capture, scenario) = build_serve_capture(cfg);
    let link = capture.link;
    let cut = training_cut(&capture, scenario.as_ref());
    let scorer = train_on_packets(cfg, link, &capture.packets[..cut], &capture.labels[..cut])?;
    let extract = conn_extract_op()?;
    let rules = RuleEngine::default();

    // Ground-truth realignment: the replay round-trips through pcap bytes
    // (possibly chaos-corrupted), so labels are re-attached by timestamp;
    // duplicate timestamps pop in capture order.
    let mut label_map: HashMap<u64, VecDeque<bool>> = HashMap::new();
    for (p, l) in capture.packets.iter().zip(&capture.labels) {
        label_map.entry(p.ts_us).or_default().push_back(l.malicious);
    }

    // Replay bytes: the dirty stream the daemon actually sees.
    let mut bytes = to_bytes(link, &capture.packets);
    if let Some(chaos_cfg) = cfg.chaos {
        let (dirty, _report) = ChaosPcap::new(cfg.seed, chaos_cfg).corrupt(&bytes);
        bytes = dirty;
    }

    let epoch = Instant::now();
    let health: Vec<Arc<StageHealth>> = (0..5).map(|_| Arc::new(StageHealth::new())).collect();
    let done = Arc::new(AtomicBool::new(false));

    let (pkt_tx, pkt_rx) = ring::<Vec<CapturedPacket>>(cfg.ring_capacity);
    let (meta_tx, meta_rx) = ring::<DecodedBatch>(cfg.ring_capacity);
    let (slice_tx, slice_rx) = ring::<Slice>(cfg.ring_capacity);
    // Score → retrain and back: capacity 1 because at most one retrain is
    // ever in flight (the daemon has exactly one scorer to hand over).
    let (retrain_tx, retrain_rx) = ring::<RetrainJob>(1);
    let (result_tx, result_rx) = ring::<RetrainReply>(1);
    let pkt_mon = pkt_rx.monitor();
    let meta_mon = meta_rx.monitor();
    let slice_mon = slice_rx.monitor();
    let retrain_mon = retrain_rx.monitor();

    let mut outcome: Option<BenchResult<StreamOutcome>> = None;
    std::thread::scope(|s| {
        // --- watchdog ------------------------------------------------
        let wd_handle = {
            let health = health.clone();
            let done = done.clone();
            let watchdog_ms = cfg.watchdog_ms;
            s.spawn(move || {
                if watchdog_ms == 0 {
                    return;
                }
                let tick = Duration::from_millis((watchdog_ms / 4).max(1));
                while !done.load(Ordering::Acquire) {
                    let now_ms = epoch.elapsed().as_millis() as u64;
                    for h in &health {
                        let working = h.working.load(Ordering::Acquire);
                        let beat = h.beat_ms.load(Ordering::Relaxed);
                        // Waiting (blocked on a ring) is healthy; only a
                        // stage *holding work* with a stale heartbeat is
                        // wedged.
                        if working && now_ms.saturating_sub(beat) > watchdog_ms {
                            h.kick();
                        }
                    }
                    std::thread::sleep(tick);
                }
            })
        };

        // --- source --------------------------------------------------
        let src_handle = {
            let bytes = &bytes;
            let cfg_ref = cfg;
            let health = health[0].clone();
            let mut arm = FaultArm::for_stage(StageId::Source, &cfg.faults);
            s.spawn(move || {
                let mut reader = match RecoveringReader::new(bytes, PcapLimits::default()) {
                    Ok(r) => r,
                    // Header too corrupt to stream at all: empty run.
                    Err(_) => return (CaptureStats::default(), false),
                };
                let mut sigterm = false;
                let mut sent_total: u64 = 0;
                'read: loop {
                    if stop_requested(cfg_ref) {
                        sigterm = true;
                        break;
                    }
                    let mut batch = Vec::with_capacity(cfg_ref.batch);
                    while batch.len() < cfg_ref.batch {
                        match reader.next_packet() {
                            Some(p) => batch.push(p),
                            None => break,
                        }
                    }
                    if batch.is_empty() {
                        break;
                    }
                    let n = batch.len() as u64;
                    // Faults run inside the supervised window; the
                    // (possibly blocking) send happens outside it, so
                    // backpressure reads as waiting, never as a wedge.
                    supervised(&health, epoch, &mut arm, || ());
                    if pkt_tx.send(batch).is_err() {
                        break 'read; // downstream gone
                    }
                    sent_total += n;
                    // Pace the replay. Source-side sleeps also give the
                    // bounded rings room to drain: pacing and backpressure
                    // meet here.
                    if cfg_ref.rate_pps > 0 {
                        let due =
                            Duration::from_secs_f64(sent_total as f64 / cfg_ref.rate_pps as f64);
                        while epoch.elapsed() < due {
                            if stop_requested(cfg_ref) {
                                sigterm = true;
                                break 'read;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
                let stats = reader.stats();
                drop(pkt_tx); // close the ring: the drain cascades downstream
                (stats, sigterm)
            })
        };

        // --- decode --------------------------------------------------
        let dec_handle = {
            let health = health[1].clone();
            let mut arm = FaultArm::for_stage(StageId::Decode, &cfg.faults);
            s.spawn(move || {
                while let Some(batch) = pkt_rx.recv() {
                    let out = supervised(&health, epoch, &mut arm, || {
                        let mut d = DecodedBatch {
                            metas: Vec::with_capacity(batch.len()),
                            read: batch.len() as u64,
                            parse_errors: 0,
                            non_ip: 0,
                        };
                        for p in &batch {
                            match PacketMeta::parse(link, p.ts_us, &p.data) {
                                Ok(m) => {
                                    if m.five_tuple().is_none() {
                                        d.non_ip += 1;
                                    }
                                    d.metas.push(m);
                                }
                                Err(_) => d.parse_errors += 1,
                            }
                        }
                        d
                    });
                    if meta_tx.send(out).is_err() {
                        break;
                    }
                }
            })
        };

        // --- flow ----------------------------------------------------
        let flow_handle = {
            let health = health[2].clone();
            let mut arm = FaultArm::for_stage(StageId::Flow, &cfg.faults);
            let slice_us = cfg.slice_us.max(1);
            let pending_cap = cfg.pending_cap;
            let flow_cfg = cfg.flow;
            s.spawn(move || {
                let mut tracker = ConnectionTracker::new(flow_cfg);
                let mut shed = ShedBuffer::new(pending_cap);
                let mut read: u64 = 0;
                let mut parse_errors: u64 = 0;
                let mut non_ip: u64 = 0;
                let mut boundary: Option<u64> = None;
                let mut seq: u64 = 0;
                let mut index: u32 = 0;
                let mut label_map = label_map;
                // Parallel to the tracker's packet index: ground truth per
                // pushed packet, consumed via `ConnRecord::packet_indices`.
                let mut pkt_labels: Vec<bool> = Vec::new();
                let mut last_ts: u64 = 0;

                'pump: while let Some(batch) = meta_rx.recv() {
                    read += batch.read;
                    parse_errors += batch.parse_errors;
                    non_ip += batch.non_ip;
                    let slices = supervised(&health, epoch, &mut arm, || {
                        let mut out: Vec<Slice> = Vec::new();
                        for m in &batch.metas {
                            let mut bb = *boundary.get_or_insert_with(|| {
                                (m.ts_us / slice_us).saturating_add(1).saturating_mul(slice_us)
                            });
                            if m.ts_us >= bb {
                                let target = (m.ts_us / slice_us)
                                    .saturating_add(1)
                                    .saturating_mul(slice_us);
                                // Bound per-packet boundary work: a corrupt
                                // far-future timestamp fast-forwards in one
                                // flush instead of spinning per slice.
                                if (target - bb) / slice_us > 1024 {
                                    tracker.flush_idle(m.ts_us);
                                    let records = tracker.drain_done();
                                    if !records.is_empty() {
                                        let labels = record_labels(&records, &pkt_labels);
                                        out.push(Slice {
                                            seq,
                                            records,
                                            labels,
                                            end_ts_us: target,
                                        });
                                        seq += 1;
                                    }
                                    bb = target;
                                } else {
                                    while m.ts_us >= bb {
                                        tracker.flush_idle(bb);
                                        let records = tracker.drain_done();
                                        if !records.is_empty() {
                                            let labels = record_labels(&records, &pkt_labels);
                                            out.push(Slice {
                                                seq,
                                                records,
                                                labels,
                                                end_ts_us: bb,
                                            });
                                            seq += 1;
                                        }
                                        bb += slice_us;
                                    }
                                }
                                boundary = Some(bb);
                            }
                            pkt_labels.push(
                                label_map
                                    .get_mut(&m.ts_us)
                                    .and_then(|q| q.pop_front())
                                    .unwrap_or(false),
                            );
                            last_ts = last_ts.max(m.ts_us);
                            tracker.push(index, m);
                            index = index.wrapping_add(1);
                        }
                        out
                    });
                    for slice in slices {
                        if !offer_slice(&slice_tx, &mut shed, slice) {
                            break 'pump;
                        }
                    }
                }
                // End of stream (or stop): finalize every active flow and
                // drain the pen with *blocking* sends — the drain path
                // never sheds.
                let (records, flow_stats) = tracker.finish_remaining();
                if !records.is_empty() {
                    let labels = record_labels(&records, &pkt_labels);
                    let _ = slice_tx.send(Slice {
                        seq,
                        records,
                        labels,
                        end_ts_us: last_ts,
                    });
                }
                while let Some(ready) = shed.next_ready() {
                    if slice_tx.send(ready).is_err() {
                        break;
                    }
                }
                let (shed_slices, shed_records) = shed.shed();
                drop(slice_tx);
                (
                    read,
                    parse_errors,
                    non_ip,
                    flow_stats,
                    shed_slices,
                    shed_records,
                )
            })
        };

        // --- score ---------------------------------------------------
        let score_handle = {
            let retrain_health = health[4].clone();
            let health = health[3].clone();
            let mut arm = FaultArm::for_stage(StageId::Score, &cfg.faults);
            let mut scorer_slot: Option<Pretrained> = Some(scorer);
            let extract = &extract;
            let cfg_ref = cfg;
            let mut breaker = CircuitBreaker::new(
                cfg.score_budget,
                cfg.breaker_threshold,
                cfg.breaker_cooldown_slices,
            );
            let mut monitor = cfg.drift.map(DriftMonitor::new);
            let reservoir_cap = cfg.reservoir_cap.max(1);
            let holdback_cap = cfg.holdback.max(1);
            let mut rng = Rng::new(cfg.seed ^ 0xD81F_7E5E_0A3C_9B42);
            s.spawn(move || {
                let mut latencies_ms: Vec<f64> = Vec::new();
                let mut scored = (0u64, 0u64); // (slices, records)
                let mut degraded = (0u64, 0u64);
                let mut alarms: u64 = 0;
                let mut accs: Vec<SliceAcc> = Vec::new();
                let mut detections: Vec<u64> = Vec::new();
                let mut swap_ts: Option<u64> = None;
                let mut adapting = false;
                let mut adapt_entries: u64 = 0;
                let mut prefilter_hits: u64 = 0;
                let mut model_swaps: u64 = 0;
                let mut obs_seq: u64 = 0;
                // Warm-start corpus: a uniform reservoir over slices that
                // have aged out of the holdback window, so training and
                // validation never share a slice.
                let mut reservoir: Vec<Slice> = Vec::new();
                let mut evicted: u64 = 0;
                let mut recent: VecDeque<Slice> = VecDeque::new();
                while let Some(slice) = slice_rx.recv() {
                    // A finished retrain installs (or reinstates) first, so
                    // this slice already sees the verdict.
                    match result_rx.try_recv() {
                        Ok(RetrainReply::Swapped(m)) => {
                            scorer_slot = Some(m);
                            if let Some(mon) = monitor.as_mut() {
                                mon.reset();
                            }
                            adapting = false;
                            model_swaps += 1;
                            swap_ts = Some(slice.end_ts_us);
                        }
                        Ok(RetrainReply::Reinstated(m)) => {
                            scorer_slot = Some(m);
                            if let Some(mon) = monitor.as_mut() {
                                mon.reset();
                            }
                            adapting = false;
                        }
                        Err(_) => {}
                    }
                    let n = slice.records.len() as u64;
                    if monitor.is_some() {
                        recent.push_back(slice.clone());
                        if recent.len() > holdback_cap {
                            let old = recent.pop_front().expect("non-empty");
                            evicted += 1;
                            if reservoir.len() < reservoir_cap {
                                reservoir.push(old);
                            } else {
                                let j = rng.below(evicted) as usize;
                                if j < reservoir_cap {
                                    reservoir[j] = old;
                                }
                            }
                        }
                    }
                    // The prefilter's verdicts are computed on every path:
                    // they are the degraded-mode output and the baseline
                    // the drift report measures recovery against.
                    let rules_flags: Vec<bool> =
                        slice.records.iter().map(|r| rules.alarm(r)).collect();
                    let rules_alarms = rules_flags.iter().filter(|&&a| a).count() as u64;
                    let rules_correct = rules_flags
                        .iter()
                        .zip(&slice.labels)
                        .filter(|&(a, l)| a == l)
                        .count() as u64;
                    if adapting {
                        // Adapting: the prefilter is promoted full-time
                        // while the retrain runs in the background.
                        supervised(&health, epoch, &mut arm, || ());
                        alarms += rules_alarms;
                        prefilter_hits += n;
                        degraded.0 += 1;
                        degraded.1 += n;
                        accs.push(SliceAcc {
                            end_ts_us: slice.end_ts_us,
                            ml: false,
                            correct: rules_correct,
                            rules_correct,
                            total: n,
                        });
                    } else if breaker.use_model() {
                        let t0 = Instant::now();
                        let (slice_alarms, correct, obs) =
                            supervised(&health, epoch, &mut arm, || {
                                let scorer = scorer_slot
                                    .as_ref()
                                    .expect("scorer present whenever not adapting");
                                match featurize(extract.as_ref(), link, &slice.records) {
                                    Ok(table) => {
                                        let preds = scorer.predict(&table.x);
                                        let a =
                                            preds.iter().filter(|&&p| p == 1).count() as u64;
                                        let correct = preds
                                            .iter()
                                            .zip(&slice.labels)
                                            .filter(|&(p, l)| (*p == 1) == *l)
                                            .count()
                                            as u64;
                                        let mean = if preds.is_empty() {
                                            0.0
                                        } else {
                                            a as f64 / preds.len() as f64
                                        };
                                        (a, correct, Some((column_means(&table.x), mean)))
                                    }
                                    // Degenerate slice: fall back to the
                                    // rules so the records still get a
                                    // verdict (and skip drift observation).
                                    Err(_) => (rules_alarms, rules_correct, None),
                                }
                            });
                        let elapsed = t0.elapsed();
                        breaker.observe(elapsed);
                        latencies_ms.push(elapsed.as_secs_f64() * 1e3);
                        alarms += slice_alarms;
                        scored.0 += 1;
                        scored.1 += n;
                        accs.push(SliceAcc {
                            end_ts_us: slice.end_ts_us,
                            ml: true,
                            correct,
                            rules_correct,
                            total: n,
                        });
                        if let (Some(mon), Some((means, score_mean))) = (monitor.as_mut(), obs)
                        {
                            if mon.observe(obs_seq, &means, score_mean).is_some() {
                                detections.push(slice.end_ts_us);
                                let job = RetrainJob {
                                    scorer: scorer_slot
                                        .take()
                                        .expect("scorer present whenever not adapting"),
                                    train: reservoir.clone(),
                                    holdback: recent.iter().cloned().collect(),
                                };
                                match retrain_tx.try_send(job) {
                                    Ok(()) => {
                                        adapting = true;
                                        adapt_entries += 1;
                                    }
                                    // Ring full (impossible: one job in
                                    // flight max) or retrain stage gone —
                                    // keep scoring with the old model.
                                    Err(TrySendError::Full(job))
                                    | Err(TrySendError::Closed(job)) => {
                                        scorer_slot = Some(job.scorer);
                                    }
                                }
                            }
                            obs_seq += 1;
                        }
                    } else {
                        supervised(&health, epoch, &mut arm, || ());
                        alarms += rules_alarms;
                        degraded.0 += 1;
                        degraded.1 += n;
                        accs.push(SliceAcc {
                            end_ts_us: slice.end_ts_us,
                            ml: false,
                            correct: rules_correct,
                            rules_correct,
                            total: n,
                        });
                    }
                }
                // Input exhausted: stop feeding the retrain stage, then
                // collect any in-flight verdict so the accounting (and the
                // scorer handle) is never lost. A requested stop aborts the
                // attempt via its cancel token; a natural end of capture
                // waits out the retrain budget.
                drop(retrain_tx);
                if adapting {
                    loop {
                        if stop_requested(cfg_ref) {
                            retrain_health.kick();
                        }
                        match result_rx.try_recv() {
                            Ok(RetrainReply::Swapped(_)) => {
                                model_swaps += 1;
                                break;
                            }
                            Ok(RetrainReply::Reinstated(_)) => break,
                            Err(TryRecvError::Closed) => break,
                            Err(TryRecvError::Empty) => {
                                std::thread::sleep(Duration::from_millis(2))
                            }
                        }
                    }
                }
                latencies_ms
                    .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let q = |p: f64| -> f64 {
                    if latencies_ms.is_empty() {
                        return 0.0;
                    }
                    let i = ((latencies_ms.len() - 1) as f64 * p).round() as usize;
                    latencies_ms[i.min(latencies_ms.len() - 1)]
                };
                ScoreOut {
                    scored,
                    degraded,
                    alarms,
                    p50: q(0.50),
                    p99: q(0.99),
                    trips: breaker.trips(),
                    breaker_final: breaker.state().name().to_string(),
                    accs,
                    detections,
                    swap_ts,
                    adapt_entries,
                    prefilter_hits,
                    model_swaps,
                }
            })
        };

        // --- retrain (background, hangs off score) -------------------
        let retrain_handle = {
            let health = health[4].clone();
            let mut arm = FaultArm::for_stage(StageId::Retrain, &cfg.faults);
            let extract = &extract;
            let budget_ms = cfg.retrain_budget_ms;
            s.spawn(move || {
                let mut attempts: u64 = 0;
                let mut failures: u64 = 0;
                let mut aborted: u64 = 0;
                let mut total_ms: u64 = 0;
                while let Some(job) = retrain_rx.recv() {
                    let t0 = Instant::now();
                    // Hand-rolled supervision (not `supervised()`): the
                    // attempt token carries the retrain budget as a
                    // deadline, and a cancelled fit must surface as a
                    // counted abort with the original model reinstated —
                    // not as a silent retry.
                    let reply = 'attempt: loop {
                        attempts += 1;
                        let token = if budget_ms > 0 {
                            CancelToken::with_deadline_ms(budget_ms)
                        } else {
                            CancelToken::unbounded()
                        };
                        health.begin_work(epoch, &token);
                        if arm.transient_left > 0 {
                            arm.transient_left -= 1;
                            health.restarts.fetch_add(1, Ordering::Relaxed);
                            failures += 1;
                            health.end_work(epoch);
                            continue;
                        }
                        if let Some(ms) = arm.hang_ms.take() {
                            let until = Instant::now() + Duration::from_millis(ms);
                            let mut cancelled = false;
                            while Instant::now() < until {
                                if token.is_cancelled() {
                                    cancelled = true;
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            if cancelled {
                                aborted += 1;
                                health.end_work(epoch);
                                break 'attempt RetrainReply::Reinstated(job.scorer);
                            }
                            health.beat(epoch);
                        }
                        if arm.slow_ms > 0 && arm.slow_left > 0 {
                            arm.slow_left -= 1;
                            let until = Instant::now() + Duration::from_millis(arm.slow_ms);
                            while Instant::now() < until && !token.is_cancelled() {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                        let guard = token.set_current();
                        let outcome = run_retrain(job, extract.as_ref(), link, &rules);
                        drop(guard);
                        health.end_work(epoch);
                        break 'attempt match outcome {
                            RetrainOutcome::Swapped(m) => RetrainReply::Swapped(m),
                            RetrainOutcome::GateFailed(m) => {
                                failures += 1;
                                RetrainReply::Reinstated(m)
                            }
                            RetrainOutcome::TrainError(m) => {
                                failures += 1;
                                RetrainReply::Reinstated(m)
                            }
                            RetrainOutcome::Cancelled(m) => {
                                aborted += 1;
                                RetrainReply::Reinstated(m)
                            }
                        };
                    };
                    total_ms += t0.elapsed().as_millis() as u64;
                    if result_tx.send(reply).is_err() {
                        break;
                    }
                }
                (attempts, failures, aborted, total_ms)
            })
        };

        // --- join + assemble the report ------------------------------
        let src_out = src_handle.join();
        let dec_out = dec_handle.join();
        let flow_out = flow_handle.join();
        let score_out = score_handle.join();
        let retrain_out = retrain_handle.join();
        done.store(true, Ordering::Release);
        let _ = wd_handle.join();

        let (Ok((source_stats, sigterm)), Ok(()), Ok(flow_out), Ok(so), Ok(retrain_out)) =
            (src_out, dec_out, flow_out, score_out, retrain_out)
        else {
            outcome = Some(Err(BenchError::Serde("a pipeline stage panicked".into())));
            return;
        };
        let (read, parse_errors, non_ip, flow_stats, shed_slices, shed_records) = flow_out;
        let (retrain_attempts, retrain_failures, retrains_aborted, retrain_ms_total) =
            retrain_out;

        let stages = vec![
            StreamStageEntry {
                stage: "source".into(),
                queue_capacity: 0,
                queue_peak: 0,
                restarts: health[0].restarts.load(Ordering::Relaxed),
            },
            StreamStageEntry {
                stage: "decode".into(),
                queue_capacity: pkt_mon.capacity() as u64,
                queue_peak: pkt_mon.peak_depth() as u64,
                restarts: health[1].restarts.load(Ordering::Relaxed),
            },
            StreamStageEntry {
                stage: "flow".into(),
                queue_capacity: meta_mon.capacity() as u64,
                queue_peak: meta_mon.peak_depth() as u64,
                restarts: health[2].restarts.load(Ordering::Relaxed),
            },
            StreamStageEntry {
                stage: "score".into(),
                queue_capacity: slice_mon.capacity() as u64,
                queue_peak: slice_mon.peak_depth() as u64,
                restarts: health[3].restarts.load(Ordering::Relaxed),
            },
            StreamStageEntry {
                stage: "retrain".into(),
                queue_capacity: retrain_mon.capacity() as u64,
                queue_peak: retrain_mon.peak_depth() as u64,
                restarts: health[4].restarts.load(Ordering::Relaxed),
            },
        ];

        // Drift report: match each ground-truth breakpoint to the first
        // unclaimed detection at or after it; leftovers are false alarms.
        let drift = cfg.drift.map(|_| {
            let mut used = vec![false; so.detections.len()];
            let breakpoints: Vec<DriftBreakpointEntry> = scenario
                .as_ref()
                .map(|rep| {
                    rep.breakpoints
                        .iter()
                        .map(|bp| {
                            let mut hit: Option<u64> = None;
                            for (i, &ts) in so.detections.iter().enumerate() {
                                if !used[i] && ts >= bp.ts_us {
                                    used[i] = true;
                                    hit = Some(ts);
                                    break;
                                }
                            }
                            DriftBreakpointEntry {
                                ts_us: bp.ts_us,
                                kind: bp.kind.name().to_string(),
                                detected: hit.is_some(),
                                detected_ts_us: hit.unwrap_or(0),
                                latency_ms: hit.map_or(0, |ts| (ts - bp.ts_us) / 1000),
                            }
                        })
                        .collect()
                })
                .unwrap_or_default();
            let false_alarms = used.iter().filter(|&&u| !u).count() as u64;
            let first_bp = scenario
                .as_ref()
                .and_then(|r| r.breakpoints.first())
                .map(|b| b.ts_us);
            let accuracy = |pred: &dyn Fn(&SliceAcc) -> bool, baseline: bool| -> f64 {
                let (mut ok, mut tot) = (0u64, 0u64);
                for a in so.accs.iter().filter(|a| pred(a)) {
                    ok += if baseline { a.rules_correct } else { a.correct };
                    tot += a.total;
                }
                if tot == 0 {
                    0.0
                } else {
                    ok as f64 / tot as f64
                }
            };
            let swap = so.swap_ts;
            let acc_before = accuracy(
                &|a| a.ml && first_bp.map_or(true, |bp| a.end_ts_us <= bp),
                false,
            );
            let acc_during = match (first_bp, swap) {
                (Some(bp), Some(sw)) => accuracy(&|a| a.end_ts_us > bp && a.end_ts_us <= sw, false),
                (Some(bp), None) => accuracy(&|a| a.end_ts_us > bp, false),
                (None, _) => 0.0,
            };
            let acc_after = match swap {
                Some(sw) => accuracy(&|a| a.ml && a.end_ts_us > sw, false),
                None => 0.0,
            };
            let baseline_acc = match swap.or(first_bp) {
                Some(c) => accuracy(&|a| a.end_ts_us > c, true),
                None => accuracy(&|_| true, true),
            };
            DriftReport {
                scenario: scenario.as_ref().map_or_else(String::new, |r| r.id.code().into()),
                family: scenario
                    .as_ref()
                    .map_or_else(String::new, |r| r.id.family().name().into()),
                breakpoints,
                detections: so.detections.len() as u64,
                false_alarms,
                acc_before,
                acc_during,
                acc_after,
                baseline_acc,
                adapt_entries: so.adapt_entries,
                prefilter_hits: so.prefilter_hits,
                retrain_attempts,
                retrain_failures,
                retrains_aborted,
                model_swaps: so.model_swaps,
                retrain_ms_total,
            }
        });

        let report = StreamReport {
            packets_read: read,
            packets_parsed: read - parse_errors,
            decode_errors: parse_errors,
            non_ip,
            records_finalized: flow_stats.records,
            slices_total: so.scored.0 + so.degraded.0 + shed_slices,
            slices_scored: so.scored.0,
            slices_degraded: so.degraded.0,
            slices_shed: shed_slices,
            records_scored: so.scored.1,
            records_degraded: so.degraded.1,
            records_shed: shed_records,
            alarms: so.alarms,
            score_p50_ms: so.p50,
            score_p99_ms: so.p99,
            breaker_trips: so.trips,
            breaker_final: so.breaker_final,
            stages,
            drained_clean: true,
            sigterm,
            drift,
        };
        outcome = Some(Ok(StreamOutcome {
            report,
            source_stats,
        }));
    });
    outcome.unwrap_or_else(|| Err(BenchError::Serde("stream produced no outcome".into())))
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    // ---- pure components -------------------------------------------------

    #[test]
    fn fault_specs_parse_and_reject() {
        assert_eq!(
            StreamFault::parse("score:hang:30000").unwrap(),
            StreamFault {
                stage: StageId::Score,
                kind: StreamFaultKind::Hang { ms: 30_000 }
            }
        );
        assert_eq!(
            StreamFault::parse("decode:transient:2").unwrap(),
            StreamFault {
                stage: StageId::Decode,
                kind: StreamFaultKind::Transient { n: 2 }
            }
        );
        assert_eq!(
            StreamFault::parse("score:slow:50:4").unwrap(),
            StreamFault {
                stage: StageId::Score,
                kind: StreamFaultKind::Slow { ms: 50, n: 4 }
            }
        );
        // Defaults: slow applies to every item, hang 10s.
        assert_eq!(
            StreamFault::parse("flow:slow").unwrap().kind,
            StreamFaultKind::Slow {
                ms: 25,
                n: u32::MAX
            }
        );
        assert!(StreamFault::parse("turbo:hang").is_err());
        assert!(StreamFault::parse("score:explode").is_err());
        assert!(StreamFault::parse("score:slow:abc").is_err());
        assert!(StreamFault::parse("score:slow:1:2:3").is_err());
    }

    #[test]
    fn breaker_trips_after_consecutive_slow_and_recovers_via_probe() {
        let fast = Duration::from_millis(1);
        let slow = Duration::from_millis(100);
        let mut b = CircuitBreaker::new(Duration::from_millis(10), 2, 2);

        // One slow slice is noise; a fast one resets the streak.
        assert!(b.use_model());
        b.observe(slow);
        assert!(b.use_model());
        b.observe(fast);
        assert_eq!(b.state(), BreakerState::Closed);

        // Two consecutive slow slices trip it.
        assert!(b.use_model());
        b.observe(slow);
        assert!(b.use_model());
        b.observe(slow);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);

        // Cooldown: two degraded slices, then a half-open probe.
        assert!(!b.use_model());
        assert!(!b.use_model());
        assert_eq!(b.state(), BreakerState::HalfOpen);

        // Failed probe re-opens (and counts as a trip)...
        assert!(b.use_model());
        b.observe(slow);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);

        // ...and a successful probe after the next cooldown closes it.
        assert!(!b.use_model());
        assert!(!b.use_model());
        assert!(b.use_model());
        b.observe(fast);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 2);
    }

    /// A minimal hand-built record for the pure-component tests.
    fn test_record(proto: u8, state: ConnState, orig_pkts: u32, resp_pkts: u32) -> ConnRecord {
        ConnRecord {
            orig: (std::net::Ipv4Addr::new(10, 0, 0, 1), 40_000),
            resp: (std::net::Ipv4Addr::new(10, 0, 0, 2), 80),
            proto,
            start_us: 0,
            end_us: 1_000,
            orig_pkts,
            resp_pkts,
            orig_bytes: 100,
            resp_bytes: 100,
            orig_wire_bytes: 150,
            resp_wire_bytes: 150,
            orig_flags: lumen_flow::record::FlagCounts::default(),
            resp_flags: lumen_flow::record::FlagCounts::default(),
            iat: lumen_util::Summary::of(&[]),
            orig_len: lumen_util::Summary::of(&[]),
            resp_len: lumen_util::Summary::of(&[]),
            state,
            history: String::new(),
            first_n: Vec::new(),
            orig_ttl_mean: 64.0,
            packet_indices: Vec::new(),
        }
    }

    fn slice_of(seq: u64, n: usize) -> Slice {
        let rec = test_record(6, ConnState::SF, 4, 4);
        Slice {
            seq,
            records: vec![rec; n],
            labels: vec![false; n],
            end_ts_us: 0,
        }
    }

    #[test]
    fn shed_buffer_drops_the_smallest_slice_and_counts_it() {
        let mut pen = ShedBuffer::new(2);
        assert!(pen.park(slice_of(0, 5)).is_none());
        assert!(pen.park(slice_of(1, 2)).is_none());
        // Overflow: slice 1 (2 records) is the lowest-priority victim.
        let shed = pen.park(slice_of(2, 9)).expect("over capacity must shed");
        assert_eq!(shed.seq, 1);
        assert_eq!(pen.shed(), (1, 2));
        assert_eq!(pen.parked(), 2);
        // Ties shed the older slice, deterministically.
        let shed = pen.park(slice_of(3, 5)).expect("over capacity must shed");
        assert_eq!(shed.seq, 0);
        assert_eq!(pen.shed(), (2, 7));
        // FIFO drain of what's left.
        assert_eq!(pen.next_ready().map(|s| s.seq), Some(2));
        assert_eq!(pen.next_ready().map(|s| s.seq), Some(3));
        assert!(pen.next_ready().is_none());
    }

    #[test]
    fn rule_engine_flags_scan_and_flood_shapes() {
        let rules = RuleEngine::default();
        // Benign established flow.
        assert!(!rules.alarm(&test_record(6, ConnState::SF, 10, 9)));
        // Unanswered SYN (scan shape).
        assert!(rules.alarm(&test_record(6, ConnState::S0, 1, 0)));
        // SYN burst with a silent responder.
        let mut flood = test_record(6, ConnState::S1, 10, 0);
        flood.orig_flags = lumen_flow::record::FlagCounts([5, 0, 0, 0, 0, 0]);
        assert!(rules.alarm(&flood));
        // UDP flood: one-way, high volume.
        assert!(rules.alarm(&test_record(17, ConnState::Oth, 50, 0)));
        // Low-volume one-way UDP (DNS-ish) stays quiet.
        assert!(!rules.alarm(&test_record(17, ConnState::Oth, 2, 0)));
    }

    // ---- the daemon end to end -------------------------------------------

    fn overload_config() -> ServeConfig {
        ServeConfig {
            scale: SynthScale {
                duration_s: 8.0,
                benign_density: 3,
                intensity: 1.0,
                devices: 0,
            },
            slice_us: 250_000,
            ring_capacity: 2,
            batch: 64,
            pending_cap: 1,
            ..ServeConfig::default()
        }
    }

    /// Satellite 3 + tentpole acceptance: an unsustainable scoring rate
    /// must engage backpressure and shedding, never deadlock, and account
    /// for every packet and record against the source's own stats.
    #[test]
    fn overload_sheds_slices_and_accounts_exactly() {
        let cfg = ServeConfig {
            // Every slice takes ~30 ms at the scorer; the breaker is set
            // unreachable so pure load shedding carries the overload.
            faults: vec![StreamFault::parse("score:slow:30").unwrap()],
            score_budget: Duration::from_secs(60),
            breaker_threshold: u32::MAX,
            ..overload_config()
        };
        let out = run_stream(&cfg).expect("overloaded stream must still finish");
        let r = &out.report;
        assert!(
            r.accounts_exactly(),
            "every packet and record must be accounted for: {r:?}"
        );
        assert_eq!(
            r.packets_read, out.source_stats.records,
            "daemon accounting must match the reader's own stats"
        );
        assert!(r.packets_read > 0 && r.records_finalized > 0);
        assert!(
            r.slices_shed > 0 && r.records_shed > 0,
            "an unsustainable rate must shed, and shedding must be counted: {r:?}"
        );
        assert!(r.slices_scored > 0, "the drain path still scores: {r:?}");
        assert!(r.score_p50_ms > 0.0 && r.score_p99_ms >= r.score_p50_ms);
        assert!(r.drained_clean && !r.sigterm);
        // Backpressure engaged: the score ring hit its bound.
        let score_stage = r.stages.iter().find(|s| s.stage == "score").unwrap();
        assert_eq!(score_stage.queue_peak, score_stage.queue_capacity);
    }

    /// Satellite 3: a slow-scorer fault trips the breaker into degraded
    /// (rule-engine) mode, the run recovers after the fault clears, and
    /// degraded slices are exactly accounted.
    #[test]
    fn slow_scorer_trips_breaker_then_recovers() {
        let cfg = ServeConfig {
            // First 4 scorer items take ~100 ms against a 40 ms budget;
            // afterwards scoring is fast again and a probe must close the
            // breaker.
            faults: vec![StreamFault::parse("score:slow:100:4").unwrap()],
            score_budget: Duration::from_millis(40),
            breaker_threshold: 2,
            breaker_cooldown_slices: 1,
            // A roomy pen: this test is about the breaker, not shedding.
            ring_capacity: 8,
            pending_cap: 64,
            ..overload_config()
        };
        let out = run_stream(&cfg).expect("degraded stream must still finish");
        let r = &out.report;
        assert!(r.accounts_exactly(), "accounting broke: {r:?}");
        assert!(r.breaker_trips >= 1, "the slow fault must trip: {r:?}");
        assert!(
            r.slices_degraded > 0 && r.records_degraded > 0,
            "open-breaker slices go through the rule engine: {r:?}"
        );
        assert_eq!(
            r.breaker_final, "closed",
            "after the fault clears a probe must re-close the breaker: {r:?}"
        );
        assert!(r.slices_scored > 0);
        assert!(r.drained_clean && !r.sigterm);
    }

    /// Tentpole acceptance: a hung stage is detected by the watchdog,
    /// restarted, and the run still finishes cleanly with exact accounting.
    #[test]
    fn watchdog_restarts_a_hung_scorer() {
        let cfg = ServeConfig {
            faults: vec![StreamFault::parse("score:hang:30000").unwrap()],
            watchdog_ms: 50,
            ..overload_config()
        };
        let t0 = Instant::now();
        let out = run_stream(&cfg).expect("a hung stage must not hang the run");
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "watchdog should cut the 30 s hang short"
        );
        let r = &out.report;
        assert!(r.accounts_exactly(), "accounting broke: {r:?}");
        let score_stage = r.stages.iter().find(|s| s.stage == "score").unwrap();
        assert!(
            score_stage.restarts >= 1,
            "the watchdog must log the restart: {r:?}"
        );
        assert!(r.drained_clean && r.slices_scored > 0);
    }

    /// Transient faults are retried in place and counted as restarts.
    #[test]
    fn transient_decode_fault_is_retried_and_counted() {
        let cfg = ServeConfig {
            faults: vec![StreamFault::parse("decode:transient:2").unwrap()],
            ..overload_config()
        };
        let out = run_stream(&cfg).expect("transient faults must be absorbed");
        let r = &out.report;
        assert!(r.accounts_exactly(), "accounting broke: {r:?}");
        assert_eq!(r.packets_read, out.source_stats.records);
        let decode_stage = r.stages.iter().find(|s| s.stage == "decode").unwrap();
        assert_eq!(decode_stage.restarts, 2, "both injected failures count");
    }

    /// Clean termination drain: a SIGTERM-equivalent stop mid-replay stops
    /// the source, drains every stage, and the partial run still accounts
    /// exactly.
    #[test]
    fn requested_stop_drains_cleanly_mid_replay() {
        let stop = Arc::new(AtomicBool::new(false));
        let total = build_dataset(
            overload_config().dataset,
            overload_config().scale,
            overload_config().seed,
        )
        .packets
        .len() as u64;
        let cfg = ServeConfig {
            // Pace the replay so the whole capture would take ~60 s; the
            // stop lands long before that.
            rate_pps: (total / 60).max(10),
            stop: Some(stop.clone()),
            ..overload_config()
        };
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            stop.store(true, Ordering::Relaxed);
        });
        let out = run_stream(&cfg).expect("a requested stop is a clean exit");
        setter.join().unwrap();
        let r = &out.report;
        assert!(r.sigterm, "the stop must be recorded: {r:?}");
        assert!(r.drained_clean);
        assert!(r.accounts_exactly(), "partial runs still account: {r:?}");
        assert_eq!(r.packets_read, out.source_stats.records);
        assert!(
            r.packets_read < total,
            "the stop should land mid-replay ({} of {total} packets)",
            r.packets_read
        );
    }

    /// `--chaos`: corrupted replay bytes stream through the recovering
    /// reader; damage shows up as reader stats, not lost accounting.
    #[test]
    fn chaos_capture_streams_with_exact_accounting() {
        let cfg = ServeConfig {
            chaos: Some(ChaosConfig::default()),
            ..overload_config()
        };
        let out = run_stream(&cfg).expect("chaos bytes must still stream");
        let r = &out.report;
        assert!(r.accounts_exactly(), "accounting broke: {r:?}");
        assert_eq!(r.packets_read, out.source_stats.records);
        assert!(r.packets_read > 0);
        assert!(
            out.source_stats.dropped_records > 0 || out.source_stats.resyncs > 0,
            "default chaos config should damage something: {:?}",
            out.source_stats
        );
    }

    // ---- drift detection and adaptive recovery ---------------------------

    /// A drift config sensitive enough to confirm the scenario engine's
    /// regime changes within a few slices on the small test captures.
    fn sensitive_drift() -> DriftConfig {
        DriftConfig {
            warmup_slices: 4,
            confirm_slices: 1,
            z_threshold: 2.5,
            feature_quorum: 1,
            ph_delta: 0.02,
            ph_lambda: 0.25,
        }
    }

    fn drift_config() -> ServeConfig {
        ServeConfig {
            scenario: Some(ScenarioId::DeviceChurn),
            drift: Some(sensitive_drift()),
            scale: SynthScale {
                duration_s: 16.0,
                benign_density: 3,
                intensity: 1.0,
                devices: 0,
            },
            slice_us: 250_000,
            ring_capacity: 8,
            batch: 64,
            pending_cap: 64,
            ..ServeConfig::default()
        }
    }

    /// Tentpole acceptance: replaying the device-churn scenario, the drift
    /// monitor must detect every ground-truth breakpoint with finite
    /// latency, enter the journaled Adapting state, land a validated
    /// warm-start swap, and end with post-drift accuracy at or above the
    /// rule-engine baseline — all read from the journal report.
    #[test]
    fn device_churn_drift_is_detected_and_recovered() {
        let out = run_stream(&drift_config()).expect("scenario stream must finish");
        let r = &out.report;
        assert!(r.accounts_exactly(), "accounting broke: {r:?}");
        let d = r.drift.as_ref().expect("drift config must yield a report");
        assert_eq!(d.scenario, "S2");
        assert_eq!(d.family, "drift");
        assert!(!d.breakpoints.is_empty(), "ground truth missing: {d:?}");
        assert!(
            d.all_breakpoints_detected(),
            "every breakpoint needs a confirmed detection: {d:?}"
        );
        assert!(
            d.breakpoints.iter().all(|b| b.detected_ts_us >= b.ts_us),
            "detections must land at or after their breakpoint: {d:?}"
        );
        assert!(d.adapt_entries >= 1, "adaptation must engage: {d:?}");
        assert!(d.prefilter_hits > 0, "the promoted prefilter works: {d:?}");
        assert!(
            d.model_swaps >= 1,
            "a validated warm-start swap must land: {d:?}"
        );
        assert!(
            d.acc_after >= d.baseline_acc,
            "the swapped model must beat the rules floor: {d:?}"
        );
        assert!(r.drained_clean && !r.sigterm);
    }

    /// Satellite: an injected transient retrain failure is retried in
    /// place — counted as a failure and a stage restart — and the daemon
    /// still converges to a validated swap without losing a record.
    #[test]
    fn transient_retrain_fault_recovers_and_still_swaps() {
        let cfg = ServeConfig {
            faults: vec![StreamFault::parse("retrain:transient:1").unwrap()],
            ..drift_config()
        };
        let out = run_stream(&cfg).expect("transient retrain fault must be absorbed");
        let r = &out.report;
        assert!(r.accounts_exactly(), "accounting broke: {r:?}");
        let d = r.drift.as_ref().expect("drift report");
        assert!(
            d.retrain_attempts >= 2,
            "the failed attempt is retried: {d:?}"
        );
        assert!(d.retrain_failures >= 1, "the failure is counted: {d:?}");
        let retrain_stage = r.stages.iter().find(|s| s.stage == "retrain").unwrap();
        assert_eq!(retrain_stage.restarts, 1, "injected failure counts once");
        assert!(d.model_swaps >= 1, "recovery still lands a swap: {d:?}");
    }

    /// Satellite: SIGTERM while the breaker is probing (half-open under a
    /// persistent slow-scorer fault) *and* a retrain is hung in flight must
    /// still drain cleanly — the hung retrain is cancelled, journaled as
    /// aborted, and the partial run accounts exactly.
    #[test]
    fn sigterm_with_breaker_probing_and_hung_retrain_drains_cleanly() {
        let stop = Arc::new(AtomicBool::new(false));
        let base = drift_config();
        let total = build_scenario(ScenarioId::DeviceChurn, base.scale, base.seed)
            .0
            .packets
            .len() as u64;
        let cfg = ServeConfig {
            drift: Some(DriftConfig {
                warmup_slices: 2,
                confirm_slices: 1,
                z_threshold: 0.5,
                feature_quorum: 1,
                ph_delta: 0.0,
                ph_lambda: 0.05,
            }),
            // Every ML slice blows the budget: the breaker trips after two
            // and then oscillates open ↔ half-open probes.
            faults: vec![
                StreamFault::parse("score:slow:60").unwrap(),
                StreamFault::parse("retrain:hang:30000").unwrap(),
            ],
            score_budget: Duration::from_millis(20),
            breaker_threshold: 2,
            breaker_cooldown_slices: 1,
            // Unbounded retrain budget: only the SIGTERM drain may abort
            // the hung attempt.
            retrain_budget_ms: 0,
            // Pace the replay over ~4 s so the stop lands mid-capture.
            rate_pps: (total / 4).max(10),
            stop: Some(stop.clone()),
            ..base
        };
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(1500));
            stop.store(true, Ordering::Relaxed);
        });
        let t0 = Instant::now();
        let out = run_stream(&cfg).expect("sigterm with work in flight is a clean exit");
        setter.join().unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "the 30 s hung retrain must not stall the drain"
        );
        let r = &out.report;
        assert!(r.sigterm, "the stop must be recorded: {r:?}");
        assert!(r.drained_clean);
        assert!(r.accounts_exactly(), "partial runs still account: {r:?}");
        assert!(r.breaker_trips >= 1, "the slow fault must trip: {r:?}");
        let d = r.drift.as_ref().expect("drift report");
        assert!(d.adapt_entries >= 1, "drift must fire pre-stop: {d:?}");
        assert!(
            d.retrains_aborted >= 1,
            "the hung retrain is journaled as aborted: {d:?}"
        );
        assert_eq!(d.model_swaps, 0, "an aborted retrain must not swap: {d:?}");
    }
}
