//! The query-friendly result store (§3.3: "Lumen stores all results in a
//! query-friendly format").

use serde::{Deserialize, Serialize};

/// One evaluation result row.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ResultRow {
    /// Algorithm code ("A06").
    pub algo: String,
    /// Training dataset code.
    pub train: String,
    /// Testing dataset code.
    pub test: String,
    /// "same", "cross", or "merged".
    pub mode: String,
    /// Attack restriction for per-attack rows (Figure 5); `None` for
    /// whole-test rows.
    pub attack: Option<String>,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub accuracy: f64,
    pub auc: f64,
    /// Training instances.
    pub n_train: usize,
    /// Test instances.
    pub n_test: usize,
    /// Feature-extraction wall time, milliseconds (≈0 on a cache hit, so a
    /// warm cache no longer distorts wall-clock comparisons).
    #[serde(default)]
    pub extract_ms: u64,
    /// Model-training wall time, milliseconds.
    #[serde(default)]
    pub train_ms: u64,
    /// Prediction + evaluation wall time, milliseconds.
    #[serde(default)]
    pub test_ms: u64,
    /// Total wall time, milliseconds — always `extract_ms + train_ms +
    /// test_ms` (kept for backward-compatible queries over older stores).
    pub wall_ms: u64,
}

/// An appendable, queryable collection of result rows.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ResultStore {
    rows: Vec<ResultRow>,
}

impl ResultStore {
    /// Empty store.
    pub fn new() -> ResultStore {
        ResultStore::default()
    }

    /// Appends one row.
    pub fn push(&mut self, row: ResultRow) {
        self.rows.push(row);
    }

    /// Appends all rows of another store.
    pub fn extend(&mut self, other: ResultStore) {
        self.rows.extend(other.rows);
    }

    /// Drops duplicate rows per task key (algo, train, test, mode, attack),
    /// keeping the *latest* push. Resume merges rely on this: rows replayed
    /// from a write-ahead log and rows recomputed in the resumed run must
    /// collapse to exactly one row per task.
    pub fn dedup_by_task(&mut self) {
        let mut seen = std::collections::HashSet::new();
        // Iterate from the back so the newest row per key wins.
        let mut keep: Vec<ResultRow> = Vec::with_capacity(self.rows.len());
        for row in self.rows.drain(..).rev() {
            let key = (
                row.algo.clone(),
                row.train.clone(),
                row.test.clone(),
                row.mode.clone(),
                row.attack.clone(),
            );
            if seen.insert(key) {
                keep.push(row);
            }
        }
        keep.reverse();
        self.rows = keep;
    }

    /// All rows.
    pub fn rows(&self) -> &[ResultRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows matching a mode, excluding per-attack rows.
    pub fn by_mode<'a>(&'a self, mode: &'a str) -> impl Iterator<Item = &'a ResultRow> {
        self.rows
            .iter()
            .filter(move |r| r.mode == mode && r.attack.is_none())
    }

    /// Whole-test rows for one algorithm in one mode.
    pub fn for_algo<'a>(
        &'a self,
        algo: &'a str,
        mode: &'a str,
    ) -> impl Iterator<Item = &'a ResultRow> {
        self.by_mode(mode).filter(move |r| r.algo == algo)
    }

    /// Per-attack rows (Figure 5/6 source data).
    pub fn per_attack(&self) -> impl Iterator<Item = &ResultRow> {
        self.rows.iter().filter(|r| r.attack.is_some())
    }

    /// The best precision achieved by any algorithm on a (train, test) pair.
    pub fn best_precision(&self, train: &str, test: &str) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.attack.is_none() && r.train == train && r.test == test)
            .map(|r| r.precision)
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.max(p))))
    }

    /// The best recall achieved on a (train, test) pair.
    pub fn best_recall(&self, train: &str, test: &str) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.attack.is_none() && r.train == train && r.test == test)
            .map(|r| r.recall)
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.max(p))))
    }

    /// Median of a metric over the whole-test rows of one (train, test)
    /// pair across algorithms — Figure 10's cell value.
    pub fn median_metric(
        &self,
        train: &str,
        test: &str,
        metric: impl Fn(&ResultRow) -> f64,
    ) -> Option<f64> {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.attack.is_none() && r.train == train && r.test == test)
            .map(metric)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(lumen_util::stats::median(&vals))
        }
    }

    /// Mean precision of an algorithm's per-attack rows for one attack —
    /// Figure 5's cell value.
    pub fn attack_precision(&self, algo: &str, attack: &str) -> Option<f64> {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.algo == algo && r.attack.as_deref() == Some(attack))
            .map(|r| r.precision)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("store serializes")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<ResultStore, crate::BenchError> {
        serde_json::from_str(s).map_err(|e| crate::BenchError::Serde(e.to_string()))
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "algo,train,test,mode,attack,precision,recall,f1,accuracy,auc,n_train,n_test,extract_ms,train_ms,test_ms,wall_ms\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{},{}\n",
                r.algo,
                r.train,
                r.test,
                r.mode,
                r.attack.as_deref().unwrap_or(""),
                r.precision,
                r.recall,
                r.f1,
                r.accuracy,
                r.auc,
                r.n_train,
                r.n_test,
                r.extract_ms,
                r.train_ms,
                r.test_ms,
                r.wall_ms
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(algo: &str, train: &str, test: &str, mode: &str, p: f64, rc: f64) -> ResultRow {
        ResultRow {
            algo: algo.into(),
            train: train.into(),
            test: test.into(),
            mode: mode.into(),
            attack: None,
            precision: p,
            recall: rc,
            f1: 0.0,
            accuracy: 0.0,
            auc: 0.5,
            n_train: 10,
            n_test: 10,
            extract_ms: 0,
            train_ms: 1,
            test_ms: 0,
            wall_ms: 1,
        }
    }

    #[test]
    fn dedup_by_task_keeps_latest_row_per_key() {
        let mut s = ResultStore::new();
        // A WAL-replayed row followed by a recomputed one for the same task.
        s.push(row("A1", "F0", "F0", "same", 0.5, 0.5));
        s.push(row("A1", "F0", "F0", "same", 0.9, 0.6));
        // Distinct keys survive: different mode, and a per-attack row.
        s.push(row("A1", "F0", "F1", "cross", 0.3, 0.2));
        let mut attack = row("A1", "F0", "F0", "same", 0.7, 0.7);
        attack.attack = Some("scan".into());
        s.push(attack);
        s.dedup_by_task();
        assert_eq!(s.len(), 3);
        let whole: Vec<&ResultRow> = s
            .rows()
            .iter()
            .filter(|r| r.mode == "same" && r.attack.is_none())
            .collect();
        assert_eq!(whole.len(), 1, "one row per (algo,train,test,mode,attack)");
        assert_eq!(whole[0].precision, 0.9, "latest row wins");
        assert!(s.rows().iter().any(|r| r.attack.is_some()));
    }

    #[test]
    fn best_precision_across_algorithms() {
        let mut s = ResultStore::new();
        s.push(row("A1", "F0", "F0", "same", 0.8, 0.5));
        s.push(row("A2", "F0", "F0", "same", 0.95, 0.4));
        s.push(row("A1", "F0", "F1", "cross", 0.3, 0.2));
        assert_eq!(s.best_precision("F0", "F0"), Some(0.95));
        assert_eq!(s.best_precision("F0", "F1"), Some(0.3));
        assert_eq!(s.best_precision("F9", "F9"), None);
    }

    #[test]
    fn median_metric_over_algorithms() {
        let mut s = ResultStore::new();
        s.push(row("A1", "F0", "F1", "cross", 0.2, 0.1));
        s.push(row("A2", "F0", "F1", "cross", 0.4, 0.1));
        s.push(row("A3", "F0", "F1", "cross", 0.9, 0.1));
        assert_eq!(s.median_metric("F0", "F1", |r| r.precision), Some(0.4));
    }

    #[test]
    fn per_attack_queries() {
        let mut s = ResultStore::new();
        let mut r = row("A1", "F0", "F0", "same", 0.7, 0.7);
        r.attack = Some("syn-flood".into());
        s.push(r);
        let mut r2 = row("A1", "F1", "F1", "same", 0.9, 0.9);
        r2.attack = Some("syn-flood".into());
        s.push(r2);
        assert_eq!(s.attack_precision("A1", "syn-flood"), Some(0.8));
        assert_eq!(s.attack_precision("A1", "udp-flood"), None);
        // Per-attack rows are excluded from whole-test queries.
        assert_eq!(s.by_mode("same").count(), 0);
    }

    #[test]
    fn json_roundtrip() {
        if serde_json::from_str::<ResultStore>(r#"{"rows":[]}"#).is_err() {
            eprintln!("offline serde_json stub without deserialization support; skipping");
            return;
        }
        let mut s = ResultStore::new();
        s.push(row("A1", "F0", "F0", "same", 0.5, 0.5));
        let back = ResultStore::from_json(&s.to_json()).unwrap();
        assert_eq!(back.rows(), s.rows());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut s = ResultStore::new();
        s.push(row("A1", "F0", "F1", "cross", 0.25, 0.5));
        let csv = s.to_csv();
        assert!(csv.starts_with("algo,train"));
        assert!(csv.contains("extract_ms,train_ms,test_ms,wall_ms"));
        assert!(csv.contains("A1,F0,F1,cross,,0.2500"));
        assert!(csv.trim_end().ends_with("10,10,0,1,0,1"), "{csv}");
    }

    #[test]
    fn legacy_json_without_stage_timings_parses() {
        if serde_json::from_str::<ResultStore>(r#"{"rows":[]}"#).is_err() {
            eprintln!("offline serde_json stub without deserialization support; skipping");
            return;
        }
        // Stores persisted before the stage split carry only wall_ms; the
        // stage fields default to 0 on load.
        let legacy = r#"{"rows":[{"algo":"A1","train":"F0","test":"F0","mode":"same",
            "attack":null,"precision":0.5,"recall":0.5,"f1":0.5,"accuracy":0.5,
            "auc":0.5,"n_train":1,"n_test":1,"wall_ms":9}]}"#;
        let s = ResultStore::from_json(legacy).unwrap();
        assert_eq!(s.rows()[0].wall_ms, 9);
        assert_eq!(s.rows()[0].extract_ms, 0);
        assert_eq!(s.rows()[0].train_ms, 0);
    }
}
