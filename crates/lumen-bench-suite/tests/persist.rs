//! Result persistence: `maybe_persist` writes JSON + CSV when
//! `LUMEN_RESULTS_DIR` is set, and the JSON round-trips through the store.
//!
//! Kept in its own integration-test binary because it mutates the process
//! environment.

use lumen_bench_suite::exp::maybe_persist;
use lumen_bench_suite::{ResultRow, ResultStore};

fn row() -> ResultRow {
    ResultRow {
        algo: "A14".into(),
        train: "F4".into(),
        test: "F6".into(),
        mode: "cross".into(),
        attack: None,
        precision: 0.75,
        recall: 0.5,
        f1: 0.6,
        accuracy: 0.9,
        auc: 0.8,
        n_train: 100,
        n_test: 50,
        wall_ms: 12,
    }
}

#[test]
fn persists_when_env_set_and_roundtrips() {
    let dir = std::env::temp_dir().join("lumen_persist_test");
    std::fs::remove_dir_all(&dir).ok();
    std::env::set_var("LUMEN_RESULTS_DIR", &dir);

    let mut store = ResultStore::new();
    store.push(row());
    maybe_persist(&store, "unit");

    let json = std::fs::read_to_string(dir.join("unit.json")).expect("json written");
    let back = ResultStore::from_json(&json).expect("json parses");
    assert_eq!(back.rows(), store.rows());

    let csv = std::fs::read_to_string(dir.join("unit.csv")).expect("csv written");
    assert!(csv.starts_with("algo,train"));
    assert!(csv.contains("A14,F4,F6,cross"));

    std::env::remove_var("LUMEN_RESULTS_DIR");
    // With the variable unset, nothing further is written.
    std::fs::remove_dir_all(&dir).ok();
    maybe_persist(&store, "unit2");
    assert!(!dir.join("unit2.json").exists());
}
