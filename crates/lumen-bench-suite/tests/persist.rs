//! Result persistence: `maybe_persist` writes JSON + CSV when
//! `LUMEN_RESULTS_DIR` is set, the JSON round-trips through the store, and
//! `maybe_persist_journal` writes the companion `*_journal.json`.
//!
//! Kept in its own integration-test binary because it mutates the process
//! environment.

use lumen_bench_suite::exp::{maybe_persist, maybe_persist_journal};
use lumen_bench_suite::{JournalEntry, ResultRow, ResultStore, RunJournal, TaskOutcome};

fn row() -> ResultRow {
    ResultRow {
        algo: "A14".into(),
        train: "F4".into(),
        test: "F6".into(),
        mode: "cross".into(),
        attack: None,
        precision: 0.75,
        recall: 0.5,
        f1: 0.6,
        accuracy: 0.9,
        auc: 0.8,
        n_train: 100,
        n_test: 50,
        extract_ms: 4,
        train_ms: 6,
        test_ms: 2,
        wall_ms: 12,
    }
}

#[test]
fn persists_when_env_set_and_roundtrips() {
    if serde_json::to_string(&RunJournal::new()).is_err() {
        eprintln!("offline serde_json stub without serialization support; skipping");
        return;
    }
    let dir = std::env::temp_dir().join("lumen_persist_test");
    std::fs::remove_dir_all(&dir).ok();
    std::env::set_var("LUMEN_RESULTS_DIR", &dir);

    let mut store = ResultStore::new();
    store.push(row());
    maybe_persist(&store, "unit");

    let json = std::fs::read_to_string(dir.join("unit.json")).expect("json written");
    let back = ResultStore::from_json(&json).expect("json parses");
    assert_eq!(back.rows(), store.rows());

    let csv = std::fs::read_to_string(dir.join("unit.csv")).expect("csv written");
    assert!(csv.starts_with("algo,train"));
    assert!(csv.contains("A14,F4,F6,cross"));

    // The companion run journal lands next to the store.
    let mut journal = RunJournal::new();
    journal.push(JournalEntry::untimed(
        "A14",
        "F4",
        "F6",
        "cross",
        TaskOutcome::Failed {
            error: "boom".into(),
        },
    ));
    maybe_persist_journal(&journal, "unit");
    let jtext = std::fs::read_to_string(dir.join("unit_journal.json")).expect("journal written");
    let jback = RunJournal::from_json(&jtext).expect("journal parses");
    assert_eq!(jback.failed_count(), 1);
    assert!(jtext.contains("boom"));

    std::env::remove_var("LUMEN_RESULTS_DIR");
    // With the variable unset, nothing further is written.
    std::fs::remove_dir_all(&dir).ok();
    maybe_persist(&store, "unit2");
    maybe_persist_journal(&journal, "unit2");
    assert!(!dir.join("unit2.json").exists());
    assert!(!dir.join("unit2_journal.json").exists());
}
