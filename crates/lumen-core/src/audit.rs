//! Level-1 experiment audit: an abstract interpreter over pipeline
//! templates (DESIGN.md §4h).
//!
//! Where [`crate::lint`] checks each node's parameters and the dataflow
//! graph's wiring, this module *executes the template abstractly*: it
//! pushes an approximation of every value — which columns a feature table
//! has, which of them are tainted by label-like provenance, and which half
//! of a train/test split the rows came from — through each operation's
//! transfer function ([`crate::ops::audit_meta`]). That catches a class of
//! experiment-invalidating bugs no per-node check can see:
//!
//! * **feature-dimension mismatches** — a `Pca` wider than its input, a
//!   `FeatureSelect` naming a column that does not exist, a model trained
//!   on zero features (via [`lumen_ml::contracts`]);
//! * **label leakage** — a label-suspect column surviving into the table a
//!   model is trained on;
//! * **fit-on-test preprocessing** — a fitted op (`Normalize`, `Pca`,
//!   `CorrelationFilter`) applied to the test half of a split, baking
//!   test-set statistics into the features.
//!
//! The abstraction is a lattice: column knowledge degrades from
//! `Cols(names…)` to `Unknown` whenever an op's output schema is data
//! dependent, and every rule fires only on *definite* knowledge — `Unknown`
//! never produces a diagnostic. A clean audit therefore does not prove the
//! experiment sound, but every finding is real.
//!
//! Diagnostics reuse the lint machinery ([`Diagnostic`]/[`Severity`]) with
//! stable `A1xx` rule IDs, deterministically ordered by (node, rule id).
//! Matrix-level `A2xx` rules live in the benchmark suite, which sees run
//! configurations and the dataset registry.

use std::collections::HashMap;

use serde_json::Value;

use crate::data::DataKind;
use crate::lint::{extract_nodes, nearest, Diagnostic, LintNode, Severity};
use crate::ops::{audit_meta, ColsTransfer};

// ------------------------------------------------------------ the lattice

/// One abstract column: a name plus label-taint provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsCol {
    /// Column name.
    pub name: String,
    /// True when the column's value is (transitively) derived from a
    /// label-suspect source column.
    pub tainted: bool,
}

/// What is known about a table's column set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsShape {
    /// The exact ordered column list is known.
    Cols(Vec<AbsCol>),
    /// The schema is data- or config-dependent; nothing is claimed.
    Unknown,
}

impl AbsShape {
    /// Number of columns, when known.
    pub fn width(&self) -> Option<usize> {
        match self {
            AbsShape::Cols(c) => Some(c.len()),
            AbsShape::Unknown => None,
        }
    }

    fn tainted_names(&self) -> Vec<&str> {
        match self {
            AbsShape::Cols(c) => c
                .iter()
                .filter(|c| c.tainted)
                .map(|c| c.name.as_str())
                .collect(),
            AbsShape::Unknown => Vec::new(),
        }
    }
}

/// Which half of a `TrainTestSplit` a table's rows came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitHalf {
    /// Rows from `TakeTrain`.
    Train,
    /// Rows from `TakeTest` — the held-out side.
    Test,
}

/// Abstract feature table: shape plus split provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsTable {
    /// Column knowledge.
    pub shape: AbsShape,
    /// `Some` once the rows passed through `TakeTrain`/`TakeTest`.
    pub half: Option<SplitHalf>,
}

impl AbsTable {
    fn unknown() -> Self {
        AbsTable {
            shape: AbsShape::Unknown,
            half: None,
        }
    }
}

/// Abstract value for one pipeline variable.
#[derive(Debug, Clone)]
enum AbsValue {
    Table(AbsTable),
    /// A `TrainTestSplit` result; both halves share the pre-split shape.
    Split(AbsTable),
    /// A `Model` definition with its raw parameters.
    Model(Value),
    /// A trained model: kind (when known) plus the table it was fit on.
    Trained {
        kind: Option<String>,
        table: AbsTable,
    },
    /// Packets, groupings, predictions, reports — nothing tracked.
    Opaque,
}

// ---------------------------------------------------------- label taint

/// Column names that, by convention, carry ground-truth rather than
/// observable features. The synthetic field catalogs contain none of
/// these, so taint can only enter through explicitly authored templates —
/// exactly the case the rule exists for.
const LABEL_SUSPECT: [&str; 8] = [
    "label",
    "labels",
    "class",
    "is_attack",
    "malicious",
    "attack_tag",
    "target",
    "ground_truth",
];

/// Whether a column name is label-suspect (case-insensitive; `label*`
/// prefixes count).
pub fn label_suspect(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.starts_with("label") || LABEL_SUSPECT.contains(&lower.as_str())
}

fn named_cols(names: &[String]) -> AbsShape {
    AbsShape::Cols(
        names
            .iter()
            .map(|n| AbsCol {
                name: n.clone(),
                tainted: label_suspect(n),
            })
            .collect(),
    )
}

// ------------------------------------------------------------- reporting

fn adiag(
    rule_id: &'static str,
    severity: Severity,
    node: &LintNode,
    message: String,
    suggestion: Option<String>,
) -> Diagnostic {
    Diagnostic {
        rule_id,
        severity,
        node: Some(node.idx),
        func: node.func.clone(),
        message,
        suggestion,
    }
}

// ----------------------------------------------------------- interpreter

struct Interp<'a> {
    env: HashMap<String, AbsValue>,
    diags: &'a mut Vec<Diagnostic>,
    saw_train: bool,
}

impl Interp<'_> {
    fn input(&self, node: &LintNode, i: usize) -> AbsValue {
        node.inputs
            .get(i)
            .and_then(|name| self.env.get(name))
            .cloned()
            .unwrap_or(AbsValue::Opaque)
    }

    fn input_table(&self, node: &LintNode, i: usize) -> AbsTable {
        match self.input(node, i) {
            AbsValue::Table(t) => t,
            _ => AbsTable::unknown(),
        }
    }

    /// A120/A121: a fitted op learns its parameters from the one half it
    /// sees. On the test half that bakes held-out statistics into the
    /// features; on the train half the statistics cannot be replayed on
    /// the test side (the op has no fit/transform split — use the model's
    /// attached preprocessing instead).
    fn check_fitted_on_half(&mut self, node: &LintNode, table: &AbsTable) {
        let Some(func) = node.func.as_deref() else {
            return;
        };
        match table.half {
            Some(SplitHalf::Test) => self.diags.push(adiag(
                "A120",
                Severity::Error,
                node,
                format!("{func} fits its statistics on the test half of a split"),
                Some(
                    "fit preprocessing on training data only — use the Model op's \
                     normalize/pca/corr_filter parameters, which fit at Train time"
                        .into(),
                ),
            )),
            Some(SplitHalf::Train) => self.diags.push(adiag(
                "A121",
                Severity::Warn,
                node,
                format!(
                    "{func} fits on the train half only; its statistics cannot be \
                     replayed on the test half"
                ),
                Some(
                    "use the Model op's normalize/pca/corr_filter parameters so the \
                     fitted transform is part of the model"
                        .into(),
                ),
            )),
            None => {}
        }
    }

    /// Transfer function for ops described fully by [`audit_meta`].
    fn transfer_meta(&mut self, node: &LintNode, cols: ColsTransfer, fitted: bool) -> AbsValue {
        let inp = self.input_table(node, 0);
        if fitted {
            self.check_fitted_on_half(node, &inp);
        }
        let shape = match cols {
            ColsTransfer::Preserve => inp.shape.clone(),
            ColsTransfer::FieldsParam(key) => self.fields_shape(node, key),
            ColsTransfer::PcaComponents => self.pca_shape(node, &inp),
            ColsTransfer::SelectParam(key) => self.select_shape(node, key, &inp),
            ColsTransfer::Subset | ColsTransfer::Fresh => AbsShape::Unknown,
            ColsTransfer::NotTable => return AbsValue::Opaque,
        };
        AbsValue::Table(AbsTable {
            shape,
            half: inp.half,
        })
    }

    fn fields_shape(&mut self, node: &LintNode, key: &str) -> AbsShape {
        let Some(fields) = node.param(key).and_then(Value::as_array) else {
            return AbsShape::Unknown;
        };
        let names: Vec<String> = fields
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect();
        if names.len() != fields.len() {
            return AbsShape::Unknown;
        }
        // ConnExtract's "state" pseudo-field expands to a one-hot block
        // whose width depends on the connection states present in the
        // data; degrade rather than claim a wrong schema.
        if node.func.as_deref() == Some("ConnExtract") && names.iter().any(|n| n == "state") {
            return AbsShape::Unknown;
        }
        named_cols(&names)
    }

    fn pca_shape(&mut self, node: &LintNode, inp: &AbsTable) -> AbsShape {
        let k = node
            .param("components")
            .and_then(Value::as_u64)
            .unwrap_or(8) as usize;
        if let Some(width) = inp.shape.width() {
            if k > width {
                self.diags.push(adiag(
                    "A100",
                    Severity::Error,
                    node,
                    format!("Pca projects {width} input columns onto {k} components"),
                    Some(format!("components must be at most {width} here")),
                ));
            }
        }
        // Any tainted input taints every principal component: each is a
        // linear combination of all inputs.
        let tainted = !inp.shape.tainted_names().is_empty();
        AbsShape::Cols(
            (0..k)
                .map(|i| AbsCol {
                    name: format!("pc_{i}"),
                    tainted,
                })
                .collect(),
        )
    }

    fn select_shape(&mut self, node: &LintNode, key: &str, inp: &AbsTable) -> AbsShape {
        let Some(cols) = node.param(key).and_then(Value::as_array) else {
            return AbsShape::Unknown;
        };
        let wanted: Vec<String> = cols
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect();
        match &inp.shape {
            AbsShape::Cols(have) => {
                let mut out = Vec::with_capacity(wanted.len());
                for w in &wanted {
                    match have.iter().find(|c| &c.name == w) {
                        Some(c) => out.push(c.clone()),
                        None => {
                            let names: Vec<&str> = have.iter().map(|c| c.name.as_str()).collect();
                            let hint = nearest(w, &names).map(|n| format!("did you mean {n:?}?"));
                            self.diags.push(adiag(
                                "A101",
                                Severity::Error,
                                node,
                                format!("column {w:?} is not in the input schema"),
                                hint,
                            ));
                            // Keep the requested column so downstream width
                            // reasoning matches the author's intent.
                            out.push(AbsCol {
                                name: w.clone(),
                                tainted: label_suspect(w),
                            });
                        }
                    }
                }
                AbsShape::Cols(out)
            }
            // Unknown input: trust the requested names, applying the
            // label-name convention fresh.
            AbsShape::Unknown => named_cols(&wanted),
        }
    }

    fn eval_concat(&mut self, node: &LintNode) -> AbsValue {
        let mut cols = Vec::new();
        let mut half = None;
        for i in 0..node.inputs.len() {
            let t = self.input_table(node, i);
            half = half.or(t.half);
            match t.shape {
                AbsShape::Cols(mut c) => cols.append(&mut c),
                AbsShape::Unknown => {
                    return AbsValue::Table(AbsTable {
                        shape: AbsShape::Unknown,
                        half,
                    })
                }
            }
        }
        AbsValue::Table(AbsTable {
            shape: AbsShape::Cols(cols),
            half,
        })
    }

    fn eval_merge(&mut self, node: &LintNode) -> AbsValue {
        // Row-wise union: every input must share one schema.
        let mut known: Option<(usize, Vec<AbsCol>)> = None;
        for i in 0..node.inputs.len() {
            let t = self.input_table(node, i);
            let AbsShape::Cols(c) = t.shape else { continue };
            match &known {
                None => known = Some((i, c)),
                Some((first, have)) => {
                    let names = |cs: &[AbsCol]| {
                        cs.iter().map(|c| c.name.clone()).collect::<Vec<_>>()
                    };
                    if names(have) != names(&c) {
                        self.diags.push(adiag(
                            "A102",
                            Severity::Error,
                            node,
                            format!(
                                "inputs {} and {i} have different schemas ({} vs {} columns)",
                                first,
                                have.len(),
                                c.len()
                            ),
                            Some("MergeTables unions rows; all inputs need one schema".into()),
                        ));
                        return AbsValue::Table(AbsTable::unknown());
                    }
                }
            }
        }
        let shape = match known {
            Some((_, c)) => AbsShape::Cols(c),
            None => AbsShape::Unknown,
        };
        AbsValue::Table(AbsTable { shape, half: None })
    }

    fn eval_train(&mut self, node: &LintNode) -> AbsValue {
        let model = self.input(node, 0);
        let table = self.input_table(node, 1);
        self.saw_train = true;

        // A110: definite label leakage into the training features.
        let tainted = table.shape.tainted_names();
        if !tainted.is_empty() {
            self.diags.push(adiag(
                "A110",
                Severity::Error,
                node,
                format!(
                    "label-tainted column(s) {tainted:?} flow into the training features"
                ),
                Some("drop ground-truth columns before Train; labels reach models only \
                      through the evaluation harness"
                    .into()),
            ));
        }

        // A112: the held-out half is being learned from.
        if table.half == Some(SplitHalf::Test) {
            self.diags.push(adiag(
                "A112",
                Severity::Warn,
                node,
                "model is trained on the test half of a split".into(),
                Some("train on TakeTrain output and hold TakeTest out for Predict".into()),
            ));
        }

        let kind = match &model {
            AbsValue::Model(params) => {
                self.check_model_contract(node, params, &table);
                params
                    .get("model_type")
                    .and_then(Value::as_str)
                    .map(str::to_string)
            }
            _ => None,
        };
        AbsValue::Trained { kind, table }
    }

    /// A103/A104/A105: joins the abstract table width against the model's
    /// static shape contract and compressive hyper-parameters.
    fn check_model_contract(&mut self, node: &LintNode, params: &Value, table: &AbsTable) {
        let Some(width) = table.shape.width() else {
            return;
        };
        // Model-attached PCA projects the (imputed/filtered) features; it
        // can never exceed the incoming width.
        if let Some(pca) = params.get("pca").and_then(Value::as_u64) {
            if pca as usize > width {
                self.diags.push(adiag(
                    "A103",
                    Severity::Error,
                    node,
                    format!("model pca={pca} exceeds the {width}-column feature width"),
                    Some(format!("pca must be at most {width} here")),
                ));
            }
        }
        let Some(kind) = params.get("model_type").and_then(Value::as_str) else {
            return;
        };
        let Some(contract) = lumen_ml::contracts::shape_contract(kind) else {
            return;
        };
        if width < contract.min_features {
            self.diags.push(adiag(
                "A104",
                Severity::Error,
                node,
                format!(
                    "{kind} requires at least {} feature column(s), got {width} ({})",
                    contract.min_features, contract.note
                ),
                None,
            ));
        }
        for &key in contract.compressive {
            if let Some(v) = params.get(key).and_then(Value::as_u64) {
                if v as usize >= width && width >= contract.min_features {
                    self.diags.push(adiag(
                        "A105",
                        Severity::Warn,
                        node,
                        format!(
                            "{kind} {key}={v} is not below the {width}-column feature \
                             width ({})",
                            contract.note
                        ),
                        Some(format!("use {key} < {width} for an effective bottleneck")),
                    ));
                }
            }
        }
    }

    fn eval_predict(&mut self, node: &LintNode) -> AbsValue {
        let trained = self.input(node, 0);
        let table = self.input_table(node, 1);
        if let AbsValue::Trained {
            table: fit_table, ..
        } = &trained
        {
            if let (AbsShape::Cols(fit), AbsShape::Cols(now)) = (&fit_table.shape, &table.shape) {
                let names = |cs: &[AbsCol]| cs.iter().map(|c| c.name.clone()).collect::<Vec<_>>();
                if names(fit) != names(now) {
                    self.diags.push(adiag(
                        "A106",
                        Severity::Error,
                        node,
                        format!(
                            "prediction features ({} columns) do not match the schema the \
                             model was trained on ({} columns)",
                            now.len(),
                            fit.len()
                        ),
                        Some("Train and Predict must see identically named columns".into()),
                    ));
                }
            }
        }
        AbsValue::Opaque
    }

    fn eval_node(&mut self, node: &LintNode) -> AbsValue {
        let Some(func) = node.func.as_deref() else {
            return AbsValue::Opaque;
        };
        match func {
            "Concat" => self.eval_concat(node),
            "MergeTables" => self.eval_merge(node),
            "TrainTestSplit" => AbsValue::Split(self.input_table(node, 0)),
            "TakeTrain" | "TakeTest" => {
                let half = if func == "TakeTrain" {
                    SplitHalf::Train
                } else {
                    SplitHalf::Test
                };
                let base = match self.input(node, 0) {
                    AbsValue::Split(t) => t,
                    AbsValue::Table(t) => t, // mis-typed; lint flags it
                    _ => AbsTable::unknown(),
                };
                AbsValue::Table(AbsTable {
                    shape: base.shape,
                    half: Some(half),
                })
            }
            "Model" => {
                let mut params = serde_json::Map::new();
                for (k, v) in &node.params {
                    params.insert(k.clone(), v.clone());
                }
                AbsValue::Model(Value::Object(params))
            }
            "Train" => self.eval_train(node),
            "Predict" => self.eval_predict(node),
            "Evaluate" => AbsValue::Opaque,
            _ => match audit_meta(func) {
                Some(m) => self.transfer_meta(node, m.cols, m.fitted),
                None => AbsValue::Opaque,
            },
        }
    }
}

// ------------------------------------------------------------------ entry

/// Audits a raw template by abstract interpretation.
///
/// `inputs` declares the externally bound variables and their kinds (the
/// same names [`crate::lint::lint_template`] takes); only
/// [`DataKind::Table`] inputs start with table tracking, everything else is
/// opaque. Diagnostics are ordered by node index, then rule id, and carry
/// stable `A1xx` rule IDs from [`audit_rule_catalog`].
pub fn audit_template(template: &Value, inputs: &[(&str, DataKind)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Some(arr) = template.as_array() else {
        // Structural breakage is the linter's domain (L000); the abstract
        // interpreter has nothing to say about a non-array template.
        return diags;
    };
    let mut scratch = Vec::new();
    let nodes = extract_nodes(arr, &mut scratch);

    let mut interp = Interp {
        env: HashMap::new(),
        diags: &mut diags,
        saw_train: false,
    };
    for (name, kind) in inputs {
        let v = match kind {
            DataKind::Table => AbsValue::Table(AbsTable::unknown()),
            _ => AbsValue::Opaque,
        };
        interp.env.insert((*name).to_string(), v);
    }

    let mut terminal: Option<(usize, AbsTable)> = None;
    for node in &nodes {
        let out = interp.eval_node(node);
        if let Some(var) = &node.output {
            if let AbsValue::Table(t) = &out {
                terminal = Some((node.idx, t.clone()));
            }
            interp.env.insert(var.clone(), out);
        }
    }

    // A111: a feature template (no Train stage) whose final table still
    // carries a label-suspect column hands leakage to whichever training
    // template consumes it.
    if !interp.saw_train {
        if let Some((idx, table)) = terminal {
            let suspects: Vec<&str> = match &table.shape {
                AbsShape::Cols(c) => c
                    .iter()
                    .filter(|c| c.tainted || label_suspect(&c.name))
                    .map(|c| c.name.as_str())
                    .collect(),
                AbsShape::Unknown => Vec::new(),
            };
            if !suspects.is_empty() {
                diags.push(Diagnostic {
                    rule_id: "A111",
                    severity: Severity::Warn,
                    node: Some(idx),
                    func: nodes.iter().find(|n| n.idx == idx).and_then(|n| n.func.clone()),
                    message: format!(
                        "terminal feature table carries label-suspect column(s) {suspects:?}"
                    ),
                    suggestion: Some(
                        "feature templates must not emit ground-truth columns".into(),
                    ),
                });
            }
        }
    }

    diags.sort_by_key(|d| (d.node.map_or(usize::MAX, |i| i), d.rule_id));
    diags
}

/// The Level-1 audit rule catalog: (rule id, severity, summary).
/// DESIGN.md §4h's table is generated from this list (a unit test keeps
/// them in lockstep).
pub fn audit_rule_catalog() -> Vec<(&'static str, Severity, &'static str)> {
    vec![
        (
            "A100",
            Severity::Error,
            "Pca components exceed the known input width",
        ),
        (
            "A101",
            Severity::Error,
            "FeatureSelect references a column absent from the known input schema",
        ),
        (
            "A102",
            Severity::Error,
            "MergeTables inputs have mismatched known schemas",
        ),
        (
            "A103",
            Severity::Error,
            "model-attached pca exceeds the known feature width",
        ),
        (
            "A104",
            Severity::Error,
            "feature width below the model kind's minimum input dimension",
        ),
        (
            "A105",
            Severity::Warn,
            "compressive hyper-parameter at or above the known feature width",
        ),
        (
            "A106",
            Severity::Error,
            "Predict feature schema differs from the schema the model was trained on",
        ),
        (
            "A110",
            Severity::Error,
            "label-tainted column flows into the training features",
        ),
        (
            "A111",
            Severity::Warn,
            "terminal feature table carries a label-suspect column",
        ),
        (
            "A112",
            Severity::Warn,
            "model trained on the test half of a split",
        ),
        (
            "A120",
            Severity::Error,
            "fitted preprocessing applied to the test half (fit-on-test statistics)",
        ),
        (
            "A121",
            Severity::Warn,
            "fitted preprocessing applied to the train half only (statistics cannot replay on test)",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::has_errors;
    use serde_json::json;

    fn table_input() -> Vec<(&'static str, DataKind)> {
        vec![("features", DataKind::Table)]
    }

    fn ids(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule_id).collect()
    }

    /// A packet-derived 3-column table the fixtures build on.
    fn extract(fields: &[&str]) -> Value {
        json!({"func": "FieldExtract", "input": "source", "output": "t",
               "params": {"fields": fields}})
    }

    #[test]
    fn clean_template_audits_clean() {
        let t = json!([
            extract(&["ttl", "wire_len", "payload_entropy"]),
            {"func": "TrainTestSplit", "input": "t", "output": "split"},
            {"func": "TakeTrain", "input": "split", "output": "tr"},
            {"func": "TakeTest", "input": "split", "output": "te"},
            {"func": "Model", "output": "m", "params": {"model_type": "DecisionTree"}},
            {"func": "Train", "input": ["m", "tr"], "output": "trained"},
            {"func": "Predict", "input": ["trained", "te"], "output": "preds"},
        ]);
        let diags = audit_template(&t, &[("source", DataKind::Packets)]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn a100_pca_wider_than_input() {
        let t = json!([
            extract(&["ttl", "wire_len"]),
            {"func": "Pca", "input": "t", "output": "p", "params": {"components": 5}},
        ]);
        let diags = audit_template(&t, &[("source", DataKind::Packets)]);
        assert_eq!(ids(&diags), vec!["A100"]);
        assert_eq!(diags[0].node, Some(1));
    }

    #[test]
    fn a101_unknown_column_with_suggestion() {
        let t = json!([
            extract(&["ttl", "wire_len"]),
            {"func": "FeatureSelect", "input": "t", "output": "s",
             "params": {"columns": ["wire_le"]}},
        ]);
        let diags = audit_template(&t, &[("source", DataKind::Packets)]);
        assert_eq!(ids(&diags), vec!["A101"]);
        assert!(diags[0].suggestion.as_deref().unwrap().contains("wire_len"));
    }

    #[test]
    fn a102_merge_schema_mismatch() {
        let t = json!([
            extract(&["ttl", "wire_len"]),
            {"func": "FieldExtract", "input": "source", "output": "u",
             "params": {"fields": ["ttl"]}},
            {"func": "MergeTables", "input": ["t", "u"], "output": "m"},
        ]);
        let diags = audit_template(&t, &[("source", DataKind::Packets)]);
        assert_eq!(ids(&diags), vec!["A102"]);
    }

    #[test]
    fn a103_and_a104_model_contract() {
        // Zero-width select: training a model on no features.
        let t = json!([
            {"func": "FeatureSelect", "input": "features", "output": "s",
             "params": {"columns": []}},
            {"func": "Model", "output": "m", "params": {"model_type": "KNN", "pca": 4}},
            {"func": "Train", "input": ["m", "s"], "output": "trained"},
        ]);
        let diags = audit_template(&t, &table_input());
        assert_eq!(ids(&diags), vec!["A103", "A104"]);
    }

    #[test]
    fn a105_non_compressive_autoencoder() {
        let t = json!([
            {"func": "FeatureSelect", "input": "features", "output": "s",
             "params": {"columns": ["a", "b"]}},
            {"func": "Model", "output": "m",
             "params": {"model_type": "Autoencoder", "hidden": 8}},
            {"func": "Train", "input": ["m", "s"], "output": "trained"},
        ]);
        let diags = audit_template(&t, &table_input());
        assert_eq!(ids(&diags), vec!["A105"]);
        assert!(!has_errors(&diags));
    }

    #[test]
    fn a106_predict_schema_mismatch() {
        let t = json!([
            extract(&["ttl", "wire_len"]),
            {"func": "FieldExtract", "input": "source", "output": "other",
             "params": {"fields": ["ttl", "proto"]}},
            {"func": "Model", "output": "m", "params": {"model_type": "DecisionTree"}},
            {"func": "Train", "input": ["m", "t"], "output": "trained"},
            {"func": "Predict", "input": ["trained", "other"], "output": "p"},
        ]);
        let diags = audit_template(&t, &[("source", DataKind::Packets)]);
        assert_eq!(ids(&diags), vec!["A106"]);
    }

    #[test]
    fn a110_label_column_reaches_train() {
        // The fixture from ISSUE 6: a label-tainted feature column.
        let t = json!([
            {"func": "FeatureSelect", "input": "features", "output": "s",
             "params": {"columns": ["duration", "label"]}},
            {"func": "Model", "output": "m", "params": {"model_type": "DecisionTree"}},
            {"func": "Train", "input": ["m", "s"], "output": "trained"},
        ]);
        let diags = audit_template(&t, &table_input());
        assert_eq!(ids(&diags), vec!["A110"]);
        assert!(diags[0].message.contains("label"));
    }

    #[test]
    fn taint_survives_pca() {
        let t = json!([
            {"func": "FeatureSelect", "input": "features", "output": "s",
             "params": {"columns": ["duration", "attack_tag"]}},
            {"func": "Pca", "input": "s", "output": "p", "params": {"components": 2}},
            {"func": "Model", "output": "m", "params": {"model_type": "GMM"}},
            {"func": "Train", "input": ["m", "p"], "output": "trained"},
        ]);
        let diags = audit_template(&t, &table_input());
        assert_eq!(ids(&diags), vec!["A110"]);
    }

    #[test]
    fn a111_terminal_label_column() {
        let t = json!([
            {"func": "FeatureSelect", "input": "features", "output": "s",
             "params": {"columns": ["duration", "label"]}},
        ]);
        let diags = audit_template(&t, &table_input());
        assert_eq!(ids(&diags), vec!["A111"]);
    }

    #[test]
    fn a112_train_on_test_half() {
        let t = json!([
            {"func": "TrainTestSplit", "input": "features", "output": "split"},
            {"func": "TakeTest", "input": "split", "output": "te"},
            {"func": "Model", "output": "m", "params": {"model_type": "DecisionTree"}},
            {"func": "Train", "input": ["m", "te"], "output": "trained"},
        ]);
        let diags = audit_template(&t, &table_input());
        assert_eq!(ids(&diags), vec!["A112"]);
    }

    #[test]
    fn a120_fit_on_test_half() {
        // The fixture from ISSUE 6: scaler fit on the test split.
        let t = json!([
            {"func": "TrainTestSplit", "input": "features", "output": "split"},
            {"func": "TakeTest", "input": "split", "output": "te"},
            {"func": "Normalize", "input": "te", "output": "scaled"},
        ]);
        let diags = audit_template(&t, &table_input());
        assert_eq!(ids(&diags), vec!["A120"]);
        assert!(has_errors(&diags));
    }

    #[test]
    fn a121_fit_on_train_half_warns() {
        let t = json!([
            {"func": "TrainTestSplit", "input": "features", "output": "split"},
            {"func": "TakeTrain", "input": "split", "output": "tr"},
            {"func": "Normalize", "input": "tr", "output": "scaled"},
        ]);
        let diags = audit_template(&t, &table_input());
        assert_eq!(ids(&diags), vec!["A121"]);
        assert!(!has_errors(&diags));
    }

    #[test]
    fn unknown_shapes_stay_silent() {
        // Encoders and aggregates degrade to Unknown: no rule may fire on
        // missing knowledge.
        let t = json!([
            {"func": "NprintEncode", "input": "source", "output": "enc"},
            {"func": "Pca", "input": "enc", "output": "p", "params": {"components": 999}},
            {"func": "Model", "output": "m", "params": {"model_type": "KNN"}},
            {"func": "Train", "input": ["m", "p"], "output": "trained"},
        ]);
        let diags = audit_template(&t, &[("source", DataKind::Packets)]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn conn_state_degrades_to_unknown() {
        let t = json!([
            {"func": "ConnExtract", "input": "flows", "output": "t",
             "params": {"fields": ["duration", "state"]}},
            {"func": "FeatureSelect", "input": "t", "output": "s",
             "params": {"columns": ["no_such_column"]}},
        ]);
        // Unknown input schema: FeatureSelect trusts the request, no A101.
        let diags = audit_template(&t, &[("flows", DataKind::Connections)]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn diagnostics_are_ordered() {
        let t = json!([
            {"func": "TrainTestSplit", "input": "features", "output": "split"},
            {"func": "TakeTest", "input": "split", "output": "te"},
            {"func": "Normalize", "input": "te", "output": "scaled"},
            {"func": "Pca", "input": "te", "output": "p", "params": {"components": 3}},
            {"func": "Model", "output": "m", "params": {"model_type": "DecisionTree"}},
            {"func": "Train", "input": ["m", "scaled"], "output": "trained"},
        ]);
        let diags = audit_template(&t, &table_input());
        let keys: Vec<_> = diags
            .iter()
            .map(|d| (d.node.map_or(usize::MAX, |i| i), d.rule_id))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(keys.len() >= 2);
    }

    #[test]
    fn catalog_ids_unique_sorted_and_match_fired_rules() {
        let cat = audit_rule_catalog();
        let ids: Vec<_> = cat.iter().map(|(id, _, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "catalog must be sorted and duplicate-free");
        for id in &ids {
            assert!(id.starts_with('A'), "{id}: Level-1 rules use the A prefix");
        }
    }

    // DESIGN.md §4h's Level-1 table is generated from this catalog; the
    // full row must appear verbatim so the docs cannot drift from the code.
    #[test]
    fn design_table_tracks_audit_catalog() {
        let design = include_str!("../../../DESIGN.md");
        for (id, sev, summary) in audit_rule_catalog() {
            let row = format!("| {id} | {sev:?} | {summary} |");
            assert!(design.contains(&row), "DESIGN.md §4h missing row: {row}");
        }
    }

    #[test]
    fn every_model_kind_has_a_shape_contract() {
        for kind in crate::ops::MODEL_KINDS {
            assert!(
                lumen_ml::contracts::shape_contract(kind).is_some(),
                "{kind} lacks a shape contract"
            );
        }
    }
}
