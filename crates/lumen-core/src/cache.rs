//! Feature cache: shares extraction work across algorithms.
//!
//! Several algorithms use the same feature pipeline prefix (e.g. every
//! connection-level algorithm starts with `FlowAssemble`; all four nPrint
//! variants share packet parsing). The paper's evaluation pipeline "is
//! constructed such that intermediate results are shared across algorithms"
//! (§1); this cache is that mechanism — keyed by (dataset key, pipeline
//! fingerprint) and safe to share across runner threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use parking_lot::Mutex;

use crate::table::Table;
use crate::CoreResult;

type Key = (String, u64);

/// In-flight marker: waiters block on the condvar until the computing
/// thread flips `done` (success, failure, or panic — see [`FlightGuard`]).
struct Flight {
    done: StdMutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: StdMutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        // A poisoned lock just means the computer panicked; the flag is a
        // plain bool, so the value is still meaningful.
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Removes the in-flight marker and wakes every waiter on drop, so a
/// compute closure that panics cannot strand waiters on the condvar.
struct FlightGuard<'a> {
    cache: &'a FeatureCache,
    key: &'a Key,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if let Some(flight) = self.cache.in_flight.lock().remove(self.key) {
            *flight.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
            flight.cv.notify_all();
        }
    }
}

/// Thread-safe feature cache with hit/miss accounting.
///
/// Counters are single atomics (not mutexes), so [`FeatureCache::stats`]
/// can never observe a torn (hits, misses) pair mid-update, and an
/// in-flight guard coalesces concurrent misses: when two threads miss on
/// the same key, one computes and the other waits for the result instead
/// of duplicating the extraction.
#[derive(Default)]
pub struct FeatureCache {
    map: Mutex<HashMap<Key, Arc<Table>>>,
    in_flight: Mutex<HashMap<Key, Arc<Flight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FeatureCache {
    /// Creates an empty cache.
    pub fn new() -> FeatureCache {
        FeatureCache::default()
    }

    /// Returns the cached table for `(dataset_key, fingerprint)`, computing
    /// and inserting it on a miss.
    ///
    /// The compute closure runs outside every lock, so independent misses
    /// compute concurrently. Concurrent misses on the *same* key are
    /// coalesced: the first thread computes while the rest wait and then
    /// read the inserted value (counted as hits — no work was repeated).
    /// If the computing thread fails or panics, one waiter takes over the
    /// computation.
    pub fn get_or_compute<F>(
        &self,
        dataset_key: &str,
        fingerprint: u64,
        compute: F,
    ) -> CoreResult<Arc<Table>>
    where
        F: FnOnce() -> CoreResult<Arc<Table>>,
    {
        let key = (dataset_key.to_string(), fingerprint);
        loop {
            if let Some(t) = self.map.lock().get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(t));
            }
            let existing = {
                let mut fl = self.in_flight.lock();
                match fl.get(&key) {
                    Some(f) => Some(Arc::clone(f)),
                    None => {
                        fl.insert(key.clone(), Arc::new(Flight::new()));
                        None
                    }
                }
            };
            match existing {
                // Someone else is computing this key: wait, then re-check
                // the map (the compute may have failed, in which case this
                // thread becomes the new computer on the next iteration).
                Some(flight) => flight.wait(),
                None => break,
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let _guard = FlightGuard {
            cache: self,
            key: &key,
        };
        let table = compute()?;
        self.map.lock().insert(key.clone(), Arc::clone(&table));
        Ok(table)
    }

    /// (hits, misses) so far. Read as two relaxed atomic loads — never a
    /// torn pair from two independently-locked counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Hit ratio in `[0, 1]`; `None` before any lookup.
    pub fn hit_ratio(&self) -> Option<f64> {
        let (h, m) = self.stats();
        let total = h + m;
        if total == 0 {
            None
        } else {
            Some(h as f64 / total as f64)
        }
    }

    /// Number of cached tables.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// Drops all entries.
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_ml::matrix::Matrix;
    use std::sync::atomic::AtomicUsize;

    fn table(v: f64) -> Arc<Table> {
        Arc::new(
            Table::new(
                vec!["x".into()],
                Matrix::from_rows(vec![vec![v]]).unwrap(),
                vec![0],
                vec![0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn second_lookup_hits() {
        let cache = FeatureCache::new();
        let mut computed = 0;
        for _ in 0..3 {
            let t = cache
                .get_or_compute("F0", 42, || {
                    computed += 1;
                    Ok(table(7.0))
                })
                .unwrap();
            assert_eq!(t.x.get(0, 0), 7.0);
        }
        assert_eq!(computed, 1);
        assert_eq!(cache.stats(), (2, 1));
        assert_eq!(cache.hit_ratio(), Some(2.0 / 3.0));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = FeatureCache::new();
        cache.get_or_compute("F0", 1, || Ok(table(1.0))).unwrap();
        cache.get_or_compute("F0", 2, || Ok(table(2.0))).unwrap();
        cache.get_or_compute("F1", 1, || Ok(table(3.0))).unwrap();
        assert_eq!(cache.len(), 3);
        let t = cache
            .get_or_compute("F0", 2, || panic!("should hit"))
            .unwrap();
        assert_eq!(t.x.get(0, 0), 2.0);
    }

    #[test]
    fn compute_error_is_not_cached() {
        let cache = FeatureCache::new();
        let err = cache.get_or_compute("F0", 9, || Err(crate::CoreError::Unbound("x".into())));
        assert!(err.is_err());
        assert!(cache.is_empty());
        // A later successful compute works.
        cache.get_or_compute("F0", 9, || Ok(table(4.0))).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(FeatureCache::new());
        crossbeam::thread::scope(|s| {
            for i in 0..8u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move |_| {
                    for j in 0..20 {
                        cache
                            .get_or_compute("D", j % 4, || Ok(table((i + j) as f64)))
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn concurrent_misses_on_same_key_compute_once() {
        let cache = Arc::new(FeatureCache::new());
        let computes = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computes = &computes;
                s.spawn(move |_| {
                    let t = cache
                        .get_or_compute("SLOW", 1, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Long enough that without the in-flight guard
                            // several threads would overlap in compute.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            Ok(table(9.0))
                        })
                        .unwrap();
                    assert_eq!(t.x.get(0, 0), 9.0);
                });
            }
        })
        .unwrap();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "misses not coalesced");
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 7);
    }

    // ---- loom-style forced interleavings --------------------------------
    //
    // The timing-based tests above make bad interleavings *likely*; these
    // make the interesting schedules *certain* by parking the computing
    // thread at its linearization point (inside the compute closure, where
    // the in-flight marker is published but the map entry is not) and only
    // releasing it once the racing thread has provably reached the state
    // under test. Rendezvous is by channel + observation of the private
    // in-flight map, so each test exercises exactly one schedule.

    /// Parks until the in-flight entry for `key` has at least one waiter
    /// (the computer holds one clone; each waiter holds another).
    fn await_waiter(cache: &FeatureCache, key: &Key) {
        loop {
            if let Some(flight) = cache.in_flight.lock().get(key) {
                // the map's own Arc plus at least one waiter's clone
                if Arc::strong_count(flight) >= 2 {
                    return;
                }
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn interleaving_waiter_joins_mid_compute() {
        let cache = Arc::new(FeatureCache::new());
        let key: Key = ("K".into(), 1);
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();

        let computer = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache
                    .get_or_compute("K", 1, move || {
                        entered_tx.send(()).unwrap();
                        release_rx.recv().unwrap();
                        Ok(table(5.0))
                    })
                    .unwrap()
            })
        };

        // Schedule point 1: computer is inside compute; the marker must be
        // visible before any result is.
        entered_rx.recv().unwrap();
        assert!(cache.in_flight.lock().contains_key(&key));
        assert!(cache.map.lock().get(&key).is_none());

        // Schedule point 2: a second thread misses and must wait, not
        // compute (its closure is a tripwire).
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache
                    .get_or_compute("K", 1, || panic!("coalescing failed: waiter computed"))
                    .unwrap()
            })
        };
        await_waiter(&cache, &key);

        // Schedule point 3: only now does the computer finish.
        release_tx.send(()).unwrap();
        let a = computer.join().unwrap();
        let b = waiter.join().unwrap();
        assert_eq!(a.x.get(0, 0), 5.0);
        assert_eq!(b.x.get(0, 0), 5.0);
        assert_eq!(cache.stats(), (1, 1));
        assert!(cache.in_flight.lock().is_empty());
    }

    #[test]
    fn interleaving_failure_hands_over_while_waiter_parked() {
        let cache = Arc::new(FeatureCache::new());
        let key: Key = ("K".into(), 2);
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();

        let failer = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache.get_or_compute("K", 2, move || {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    Err(crate::CoreError::Unbound("forced failure".into()))
                })
            })
        };
        entered_rx.recv().unwrap();

        let takeover = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.get_or_compute("K", 2, || Ok(table(6.0))))
        };
        await_waiter(&cache, &key);

        // The waiter is parked on the flight; the failure must wake it and
        // it must become the new computer (second miss, not a hit).
        release_tx.send(()).unwrap();
        assert!(failer.join().unwrap().is_err());
        let t = takeover.join().unwrap().unwrap();
        assert_eq!(t.x.get(0, 0), 6.0);
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(cache.len(), 1);
        assert!(cache.in_flight.lock().is_empty());
    }

    #[test]
    fn interleaving_panic_unwinds_flight_and_frees_waiter() {
        let cache = Arc::new(FeatureCache::new());
        let key: Key = ("K".into(), 3);
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();

        let panicker = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _ = cache.get_or_compute("K", 3, move || {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    panic!("forced panic inside compute");
                });
            })
        };
        entered_rx.recv().unwrap();

        let survivor = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.get_or_compute("K", 3, || Ok(table(7.0))))
        };
        await_waiter(&cache, &key);

        release_tx.send(()).unwrap();
        assert!(panicker.join().is_err(), "panic must propagate");
        // FlightGuard's Drop ran during unwind: the waiter is released and
        // recomputes rather than deadlocking on the condvar.
        let t = survivor.join().unwrap().unwrap();
        assert_eq!(t.x.get(0, 0), 7.0);
        assert!(cache.in_flight.lock().is_empty());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failed_compute_hands_off_to_a_waiter() {
        let cache = Arc::new(FeatureCache::new());
        let attempts = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let attempts = &attempts;
                s.spawn(move |_| {
                    let r = cache.get_or_compute("E", 1, || {
                        let n = attempts.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        if n == 0 {
                            Err(crate::CoreError::Unbound("first fails".into()))
                        } else {
                            Ok(table(1.0))
                        }
                    });
                    // Whichever thread computed first fails; the rest must
                    // eventually see the successful retry's value.
                    if let Ok(t) = r {
                        assert_eq!(t.x.get(0, 0), 1.0);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(cache.len(), 1);
        assert!(attempts.load(Ordering::SeqCst) >= 2);
    }
}
