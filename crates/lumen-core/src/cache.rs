//! Feature cache: shares extraction work across algorithms.
//!
//! Several algorithms use the same feature pipeline prefix (e.g. every
//! connection-level algorithm starts with `FlowAssemble`; all four nPrint
//! variants share packet parsing). The paper's evaluation pipeline "is
//! constructed such that intermediate results are shared across algorithms"
//! (§1); this cache is that mechanism — keyed by (dataset key, pipeline
//! fingerprint) and safe to share across runner threads.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::table::Table;
use crate::CoreResult;

/// Thread-safe feature cache with hit/miss accounting.
#[derive(Default)]
pub struct FeatureCache {
    map: Mutex<HashMap<(String, u64), Arc<Table>>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl FeatureCache {
    /// Creates an empty cache.
    pub fn new() -> FeatureCache {
        FeatureCache::default()
    }

    /// Returns the cached table for `(dataset_key, fingerprint)`, computing
    /// and inserting it on a miss.
    ///
    /// The compute closure runs outside the map lock, so independent misses
    /// can compute concurrently (at the cost of occasional duplicate work on
    /// a race, which is benign — results are identical and the second insert
    /// wins).
    pub fn get_or_compute<F>(
        &self,
        dataset_key: &str,
        fingerprint: u64,
        compute: F,
    ) -> CoreResult<Arc<Table>>
    where
        F: FnOnce() -> CoreResult<Arc<Table>>,
    {
        let key = (dataset_key.to_string(), fingerprint);
        if let Some(t) = self.map.lock().get(&key) {
            *self.hits.lock() += 1;
            return Ok(Arc::clone(t));
        }
        *self.misses.lock() += 1;
        let table = compute()?;
        self.map.lock().insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }

    /// Number of cached tables.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// Drops all entries.
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_ml::matrix::Matrix;

    fn table(v: f64) -> Arc<Table> {
        Arc::new(
            Table::new(
                vec!["x".into()],
                Matrix::from_rows(vec![vec![v]]).unwrap(),
                vec![0],
                vec![0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn second_lookup_hits() {
        let cache = FeatureCache::new();
        let mut computed = 0;
        for _ in 0..3 {
            let t = cache
                .get_or_compute("F0", 42, || {
                    computed += 1;
                    Ok(table(7.0))
                })
                .unwrap();
            assert_eq!(t.x.get(0, 0), 7.0);
        }
        assert_eq!(computed, 1);
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = FeatureCache::new();
        cache.get_or_compute("F0", 1, || Ok(table(1.0))).unwrap();
        cache.get_or_compute("F0", 2, || Ok(table(2.0))).unwrap();
        cache.get_or_compute("F1", 1, || Ok(table(3.0))).unwrap();
        assert_eq!(cache.len(), 3);
        let t = cache
            .get_or_compute("F0", 2, || panic!("should hit"))
            .unwrap();
        assert_eq!(t.x.get(0, 0), 2.0);
    }

    #[test]
    fn compute_error_is_not_cached() {
        let cache = FeatureCache::new();
        let err = cache.get_or_compute("F0", 9, || Err(crate::CoreError::Unbound("x".into())));
        assert!(err.is_err());
        assert!(cache.is_empty());
        // A later successful compute works.
        cache.get_or_compute("F0", 9, || Ok(table(4.0))).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(FeatureCache::new());
        crossbeam::thread::scope(|s| {
            for i in 0..8u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move |_| {
                    for j in 0..20 {
                        cache
                            .get_or_compute("D", j % 4, || Ok(table((i + j) as f64)))
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(cache.len(), 4);
    }
}
