//! The typed values flowing between pipeline operations.

use std::sync::Arc;

use lumen_flow::{ConnRecord, FlowStats, UniFlowRecord};
use lumen_ml::model::Classifier;
use lumen_net::{LinkType, PacketMeta};

use crate::table::Table;

/// The packet source a pipeline runs over: parsed packet summaries plus
/// per-packet ground truth (label + opaque attack tag).
///
/// The tag is opaque to the framework: the benchmark suite maps attack kinds
/// to integers before constructing a `PacketData`, which keeps the core free
/// of any dependency on the traffic synthesizer.
#[derive(Debug, Clone)]
pub struct PacketData {
    /// Link type of the capture.
    pub link: LinkType,
    /// Parsed packet summaries, sorted by timestamp.
    pub metas: Vec<PacketMeta>,
    /// Ground-truth label per packet (0 benign / 1 malicious).
    pub labels: Vec<u8>,
    /// Opaque attack tag per packet (0 = none).
    pub tags: Vec<u32>,
}

impl PacketData {
    /// Builds from parsed metas with all-benign labels (live deployment
    /// shape, where ground truth is unknown).
    pub fn unlabeled(link: LinkType, metas: Vec<PacketMeta>) -> PacketData {
        let n = metas.len();
        PacketData {
            link,
            metas,
            labels: vec![0; n],
            tags: vec![0; n],
        }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }
}

/// A grouping of packets: each group is a list of indices into the parent
/// [`PacketData`]. Produced by `GroupBy`, refined by `TimeSlice`.
#[derive(Debug, Clone)]
pub struct Grouped {
    /// The grouped packets.
    pub parent: Arc<PacketData>,
    /// Groups of packet indices, each sorted by time.
    pub groups: Vec<Vec<u32>>,
    /// Human-readable description of the grouping key (for profiles).
    pub key_desc: String,
}

/// Assembled connections plus derived ground truth.
#[derive(Debug, Clone)]
pub struct ConnData {
    /// The source packets.
    pub parent: Arc<PacketData>,
    /// Connection records.
    pub conns: Vec<ConnRecord>,
    /// Connection labels (any-malicious rule over member packets).
    pub labels: Vec<u8>,
    /// Majority attack tag per connection (0 = benign).
    pub tags: Vec<u32>,
    /// Aggregate tracker accounting for the assembly that produced these
    /// records — the per-run (not process-global) eviction source of truth.
    pub flow: FlowStats,
    /// Per-shard accounting; length is the shard count the assembly used
    /// (1 for the single-tracker path).
    pub shard_flow: Vec<FlowStats>,
}

/// Unidirectional flows plus derived ground truth.
#[derive(Debug, Clone)]
pub struct UniData {
    /// Flow records.
    pub flows: Vec<UniFlowRecord>,
    /// Flow labels.
    pub labels: Vec<u8>,
    /// Attack tags.
    pub tags: Vec<u32>,
}

/// A model definition (not yet trained) — output of the `Model` operation.
#[derive(Debug, Clone)]
pub struct ModelDef {
    /// Registry kind string ("RandomForest", "Kitsune", "AutoML", ...).
    pub kind: String,
    /// Validated JSON parameters.
    pub params: serde_json::Value,
    /// Seed the `Train` operation threads through.
    pub seed: u64,
}

/// A trained model handle.
#[derive(Clone)]
pub struct Trained {
    /// The fitted classifier (anomaly detectors arrive pre-wrapped in a
    /// calibrated adapter).
    pub model: Arc<dyn Classifier>,
    /// Definition it was built from.
    pub def: ModelDef,
    /// Names of the feature columns it was trained on.
    pub feature_names: Vec<String>,
}

impl std::fmt::Debug for Trained {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trained")
            .field("kind", &self.def.kind)
            .field("features", &self.feature_names.len())
            .finish()
    }
}

/// Predictions over a table.
#[derive(Debug, Clone)]
pub struct PredOutput {
    /// Hard predictions per row.
    pub preds: Vec<u8>,
    /// Continuous scores per row (higher = more malicious).
    pub scores: Vec<f64>,
    /// Ground-truth labels carried from the table.
    pub labels: Vec<u8>,
    /// Attack tags carried from the table.
    pub tags: Vec<u32>,
}

/// Evaluation report — what the benchmark stores per run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub accuracy: f64,
    pub auc: f64,
    pub tp: u64,
    pub fp: u64,
    pub tn: u64,
    pub fn_: u64,
}

/// A train/test pair produced by `TrainTestSplit`.
#[derive(Debug, Clone)]
pub struct SplitPair {
    pub train: Arc<Table>,
    pub test: Arc<Table>,
}

/// A value flowing between operations.
#[derive(Debug, Clone)]
pub enum Data {
    Packets(Arc<PacketData>),
    Grouped(Arc<Grouped>),
    Connections(Arc<ConnData>),
    UniFlows(Arc<UniData>),
    Table(Arc<Table>),
    Model(ModelDef),
    Trained(Trained),
    Predictions(Arc<PredOutput>),
    Report(Report),
    Split(SplitPair),
}

/// Static type of a [`Data`] value, for pipeline type checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataKind {
    Packets,
    Grouped,
    Connections,
    UniFlows,
    Table,
    Model,
    Trained,
    Predictions,
    Report,
    Split,
}

impl DataKind {
    /// Display name used in type-error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataKind::Packets => "Packets",
            DataKind::Grouped => "Grouped",
            DataKind::Connections => "Connections",
            DataKind::UniFlows => "UniFlows",
            DataKind::Table => "Table",
            DataKind::Model => "Model",
            DataKind::Trained => "Trained",
            DataKind::Predictions => "Predictions",
            DataKind::Report => "Report",
            DataKind::Split => "Split",
        }
    }
}

impl Data {
    /// The value's kind.
    pub fn kind(&self) -> DataKind {
        match self {
            Data::Packets(_) => DataKind::Packets,
            Data::Grouped(_) => DataKind::Grouped,
            Data::Connections(_) => DataKind::Connections,
            Data::UniFlows(_) => DataKind::UniFlows,
            Data::Table(_) => DataKind::Table,
            Data::Model(_) => DataKind::Model,
            Data::Trained(_) => DataKind::Trained,
            Data::Predictions(_) => DataKind::Predictions,
            Data::Report(_) => DataKind::Report,
            Data::Split(_) => DataKind::Split,
        }
    }

    /// Approximate memory footprint, for the engine's per-op memory profile.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Data::Packets(p) => p.metas.len() * 256 + p.labels.len() * 5,
            Data::Grouped(g) => g.groups.iter().map(|v| v.len() * 4 + 24).sum(),
            Data::Connections(c) => c.conns.len() * 512,
            Data::UniFlows(u) => u.flows.len() * 256,
            Data::Table(t) => t.approx_bytes(),
            Data::Model(_) => 64,
            Data::Trained(_) => 1024,
            Data::Predictions(p) => p.preds.len() * 14,
            Data::Report(_) => 96,
            Data::Split(s) => s.train.approx_bytes() + s.test.approx_bytes(),
        }
    }

    /// Extracts a table or errors with a kind message.
    pub fn as_table(&self) -> crate::CoreResult<&Arc<Table>> {
        match self {
            Data::Table(t) => Ok(t),
            other => Err(crate::CoreError::TypeError(format!(
                "expected Table, got {}",
                other.kind().name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let pd = Arc::new(PacketData::unlabeled(LinkType::Ethernet, vec![]));
        assert_eq!(Data::Packets(pd).kind(), DataKind::Packets);
        assert_eq!(
            Data::Report(Report {
                precision: 0.0,
                recall: 0.0,
                f1: 0.0,
                accuracy: 0.0,
                auc: 0.5,
                tp: 0,
                fp: 0,
                tn: 0,
                fn_: 0
            })
            .kind(),
            DataKind::Report
        );
    }

    #[test]
    fn as_table_rejects_other_kinds() {
        let pd = Arc::new(PacketData::unlabeled(LinkType::Ethernet, vec![]));
        assert!(Data::Packets(pd).as_table().is_err());
    }

    #[test]
    fn unlabeled_has_benign_labels() {
        let pd = PacketData::unlabeled(LinkType::Ethernet, vec![]);
        assert!(pd.is_empty());
        assert_eq!(pd.labels.len(), 0);
    }
}
