//! Template parsing, type checking, execution, and profiling.
//!
//! A pipeline template is a JSON array of operation nodes in the shape of
//! the paper's Figure 4:
//!
//! ```json
//! [
//!   {"func": "GroupBy",         "input": ["source"],  "output": "by_src", "key": "srcIp"},
//!   {"func": "TimeSlice",       "input": ["by_src"],  "output": "sliced", "window_s": 10.0},
//!   {"func": "ApplyAggregates", "input": ["sliced"],  "output": "feats",
//!    "aggs": [{"fn": "mean", "field": "wire_len"}, {"fn": "bandwidth"}]},
//!   {"func": "Model",           "input": [],          "output": "clf", "model_type": "RandomForest"},
//!   {"func": "Train",           "input": ["clf", "feats"], "output": "trained"}
//! ]
//! ```
//!
//! Any key other than `func`/`input`/`output` is an operation parameter
//! (a nested `"params"` object is also accepted and merged). Templates are
//! type-checked against the declared input bindings before anything runs;
//! execution frees every intermediate value after its last use and records a
//! per-operation time/memory profile.

use std::collections::HashMap;
use std::time::Instant;

use serde_json::Value;

use crate::data::{Data, DataKind};
use crate::lint::{self, Diagnostic};
use crate::ops::{build_op, Operation};
use crate::{CoreError, CoreResult};

/// Serializes a JSON value with object keys sorted at every level, so the
/// representation — and anything fingerprinted from it — is independent of
/// the key order the template author happened to write.
pub(crate) fn canonical_json(v: &Value) -> String {
    fn escape(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
    fn write(out: &mut String, v: &Value) {
        match v {
            Value::Null | Value::Bool(_) | Value::Number(_) => out.push_str(&v.to_string()),
            Value::String(s) => escape(out, s),
            Value::Array(a) => {
                out.push('[');
                for (i, e) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write(out, e);
                }
                out.push(']');
            }
            Value::Object(m) => {
                let mut entries: Vec<(&String, &Value)> = m.iter().collect();
                entries.sort_by_key(|&(k, _)| k);
                out.push('{');
                for (i, (k, e)) in entries.into_iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape(out, k);
                    out.push(':');
                    write(out, e);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write(&mut out, v);
    out
}

/// One parsed template node.
struct Node {
    func: String,
    inputs: Vec<String>,
    output: String,
    /// Canonical JSON of the op parameters (part of the fingerprint: two
    /// pipelines with the same structure but different parameters must not
    /// alias in the feature cache).
    params_repr: String,
    op: Box<dyn Operation>,
}

/// A compiled, type-checked pipeline.
pub struct Pipeline {
    // (fields below; Debug is implemented manually since ops are trait objects)
    nodes: Vec<Node>,
    /// Declared external inputs (name → kind).
    inputs: Vec<(String, DataKind)>,
    /// For each node, the variables whose last use is that node.
    frees: Vec<Vec<String>>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field(
                "ops",
                &self
                    .nodes
                    .iter()
                    .map(|n| n.func.as_str())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Per-operation execution profile entry.
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Operation name.
    pub op: String,
    /// Output variable.
    pub output: String,
    /// Wall time in microseconds.
    pub micros: u128,
    /// Approximate size of the produced value.
    pub output_bytes: usize,
    /// Variables freed after this operation (dead-value elimination).
    pub freed: Vec<String>,
    /// Flow-assembly accounting when this op produced connections:
    /// `(aggregate, per-shard)` tracker stats for exactly this execution.
    /// Telemetry consumers attribute evictions per run through this field
    /// rather than diffing process-global counters, which misattribute
    /// under concurrency.
    pub flow: Option<(lumen_flow::FlowStats, Vec<lumen_flow::FlowStats>)>,
}

/// Aggregated per-operation statistics across many pipeline executions —
/// the ops-level profile behind the paper's "plots of memory and time spent
/// in each operation", accumulated run over run (e.g. by the benchmark
/// runner across a whole evaluation matrix).
#[derive(Debug, Default, Clone)]
pub struct OpsProfile {
    stats: std::collections::BTreeMap<String, OpStat>,
}

/// Accumulated statistics for one operation name.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpStat {
    /// Number of executions.
    pub calls: u64,
    /// Total wall time, microseconds.
    pub micros: u128,
    /// Total bytes produced.
    pub output_bytes: u128,
}

impl OpsProfile {
    /// Empty profile.
    pub fn new() -> OpsProfile {
        OpsProfile::default()
    }

    /// Folds one run's per-op entries into the aggregate.
    pub fn record(&mut self, profile: &[OpProfile]) {
        for p in profile {
            self.add(p);
        }
    }

    /// Folds a single op execution into the aggregate.
    pub fn add(&mut self, p: &OpProfile) {
        let s = self.stats.entry(p.op.clone()).or_default();
        s.calls += 1;
        s.micros += p.micros;
        s.output_bytes += p.output_bytes as u128;
    }

    /// Folds a raw timing aggregate (e.g. compute-kernel counters from
    /// `lumen_ml::kernels`) into the profile under the given name, so
    /// kernel time shows up in the same slowest-op report as pipeline ops.
    pub fn add_timing(&mut self, op: &str, calls: u64, micros: u128) {
        if calls == 0 {
            return;
        }
        let s = self.stats.entry(op.to_string()).or_default();
        s.calls += calls;
        s.micros += micros;
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &OpsProfile) {
        for (op, o) in &other.stats {
            let s = self.stats.entry(op.clone()).or_default();
            s.calls += o.calls;
            s.micros += o.micros;
            s.output_bytes += o.output_bytes;
        }
    }

    /// Per-op aggregates, keyed by operation name (sorted).
    pub fn stats(&self) -> &std::collections::BTreeMap<String, OpStat> {
        &self.stats
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// The `n` most expensive operations by total wall time, descending.
    pub fn top_by_time(&self, n: usize) -> Vec<(&str, OpStat)> {
        let mut v: Vec<(&str, OpStat)> = self.stats.iter().map(|(k, s)| (k.as_str(), *s)).collect();
        v.sort_by(|a, b| b.1.micros.cmp(&a.1.micros).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }

    /// Renders the aggregate as an aligned text table, most expensive first.
    pub fn table(&self) -> String {
        let mut s = format!(
            "{:<18} {:>8} {:>14} {:>14}\n",
            "operation", "calls", "total_time(us)", "total_bytes"
        );
        for (op, st) in self.top_by_time(usize::MAX) {
            s.push_str(&format!(
                "{:<18} {:>8} {:>14} {:>14}\n",
                op, st.calls, st.micros, st.output_bytes
            ));
        }
        s
    }
}

/// Result of running a pipeline.
pub struct RunOutput {
    /// Variables still live at the end (terminal results).
    pub outputs: HashMap<String, Data>,
    /// Per-operation profile, in execution order.
    pub profile: Vec<OpProfile>,
}

impl RunOutput {
    /// Takes a named output, with a useful error.
    pub fn take(&mut self, name: &str) -> CoreResult<Data> {
        self.outputs
            .remove(name)
            .ok_or_else(|| CoreError::Unbound(format!("output {name:?} (freed or never bound)")))
    }

    /// Renders the profile as an aligned text table (the paper's "plots of
    /// memory and time spent in each operation", in terminal form).
    pub fn profile_table(&self) -> String {
        let mut s = format!(
            "{:<18} {:<14} {:>12} {:>12}  freed\n",
            "operation", "output", "time(us)", "bytes"
        );
        for p in &self.profile {
            s.push_str(&format!(
                "{:<18} {:<14} {:>12} {:>12}  {}\n",
                p.op,
                p.output,
                p.micros,
                p.output_bytes,
                p.freed.join(",")
            ));
        }
        s
    }
}

impl Pipeline {
    /// Parses and type-checks a template against the declared input kinds.
    pub fn parse(template: &Value, inputs: &[(&str, DataKind)]) -> CoreResult<Pipeline> {
        let arr = template
            .as_array()
            .ok_or_else(|| CoreError::BadTemplate("template must be a JSON array".into()))?;
        if arr.is_empty() {
            return Err(CoreError::BadTemplate("template has no operations".into()));
        }

        let mut env: HashMap<String, DataKind> =
            inputs.iter().map(|(n, k)| (n.to_string(), *k)).collect();
        let mut nodes = Vec::with_capacity(arr.len());

        for (i, raw) in arr.iter().enumerate() {
            let obj = raw
                .as_object()
                .ok_or_else(|| CoreError::BadTemplate(format!("node {i} is not an object")))?;
            let func = obj
                .get("func")
                .and_then(Value::as_str)
                .ok_or_else(|| CoreError::BadTemplate(format!("node {i} missing \"func\"")))?
                .to_string();
            let node_inputs: Vec<String> = match obj.get("input") {
                None | Some(Value::Null) => Vec::new(),
                Some(Value::Array(a)) => a
                    .iter()
                    .map(|v| {
                        v.as_str().map(str::to_string).ok_or_else(|| {
                            CoreError::BadTemplate(format!("node {i} input must be strings"))
                        })
                    })
                    .collect::<CoreResult<_>>()?,
                Some(Value::String(s)) => vec![s.clone()],
                Some(_) => {
                    return Err(CoreError::BadTemplate(format!(
                        "node {i} \"input\" must be a list of names"
                    )))
                }
            };
            let output = obj
                .get("output")
                .and_then(Value::as_str)
                .ok_or_else(|| CoreError::BadTemplate(format!("node {i} missing \"output\"")))?
                .to_string();

            // Everything else is an operation parameter.
            let mut params = serde_json::Map::new();
            for (k, v) in obj {
                match k.as_str() {
                    "func" | "input" | "output" => {}
                    "params" => {
                        if let Some(nested) = v.as_object() {
                            for (nk, nv) in nested {
                                params.insert(nk.clone(), nv.clone());
                            }
                        }
                    }
                    _ => {
                        params.insert(k.clone(), v.clone());
                    }
                }
            }
            let params_repr = canonical_json(&Value::Object(params.clone()));
            let op = build_op(&func, &Value::Object(params))?;

            // Type check.
            let mut in_kinds = Vec::with_capacity(node_inputs.len());
            for name in &node_inputs {
                let kind = env.get(name).ok_or_else(|| {
                    CoreError::TypeError(format!("node {i} ({func}): input {name:?} is not bound"))
                })?;
                in_kinds.push(*kind);
            }
            let expected = op.input_kinds();
            if op.variadic() {
                if in_kinds.is_empty() {
                    return Err(CoreError::TypeError(format!(
                        "node {i} ({func}): needs at least one input"
                    )));
                }
                let want = expected[0];
                for (name, got) in node_inputs.iter().zip(&in_kinds) {
                    if *got != want {
                        return Err(CoreError::TypeError(format!(
                            "node {i} ({func}): input {name:?} is {}, expected {}",
                            got.name(),
                            want.name()
                        )));
                    }
                }
            } else {
                if in_kinds.len() != expected.len() {
                    return Err(CoreError::TypeError(format!(
                        "node {i} ({func}): takes {} inputs, got {}",
                        expected.len(),
                        in_kinds.len()
                    )));
                }
                for ((name, got), want) in node_inputs.iter().zip(&in_kinds).zip(&expected) {
                    if got != want {
                        return Err(CoreError::TypeError(format!(
                            "node {i} ({func}): input {name:?} is {}, expected {}",
                            got.name(),
                            want.name()
                        )));
                    }
                }
            }
            if env.contains_key(&output) {
                return Err(CoreError::TypeError(format!(
                    "node {i} ({func}): output {output:?} is already bound"
                )));
            }
            env.insert(output.clone(), op.output_kind());
            nodes.push(Node {
                func,
                inputs: node_inputs,
                output,
                params_repr,
                op,
            });
        }

        // Liveness: a variable dies after the last node that reads it.
        let mut last_use: HashMap<&str, usize> = HashMap::new();
        for (i, node) in nodes.iter().enumerate() {
            for input in &node.inputs {
                last_use.insert(input.as_str(), i);
            }
        }
        let frees: Vec<Vec<String>> = (0..nodes.len())
            .map(|i| {
                let mut freed: Vec<String> = last_use
                    .iter()
                    .filter(|&(_, &li)| li == i)
                    .map(|(name, _)| name.to_string())
                    .collect();
                // HashMap iteration order is arbitrary; sort so profiles and
                // profile_table() are identical run to run.
                freed.sort_unstable();
                freed
            })
            .collect();

        Ok(Pipeline {
            nodes,
            inputs: inputs.iter().map(|(n, k)| (n.to_string(), *k)).collect(),
            frees,
        })
    }

    /// Parses and type-checks like [`Pipeline::parse`], and additionally
    /// runs the full static-analysis pass ([`crate::lint`]) over the raw
    /// template, returning the pipeline together with every diagnostic.
    /// Diagnostics do not fail the parse — use [`Pipeline::parse_strict`]
    /// to promote Error-severity findings to hard failures.
    pub fn parse_linted(
        template: &Value,
        inputs: &[(&str, DataKind)],
    ) -> CoreResult<(Pipeline, Vec<Diagnostic>)> {
        let names: Vec<&str> = inputs.iter().map(|&(n, _)| n).collect();
        let diags = lint::lint_template(template, &names);
        let pipeline = Pipeline::parse(template, inputs)?;
        Ok((pipeline, diags))
    }

    /// Parses with the linter's Error-severity rules enforced: a template
    /// with an unknown operation, a silently-ignored parameter key, or an
    /// unfaithful evaluation structure is rejected with every finding
    /// listed, instead of compiling to a pipeline that runs the wrong
    /// experiment.
    pub fn parse_strict(template: &Value, inputs: &[(&str, DataKind)]) -> CoreResult<Pipeline> {
        let names: Vec<&str> = inputs.iter().map(|&(n, _)| n).collect();
        let errors: Vec<String> = lint::lint_template(template, &names)
            .iter()
            .filter(|d| d.severity == lint::Severity::Error)
            .map(Diagnostic::to_string)
            .collect();
        if errors.is_empty() {
            Pipeline::parse(template, inputs)
        } else {
            Err(CoreError::BadTemplate(format!(
                "lint failed:\n  {}",
                errors.join("\n  ")
            )))
        }
    }

    /// Parses from a JSON source string.
    pub fn parse_str(template: &str, inputs: &[(&str, DataKind)]) -> CoreResult<Pipeline> {
        let v: Value = serde_json::from_str(template)
            .map_err(|e| CoreError::BadTemplate(format!("json parse: {e}")))?;
        Pipeline::parse(&v, inputs)
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the pipeline has no operations (cannot occur after parse).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A stable fingerprint of the pipeline's structure, used as a feature-
    /// cache key component.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for n in &self.nodes {
            n.func.hash(&mut h);
            n.inputs.hash(&mut h);
            n.output.hash(&mut h);
            n.params_repr.hash(&mut h);
        }
        h.finish()
    }

    /// Executes with the given input bindings.
    pub fn run(&self, bindings: HashMap<String, Data>) -> CoreResult<RunOutput> {
        self.run_with_hook(bindings, |_| {})
    }

    /// Executes like [`Pipeline::run`], additionally invoking `hook` with
    /// each operation's profile entry the moment the op completes — the
    /// timing hook that feeds live ops-level telemetry (an [`OpsProfile`]
    /// aggregate, a progress bar, a tracing span) without waiting for the
    /// whole pipeline to finish.
    pub fn run_with_hook<H>(
        &self,
        bindings: HashMap<String, Data>,
        mut hook: H,
    ) -> CoreResult<RunOutput>
    where
        H: FnMut(&OpProfile),
    {
        // Validate bindings against declared inputs.
        for (name, kind) in &self.inputs {
            match bindings.get(name) {
                None => return Err(CoreError::Unbound(name.clone())),
                Some(d) if d.kind() != *kind => {
                    return Err(CoreError::TypeError(format!(
                        "binding {name:?} is {}, declared {}",
                        d.kind().name(),
                        kind.name()
                    )))
                }
                Some(_) => {}
            }
        }
        let mut env = bindings;
        let mut profile = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            // Cooperative cancellation: a supervised runner installs a
            // thread-current token with a per-task deadline; checking it
            // between ops turns a hung pipeline into an ordinary error.
            if lumen_util::cancel::CancelToken::current_cancelled() {
                return Err(CoreError::Cancelled);
            }
            let inputs: Vec<&Data> = node
                .inputs
                .iter()
                .map(|n| env.get(n).ok_or_else(|| CoreError::Unbound(n.clone())))
                .collect::<CoreResult<_>>()?;
            let start = Instant::now();
            let out = node.op.execute(&inputs)?;
            let micros = start.elapsed().as_micros();
            let output_bytes = out.approx_bytes();
            let flow = if let Data::Connections(c) = &out {
                Some((c.flow, c.shard_flow.clone()))
            } else {
                None
            };
            env.insert(node.output.clone(), out);
            // Dead-value elimination (the paper's basic memory optimization).
            for dead in &self.frees[i] {
                env.remove(dead);
            }
            let entry = OpProfile {
                op: node.func.clone(),
                output: node.output.clone(),
                micros,
                output_bytes,
                freed: self.frees[i].clone(),
                flow,
            };
            hook(&entry);
            profile.push(entry);
        }
        Ok(RunOutput {
            outputs: env,
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::PacketData;
    use lumen_net::builder::{udp_packet, UdpParams};
    use lumen_net::{LinkType, MacAddr, PacketMeta};
    use serde_json::json;
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn source(n: usize) -> Data {
        let metas: Vec<PacketMeta> = (0..n)
            .map(|i| {
                let pkt = udp_packet(UdpParams {
                    src_mac: MacAddr::from_id(1),
                    dst_mac: MacAddr::from_id(2),
                    src_ip: Ipv4Addr::new(10, 0, 0, 1 + (i % 3) as u8),
                    dst_ip: Ipv4Addr::new(10, 0, 0, 100),
                    src_port: 4000,
                    dst_port: 53,
                    ttl: 64,
                    payload: &vec![0u8; i % 50],
                });
                PacketMeta::parse(LinkType::Ethernet, (i as u64) * 10_000, &pkt).unwrap()
            })
            .collect();
        let labels: Vec<u8> = (0..n).map(|i| u8::from(i % 5 == 0)).collect();
        let tags: Vec<u32> = labels.iter().map(|&l| u32::from(l)).collect();
        Data::Packets(Arc::new(PacketData {
            link: LinkType::Ethernet,
            metas,
            labels,
            tags,
        }))
    }

    fn figure3_template() -> Value {
        // The paper's Figure 3/4 pipeline: extract → group by srcIP →
        // time slice → aggregates → model → train.
        json!([
            {"func": "GroupBy", "input": ["source"], "output": "by_src", "key": "srcIp"},
            {"func": "TimeSlice", "input": ["by_src"], "output": "sliced", "window_s": 10.0},
            {"func": "ApplyAggregates", "input": ["sliced"], "output": "features",
             "aggs": [
                {"fn": "mean", "field": "wire_len"},
                {"fn": "bandwidth"},
                {"fn": "count"}
             ]},
            {"func": "Model", "input": [], "output": "clf", "model_type": "RandomForest", "n_trees": 5},
            {"func": "Train", "input": ["clf", "features"], "output": "trained"}
        ])
    }

    #[test]
    fn figure3_pipeline_runs_end_to_end() {
        let p = Pipeline::parse(&figure3_template(), &[("source", DataKind::Packets)]).unwrap();
        assert_eq!(p.len(), 5);
        let mut bindings = HashMap::new();
        bindings.insert("source".to_string(), source(200));
        let mut out = p.run(bindings).unwrap();
        let trained = out.take("trained").unwrap();
        assert_eq!(trained.kind(), DataKind::Trained);
        // Intermediates were freed.
        assert!(!out.outputs.contains_key("by_src"));
        assert!(!out.outputs.contains_key("sliced"));
        assert_eq!(out.profile.len(), 5);
        assert!(out.profile.iter().all(|p| p.output_bytes > 0));
    }

    #[test]
    fn type_error_on_wrong_input_kind() {
        let bad = json!([
            {"func": "TimeSlice", "input": ["source"], "output": "x", "window_s": 1.0}
        ]);
        let err = Pipeline::parse(&bad, &[("source", DataKind::Packets)]).unwrap_err();
        let CoreError::TypeError(msg) = err else {
            panic!("wrong error: {err:?}")
        };
        assert!(msg.contains("expected Grouped"), "{msg}");
    }

    #[test]
    fn unbound_input_is_type_error() {
        let bad = json!([
            {"func": "GroupBy", "input": ["ghost"], "output": "x", "key": "srcIp"}
        ]);
        assert!(matches!(
            Pipeline::parse(&bad, &[("source", DataKind::Packets)]),
            Err(CoreError::TypeError(_))
        ));
    }

    #[test]
    fn duplicate_output_rejected() {
        let bad = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "dstIp"}
        ]);
        assert!(matches!(
            Pipeline::parse(&bad, &[("source", DataKind::Packets)]),
            Err(CoreError::TypeError(_))
        ));
    }

    #[test]
    fn wrong_arity_rejected() {
        let bad = json!([
            {"func": "Train", "input": ["source"], "output": "t"}
        ]);
        assert!(matches!(
            Pipeline::parse(&bad, &[("source", DataKind::Packets)]),
            Err(CoreError::TypeError(_))
        ));
    }

    #[test]
    fn bad_op_param_surfaces_at_parse_time() {
        let bad = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "marsupial"}
        ]);
        assert!(matches!(
            Pipeline::parse(&bad, &[("source", DataKind::Packets)]),
            Err(CoreError::BadParam { .. })
        ));
    }

    #[test]
    fn missing_binding_at_run_time() {
        let p = Pipeline::parse(&figure3_template(), &[("source", DataKind::Packets)]).unwrap();
        assert!(matches!(p.run(HashMap::new()), Err(CoreError::Unbound(_))));
    }

    #[test]
    fn nested_params_object_accepted() {
        let t = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g",
             "params": {"key": "srcIp"}}
        ]);
        let p = Pipeline::parse(&t, &[("source", DataKind::Packets)]).unwrap();
        let mut b = HashMap::new();
        b.insert("source".to_string(), source(10));
        assert!(p.run(b).is_ok());
    }

    #[test]
    fn fingerprint_stable_and_structure_sensitive() {
        let a = Pipeline::parse(&figure3_template(), &[("source", DataKind::Packets)]).unwrap();
        let b = Pipeline::parse(&figure3_template(), &[("source", DataKind::Packets)]).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "dstIp"}
        ]);
        let c = Pipeline::parse(&other, &[("source", DataKind::Packets)]).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_insensitive_to_param_key_order() {
        // Same node, parameter keys written in different orders. `json!`
        // preserves insertion order, so without canonicalization the two
        // params_reprs — and the fingerprints — would differ.
        let a = Pipeline::parse_str(
            r#"[{"func": "Sample", "input": ["t"], "output": "s",
                 "frac": 0.5, "seed": 7, "balance": true}]"#,
            &[("t", DataKind::Table)],
        )
        .unwrap();
        let b = Pipeline::parse_str(
            r#"[{"func": "Sample", "input": ["t"], "output": "s",
                 "seed": 7, "balance": true, "frac": 0.5}]"#,
            &[("t", DataKind::Table)],
        )
        .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different parameter *values* must still change the fingerprint.
        let c = Pipeline::parse_str(
            r#"[{"func": "Sample", "input": ["t"], "output": "s",
                 "frac": 0.5, "seed": 8, "balance": true}]"#,
            &[("t", DataKind::Table)],
        )
        .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn canonical_json_sorts_keys_at_every_level() {
        let a: Value =
            serde_json::from_str(r#"{"b": {"y": 1, "x": [2, {"q": 3, "p": 4}]}, "a": 0}"#).unwrap();
        let b: Value =
            serde_json::from_str(r#"{"a": 0, "b": {"x": [2, {"p": 4, "q": 3}], "y": 1}}"#).unwrap();
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(
            canonical_json(&a),
            r#"{"a":0,"b":{"x":[2,{"p":4,"q":3}],"y":1}}"#
        );
    }

    #[test]
    fn freed_lists_are_sorted_and_deterministic() {
        // MergeTables is variadic: all eight tables die at the same node,
        // which exercises multi-variable free lists.
        let names: Vec<String> = (0..8).map(|i| format!("t{i}")).collect();
        let template = json!([
            {"func": "MergeTables", "input": names.clone(), "output": "merged"}
        ]);
        let decls: Vec<(&str, DataKind)> = names
            .iter()
            .map(|n| (n.as_str(), DataKind::Table))
            .collect();
        for _ in 0..10 {
            let p = Pipeline::parse(&template, &decls).unwrap();
            let freed = &p.frees[0];
            assert_eq!(freed.len(), 8);
            let mut sorted = freed.clone();
            sorted.sort_unstable();
            assert_eq!(freed, &sorted, "freed list must be sorted");
        }
    }

    #[test]
    fn parse_linted_reports_without_failing() {
        // A dead GroupBy output: parses fine, lints as L101.
        let t = json!([
            {"func": "GroupBy", "input": ["source"], "output": "dead", "key": "srcIp"},
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "dstIp"},
            {"func": "TimeSlice", "input": ["g"], "output": "s", "window_s": 5.0},
            {"func": "ApplyAggregates", "input": ["s"], "output": "features",
             "aggs": [{"fn": "count"}]}
        ]);
        let (p, diags) = Pipeline::parse_linted(&t, &[("source", DataKind::Packets)]).unwrap();
        assert_eq!(p.len(), 4);
        assert!(diags.iter().any(|d| d.rule_id == "L101"));
    }

    #[test]
    fn parse_strict_rejects_misspelled_param_key() {
        let t = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
            {"func": "TimeSlice", "input": ["g"], "output": "s", "windows_s": 5.0},
            {"func": "ApplyAggregates", "input": ["s"], "output": "features",
             "aggs": [{"fn": "count"}]}
        ]);
        // Plain parse silently defaults the window; strict parse refuses.
        assert!(Pipeline::parse(&t, &[("source", DataKind::Packets)]).is_ok());
        let err = Pipeline::parse_strict(&t, &[("source", DataKind::Packets)]).unwrap_err();
        let CoreError::BadTemplate(msg) = err else {
            panic!("wrong error kind")
        };
        assert!(msg.contains("windows_s"), "{msg}");
        assert!(msg.contains("window_s"), "{msg}");
    }

    #[test]
    fn parse_strict_accepts_clean_template() {
        assert!(
            Pipeline::parse_strict(&figure3_template(), &[("source", DataKind::Packets)]).is_ok()
        );
    }

    #[test]
    fn unknown_op_error_has_nearest_match_hint() {
        let t = json!([
            {"func": "TimeSlyce", "input": ["source"], "output": "s", "window_s": 5.0}
        ]);
        let err = Pipeline::parse(&t, &[("source", DataKind::Packets)]).unwrap_err();
        let CoreError::BadTemplate(msg) = err else {
            panic!("wrong error kind")
        };
        assert!(msg.contains("did you mean \"TimeSlice\""), "{msg}");
    }

    #[test]
    fn profile_table_renders() {
        let p = Pipeline::parse(&figure3_template(), &[("source", DataKind::Packets)]).unwrap();
        let mut b = HashMap::new();
        b.insert("source".to_string(), source(50));
        let out = p.run(b).unwrap();
        let table = out.profile_table();
        assert!(table.contains("GroupBy"));
        assert!(table.contains("Train"));
    }

    #[test]
    fn run_with_hook_sees_every_op() {
        let p = Pipeline::parse(&figure3_template(), &[("source", DataKind::Packets)]).unwrap();
        let mut b = HashMap::new();
        b.insert("source".to_string(), source(50));
        let mut seen = Vec::new();
        let out = p
            .run_with_hook(b, |entry| seen.push(entry.op.clone()))
            .unwrap();
        assert_eq!(seen.len(), out.profile.len());
        assert_eq!(seen[0], "GroupBy");
        assert_eq!(seen.last().map(String::as_str), Some("Train"));
    }

    #[test]
    fn ops_profile_aggregates_across_runs() {
        let p = Pipeline::parse(&figure3_template(), &[("source", DataKind::Packets)]).unwrap();
        let mut agg = OpsProfile::new();
        for _ in 0..2 {
            let mut b = HashMap::new();
            b.insert("source".to_string(), source(50));
            let out = p.run(b).unwrap();
            agg.record(&out.profile);
        }
        assert_eq!(agg.stats()["GroupBy"].calls, 2);
        assert_eq!(agg.stats()["Train"].calls, 2);
        assert!(agg.stats()["ApplyAggregates"].output_bytes > 0);
        let table = agg.table();
        assert!(table.contains("GroupBy"), "{table}");
        // merge() doubles the counts.
        let mut other = OpsProfile::new();
        other.merge(&agg);
        other.merge(&agg);
        assert_eq!(other.stats()["Train"].calls, 4);
        assert!(!other.is_empty());
    }

    #[test]
    fn parse_str_rejects_invalid_json() {
        assert!(matches!(
            Pipeline::parse_str("not json", &[]),
            Err(CoreError::BadTemplate(_))
        ));
    }
}
