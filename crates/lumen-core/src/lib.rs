//! The Lumen framework core — the paper's primary contribution.
//!
//! Lumen decomposes every published ML-based IoT anomaly-detection algorithm
//! into a pipeline of **configurable operations** (§3.2): field extraction,
//! grouping, time slicing, aggregate computation, incremental statistics,
//! flow assembly, encoders, normalizers, and model train/test stages. A
//! pipeline is described in a **template language** (a JSON document shaped
//! like the paper's Figure 4), type-checked, and executed by an engine that
//! profiles per-operation time and memory and frees intermediates as soon as
//! they are dead.
//!
//! Crate layout:
//!
//! * [`data`] — the typed values that flow between operations
//!   ([`data::Data`]): packet summaries, groupings, connections, feature
//!   tables, models, predictions, reports.
//! * [`table`] — the named-column feature table.
//! * [`ops`] — the ~30 operation implementations plus the registry that
//!   instantiates them from template JSON.
//! * [`engine`] — template parsing, type checking, execution, profiling.
//! * [`lint`] — static analysis over raw templates: parameter-schema
//!   strictness, dataflow checks, and the §4 evaluation-faithfulness rules.
//! * [`audit`] — abstract interpretation over templates: shape, dtype, and
//!   column-provenance inference catching dimension mismatches, label
//!   leakage, and fit-on-test preprocessing before any data is loaded.
//! * [`cache`] — a feature cache so the benchmark can share extraction work
//!   across algorithms (§3.2 "intermediate results are shared").
//! * [`par`] — crossbeam-based chunked parallelism (the Ray substitute).

#![forbid(unsafe_code)]

pub mod audit;
pub mod cache;
pub mod data;
pub mod engine;
pub mod lint;
pub mod ops;
pub mod par;
pub mod table;

pub use audit::{audit_rule_catalog, audit_template, AbsCol, AbsShape, AbsTable, SplitHalf};
pub use data::{Data, DataKind, PacketData, PredOutput, Report};
pub use engine::{OpProfile, OpStat, OpsProfile, Pipeline, RunOutput};
pub use lint::{lint_template, Diagnostic, Severity};
pub use table::Table;

/// Errors from the framework core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Template JSON is syntactically or structurally invalid.
    BadTemplate(String),
    /// Static type checking of a pipeline failed.
    TypeError(String),
    /// An operation was given an invalid parameter.
    BadParam { op: String, why: String },
    /// A referenced variable is not bound.
    Unbound(String),
    /// Runtime failure inside an operation.
    OpFailed { op: String, why: String },
    /// An ML-layer error surfaced through an operation.
    Ml(String),
    /// A packet-layer error surfaced through an operation.
    Net(String),
    /// Execution was cancelled by a cooperative cancellation token
    /// (per-task deadline in the benchmark runner, or an explicit cancel).
    Cancelled,
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadTemplate(why) => write!(f, "bad template: {why}"),
            CoreError::TypeError(why) => write!(f, "type error: {why}"),
            CoreError::BadParam { op, why } => write!(f, "bad parameter for {op}: {why}"),
            CoreError::Unbound(name) => write!(f, "unbound variable: {name}"),
            CoreError::OpFailed { op, why } => write!(f, "operation {op} failed: {why}"),
            CoreError::Ml(why) => write!(f, "ml error: {why}"),
            CoreError::Net(why) => write!(f, "net error: {why}"),
            CoreError::Cancelled => write!(f, "cancelled (task deadline or explicit cancel)"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<lumen_ml::MlError> for CoreError {
    fn from(e: lumen_ml::MlError) -> Self {
        // Cancellation must stay structurally recognizable across the
        // layer boundary — the runner classifies it as a timeout, not an
        // ML failure.
        match e {
            lumen_ml::MlError::Cancelled => CoreError::Cancelled,
            e => CoreError::Ml(e.to_string()),
        }
    }
}

impl From<lumen_net::NetError> for CoreError {
    fn from(e: lumen_net::NetError) -> Self {
        CoreError::Net(e.to_string())
    }
}

/// Result alias for this crate.
pub type CoreResult<T> = std::result::Result<T, CoreError>;
