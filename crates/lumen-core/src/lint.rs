//! Static analysis for pipeline templates (`lumen-lint`).
//!
//! The engine's type checker (see [`crate::engine`]) verifies port kinds and
//! arity, but nothing else: op builders silently default misspelled
//! parameter keys, dead outputs pass unnoticed, and none of the
//! evaluation-faithfulness pitfalls the paper's §4 warns about (leaky
//! normalization, testing on training data) are caught before a run. This
//! module closes that gap with a multi-rule lint over the *raw* template
//! JSON, so it can diagnose templates the parser would reject and templates
//! the parser would happily — and wrongly — accept.
//!
//! Three rule families:
//!
//! | family | rules | checks |
//! |--------|-------|--------|
//! | schema    | L001, L002, L005 | unknown parameter keys / `func` names, with did-you-mean suggestions |
//! | dataflow  | L101–L104 | dead outputs, unread inputs, untrained models, single-input variadics |
//! | faithfulness | L201–L205 | pre-split fitted preprocessing, asymmetric sampling, evaluating on the training table, degenerate windows, duplicate aggregates |
//!
//! Entry points: [`lint_template`] (raw JSON), plus
//! [`crate::Pipeline::parse_linted`] / [`crate::Pipeline::parse_strict`]
//! on the engine.

use std::collections::HashSet;

use serde_json::Value;

use crate::ops::{param_schema, OPERATION_NAMES};

/// Reserved node keys that are never operation parameters.
pub const RESERVED_NODE_KEYS: [&str; 4] = ["func", "input", "output", "params"];

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory; the template is well-formed but could be simplified.
    Info,
    /// Probably a mistake; the run proceeds but results may not mean what
    /// the author thinks.
    Warn,
    /// A defect: silent misconfiguration or an unfaithful evaluation.
    Error,
}

impl Severity {
    /// Lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One structured lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule identifier ("L001", ...).
    pub rule_id: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Index of the offending node in the template array; `None` for
    /// template-level findings (e.g. an unread declared input).
    pub node: Option<usize>,
    /// `func` of the offending node, when known.
    pub func: Option<String>,
    /// Human-readable description of the defect.
    pub message: String,
    /// A proposed fix ("did you mean ...").
    pub suggestion: Option<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity.name(), self.rule_id)?;
        match (self.node, &self.func) {
            (Some(i), Some(func)) => write!(f, " node {i} ({func})")?,
            (Some(i), None) => write!(f, " node {i}")?,
            _ => write!(f, " template")?,
        }
        write!(f, ": {}", self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, " — {s}")?;
        }
        Ok(())
    }
}

// ------------------------------------------------------------- edit distance

/// Edit distance with unit-cost insert/delete/substitute plus adjacent
/// transposition (optimal string alignment), shared by the linter and the
/// op registry's unknown-operation error. Transpositions count as one edit
/// because they are the most common typo ("feild" → "field").
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev2: Vec<usize> = vec![0; b.len() + 1];
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            let mut best = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            if i > 0 && j > 0 && ca == b[j - 1] && a[i - 1] == cb {
                best = best.min(prev2[j - 1] + 1);
            }
            cur[j + 1] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest candidate within a length-scaled distance budget, used for
/// did-you-mean suggestions. Comparison is case-insensitive so `"timeslice"`
/// still suggests `"TimeSlice"`.
pub fn nearest<'a>(needle: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let lowered = needle.to_ascii_lowercase();
    candidates
        .iter()
        .map(|&c| (edit_distance(&lowered, &c.to_ascii_lowercase()), c))
        .min_by_key(|&(d, c)| (d, c))
        .filter(|&(d, c)| d <= budget(needle, c))
        .map(|(_, c)| c)
}

fn budget(a: &str, b: &str) -> usize {
    (a.chars().count().min(b.chars().count()) / 3).max(1)
}

// ------------------------------------------------------------------ lint IR

/// A tolerantly-extracted template node: whatever could be read out of the
/// raw JSON, with malformed pieces already reported. Shared with the
/// [`crate::audit`] abstract interpreter so both analyses agree on what a
/// node *is*.
pub(crate) struct LintNode {
    pub(crate) idx: usize,
    pub(crate) func: Option<String>,
    pub(crate) inputs: Vec<String>,
    pub(crate) output: Option<String>,
    /// Merged top-level + nested `"params"` parameter entries.
    pub(crate) params: Vec<(String, Value)>,
}

impl LintNode {
    /// Looks up a parameter by key (merged view).
    pub(crate) fn param(&self, key: &str) -> Option<&Value> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

pub(crate) fn extract_nodes(arr: &[Value], diags: &mut Vec<Diagnostic>) -> Vec<LintNode> {
    let mut nodes = Vec::with_capacity(arr.len());
    for (idx, raw) in arr.iter().enumerate() {
        let Some(obj) = raw.as_object() else {
            diags.push(Diagnostic {
                rule_id: "L000",
                severity: Severity::Error,
                node: Some(idx),
                func: None,
                message: "node is not a JSON object".into(),
                suggestion: None,
            });
            continue;
        };
        let func = obj.get("func").and_then(Value::as_str).map(str::to_string);
        if func.is_none() {
            diags.push(Diagnostic {
                rule_id: "L000",
                severity: Severity::Error,
                node: Some(idx),
                func: None,
                message: "node is missing a string \"func\"".into(),
                suggestion: None,
            });
        }
        let inputs = match obj.get("input") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::String(s)) => vec![s.clone()],
            Some(Value::Array(a)) => a
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect(),
            Some(_) => Vec::new(),
        };
        let output = obj
            .get("output")
            .and_then(Value::as_str)
            .map(str::to_string);
        let mut params = Vec::new();
        for (k, v) in obj {
            match k.as_str() {
                "func" | "input" | "output" => {}
                "params" => {
                    if let Some(nested) = v.as_object() {
                        for (nk, nv) in nested {
                            params.push((nk.clone(), nv.clone()));
                        }
                    }
                }
                _ => params.push((k.clone(), v.clone())),
            }
        }
        nodes.push(LintNode {
            idx,
            func,
            inputs,
            output,
            params,
        });
    }
    nodes
}

// ------------------------------------------------------------------- rules

/// Ops whose fitted statistics leak test-set information when computed
/// upstream of a `TrainTestSplit` (§4 faithfulness).
const LEAKY_FITTED_OPS: [&str; 3] = ["Normalize", "Pca", "CorrelationFilter"];

/// Variadic ops for which a single input is an identity.
const VARIADIC_OPS: [&str; 2] = ["Concat", "MergeTables"];

fn diag(
    rule_id: &'static str,
    severity: Severity,
    node: &LintNode,
    message: String,
    suggestion: Option<String>,
) -> Diagnostic {
    Diagnostic {
        rule_id,
        severity,
        node: Some(node.idx),
        func: node.func.clone(),
        message,
        suggestion,
    }
}

/// Family 1: parameter-schema strictness (L001/L002/L005).
fn check_schemas(nodes: &[LintNode], diags: &mut Vec<Diagnostic>) {
    for node in nodes {
        let Some(func) = node.func.as_deref() else {
            continue;
        };
        let Some(schema) = param_schema(func) else {
            let suggestion = nearest(func, &OPERATION_NAMES)
                .map(|n| format!("did you mean {n:?}?"));
            diags.push(diag(
                "L002",
                Severity::Error,
                node,
                format!("unknown operation {func:?}"),
                suggestion,
            ));
            continue;
        };
        for (key, _) in &node.params {
            if !schema.contains(&key.as_str()) {
                let suggestion = nearest(key, schema)
                    .map(|k| format!("did you mean {k:?}?"))
                    .or_else(|| {
                        if schema.is_empty() {
                            Some(format!("{func} takes no parameters"))
                        } else {
                            Some(format!("accepted: {}", schema.join(", ")))
                        }
                    });
                diags.push(diag(
                    "L001",
                    Severity::Error,
                    node,
                    format!(
                        "unknown parameter {key:?} for {func} (it would be silently ignored)"
                    ),
                    suggestion,
                ));
            }
        }
        // Aggregate specs are nested one level deeper; check their keys too.
        if func == "ApplyAggregates" {
            check_agg_specs(node, diags);
        }
    }
}

/// L005/L205: `ApplyAggregates` spec hygiene (unknown spec keys, duplicates).
fn check_agg_specs(node: &LintNode, diags: &mut Vec<Diagnostic>) {
    let Some(aggs) = node
        .params
        .iter()
        .find(|(k, _)| k == "aggs")
        .and_then(|(_, v)| v.as_array())
    else {
        return;
    };
    let spec_keys = ["fn", "field"];
    let mut seen: HashSet<(String, String)> = HashSet::new();
    for (j, spec) in aggs.iter().enumerate() {
        let Some(obj) = spec.as_object() else {
            continue;
        };
        for (k, _) in obj {
            if !spec_keys.contains(&k.as_str()) {
                let suggestion = nearest(k, &spec_keys).map(|s| format!("did you mean {s:?}?"));
                diags.push(diag(
                    "L005",
                    Severity::Error,
                    node,
                    format!("unknown key {k:?} in aggregate spec #{j}"),
                    suggestion,
                ));
            }
        }
        let func = obj.get("fn").and_then(Value::as_str).unwrap_or_default();
        let field = obj.get("field").and_then(Value::as_str).unwrap_or_default();
        if !func.is_empty() && !seen.insert((func.to_string(), field.to_string())) {
            let col = if field.is_empty() {
                func.to_string()
            } else {
                format!("{func}({field})")
            };
            diags.push(diag(
                "L205",
                Severity::Warn,
                node,
                format!("duplicate aggregate {col} computes the same column twice"),
                Some("remove the repeated spec".into()),
            ));
        }
    }
}

/// Family 2: dataflow (L101–L104).
fn check_dataflow(
    nodes: &[LintNode],
    declared_inputs: &[&str],
    consumed: &HashSet<&str>,
    diags: &mut Vec<Diagnostic>,
) {
    let terminal = nodes.iter().rev().find_map(|n| n.output.as_deref());
    for node in nodes {
        if let Some(out) = node.output.as_deref() {
            if !consumed.contains(out) && Some(out) != terminal {
                diags.push(diag(
                    "L101",
                    Severity::Warn,
                    node,
                    format!(
                        "output {out:?} is never consumed and is not the pipeline result"
                    ),
                    Some("remove the dead operation or consume its output".into()),
                ));
            }
        }
    }
    for name in declared_inputs {
        if !consumed.contains(name) {
            diags.push(Diagnostic {
                rule_id: "L102",
                severity: Severity::Warn,
                node: None,
                func: None,
                message: format!("declared input {name:?} is never read"),
                suggestion: Some("drop the declaration or wire it into a node".into()),
            });
        }
    }
    for node in nodes {
        if node.func.as_deref() == Some("Model") {
            let trained = node.output.as_deref().is_some_and(|out| {
                nodes.iter().any(|m| {
                    m.func.as_deref() == Some("Train") && m.inputs.first().map(String::as_str) == Some(out)
                })
            });
            if !trained {
                diags.push(diag(
                    "L103",
                    Severity::Warn,
                    node,
                    "model is never trained (no Train consumes it)".into(),
                    Some("add a Train node or remove the Model".into()),
                ));
            }
        }
        if node
            .func
            .as_deref()
            .is_some_and(|f| VARIADIC_OPS.contains(&f))
            && node.inputs.len() == 1
        {
            diags.push(diag(
                "L104",
                Severity::Info,
                node,
                format!(
                    "{} with a single input is an identity",
                    node.func.as_deref().unwrap_or("variadic op")
                ),
                Some("drop the node or feed it multiple tables".into()),
            ));
        }
    }
}

/// Variables (transitively) derived from `start`, by walking producer →
/// consumer edges.
fn downstream_vars<'a>(nodes: &'a [LintNode], start: &'a str) -> HashSet<&'a str> {
    let mut reach: HashSet<&str> = HashSet::new();
    let mut stack = vec![start];
    while let Some(var) = stack.pop() {
        if !reach.insert(var) {
            continue;
        }
        for n in nodes {
            if n.inputs.iter().any(|i| i == var) {
                if let Some(out) = n.output.as_deref() {
                    stack.push(out);
                }
            }
        }
    }
    reach
}

/// Family 3: evaluation faithfulness (L201–L204; L205 lives with the
/// aggregate-spec checks).
fn check_faithfulness(nodes: &[LintNode], diags: &mut Vec<Diagnostic>) {
    // L201: data-dependent preprocessing fitted upstream of the split sees
    // the test rows — the classic leaky-normalization mistake from §4.
    for node in nodes {
        let Some(func) = node.func.as_deref() else {
            continue;
        };
        let fitted = LEAKY_FITTED_OPS.contains(&func);
        if !(fitted || func == "FeatureSelect") {
            continue;
        }
        let Some(out) = node.output.as_deref() else {
            continue;
        };
        let reach = downstream_vars(nodes, out);
        let feeds_split = nodes.iter().any(|m| {
            m.func.as_deref() == Some("TrainTestSplit")
                && m.inputs.iter().any(|i| reach.contains(i.as_str()))
        });
        if feeds_split {
            let (severity, why) = if fitted {
                (
                    Severity::Error,
                    "is fitted on the full table, leaking test-set statistics across the split",
                )
            } else {
                // Column projection is deterministic — no statistics leak —
                // but pre-split feature selection still deserves a look.
                (
                    Severity::Warn,
                    "selects columns before the split; keep selection decisions on training data only",
                )
            };
            diags.push(diag(
                "L201",
                severity,
                node,
                format!("{func} upstream of TrainTestSplit {why}"),
                Some(format!("move {func} after TakeTrain/TakeTest, or fit it at train time via Model params")),
            ));
        }
    }

    // L202: sampling only one side of the split skews the evaluated
    // class balance relative to the trained one.
    let take_out = |which: &str| -> Option<&str> {
        nodes
            .iter()
            .find(|n| n.func.as_deref() == Some(which))
            .and_then(|n| n.output.as_deref())
    };
    if let (Some(train_out), Some(test_out)) = (take_out("TakeTrain"), take_out("TakeTest")) {
        let train_side = downstream_vars(nodes, train_out);
        let test_side = downstream_vars(nodes, test_out);
        let sampled = |side: &HashSet<&str>| {
            nodes.iter().find(|n| {
                n.func.as_deref() == Some("Sample")
                    && n.inputs.iter().any(|i| side.contains(i.as_str()))
            })
        };
        match (sampled(&train_side), sampled(&test_side)) {
            (Some(node), None) => diags.push(diag(
                "L202",
                Severity::Warn,
                node,
                "Sample applied to the train side of the split but not the test side".into(),
                Some("sample both sides identically, or sample before the split".into()),
            )),
            (None, Some(node)) => diags.push(diag(
                "L202",
                Severity::Warn,
                node,
                "Sample applied to the test side of the split but not the train side".into(),
                Some("sample both sides identically, or sample before the split".into()),
            )),
            _ => {}
        }
    }

    // L203: Predict on the very table the model was trained on — the
    // "evaluating on training data" pitfall.
    let train_tables: Vec<(&str, usize)> = nodes
        .iter()
        .filter(|n| n.func.as_deref() == Some("Train"))
        .filter_map(|n| n.inputs.get(1).map(|t| (t.as_str(), n.idx)))
        .collect();
    for node in nodes {
        if node.func.as_deref() != Some("Predict") {
            continue;
        }
        if let Some(table) = node.inputs.get(1) {
            if let Some((_, tn)) = train_tables.iter().find(|(t, _)| t == table) {
                diags.push(diag(
                    "L203",
                    Severity::Error,
                    node,
                    format!(
                        "predicting on {table:?}, the same table Train (node {tn}) fitted on — \
                         the evaluation would report training accuracy"
                    ),
                    Some("split first and predict on the held-out part".into()),
                ));
            }
        }
    }

    // L204: degenerate time windows. `from_params` rejects these too, but
    // the linter reports them without needing to build the op.
    for node in nodes {
        if node.func.as_deref() != Some("TimeSlice") {
            continue;
        }
        if let Some((_, v)) = node.params.iter().find(|(k, _)| k == "window_s") {
            if v.as_f64().is_some_and(|w| w <= 0.0) {
                diags.push(diag(
                    "L204",
                    Severity::Error,
                    node,
                    format!("window_s = {v} slices time into empty or inverted windows"),
                    Some("use a positive window length in seconds".into()),
                ));
            }
        }
    }
}

// ------------------------------------------------------------------- entry

/// Lints a raw template against the declared external input names.
///
/// Works on arbitrary JSON: templates the parser rejects still produce
/// useful diagnostics, and templates the parser accepts may still be
/// flagged (that is the point). Diagnostics are ordered by node index,
/// then rule id.
pub fn lint_template(template: &Value, declared_inputs: &[&str]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Some(arr) = template.as_array() else {
        diags.push(Diagnostic {
            rule_id: "L000",
            severity: Severity::Error,
            node: None,
            func: None,
            message: "template must be a JSON array of operation nodes".into(),
            suggestion: None,
        });
        return diags;
    };
    let nodes = extract_nodes(arr, &mut diags);

    let mut consumed: HashSet<&str> = HashSet::new();
    for n in &nodes {
        for i in &n.inputs {
            consumed.insert(i.as_str());
        }
    }

    check_schemas(&nodes, &mut diags);
    check_dataflow(&nodes, declared_inputs, &consumed, &mut diags);
    check_faithfulness(&nodes, &mut diags);

    diags.sort_by_key(|d| (d.node.map_or(usize::MAX, |i| i), d.rule_id));
    diags
}

/// True when any diagnostic is [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// The rule catalog as (id, severity, summary) rows, for docs and the
/// `lint` binary's `--rules` listing.
pub fn rule_catalog() -> Vec<(&'static str, Severity, &'static str)> {
    vec![
        ("L000", Severity::Error, "template/node is structurally malformed"),
        ("L001", Severity::Error, "unknown parameter key (silently ignored by the op builder)"),
        ("L002", Severity::Error, "unknown operation name"),
        ("L005", Severity::Error, "unknown key inside an ApplyAggregates spec"),
        ("L101", Severity::Warn, "output never consumed and not the pipeline result"),
        ("L102", Severity::Warn, "declared external input never read"),
        ("L103", Severity::Warn, "Model output never reaches a Train"),
        ("L104", Severity::Info, "variadic op fed a single input"),
        ("L201", Severity::Error, "fitted preprocessing upstream of TrainTestSplit (leakage)"),
        ("L202", Severity::Warn, "Sample applied to only one side of the split"),
        ("L203", Severity::Error, "Predict on the table Train fitted on"),
        ("L204", Severity::Error, "TimeSlice window not positive"),
        ("L205", Severity::Warn, "duplicate aggregate within one ApplyAggregates"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn ids(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule_id).collect()
    }

    // ---------------------------------------------- family 1: schemas

    #[test]
    fn misspelled_param_key_is_an_error_with_suggestion() {
        let t = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
            {"func": "TimeSlice", "input": ["g"], "output": "s", "windows_s": 5.0},
            {"func": "ApplyAggregates", "input": ["s"], "output": "features",
             "aggs": [{"fn": "count"}]}
        ]);
        let diags = lint_template(&t, &["source"]);
        let d = diags.iter().find(|d| d.rule_id == "L001").expect("L001");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.node, Some(1));
        assert!(d.message.contains("windows_s"), "{}", d.message);
        assert!(
            d.suggestion.as_deref().unwrap().contains("window_s"),
            "{:?}",
            d.suggestion
        );
    }

    #[test]
    fn nested_params_object_keys_are_checked_too() {
        let t = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g",
             "params": {"keey": "srcIp"}}
        ]);
        let diags = lint_template(&t, &["source"]);
        assert!(ids(&diags).contains(&"L001"), "{diags:?}");
    }

    #[test]
    fn unknown_func_suggests_nearest_operation() {
        let t = json!([
            {"func": "TimeSlyce", "input": ["source"], "output": "s", "window_s": 5.0}
        ]);
        let diags = lint_template(&t, &["source"]);
        let d = diags.iter().find(|d| d.rule_id == "L002").expect("L002");
        assert!(
            d.suggestion.as_deref().unwrap().contains("TimeSlice"),
            "{:?}",
            d.suggestion
        );
    }

    #[test]
    fn clean_schema_use_produces_no_schema_diags() {
        let t = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
            {"func": "TimeSlice", "input": ["g"], "output": "s", "window_s": 5.0},
            {"func": "ApplyAggregates", "input": ["s"], "output": "features",
             "aggs": [{"fn": "mean", "field": "wire_len"}]}
        ]);
        let diags = lint_template(&t, &["source"]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn agg_spec_unknown_key_flagged() {
        let t = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
            {"func": "ApplyAggregates", "input": ["g"], "output": "features",
             "aggs": [{"fn": "mean", "feild": "wire_len"}]}
        ]);
        let diags = lint_template(&t, &["source"]);
        let d = diags.iter().find(|d| d.rule_id == "L005").expect("L005");
        assert!(d.suggestion.as_deref().unwrap().contains("field"));
    }

    // --------------------------------------------- family 2: dataflow

    #[test]
    fn dead_output_and_unread_input_flagged() {
        let t = json!([
            {"func": "GroupBy", "input": ["source"], "output": "dead", "key": "srcIp"},
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "dstIp"},
            {"func": "TimeSlice", "input": ["g"], "output": "s", "window_s": 5.0},
            {"func": "ApplyAggregates", "input": ["s"], "output": "features",
             "aggs": [{"fn": "count"}]}
        ]);
        let diags = lint_template(&t, &["source", "spare"]);
        let l101 = diags.iter().find(|d| d.rule_id == "L101").expect("L101");
        assert_eq!(l101.node, Some(0));
        assert!(l101.message.contains("dead"));
        let l102 = diags.iter().find(|d| d.rule_id == "L102").expect("L102");
        assert!(l102.message.contains("spare"));
        assert_eq!(l102.node, None);
    }

    #[test]
    fn untrained_model_flagged() {
        let t = json!([
            {"func": "Model", "input": [], "output": "clf", "model_type": "RandomForest"}
        ]);
        let diags = lint_template(&t, &[]);
        assert!(ids(&diags).contains(&"L103"), "{diags:?}");
    }

    #[test]
    fn single_input_variadic_is_info() {
        let t = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
            {"func": "TimeSlice", "input": ["g"], "output": "s", "window_s": 5.0},
            {"func": "ApplyAggregates", "input": ["s"], "output": "t1",
             "aggs": [{"fn": "count"}]},
            {"func": "Concat", "input": ["t1"], "output": "features"}
        ]);
        let diags = lint_template(&t, &["source"]);
        let d = diags.iter().find(|d| d.rule_id == "L104").expect("L104");
        assert_eq!(d.severity, Severity::Info);
    }

    #[test]
    fn consumed_everything_no_dataflow_diags() {
        let t = json!([
            {"func": "Model", "input": [], "output": "clf", "model_type": "RandomForest"},
            {"func": "Train", "input": ["clf", "features"], "output": "trained"}
        ]);
        let diags = lint_template(&t, &["features"]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    // ----------------------------------------- family 3: faithfulness

    #[test]
    fn normalize_before_split_is_leakage_error() {
        let t = json!([
            {"func": "Normalize", "input": ["features"], "output": "normed", "method": "zscore"},
            {"func": "TrainTestSplit", "input": ["normed"], "output": "split", "train_frac": 0.7},
            {"func": "TakeTrain", "input": ["split"], "output": "tr"},
            {"func": "TakeTest", "input": ["split"], "output": "te"},
            {"func": "Model", "input": [], "output": "clf", "model_type": "RandomForest"},
            {"func": "Train", "input": ["clf", "tr"], "output": "trained"},
            {"func": "Predict", "input": ["trained", "te"], "output": "preds"},
            {"func": "Evaluate", "input": ["preds"], "output": "report"}
        ]);
        let diags = lint_template(&t, &["features"]);
        let d = diags.iter().find(|d| d.rule_id == "L201").expect("L201");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("Normalize"));
    }

    #[test]
    fn normalize_after_split_is_clean() {
        let t = json!([
            {"func": "TrainTestSplit", "input": ["features"], "output": "split", "train_frac": 0.7},
            {"func": "TakeTrain", "input": ["split"], "output": "tr"},
            {"func": "TakeTest", "input": ["split"], "output": "te"},
            {"func": "Normalize", "input": ["tr"], "output": "trn", "method": "zscore"},
            {"func": "Normalize", "input": ["te"], "output": "ten", "method": "zscore"},
            {"func": "Model", "input": [], "output": "clf", "model_type": "RandomForest"},
            {"func": "Train", "input": ["clf", "trn"], "output": "trained"},
            {"func": "Predict", "input": ["trained", "ten"], "output": "preds"},
            {"func": "Evaluate", "input": ["preds"], "output": "report"}
        ]);
        let diags = lint_template(&t, &["features"]);
        assert!(!ids(&diags).contains(&"L201"), "{diags:?}");
    }

    #[test]
    fn asymmetric_sample_after_split_warned() {
        let t = json!([
            {"func": "TrainTestSplit", "input": ["features"], "output": "split", "train_frac": 0.7},
            {"func": "TakeTrain", "input": ["split"], "output": "tr"},
            {"func": "TakeTest", "input": ["split"], "output": "te"},
            {"func": "Sample", "input": ["tr"], "output": "trs", "frac": 0.5},
            {"func": "Model", "input": [], "output": "clf", "model_type": "RandomForest"},
            {"func": "Train", "input": ["clf", "trs"], "output": "trained"},
            {"func": "Predict", "input": ["trained", "te"], "output": "preds"},
            {"func": "Evaluate", "input": ["preds"], "output": "report"}
        ]);
        let diags = lint_template(&t, &["features"]);
        let d = diags.iter().find(|d| d.rule_id == "L202").expect("L202");
        assert_eq!(d.severity, Severity::Warn);
    }

    #[test]
    fn symmetric_sampling_is_clean() {
        let t = json!([
            {"func": "TrainTestSplit", "input": ["features"], "output": "split", "train_frac": 0.7},
            {"func": "TakeTrain", "input": ["split"], "output": "tr"},
            {"func": "TakeTest", "input": ["split"], "output": "te"},
            {"func": "Sample", "input": ["tr"], "output": "trs", "frac": 0.5, "seed": 1},
            {"func": "Sample", "input": ["te"], "output": "tes", "frac": 0.5, "seed": 2},
            {"func": "Model", "input": [], "output": "clf", "model_type": "RandomForest"},
            {"func": "Train", "input": ["clf", "trs"], "output": "trained"},
            {"func": "Predict", "input": ["trained", "tes"], "output": "preds"},
            {"func": "Evaluate", "input": ["preds"], "output": "report"}
        ]);
        let diags = lint_template(&t, &["features"]);
        assert!(!ids(&diags).contains(&"L202"), "{diags:?}");
    }

    #[test]
    fn predict_on_training_table_is_error() {
        let t = json!([
            {"func": "Model", "input": [], "output": "clf", "model_type": "RandomForest"},
            {"func": "Train", "input": ["clf", "features"], "output": "trained"},
            {"func": "Predict", "input": ["trained", "features"], "output": "preds"},
            {"func": "Evaluate", "input": ["preds"], "output": "report"}
        ]);
        let diags = lint_template(&t, &["features"]);
        let d = diags.iter().find(|d| d.rule_id == "L203").expect("L203");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("training accuracy"));
    }

    #[test]
    fn predict_on_heldout_table_is_clean() {
        let t = json!([
            {"func": "Model", "input": [], "output": "clf", "model_type": "RandomForest"},
            {"func": "Train", "input": ["clf", "train_t"], "output": "trained"},
            {"func": "Predict", "input": ["trained", "test_t"], "output": "preds"},
            {"func": "Evaluate", "input": ["preds"], "output": "report"}
        ]);
        let diags = lint_template(&t, &["train_t", "test_t"]);
        assert!(!ids(&diags).contains(&"L203"), "{diags:?}");
    }

    #[test]
    fn nonpositive_window_is_error() {
        let t = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
            {"func": "TimeSlice", "input": ["g"], "output": "s", "window_s": -2.0},
            {"func": "ApplyAggregates", "input": ["s"], "output": "features",
             "aggs": [{"fn": "count"}]}
        ]);
        let diags = lint_template(&t, &["source"]);
        assert!(ids(&diags).contains(&"L204"), "{diags:?}");
    }

    #[test]
    fn duplicate_aggregate_warned_distinct_fields_not() {
        let dup = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
            {"func": "ApplyAggregates", "input": ["g"], "output": "features",
             "aggs": [{"fn": "mean", "field": "wire_len"},
                      {"fn": "mean", "field": "wire_len"}]}
        ]);
        let diags = lint_template(&dup, &["source"]);
        assert!(ids(&diags).contains(&"L205"), "{diags:?}");
        let ok = json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
            {"func": "ApplyAggregates", "input": ["g"], "output": "features",
             "aggs": [{"fn": "mean", "field": "wire_len"},
                      {"fn": "mean", "field": "ttl"}]}
        ]);
        assert!(lint_template(&ok, &["source"]).is_empty());
    }

    // ------------------------------------------------------- plumbing

    #[test]
    fn non_array_template_is_l000() {
        let diags = lint_template(&json!({"func": "GroupBy"}), &[]);
        assert_eq!(ids(&diags), vec!["L000"]);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("windows_s", "window_s"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("feild", "field"), 1, "transposition is one edit");
    }

    #[test]
    fn nearest_respects_budget() {
        assert_eq!(nearest("TimeSlyce", &OPERATION_NAMES), Some("TimeSlice"));
        assert_eq!(nearest("windows_s", &["window_s"]), Some("window_s"));
        assert_eq!(nearest("zzzzzz", &["window_s"]), None);
    }

    #[test]
    fn diagnostic_display_is_structured() {
        let t = json!([
            {"func": "TimeSlice", "input": ["g"], "output": "s", "windows_s": 5.0}
        ]);
        let diags = lint_template(&t, &["g"]);
        let line = diags
            .iter()
            .find(|d| d.rule_id == "L001")
            .unwrap()
            .to_string();
        assert!(line.starts_with("error[L001] node 0 (TimeSlice):"), "{line}");
        assert!(line.contains("did you mean"), "{line}");
    }

    #[test]
    fn rule_catalog_ids_are_unique_and_sorted() {
        let cat = rule_catalog();
        let ids: Vec<_> = cat.iter().map(|(id, _, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids.len(), sorted.len());
    }

    // DESIGN.md §4c documents every L-rule with its severity; the prose
    // there is richer than the catalog summaries, so this pins the ID +
    // severity columns (the stable contract) rather than the full row.
    // (The severity cell may carry variants like "Error/Warn" for rules
    // whose severity is parameter-dependent — the base severity must
    // still appear.)
    #[test]
    fn design_table_tracks_lint_catalog() {
        let design = include_str!("../../../DESIGN.md");
        for (id, sev, _) in rule_catalog() {
            let row = design
                .lines()
                .find(|l| l.starts_with(&format!("| {id} |")))
                .unwrap_or_else(|| panic!("DESIGN.md §4c has no table row for {id}"));
            let sev_cell = row.split('|').nth(2).unwrap_or("");
            assert!(
                sev_cell.contains(&format!("{sev:?}")),
                "DESIGN.md row for {id} lists severity {sev_cell:?}, catalog says {sev:?}"
            );
        }
    }
}
