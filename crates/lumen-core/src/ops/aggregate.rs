//! Aggregate and incremental-statistics operations.
//!
//! `ApplyAggregates` emits one row per group (flow-style features);
//! `RollingAggregates`, `InterArrival`, `DampedStats`, and `DampedCov` emit
//! one row per packet (packet-style features with group context). The damped
//! operations implement Kitsune's exponentially-decayed incremental
//! statistics over multiple λ windows.

use std::sync::Arc;

use lumen_ml::matrix::Matrix;
use lumen_util::entropy::entropy_of_counts;
use serde_json::Value;

use crate::data::{Data, DataKind, Grouped};
use crate::ops::extract::{packet_field, PACKET_FIELDS};
use crate::ops::{
    bad_param, param_f64_list_or, param_str_list, param_str_or, param_usize_or, Operation,
};
use crate::table::Table;
use crate::CoreResult;

/// Kitsune's default decay constants.
pub const KITSUNE_LAMBDAS: [f64; 5] = [5.0, 3.0, 1.0, 0.1, 0.01];

// ---- accepted parameter keys (the linter's L001 schemas) -------------------

pub(crate) const APPLY_AGGREGATES_PARAMS: &[&str] = &["aggs"];
pub(crate) const ROLLING_AGGREGATES_PARAMS: &[&str] = &["field", "fns", "window_pkts"];
pub(crate) const INTER_ARRIVAL_PARAMS: &[&str] = &[];
pub(crate) const DAMPED_STATS_PARAMS: &[&str] = &["field", "lambdas", "prefix"];
pub(crate) const DAMPED_COV_PARAMS: &[&str] = &["lambdas", "prefix"];

fn group_truth(g: &Grouped, group: &[u32]) -> (u8, u32) {
    let mut label = 0u8;
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &i in group {
        let i = i as usize;
        if g.parent.labels[i] == 1 {
            label = 1;
            *counts.entry(g.parent.tags[i]).or_insert(0) += 1;
        }
    }
    let tag = counts
        .into_iter()
        .max_by_key(|&(t, c)| (c, t))
        .map_or(0, |(t, _)| t);
    (label, tag)
}

// ---- ApplyAggregates ---------------------------------------------------------

/// One aggregate specification: a function over a per-packet field.
#[derive(Debug, Clone)]
struct AggSpec {
    func: String,
    field: Option<String>,
}

impl AggSpec {
    fn column_name(&self) -> String {
        match &self.field {
            Some(f) => format!("{}_{}", self.func, f),
            None => self.func.clone(),
        }
    }
}

const AGG_FNS: [&str; 11] = [
    "mean",
    "std",
    "min",
    "max",
    "median",
    "sum",
    "count",
    "rate",
    "bandwidth",
    "entropy",
    "distinct",
];

/// `ApplyAggregates`: one row per group, one column per aggregate.
///
/// `count`, `rate` (packets/second), and `bandwidth` (wire bytes/second)
/// need no field; the rest aggregate a packet-field's values within the
/// group. `entropy`/`distinct` treat values as categorical.
pub struct ApplyAggregates {
    aggs: Vec<AggSpec>,
}

impl ApplyAggregates {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let arr = params
            .get("aggs")
            .and_then(Value::as_array)
            .ok_or_else(|| bad_param("ApplyAggregates", "missing list parameter \"aggs\""))?;
        let mut aggs = Vec::new();
        for a in arr {
            let func = a
                .get("fn")
                .and_then(Value::as_str)
                .ok_or_else(|| bad_param("ApplyAggregates", "each agg needs \"fn\""))?
                .to_string();
            if !AGG_FNS.contains(&func.as_str()) {
                return Err(bad_param(
                    "ApplyAggregates",
                    format!("unknown aggregate {func:?}"),
                ));
            }
            let field = a.get("field").and_then(Value::as_str).map(str::to_string);
            let needs_field = !matches!(func.as_str(), "count" | "rate" | "bandwidth");
            match (&field, needs_field) {
                (None, true) => {
                    return Err(bad_param(
                        "ApplyAggregates",
                        format!("aggregate {func:?} needs a \"field\""),
                    ))
                }
                (Some(f), _) if !PACKET_FIELDS.contains(&f.as_str()) => {
                    return Err(bad_param("ApplyAggregates", format!("unknown field {f:?}")))
                }
                _ => {}
            }
            aggs.push(AggSpec { func, field });
        }
        if aggs.is_empty() {
            return Err(bad_param("ApplyAggregates", "aggs must be non-empty"));
        }
        Ok(Box::new(ApplyAggregates { aggs }))
    }

    fn compute(&self, g: &Grouped, group: &[u32], spec: &AggSpec) -> f64 {
        let metas = &g.parent.metas;
        let duration = if group.len() >= 2 {
            (metas[*group.last().unwrap() as usize].ts_us - metas[group[0] as usize].ts_us) as f64
                / 1e6
        } else {
            0.0
        };
        match spec.func.as_str() {
            "count" => group.len() as f64,
            "rate" => {
                if duration <= 0.0 {
                    group.len() as f64
                } else {
                    group.len() as f64 / duration
                }
            }
            "bandwidth" => {
                let bytes: f64 = group
                    .iter()
                    .map(|&i| f64::from(metas[i as usize].wire_len))
                    .sum();
                if duration <= 0.0 {
                    bytes
                } else {
                    bytes / duration
                }
            }
            func => {
                let field = spec.field.as_deref().expect("validated");
                let values: Vec<f64> = group
                    .iter()
                    .map(|&i| packet_field(&metas[i as usize], field))
                    .collect();
                match func {
                    "mean" => lumen_util::Summary::of(&values).mean,
                    "std" => lumen_util::Summary::of(&values).std_dev,
                    "min" => lumen_util::Summary::of(&values).min,
                    "max" => lumen_util::Summary::of(&values).max,
                    "median" => lumen_util::Summary::of(&values).median,
                    "sum" => values.iter().sum(),
                    "entropy" => {
                        let mut counts: std::collections::HashMap<u64, u64> =
                            std::collections::HashMap::new();
                        for v in &values {
                            *counts.entry(v.to_bits()).or_insert(0) += 1;
                        }
                        entropy_of_counts(counts.values().copied(), values.len() as u64)
                    }
                    "distinct" => {
                        let mut set: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
                        set.sort_unstable();
                        set.dedup();
                        set.len() as f64
                    }
                    _ => unreachable!("validated"),
                }
            }
        }
    }
}

impl Operation for ApplyAggregates {
    fn name(&self) -> &'static str {
        "ApplyAggregates"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Grouped]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Grouped(g) = inputs[0] else {
            unreachable!("type-checked")
        };
        let mut x = Matrix::zeros(g.groups.len(), self.aggs.len());
        let mut labels = Vec::with_capacity(g.groups.len());
        let mut tags = Vec::with_capacity(g.groups.len());
        for (r, group) in g.groups.iter().enumerate() {
            for (c, spec) in self.aggs.iter().enumerate() {
                x.set(r, c, self.compute(g, group, spec));
            }
            let (l, t) = group_truth(g, group);
            labels.push(l);
            tags.push(t);
        }
        let names = self.aggs.iter().map(AggSpec::column_name).collect();
        Ok(Data::Table(Arc::new(Table::new(names, x, labels, tags)?)))
    }
}

// ---- RollingAggregates ---------------------------------------------------------

/// `RollingAggregates`: one row per packet; each value aggregates the
/// trailing `window_pkts` packets of the packet's group (inclusive).
pub struct RollingAggregates {
    field: String,
    fns: Vec<String>,
    window: usize,
}

impl RollingAggregates {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let field = param_str_or(params, "field", "wire_len");
        if !PACKET_FIELDS.contains(&field.as_str()) {
            return Err(bad_param(
                "RollingAggregates",
                format!("unknown field {field:?}"),
            ));
        }
        let fns = param_str_list("RollingAggregates", params, "fns")?;
        for f in &fns {
            if ![
                "mean", "std", "min", "max", "sum", "count", "entropy", "distinct",
            ]
            .contains(&f.as_str())
            {
                return Err(bad_param(
                    "RollingAggregates",
                    format!("unknown rolling fn {f:?}"),
                ));
            }
        }
        let window = param_usize_or(params, "window_pkts", 32);
        if window == 0 {
            return Err(bad_param(
                "RollingAggregates",
                "window_pkts must be positive",
            ));
        }
        Ok(Box::new(RollingAggregates { field, fns, window }))
    }
}

impl Operation for RollingAggregates {
    fn name(&self) -> &'static str {
        "RollingAggregates"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Grouped]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Grouped(g) = inputs[0] else {
            unreachable!("type-checked")
        };
        let n = g.parent.len();
        let mut x = Matrix::zeros(n, self.fns.len());
        for group in &g.groups {
            let values: Vec<f64> = group
                .iter()
                .map(|&i| packet_field(&g.parent.metas[i as usize], &self.field))
                .collect();
            for (pos, &pkt) in group.iter().enumerate() {
                let lo = pos.saturating_sub(self.window - 1);
                let win = &values[lo..=pos];
                for (c, f) in self.fns.iter().enumerate() {
                    let v = match f.as_str() {
                        "mean" => lumen_util::Summary::of(win).mean,
                        "std" => lumen_util::Summary::of(win).std_dev,
                        "min" => lumen_util::Summary::of(win).min,
                        "max" => lumen_util::Summary::of(win).max,
                        "sum" => win.iter().sum(),
                        "count" => win.len() as f64,
                        "entropy" => {
                            let mut counts: std::collections::HashMap<u64, u64> =
                                std::collections::HashMap::new();
                            for v in win {
                                *counts.entry(v.to_bits()).or_insert(0) += 1;
                            }
                            entropy_of_counts(counts.values().copied(), win.len() as u64)
                        }
                        _ => {
                            let mut set: Vec<u64> = win.iter().map(|v| v.to_bits()).collect();
                            set.sort_unstable();
                            set.dedup();
                            set.len() as f64
                        }
                    };
                    x.set(pkt as usize, c, v);
                }
            }
        }
        let names = self
            .fns
            .iter()
            .map(|f| format!("roll_{}_{}_{}", f, self.field, self.window))
            .collect();
        Ok(Data::Table(Arc::new(Table::new(
            names,
            x,
            g.parent.labels.clone(),
            g.parent.tags.clone(),
        )?)))
    }
}

// ---- InterArrival ---------------------------------------------------------------

/// `InterArrival`: one row per packet, the gap (seconds) since the previous
/// packet of the same group (0 for the first).
pub struct InterArrival;

impl InterArrival {
    pub fn from_params(_params: &Value) -> CoreResult<Box<dyn Operation>> {
        Ok(Box::new(InterArrival))
    }
}

impl Operation for InterArrival {
    fn name(&self) -> &'static str {
        "InterArrival"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Grouped]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Grouped(g) = inputs[0] else {
            unreachable!("type-checked")
        };
        let n = g.parent.len();
        let mut x = Matrix::zeros(n, 1);
        for group in &g.groups {
            let mut prev: Option<u64> = None;
            for &i in group {
                let ts = g.parent.metas[i as usize].ts_us;
                let iat = prev.map_or(0.0, |p| ts.saturating_sub(p) as f64 / 1e6);
                x.set(i as usize, 0, iat);
                prev = Some(ts);
            }
        }
        Ok(Data::Table(Arc::new(Table::new(
            vec!["iat".into()],
            x,
            g.parent.labels.clone(),
            g.parent.tags.clone(),
        )?)))
    }
}

// ---- DampedStats ------------------------------------------------------------------

/// One exponentially-decayed incremental stream (Kitsune's damped window).
#[derive(Debug, Clone, Copy, Default)]
struct DampedStream {
    w: f64,
    ls: f64,
    ss: f64,
    last_us: Option<u64>,
}

impl DampedStream {
    fn update(&mut self, lambda: f64, ts_us: u64, x: f64) {
        if let Some(last) = self.last_us {
            let dt = ts_us.saturating_sub(last) as f64 / 1e6;
            let decay = (2.0f64).powf(-lambda * dt);
            self.w *= decay;
            self.ls *= decay;
            self.ss *= decay;
        }
        self.w += 1.0;
        self.ls += x;
        self.ss += x * x;
        self.last_us = Some(ts_us);
    }

    fn mean(&self) -> f64 {
        if self.w <= 0.0 {
            0.0
        } else {
            self.ls / self.w
        }
    }

    fn std(&self) -> f64 {
        if self.w <= 0.0 {
            return 0.0;
        }
        let m = self.mean();
        (self.ss / self.w - m * m).abs().sqrt()
    }
}

/// `DampedStats`: Kitsune's per-group incremental 1D statistics. For each
/// packet, emits `(weight, mean, std)` of the damped stream of `field`
/// values in that packet's group, for every λ.
pub struct DampedStats {
    field: String,
    lambdas: Vec<f64>,
    prefix: String,
}

impl DampedStats {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let field = param_str_or(params, "field", "wire_len");
        // "iat" is special: the value is the gap to the group's previous
        // packet (Kitsune's jitter streams).
        if field != "iat" && !PACKET_FIELDS.contains(&field.as_str()) {
            return Err(bad_param("DampedStats", format!("unknown field {field:?}")));
        }
        let lambdas = param_f64_list_or(params, "lambdas", &KITSUNE_LAMBDAS);
        if lambdas.is_empty() || lambdas.iter().any(|&l| l <= 0.0) {
            return Err(bad_param("DampedStats", "lambdas must be positive"));
        }
        Ok(Box::new(DampedStats {
            field,
            lambdas,
            prefix: param_str_or(params, "prefix", "d"),
        }))
    }
}

impl Operation for DampedStats {
    fn name(&self) -> &'static str {
        "DampedStats"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Grouped]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Grouped(g) = inputs[0] else {
            unreachable!("type-checked")
        };
        let n = g.parent.len();
        let width = self.lambdas.len() * 3;
        let mut x = Matrix::zeros(n, width);
        for group in &g.groups {
            let mut streams = vec![DampedStream::default(); self.lambdas.len()];
            let mut prev_ts: Option<u64> = None;
            for &i in group {
                let meta = &g.parent.metas[i as usize];
                let v = if self.field == "iat" {
                    let iat = prev_ts.map_or(0.0, |p| meta.ts_us.saturating_sub(p) as f64 / 1e6);
                    prev_ts = Some(meta.ts_us);
                    iat
                } else {
                    packet_field(meta, &self.field)
                };
                for (li, (&lambda, stream)) in
                    self.lambdas.iter().zip(streams.iter_mut()).enumerate()
                {
                    stream.update(lambda, meta.ts_us, v);
                    let base = li * 3;
                    x.set(i as usize, base, stream.w);
                    x.set(i as usize, base + 1, stream.mean());
                    x.set(i as usize, base + 2, stream.std());
                }
            }
        }
        let mut names = Vec::with_capacity(width);
        for &l in &self.lambdas {
            for stat in ["w", "mu", "sigma"] {
                names.push(format!("{}_{}_l{}_{}", self.prefix, self.field, l, stat));
            }
        }
        Ok(Data::Table(Arc::new(Table::new(
            names,
            x,
            g.parent.labels.clone(),
            g.parent.tags.clone(),
        )?)))
    }
}

// ---- DampedCov -----------------------------------------------------------------

/// `DampedCov`: Kitsune's 2D incremental statistics between the two
/// directions of a conversation. Requires a direction-symmetric grouping
/// (`pair` or `socket`-canonical); per packet emits `(magnitude, radius,
/// cov, pcc)` per λ.
pub struct DampedCov {
    lambdas: Vec<f64>,
    prefix: String,
}

impl DampedCov {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let lambdas = param_f64_list_or(params, "lambdas", &KITSUNE_LAMBDAS[..3]);
        if lambdas.is_empty() || lambdas.iter().any(|&l| l <= 0.0) {
            return Err(bad_param("DampedCov", "lambdas must be positive"));
        }
        Ok(Box::new(DampedCov {
            lambdas,
            prefix: param_str_or(params, "prefix", "cov"),
        }))
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DampedPair {
    a: DampedStream,
    b: DampedStream,
    /// Damped sum of residual products.
    sr: f64,
    w: f64,
    last_us: Option<u64>,
}

impl DampedPair {
    fn update(&mut self, lambda: f64, ts_us: u64, x: f64, is_a: bool) {
        if let Some(last) = self.last_us {
            let dt = ts_us.saturating_sub(last) as f64 / 1e6;
            let decay = (2.0f64).powf(-lambda * dt);
            self.sr *= decay;
            self.w *= decay;
        }
        self.last_us = Some(ts_us);
        if is_a {
            self.a.update(lambda, ts_us, x);
        } else {
            self.b.update(lambda, ts_us, x);
        }
        // Residual product of the updated value against the other stream.
        let (ra, rb) = (x - self.a.mean(), x - self.b.mean());
        self.sr += if is_a { ra } else { rb } * if is_a { rb } else { ra };
        self.w += 1.0;
    }

    fn stats(&self) -> (f64, f64, f64, f64) {
        let (ma, mb) = (self.a.mean(), self.b.mean());
        let (sa, sb) = (self.a.std(), self.b.std());
        let magnitude = (ma * ma + mb * mb).sqrt();
        let radius = (sa.powi(4) + sb.powi(4)).sqrt();
        let cov = if self.w > 0.0 { self.sr / self.w } else { 0.0 };
        let denom = sa * sb;
        let pcc = if denom > 1e-12 { cov / denom } else { 0.0 };
        (magnitude, radius, cov, pcc)
    }
}

impl Operation for DampedCov {
    fn name(&self) -> &'static str {
        "DampedCov"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Grouped]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Grouped(g) = inputs[0] else {
            unreachable!("type-checked")
        };
        let n = g.parent.len();
        let width = self.lambdas.len() * 4;
        let mut x = Matrix::zeros(n, width);
        for group in &g.groups {
            let mut pairs = vec![DampedPair::default(); self.lambdas.len()];
            for &i in group {
                let meta = &g.parent.metas[i as usize];
                let v = f64::from(meta.wire_len);
                // Direction within the conversation: lower address first.
                let is_a = meta
                    .ipv4
                    .as_ref()
                    .is_none_or(|ip| u32::from(ip.src) <= u32::from(ip.dst));
                for (li, (&lambda, pair)) in self.lambdas.iter().zip(pairs.iter_mut()).enumerate() {
                    pair.update(lambda, meta.ts_us, v, is_a);
                    let (mag, rad, cov, pcc) = pair.stats();
                    let base = li * 4;
                    x.set(i as usize, base, mag);
                    x.set(i as usize, base + 1, rad);
                    x.set(i as usize, base + 2, cov);
                    x.set(i as usize, base + 3, pcc);
                }
            }
        }
        let mut names = Vec::with_capacity(width);
        for &l in &self.lambdas {
            for stat in ["mag", "rad", "cov", "pcc"] {
                names.push(format!("{}_l{}_{}", self.prefix, l, stat));
            }
        }
        Ok(Data::Table(Arc::new(Table::new(
            names,
            x,
            g.parent.labels.clone(),
            g.parent.tags.clone(),
        )?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::PacketData;
    use crate::ops::grouping::GroupBy;
    use lumen_net::builder::{udp_packet, UdpParams};
    use lumen_net::{LinkType, MacAddr, PacketMeta};
    use serde_json::json;
    use std::net::Ipv4Addr;

    fn meta(ts: u64, src: u8, len: usize, sport: u16) -> PacketMeta {
        let pkt = udp_packet(UdpParams {
            src_mac: MacAddr::from_id(u64::from(src)),
            dst_mac: MacAddr::from_id(9),
            src_ip: Ipv4Addr::new(10, 0, 0, src),
            dst_ip: Ipv4Addr::new(10, 0, 0, 100),
            src_port: sport,
            dst_port: 53,
            ttl: 64,
            payload: &vec![0u8; len],
        });
        PacketMeta::parse(LinkType::Ethernet, ts, &pkt).unwrap()
    }

    fn grouped(metas: Vec<PacketMeta>, labels: Vec<u8>) -> Data {
        let tags = labels.iter().map(|&l| u32::from(l) * 7).collect();
        let src = Data::Packets(Arc::new(PacketData {
            link: LinkType::Ethernet,
            metas,
            labels,
            tags,
        }));
        GroupBy::from_params(&json!({"key": "srcIp"}))
            .unwrap()
            .execute(&[&src])
            .unwrap()
    }

    #[test]
    fn aggregates_per_group() {
        // Host .1 sends 3 packets (lens 42+0, 42+10, 42+20 wire), host .2 one.
        let g = grouped(
            vec![
                meta(0, 1, 0, 1000),
                meta(1_000_000, 1, 10, 1001),
                meta(2_000_000, 1, 20, 1002),
                meta(0, 2, 5, 2000),
            ],
            vec![0, 0, 1, 0],
        );
        let op = ApplyAggregates::from_params(&json!({"aggs": [
            {"fn": "count"},
            {"fn": "mean", "field": "wire_len"},
            {"fn": "rate"},
            {"fn": "entropy", "field": "src_port"},
            {"fn": "distinct", "field": "src_port"}
        ]}))
        .unwrap();
        let Data::Table(t) = op.execute(&[&g]).unwrap() else {
            panic!()
        };
        assert_eq!(t.rows(), 2);
        // Group 0: host .1, 3 packets over 2 seconds -> rate 1.5.
        assert_eq!(t.x.get(0, 0), 3.0);
        assert!((t.x.get(0, 2) - 1.5).abs() < 1e-9);
        // 3 distinct source ports -> entropy log2(3).
        assert!((t.x.get(0, 3) - 3f64.log2()).abs() < 1e-9);
        assert_eq!(t.x.get(0, 4), 3.0);
        // Group 0 contains a malicious packet -> label 1, tag 7.
        assert_eq!(t.labels, vec![1, 0]);
        assert_eq!(t.tags, vec![7, 0]);
    }

    #[test]
    fn rate_of_single_packet_group_is_count() {
        let g = grouped(vec![meta(0, 1, 0, 1000)], vec![0]);
        let op = ApplyAggregates::from_params(&json!({"aggs": [{"fn": "rate"}]})).unwrap();
        let Data::Table(t) = op.execute(&[&g]).unwrap() else {
            panic!()
        };
        assert_eq!(t.x.get(0, 0), 1.0);
    }

    #[test]
    fn interarrival_within_group() {
        let g = grouped(
            vec![
                meta(0, 1, 0, 1000),
                meta(500_000, 2, 0, 1000),
                meta(1_000_000, 1, 0, 1000),
            ],
            vec![0, 0, 0],
        );
        let op = InterArrival::from_params(&json!({})).unwrap();
        let Data::Table(t) = op.execute(&[&g]).unwrap() else {
            panic!()
        };
        // Packet 2 is host .1's second packet, 1 s after its first.
        assert_eq!(t.x.get(0, 0), 0.0);
        assert_eq!(t.x.get(1, 0), 0.0);
        assert!((t.x.get(2, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rolling_mean_over_window() {
        let g = grouped(
            vec![
                meta(0, 1, 0, 1000),  // wire 42
                meta(1, 1, 10, 1000), // wire 52
                meta(2, 1, 20, 1000), // wire 62
            ],
            vec![0, 0, 0],
        );
        let op = RollingAggregates::from_params(
            &json!({"field": "wire_len", "fns": ["mean", "count"], "window_pkts": 2}),
        )
        .unwrap();
        let Data::Table(t) = op.execute(&[&g]).unwrap() else {
            panic!()
        };
        assert_eq!(t.x.get(0, 0), 42.0);
        assert_eq!(t.x.get(1, 0), 47.0);
        assert_eq!(t.x.get(2, 0), 57.0);
        assert_eq!(t.x.get(2, 1), 2.0);
    }

    #[test]
    fn damped_stats_decay_toward_recent_values() {
        // Same group: early packets large, late packets (after a long gap) small.
        let mut metas = Vec::new();
        for i in 0..5 {
            metas.push(meta(i * 100_000, 1, 1000, 1000));
        }
        for i in 0..5 {
            metas.push(meta(60_000_000 + i * 100_000, 1, 0, 1000));
        }
        let labels = vec![0; metas.len()];
        let g = grouped(metas, labels);
        let op = DampedStats::from_params(
            &json!({"field": "wire_len", "lambdas": [1.0], "prefix": "t"}),
        )
        .unwrap();
        let Data::Table(t) = op.execute(&[&g]).unwrap() else {
            panic!()
        };
        // After the gap, the damped mean should be near the small size (42),
        // having forgotten the 1042-byte packets.
        let final_mean = t.x.get(9, 1);
        assert!(final_mean < 100.0, "damped mean {final_mean}");
        // Weight column is in (0, 5].
        let w = t.x.get(9, 0);
        assert!(w > 0.0 && w <= 5.01);
    }

    #[test]
    fn damped_stats_weight_grows_without_gap() {
        let metas: Vec<PacketMeta> = (0..4).map(|i| meta(i * 1000, 1, 10, 1000)).collect();
        let g = grouped(metas, vec![0; 4]);
        let op =
            DampedStats::from_params(&json!({"field": "wire_len", "lambdas": [0.01]})).unwrap();
        let Data::Table(t) = op.execute(&[&g]).unwrap() else {
            panic!()
        };
        // Nearly no decay at λ=0.01 over milliseconds: w ≈ packet count.
        assert!((t.x.get(3, 0) - 4.0).abs() < 0.01);
    }

    #[test]
    fn damped_iat_tracks_inter_arrival_jitter() {
        // Regular 100 ms spacing: the damped IAT mean converges to 0.1 and
        // sigma stays near zero.
        let metas: Vec<PacketMeta> = (0..20).map(|i| meta(i * 100_000, 1, 10, 1000)).collect();
        let g = grouped(metas, vec![0; 20]);
        let op =
            DampedStats::from_params(&json!({"field": "iat", "lambdas": [0.01], "prefix": "j"}))
                .unwrap();
        let Data::Table(t) = op.execute(&[&g]).unwrap() else {
            panic!()
        };
        let mean = t.x.get(19, 1);
        let sigma = t.x.get(19, 2);
        assert!((mean - 0.095).abs() < 0.01, "mean {mean}"); // first IAT is 0
        assert!(sigma < 0.05, "sigma {sigma}");
        assert!(t.names[0].starts_with("j_iat"));
    }

    #[test]
    fn damped_cov_emits_per_lambda_columns() {
        let g = grouped(
            vec![meta(0, 1, 10, 1000), meta(1000, 2, 10, 1000)],
            vec![0, 0],
        );
        let op = DampedCov::from_params(&json!({"lambdas": [1.0, 0.1]})).unwrap();
        let Data::Table(t) = op.execute(&[&g]).unwrap() else {
            panic!()
        };
        assert_eq!(t.cols(), 8);
        assert!(t.x.get(0, 0) > 0.0); // magnitude after first packet
    }

    #[test]
    fn bad_params_rejected() {
        assert!(ApplyAggregates::from_params(&json!({"aggs": [{"fn": "mean"}]})).is_err());
        assert!(
            ApplyAggregates::from_params(&json!({"aggs": [{"fn": "zzz", "field": "ttl"}]}))
                .is_err()
        );
        assert!(DampedStats::from_params(&json!({"lambdas": [-1.0]})).is_err());
        assert!(
            RollingAggregates::from_params(&json!({"fns": ["mean"], "window_pkts": 0})).is_err()
        );
    }
}
