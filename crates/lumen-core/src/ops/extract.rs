//! Extraction and encoding operations: per-packet fields, nPrint bit
//! encodings, PDML-style summaries, payload bytes, and connection/flow
//! feature catalogs.

use std::sync::Arc;

use lumen_ml::matrix::Matrix;
use lumen_net::{PacketMeta, TransportMeta};
use lumen_util::entropy::byte_entropy;
use serde_json::Value;

use crate::data::{Data, DataKind, PacketData};
use crate::ops::{bad_param, param_bool_or, param_str_list, param_usize_or, Operation};
use crate::table::Table;
use crate::CoreResult;

// ---- accepted parameter keys (the linter's L001 schemas) -------------------

pub(crate) const FIELD_EXTRACT_PARAMS: &[&str] = &["fields"];
pub(crate) const NPRINT_ENCODE_PARAMS: &[&str] = &["sections", "payload_bytes"];
pub(crate) const PDML_ENCODE_PARAMS: &[&str] = &[];
pub(crate) const PAYLOAD_BYTES_PARAMS: &[&str] = &["n"];
pub(crate) const CONN_EXTRACT_PARAMS: &[&str] = &["fields"];
pub(crate) const UNI_EXTRACT_PARAMS: &[&str] = &["fields"];
pub(crate) const FIRST_N_STATS_PARAMS: &[&str] = &["n", "include_raw"];

// ---- per-packet field catalog ----------------------------------------------

/// Every per-packet field `FieldExtract` understands.
pub const PACKET_FIELDS: [&str; 30] = [
    "ts",
    "wire_len",
    "ip_len",
    "ttl",
    "dscp",
    "proto",
    "ident",
    "dont_frag",
    "is_tcp",
    "is_udp",
    "is_icmp",
    "is_arp",
    "src_port",
    "dst_port",
    "tcp_flags_bits",
    "tcp_syn",
    "tcp_ack",
    "tcp_fin",
    "tcp_rst",
    "tcp_psh",
    "tcp_window",
    "tcp_seq",
    "payload_len",
    "payload_entropy",
    "src_ip_u32",
    "dst_ip_u32",
    "dot11_type",
    "dot11_subtype",
    "dot11_duration",
    "dot11_seq",
];

/// Extracts one named numeric field from a packet summary.
pub fn packet_field(meta: &PacketMeta, field: &str) -> f64 {
    match field {
        "ts" => meta.ts_us as f64 / 1e6,
        "wire_len" => f64::from(meta.wire_len),
        "ip_len" => meta.ipv4.as_ref().map_or(0.0, |ip| f64::from(ip.total_len)),
        "ttl" => meta.ipv4.as_ref().map_or(0.0, |ip| f64::from(ip.ttl)),
        "dscp" => meta.ipv4.as_ref().map_or(0.0, |ip| f64::from(ip.dscp)),
        "proto" => meta.ipv4.as_ref().map_or(0.0, |ip| f64::from(ip.protocol)),
        "ident" => meta.ipv4.as_ref().map_or(0.0, |ip| f64::from(ip.ident)),
        "dont_frag" => meta
            .ipv4
            .as_ref()
            .map_or(0.0, |ip| f64::from(u8::from(ip.dont_frag))),
        "is_tcp" => f64::from(u8::from(meta.is_tcp())),
        "is_udp" => f64::from(u8::from(meta.is_udp())),
        "is_icmp" => f64::from(u8::from(meta.is_icmp())),
        "is_arp" => f64::from(u8::from(meta.arp.is_some())),
        "src_port" => meta.transport.src_port().map_or(0.0, f64::from),
        "dst_port" => meta.transport.dst_port().map_or(0.0, f64::from),
        "tcp_flags_bits" => meta.transport.tcp_flags().map_or(0.0, |f| f64::from(f.0)),
        "tcp_syn" => tcp_flag(meta, |f| f.syn()),
        "tcp_ack" => tcp_flag(meta, |f| f.ack()),
        "tcp_fin" => tcp_flag(meta, |f| f.fin()),
        "tcp_rst" => tcp_flag(meta, |f| f.rst()),
        "tcp_psh" => tcp_flag(meta, |f| f.psh()),
        "tcp_window" => match &meta.transport {
            TransportMeta::Tcp { window, .. } => f64::from(*window),
            _ => 0.0,
        },
        "tcp_seq" => match &meta.transport {
            TransportMeta::Tcp { seq, .. } => f64::from(*seq),
            _ => 0.0,
        },
        "payload_len" => f64::from(meta.payload_len),
        "payload_entropy" => byte_entropy(&meta.payload),
        "src_ip_u32" => meta
            .ipv4
            .as_ref()
            .map_or(0.0, |ip| f64::from(u32::from(ip.src))),
        "dst_ip_u32" => meta
            .ipv4
            .as_ref()
            .map_or(0.0, |ip| f64::from(u32::from(ip.dst))),
        "dot11_type" => meta.dot11.as_ref().map_or(-1.0, |d| match d.frame_type {
            lumen_net::wire::dot11::Dot11Type::Management => 0.0,
            lumen_net::wire::dot11::Dot11Type::Control => 1.0,
            lumen_net::wire::dot11::Dot11Type::Data => 2.0,
            lumen_net::wire::dot11::Dot11Type::Extension => 3.0,
        }),
        "dot11_subtype" => meta.dot11.as_ref().map_or(-1.0, |d| f64::from(d.subtype)),
        "dot11_duration" => meta.dot11.as_ref().map_or(0.0, |d| f64::from(d.duration)),
        "dot11_seq" => meta.dot11.as_ref().map_or(0.0, |d| f64::from(d.sequence)),
        _ => f64::NAN,
    }
}

fn tcp_flag(meta: &PacketMeta, pick: impl Fn(lumen_net::wire::tcp::TcpFlags) -> bool) -> f64 {
    meta.transport
        .tcp_flags()
        .map_or(0.0, |f| f64::from(u8::from(pick(f))))
}

fn packet_table(parent: &PacketData, names: Vec<String>, x: Matrix) -> CoreResult<Table> {
    Table::new(names, x, parent.labels.clone(), parent.tags.clone())
}

// ---- FieldExtract -----------------------------------------------------------

/// `FieldExtract`: one row per packet, one column per requested field.
pub struct FieldExtract {
    fields: Vec<String>,
}

impl FieldExtract {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let fields = param_str_list("FieldExtract", params, "fields")?;
        for f in &fields {
            if !PACKET_FIELDS.contains(&f.as_str()) {
                return Err(bad_param(
                    "FieldExtract",
                    format!("unknown packet field {f:?}"),
                ));
            }
        }
        if fields.is_empty() {
            return Err(bad_param("FieldExtract", "fields must be non-empty"));
        }
        Ok(Box::new(FieldExtract { fields }))
    }
}

impl Operation for FieldExtract {
    fn name(&self) -> &'static str {
        "FieldExtract"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Packets]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Packets(p) = inputs[0] else {
            unreachable!("type-checked")
        };
        let mut x = Matrix::zeros(p.len(), self.fields.len());
        for (r, meta) in p.metas.iter().enumerate() {
            for (c, f) in self.fields.iter().enumerate() {
                x.set(r, c, packet_field(meta, f));
            }
        }
        Ok(Data::Table(Arc::new(packet_table(
            p,
            self.fields.clone(),
            x,
        )?)))
    }
}

// ---- NprintEncode -----------------------------------------------------------

/// `NprintEncode`: the nPrint unified bit-level packet representation.
/// Every header bit of the selected sections becomes one feature; sections
/// absent from a packet encode as -1 (nPrint's "missing" marker).
pub struct NprintEncode {
    ipv4: bool,
    tcp: bool,
    udp: bool,
    icmp: bool,
    payload_bytes: usize,
}

impl NprintEncode {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let sections = param_str_list("NprintEncode", params, "sections")?;
        let mut op = NprintEncode {
            ipv4: false,
            tcp: false,
            udp: false,
            icmp: false,
            payload_bytes: param_usize_or(params, "payload_bytes", 0),
        };
        for s in &sections {
            match s.as_str() {
                "ipv4" => op.ipv4 = true,
                "tcp" => op.tcp = true,
                "udp" => op.udp = true,
                "icmp" => op.icmp = true,
                other => {
                    return Err(bad_param(
                        "NprintEncode",
                        format!("unknown section {other:?}"),
                    ))
                }
            }
        }
        if !(op.ipv4 || op.tcp || op.udp || op.icmp || op.payload_bytes > 0) {
            return Err(bad_param("NprintEncode", "no sections selected"));
        }
        Ok(Box::new(op))
    }

    fn width(&self) -> usize {
        let mut w = 0;
        if self.ipv4 {
            w += 160;
        }
        if self.tcp {
            w += 160;
        }
        if self.udp {
            w += 64;
        }
        if self.icmp {
            w += 64;
        }
        w + self.payload_bytes * 8
    }

    #[allow(clippy::needless_range_loop)] // bit index maps directly to wire offset
    fn encode_bits(dst: &mut [f64], bytes: Option<&[u8]>, width_bits: usize) {
        match bytes {
            Some(b) => {
                for bit in 0..width_bits {
                    let byte = bit / 8;
                    let v = if byte < b.len() {
                        f64::from((b[byte] >> (7 - (bit % 8))) & 1)
                    } else {
                        -1.0
                    };
                    dst[bit] = v;
                }
            }
            None => dst[..width_bits].fill(-1.0),
        }
    }
}

impl Operation for NprintEncode {
    fn name(&self) -> &'static str {
        "NprintEncode"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Packets]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Packets(p) = inputs[0] else {
            unreachable!("type-checked")
        };
        let width = self.width();
        let mut x = Matrix::zeros(p.len(), width);
        let mut names = Vec::with_capacity(width);
        let push_names = |prefix: &str, bits: usize, names: &mut Vec<String>| {
            for b in 0..bits {
                names.push(format!("{prefix}_{b}"));
            }
        };
        if self.ipv4 {
            push_names("ipv4", 160, &mut names);
        }
        if self.tcp {
            push_names("tcp", 160, &mut names);
        }
        if self.udp {
            push_names("udp", 64, &mut names);
        }
        if self.icmp {
            push_names("icmp", 64, &mut names);
        }
        push_names("pl", self.payload_bytes * 8, &mut names);

        for (r, meta) in p.metas.iter().enumerate() {
            let row = x.row_mut(r);
            let mut at = 0;
            if self.ipv4 {
                let hdr = meta.ipv4.as_ref().map(|ip| &ip.header[..]);
                Self::encode_bits(&mut row[at..at + 160], hdr, 160);
                at += 160;
            }
            if self.tcp {
                let hdr = match &meta.transport {
                    TransportMeta::Tcp { header, .. } => Some(&header[..]),
                    _ => None,
                };
                Self::encode_bits(&mut row[at..at + 160], hdr, 160);
                at += 160;
            }
            if self.udp {
                let hdr = match &meta.transport {
                    TransportMeta::Udp { header, .. } => Some(&header[..]),
                    _ => None,
                };
                Self::encode_bits(&mut row[at..at + 64], hdr, 64);
                at += 64;
            }
            if self.icmp {
                let hdr = match &meta.transport {
                    TransportMeta::Icmp { header, .. } => Some(&header[..]),
                    _ => None,
                };
                Self::encode_bits(&mut row[at..at + 64], hdr, 64);
                at += 64;
            }
            if self.payload_bytes > 0 {
                let pl = if meta.payload.is_empty() {
                    None
                } else {
                    Some(&meta.payload[..])
                };
                Self::encode_bits(&mut row[at..], pl, self.payload_bytes * 8);
            }
        }
        Ok(Data::Table(Arc::new(packet_table(p, names, x)?)))
    }
}

// ---- PdmlEncode --------------------------------------------------------------

/// `PdmlEncode`: SmartHome-IDS-style per-packet summary modeled on
/// Wireshark's PDML dissection: per-layer presence, lengths, and key fields.
pub struct PdmlEncode;

impl PdmlEncode {
    pub fn from_params(_params: &Value) -> CoreResult<Box<dyn Operation>> {
        Ok(Box::new(PdmlEncode))
    }

    const FIELDS: [&'static str; 16] = [
        "wire_len",
        "is_tcp",
        "is_udp",
        "is_icmp",
        "is_arp",
        "ip_len",
        "ttl",
        "dscp",
        "src_port",
        "dst_port",
        "tcp_flags_bits",
        "tcp_window",
        "payload_len",
        "payload_entropy",
        "dot11_type",
        "dot11_subtype",
    ];
}

impl Operation for PdmlEncode {
    fn name(&self) -> &'static str {
        "PdmlEncode"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Packets]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Packets(p) = inputs[0] else {
            unreachable!("type-checked")
        };
        let fields = Self::FIELDS;
        let mut x = Matrix::zeros(p.len(), fields.len());
        for (r, meta) in p.metas.iter().enumerate() {
            for (c, f) in fields.iter().enumerate() {
                x.set(r, c, packet_field(meta, f));
            }
        }
        let names = fields.iter().map(|f| format!("pdml_{f}")).collect();
        Ok(Data::Table(Arc::new(packet_table(p, names, x)?)))
    }
}

// ---- PayloadBytes ------------------------------------------------------------

/// `PayloadBytes`: the first `n` transport payload bytes as features
/// (missing positions encode -1) — the early-detection representation.
pub struct PayloadBytes {
    n: usize,
}

impl PayloadBytes {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let n = param_usize_or(params, "n", 32);
        if n == 0 || n > lumen_net::meta::PAYLOAD_SNIPPET {
            return Err(bad_param(
                "PayloadBytes",
                format!("n must be in 1..={}", lumen_net::meta::PAYLOAD_SNIPPET),
            ));
        }
        Ok(Box::new(PayloadBytes { n }))
    }
}

impl Operation for PayloadBytes {
    fn name(&self) -> &'static str {
        "PayloadBytes"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Packets]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Packets(p) = inputs[0] else {
            unreachable!("type-checked")
        };
        let mut x = Matrix::zeros(p.len(), self.n);
        for (r, meta) in p.metas.iter().enumerate() {
            for c in 0..self.n {
                let v = meta.payload.get(c).map_or(-1.0, |&b| f64::from(b));
                x.set(r, c, v);
            }
        }
        let names = (0..self.n).map(|i| format!("byte_{i}")).collect();
        Ok(Data::Table(Arc::new(packet_table(p, names, x)?)))
    }
}

// ---- ConnExtract -------------------------------------------------------------

/// Every per-connection field `ConnExtract` understands.
pub const CONN_FIELDS: [&str; 38] = [
    "duration",
    "orig_pkts",
    "resp_pkts",
    "total_pkts",
    "orig_bytes",
    "resp_bytes",
    "orig_wire_bytes",
    "resp_wire_bytes",
    "bandwidth",
    "symmetry",
    "iat_mean",
    "iat_std",
    "iat_min",
    "iat_max",
    "iat_median",
    "orig_len_mean",
    "orig_len_std",
    "orig_len_min",
    "orig_len_max",
    "resp_len_mean",
    "resp_len_std",
    "resp_len_min",
    "resp_len_max",
    "orig_syn",
    "orig_ack",
    "orig_fin",
    "orig_rst",
    "orig_psh",
    "resp_syn",
    "resp_ack",
    "resp_fin",
    "resp_rst",
    "history_len",
    "orig_ttl_mean",
    "orig_port",
    "resp_port",
    "proto",
    "resp_port_wellknown",
];

/// Extracts one named numeric field from a connection record.
pub fn conn_field(c: &lumen_flow::ConnRecord, field: &str) -> f64 {
    match field {
        "duration" => c.duration_secs(),
        "orig_pkts" => f64::from(c.orig_pkts),
        "resp_pkts" => f64::from(c.resp_pkts),
        "total_pkts" => f64::from(c.total_pkts()),
        "orig_bytes" => c.orig_bytes as f64,
        "resp_bytes" => c.resp_bytes as f64,
        "orig_wire_bytes" => c.orig_wire_bytes as f64,
        "resp_wire_bytes" => c.resp_wire_bytes as f64,
        "bandwidth" => c.bandwidth(),
        "symmetry" => c.symmetry(),
        "iat_mean" => c.iat.mean,
        "iat_std" => c.iat.std_dev,
        "iat_min" => c.iat.min,
        "iat_max" => c.iat.max,
        "iat_median" => c.iat.median,
        "orig_len_mean" => c.orig_len.mean,
        "orig_len_std" => c.orig_len.std_dev,
        "orig_len_min" => c.orig_len.min,
        "orig_len_max" => c.orig_len.max,
        "resp_len_mean" => c.resp_len.mean,
        "resp_len_std" => c.resp_len.std_dev,
        "resp_len_min" => c.resp_len.min,
        "resp_len_max" => c.resp_len.max,
        "orig_syn" => f64::from(c.orig_flags.syn()),
        "orig_ack" => f64::from(c.orig_flags.ack()),
        "orig_fin" => f64::from(c.orig_flags.fin()),
        "orig_rst" => f64::from(c.orig_flags.rst()),
        "orig_psh" => f64::from(c.orig_flags.psh()),
        "resp_syn" => f64::from(c.resp_flags.syn()),
        "resp_ack" => f64::from(c.resp_flags.ack()),
        "resp_fin" => f64::from(c.resp_flags.fin()),
        "resp_rst" => f64::from(c.resp_flags.rst()),
        "history_len" => c.history.len() as f64,
        "orig_ttl_mean" => c.orig_ttl_mean,
        "orig_port" => f64::from(c.orig.1),
        "resp_port" => f64::from(c.resp.1),
        "proto" => f64::from(c.proto),
        "resp_port_wellknown" => f64::from(u8::from(c.resp.1 < 1024)),
        _ => f64::NAN,
    }
}

/// `ConnExtract`: one row per connection. The special field `"state"`
/// expands to a one-hot encoding of the Zeek connection state.
pub struct ConnExtract {
    fields: Vec<String>,
    with_state: bool,
}

impl ConnExtract {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let mut fields = param_str_list("ConnExtract", params, "fields")?;
        let with_state = fields.iter().any(|f| f == "state");
        fields.retain(|f| f != "state");
        for f in &fields {
            if !CONN_FIELDS.contains(&f.as_str()) {
                return Err(bad_param(
                    "ConnExtract",
                    format!("unknown connection field {f:?}"),
                ));
            }
        }
        if fields.is_empty() && !with_state {
            return Err(bad_param("ConnExtract", "fields must be non-empty"));
        }
        Ok(Box::new(ConnExtract { fields, with_state }))
    }
}

impl Operation for ConnExtract {
    fn name(&self) -> &'static str {
        "ConnExtract"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Connections]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Connections(cd) = inputs[0] else {
            unreachable!("type-checked")
        };
        let state_cols = if self.with_state {
            lumen_flow::ConnState::COUNT
        } else {
            0
        };
        let width = self.fields.len() + state_cols;
        let mut x = Matrix::zeros(cd.conns.len(), width);
        for (r, conn) in cd.conns.iter().enumerate() {
            for (c, f) in self.fields.iter().enumerate() {
                x.set(r, c, conn_field(conn, f));
            }
            if self.with_state {
                x.set(r, self.fields.len() + conn.state.code(), 1.0);
            }
        }
        let mut names = self.fields.clone();
        if self.with_state {
            for s in 0..lumen_flow::ConnState::COUNT {
                names.push(format!("state_{s}"));
            }
        }
        Ok(Data::Table(Arc::new(Table::new(
            names,
            x,
            cd.labels.clone(),
            cd.tags.clone(),
        )?)))
    }
}

// ---- UniExtract --------------------------------------------------------------

/// Every per-unidirectional-flow field `UniExtract` understands.
pub const UNI_FIELDS: [&str; 19] = [
    "duration",
    "pkts",
    "payload_bytes",
    "wire_bytes",
    "pkt_rate",
    "byte_rate",
    "len_mean",
    "len_std",
    "len_min",
    "len_max",
    "len_median",
    "syn",
    "ack",
    "fin",
    "rst",
    "psh",
    "flag_rate",
    "src_port",
    "dst_port",
];

fn uni_field(f: &lumen_flow::UniFlowRecord, field: &str) -> f64 {
    let dur = f.duration_secs().max(1e-6);
    match field {
        "duration" => f.duration_secs(),
        "pkts" => f64::from(f.pkts),
        "payload_bytes" => f.payload_bytes as f64,
        "wire_bytes" => f.wire_bytes as f64,
        "pkt_rate" => f64::from(f.pkts) / dur,
        "byte_rate" => f.wire_bytes as f64 / dur,
        "len_mean" => f.len.mean,
        "len_std" => f.len.std_dev,
        "len_min" => f.len.min,
        "len_max" => f.len.max,
        "len_median" => f.len.median,
        "syn" => f64::from(f.flags.syn()),
        "ack" => f64::from(f.flags.ack()),
        "fin" => f64::from(f.flags.fin()),
        "rst" => f64::from(f.flags.rst()),
        "psh" => f64::from(f.flags.psh()),
        "flag_rate" => f64::from(f.flags.total()) / dur,
        "src_port" => f64::from(f.src.1),
        "dst_port" => f64::from(f.dst.1),
        _ => f64::NAN,
    }
}

/// `UniExtract`: one row per unidirectional flow (A10's granularity).
pub struct UniExtract {
    fields: Vec<String>,
}

impl UniExtract {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let fields = param_str_list("UniExtract", params, "fields")?;
        for f in &fields {
            if !UNI_FIELDS.contains(&f.as_str()) {
                return Err(bad_param("UniExtract", format!("unknown flow field {f:?}")));
            }
        }
        if fields.is_empty() {
            return Err(bad_param("UniExtract", "fields must be non-empty"));
        }
        Ok(Box::new(UniExtract { fields }))
    }
}

impl Operation for UniExtract {
    fn name(&self) -> &'static str {
        "UniExtract"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::UniFlows]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::UniFlows(ud) = inputs[0] else {
            unreachable!("type-checked")
        };
        let mut x = Matrix::zeros(ud.flows.len(), self.fields.len());
        for (r, flow) in ud.flows.iter().enumerate() {
            for (c, f) in self.fields.iter().enumerate() {
                x.set(r, c, uni_field(flow, f));
            }
        }
        Ok(Data::Table(Arc::new(Table::new(
            self.fields.clone(),
            x,
            ud.labels.clone(),
            ud.tags.clone(),
        )?)))
    }
}

// ---- FirstNStats -------------------------------------------------------------

/// `FirstNStats`: features from the first `n` packets of each connection —
/// OCSVM's (A07) "inter-arrival times and lengths of the first hundred
/// packets". Emits summary statistics, and with `include_raw` the padded raw
/// IAT/length vectors themselves.
pub struct FirstNStats {
    n: usize,
    include_raw: bool,
}

impl FirstNStats {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let n = param_usize_or(params, "n", 100);
        if n == 0 {
            return Err(bad_param("FirstNStats", "n must be positive"));
        }
        Ok(Box::new(FirstNStats {
            n,
            include_raw: param_bool_or(params, "include_raw", false),
        }))
    }
}

impl Operation for FirstNStats {
    fn name(&self) -> &'static str {
        "FirstNStats"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Connections]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Connections(cd) = inputs[0] else {
            unreachable!("type-checked")
        };
        let mut names: Vec<String> = [
            "fn_iat_mean",
            "fn_iat_std",
            "fn_iat_min",
            "fn_iat_max",
            "fn_len_mean",
            "fn_len_std",
            "fn_len_min",
            "fn_len_max",
            "fn_count",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        if self.include_raw {
            for i in 0..self.n.saturating_sub(1) {
                names.push(format!("fn_iat_{i}"));
            }
            for i in 0..self.n {
                names.push(format!("fn_len_{i}"));
            }
        }
        let width = names.len();
        let mut x = Matrix::zeros(cd.conns.len(), width);
        for (r, conn) in cd.conns.iter().enumerate() {
            let iats = conn.first_n_iats();
            let lens = conn.first_n_lens();
            let iat_s = lumen_util::Summary::of(&iats);
            let len_s = lumen_util::Summary::of(&lens);
            let row = x.row_mut(r);
            row[0] = iat_s.mean;
            row[1] = iat_s.std_dev;
            row[2] = iat_s.min;
            row[3] = iat_s.max;
            row[4] = len_s.mean;
            row[5] = len_s.std_dev;
            row[6] = len_s.min;
            row[7] = len_s.max;
            row[8] = lens.len() as f64;
            if self.include_raw {
                let mut at = 9;
                for i in 0..self.n.saturating_sub(1) {
                    row[at] = iats.get(i).copied().unwrap_or(-1.0);
                    at += 1;
                }
                for i in 0..self.n {
                    row[at] = lens.get(i).copied().unwrap_or(-1.0);
                    at += 1;
                }
            }
        }
        Ok(Data::Table(Arc::new(Table::new(
            names,
            x,
            cd.labels.clone(),
            cd.tags.clone(),
        )?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::PacketData;
    use lumen_net::builder::{tcp_packet, TcpParams};
    use lumen_net::wire::tcp::TcpFlags;
    use lumen_net::{LinkType, MacAddr};
    use serde_json::json;
    use std::net::Ipv4Addr;

    fn packets() -> Arc<PacketData> {
        let mk = |ts: u64, len: usize, dport: u16| {
            let pkt = tcp_packet(TcpParams {
                src_mac: MacAddr::from_id(1),
                dst_mac: MacAddr::from_id(2),
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: Ipv4Addr::new(10, 0, 0, 2),
                src_port: 40000,
                dst_port: dport,
                seq: 7,
                ack: 0,
                flags: TcpFlags::PSH_ACK,
                window: 100,
                ttl: 64,
                payload: &vec![0x41; len],
            });
            PacketMeta::parse(LinkType::Ethernet, ts, &pkt).unwrap()
        };
        let metas = vec![mk(0, 10, 80), mk(1000, 20, 443), mk(2000, 0, 80)];
        Arc::new(PacketData {
            link: LinkType::Ethernet,
            metas,
            labels: vec![0, 1, 0],
            tags: vec![0, 3, 0],
        })
    }

    #[test]
    fn field_extract_produces_expected_values() {
        let p = packets();
        let op =
            FieldExtract::from_params(&json!({"fields": ["payload_len", "dst_port", "tcp_psh"]}))
                .unwrap();
        let out = op.execute(&[&Data::Packets(p)]).unwrap();
        let Data::Table(t) = out else { panic!() };
        assert_eq!(t.rows(), 3);
        assert_eq!(t.x.row(0), &[10.0, 80.0, 1.0]);
        assert_eq!(t.x.row(1), &[20.0, 443.0, 1.0]);
        assert_eq!(t.labels, vec![0, 1, 0]);
        assert_eq!(t.tags, vec![0, 3, 0]);
    }

    #[test]
    fn field_extract_rejects_unknown_field() {
        assert!(FieldExtract::from_params(&json!({"fields": ["nope"]})).is_err());
    }

    #[test]
    fn every_catalog_field_is_finite_on_real_packet() {
        let p = packets();
        for f in PACKET_FIELDS {
            let v = packet_field(&p.metas[0], f);
            assert!(
                v.is_finite() || f.starts_with("dot11"),
                "field {f} produced {v}"
            );
        }
    }

    #[test]
    fn nprint_bits_match_header_bytes() {
        let p = packets();
        let op = NprintEncode::from_params(&json!({"sections": ["ipv4", "tcp"]})).unwrap();
        let Data::Table(t) = op.execute(&[&Data::Packets(p.clone())]).unwrap() else {
            panic!()
        };
        assert_eq!(t.cols(), 320);
        // First 4 bits of IPv4 header = version 4 = 0100.
        assert_eq!(t.x.row(0)[0], 0.0);
        assert_eq!(t.x.row(0)[1], 1.0);
        assert_eq!(t.x.row(0)[2], 0.0);
        assert_eq!(t.x.row(0)[3], 0.0);
        // Reconstruct the dst port from tcp bits 16..32.
        let mut port = 0u16;
        for b in 16..32 {
            port = (port << 1) | (t.x.row(0)[160 + b] as u16);
        }
        assert_eq!(port, 80);
    }

    #[test]
    fn nprint_missing_section_is_minus_one() {
        let p = packets(); // all TCP
        let op = NprintEncode::from_params(&json!({"sections": ["udp"]})).unwrap();
        let Data::Table(t) = op.execute(&[&Data::Packets(p)]).unwrap() else {
            panic!()
        };
        assert!(t.x.row(0).iter().all(|&v| v == -1.0));
    }

    #[test]
    fn payload_bytes_pads_with_minus_one() {
        let p = packets();
        let op = PayloadBytes::from_params(&json!({"n": 16})).unwrap();
        let Data::Table(t) = op.execute(&[&Data::Packets(p)]).unwrap() else {
            panic!()
        };
        // Row 0 has 10 payload bytes of 0x41 then padding.
        assert_eq!(t.x.row(0)[0], 65.0);
        assert_eq!(t.x.row(0)[9], 65.0);
        assert_eq!(t.x.row(0)[10], -1.0);
        // Row 2 has no payload at all.
        assert!(t.x.row(2).iter().all(|&v| v == -1.0));
    }

    #[test]
    fn pdml_encode_has_fixed_width() {
        let p = packets();
        let op = PdmlEncode::from_params(&json!({})).unwrap();
        let Data::Table(t) = op.execute(&[&Data::Packets(p)]).unwrap() else {
            panic!()
        };
        assert_eq!(t.cols(), PdmlEncode::FIELDS.len());
        assert!(t.names.iter().all(|n| n.starts_with("pdml_")));
    }
}
