//! Flow-assembly operations: packets → connections → unidirectional flows.

use std::sync::Arc;

use lumen_flow::{assemble_sharded, FlowConfig};
use serde_json::Value;

use crate::data::{ConnData, Data, DataKind, UniData};
use crate::ops::{bad_param, param_f64_or, param_usize_or, Operation};
use crate::CoreResult;

// ---- accepted parameter keys (the linter's L001 schemas) -------------------

pub(crate) const FLOW_ASSEMBLE_PARAMS: &[&str] =
    &["tcp_idle_s", "udp_idle_s", "first_n", "max_active", "shards"];
pub(crate) const UNI_FLOW_SPLIT_PARAMS: &[&str] = &[];

fn derive_truth(labels: &[u8], tags: &[u32], indices: &[u32]) -> (u8, u32) {
    let mut label = 0u8;
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &i in indices {
        let i = i as usize;
        if labels.get(i).copied() == Some(1) {
            label = 1;
            *counts.entry(tags[i]).or_insert(0) += 1;
        }
    }
    let tag = counts
        .into_iter()
        .max_by_key(|&(t, c)| (c, t))
        .map_or(0, |(t, _)| t);
    (label, tag)
}

/// `FlowAssemble`: runs the connection tracker over the packet stream and
/// derives connection-level ground truth by the any-malicious rule.
///
/// The tracker is sharded by canonical 5-tuple (`shards` parameter; 0 means
/// "use the process default", mirroring how thread counts are configured).
/// Sharding is an execution detail: records are merged back into canonical
/// order, so the output is byte-identical for any shard count.
pub struct FlowAssemble {
    cfg: FlowConfig,
    shards: usize,
}

impl FlowAssemble {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let tcp_idle_s = param_f64_or(params, "tcp_idle_s", 300.0);
        let udp_idle_s = param_f64_or(params, "udp_idle_s", 60.0);
        let first_n = param_usize_or(params, "first_n", 100);
        let max_active = param_usize_or(params, "max_active", FlowConfig::default().max_active);
        let shards = param_usize_or(params, "shards", 0);
        if tcp_idle_s <= 0.0 || udp_idle_s <= 0.0 {
            return Err(bad_param("FlowAssemble", "idle timeouts must be positive"));
        }
        if first_n == 0 {
            return Err(bad_param("FlowAssemble", "first_n must be positive"));
        }
        if max_active == 0 {
            return Err(bad_param("FlowAssemble", "max_active must be positive"));
        }
        if shards > 256 {
            return Err(bad_param("FlowAssemble", "shards must be at most 256"));
        }
        Ok(Box::new(FlowAssemble {
            cfg: FlowConfig {
                tcp_idle_us: (tcp_idle_s * 1e6) as u64,
                udp_idle_us: (udp_idle_s * 1e6) as u64,
                icmp_idle_us: 30_000_000,
                first_n,
                max_active,
            },
            shards,
        }))
    }
}

impl Operation for FlowAssemble {
    fn name(&self) -> &'static str {
        "FlowAssemble"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Packets]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Connections
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Packets(p) = inputs[0] else {
            unreachable!("type-checked")
        };
        let shards = if self.shards == 0 {
            lumen_flow::default_shards()
        } else {
            self.shards
        };
        let asm = assemble_sharded(&p.metas, self.cfg, shards);
        let conns = asm.records;
        let mut labels = Vec::with_capacity(conns.len());
        let mut tags = Vec::with_capacity(conns.len());
        for c in &conns {
            let (l, t) = derive_truth(&p.labels, &p.tags, &c.packet_indices);
            labels.push(l);
            tags.push(t);
        }
        Ok(Data::Connections(Arc::new(ConnData {
            parent: Arc::clone(p),
            conns,
            labels,
            tags,
            flow: asm.total,
            shard_flow: asm.per_shard,
        })))
    }
}

/// `UniFlowSplit`: splits each connection into its per-direction flows
/// (smartdet's classification granularity). Flow ground truth is inherited
/// from the parent connection.
pub struct UniFlowSplit;

impl UniFlowSplit {
    pub fn from_params(_params: &Value) -> CoreResult<Box<dyn Operation>> {
        Ok(Box::new(UniFlowSplit))
    }
}

impl Operation for UniFlowSplit {
    fn name(&self) -> &'static str {
        "UniFlowSplit"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Connections]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::UniFlows
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Connections(cd) = inputs[0] else {
            unreachable!("type-checked")
        };
        let mut flows = Vec::new();
        let mut labels = Vec::new();
        let mut tags = Vec::new();
        for (i, c) in cd.conns.iter().enumerate() {
            for f in c.to_uni_flows() {
                flows.push(f);
                labels.push(cd.labels[i]);
                tags.push(cd.tags[i]);
            }
        }
        Ok(Data::UniFlows(Arc::new(UniData {
            flows,
            labels,
            tags,
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::PacketData;
    use lumen_net::builder::{tcp_packet, TcpParams};
    use lumen_net::wire::tcp::TcpFlags;
    use lumen_net::{LinkType, MacAddr, PacketMeta};
    use serde_json::json;
    use std::net::Ipv4Addr;

    fn two_conn_source() -> Data {
        let mk = |ts, sp: u16, flags| {
            let pkt = tcp_packet(TcpParams {
                src_mac: MacAddr::from_id(1),
                dst_mac: MacAddr::from_id(2),
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: Ipv4Addr::new(10, 0, 0, 2),
                src_port: sp,
                dst_port: 80,
                seq: 1,
                ack: 0,
                flags,
                window: 10,
                ttl: 64,
                payload: b"",
            });
            PacketMeta::parse(LinkType::Ethernet, ts, &pkt).unwrap()
        };
        let metas = vec![
            mk(0, 1000, TcpFlags::SYN),
            mk(10, 2000, TcpFlags::SYN),
            mk(20, 1000, TcpFlags::ACK),
        ];
        Data::Packets(Arc::new(PacketData {
            link: LinkType::Ethernet,
            metas,
            labels: vec![0, 1, 0],
            tags: vec![0, 5, 0],
        }))
    }

    #[test]
    fn assemble_derives_connection_truth() {
        let op = FlowAssemble::from_params(&json!({})).unwrap();
        let Data::Connections(cd) = op.execute(&[&two_conn_source()]).unwrap() else {
            panic!()
        };
        assert_eq!(cd.conns.len(), 2);
        // Connection from port 1000 is benign; from 2000 malicious tag 5.
        let idx_1000 = cd.conns.iter().position(|c| c.orig.1 == 1000).unwrap();
        let idx_2000 = cd.conns.iter().position(|c| c.orig.1 == 2000).unwrap();
        assert_eq!(cd.labels[idx_1000], 0);
        assert_eq!(cd.labels[idx_2000], 1);
        assert_eq!(cd.tags[idx_2000], 5);
    }

    #[test]
    fn uni_split_inherits_labels() {
        let op = FlowAssemble::from_params(&json!({})).unwrap();
        let conns = op.execute(&[&two_conn_source()]).unwrap();
        let split = UniFlowSplit::from_params(&json!({})).unwrap();
        let Data::UniFlows(ud) = split.execute(&[&conns]).unwrap() else {
            panic!()
        };
        // Both connections are one-directional here.
        assert_eq!(ud.flows.len(), 2);
        assert_eq!(ud.labels.iter().filter(|&&l| l == 1).count(), 1);
    }

    #[test]
    fn bad_params_rejected() {
        assert!(FlowAssemble::from_params(&json!({"tcp_idle_s": -1.0})).is_err());
        assert!(FlowAssemble::from_params(&json!({"first_n": 0})).is_err());
        assert!(FlowAssemble::from_params(&json!({"max_active": 0})).is_err());
    }

    #[test]
    fn sharded_assembly_matches_default_and_reports_stats() {
        let base_op = FlowAssemble::from_params(&json!({})).unwrap();
        let Data::Connections(base) = base_op.execute(&[&two_conn_source()]).unwrap() else {
            panic!()
        };
        assert_eq!(base.flow.records, base.conns.len() as u64);
        let op = FlowAssemble::from_params(&json!({"shards": 2})).unwrap();
        let Data::Connections(cd) = op.execute(&[&two_conn_source()]).unwrap() else {
            panic!()
        };
        assert_eq!(cd.conns, base.conns, "sharding must not change records");
        assert_eq!(cd.shard_flow.len(), 2);
        assert_eq!(cd.flow.records, cd.conns.len() as u64);
        assert!(FlowAssemble::from_params(&json!({"shards": 1000})).is_err());
    }

    #[test]
    fn max_active_bounds_the_tracker() {
        // Two interleaved flows with a table of one: the first flow is
        // evicted, but both records still come out.
        let op = FlowAssemble::from_params(&json!({"max_active": 1})).unwrap();
        let Data::Connections(cd) = op.execute(&[&two_conn_source()]).unwrap() else {
            panic!()
        };
        assert_eq!(cd.conns.len(), 3, "evictions split the port-1000 flow");
    }
}
