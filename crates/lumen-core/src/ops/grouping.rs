//! Grouping, time slicing, and filtering operations.

use std::collections::HashMap;
use std::sync::Arc;

use serde_json::Value;

use crate::data::{Data, DataKind, Grouped};
use crate::ops::{bad_param, param_f64_or, param_str, Operation};
use crate::CoreResult;

use lumen_net::PacketMeta;

// ---- accepted parameter keys (the linter's L001 schemas) -------------------

pub(crate) const GROUP_BY_PARAMS: &[&str] = &["key"];
pub(crate) const TIME_SLICE_PARAMS: &[&str] = &["window_s"];
pub(crate) const FILTER_PARAMS: &[&str] = &["field", "op", "value"];

/// Grouping keys `GroupBy` supports. `channel` is Kitsune's src→dst pair;
/// `socket` its 5-tuple; `pair` the unordered srcIP/dstIP pair (nokia's
/// granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKey {
    SrcIp,
    DstIp,
    SrcMac,
    SrcPort,
    DstPort,
    Channel,
    Socket,
    Pair,
}

impl GroupKey {
    fn parse(s: &str) -> Option<GroupKey> {
        match s {
            "srcIp" => Some(GroupKey::SrcIp),
            "dstIp" => Some(GroupKey::DstIp),
            "srcMac" => Some(GroupKey::SrcMac),
            "srcPort" => Some(GroupKey::SrcPort),
            "dstPort" => Some(GroupKey::DstPort),
            "channel" => Some(GroupKey::Channel),
            "socket" => Some(GroupKey::Socket),
            "pair" => Some(GroupKey::Pair),
            _ => None,
        }
    }

    /// The group key of one packet. Packets lacking the keyed attribute all
    /// share a sentinel bucket so every packet stays represented (per-packet
    /// feature tables must align row-for-row with the source).
    fn key_of(self, meta: &PacketMeta) -> u128 {
        const MISSING: u128 = u128::MAX;
        let ip = meta.ipv4.as_ref();
        match self {
            GroupKey::SrcIp => ip.map_or(MISSING, |i| u128::from(u32::from(i.src))),
            GroupKey::DstIp => ip.map_or(MISSING, |i| u128::from(u32::from(i.dst))),
            GroupKey::SrcMac => u128::from(meta.src_mac.to_u64()),
            GroupKey::SrcPort => meta.transport.src_port().map_or(MISSING, u128::from),
            GroupKey::DstPort => meta.transport.dst_port().map_or(MISSING, u128::from),
            GroupKey::Channel => ip.map_or(MISSING, |i| {
                (u128::from(u32::from(i.src)) << 32) | u128::from(u32::from(i.dst))
            }),
            GroupKey::Socket => match meta.five_tuple() {
                Some((s, d, sp, dp, proto)) => {
                    (u128::from(u32::from(s)) << 72)
                        | (u128::from(u32::from(d)) << 40)
                        | (u128::from(sp) << 24)
                        | (u128::from(dp) << 8)
                        | u128::from(proto)
                }
                None => MISSING,
            },
            GroupKey::Pair => ip.map_or(MISSING, |i| {
                let (a, b) = (u32::from(i.src), u32::from(i.dst));
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                (u128::from(lo) << 32) | u128::from(hi)
            }),
        }
    }
}

/// `GroupBy`: partitions packets by a key attribute. Group order is the
/// order of first appearance, so results are deterministic.
pub struct GroupBy {
    key: GroupKey,
    desc: String,
}

impl GroupBy {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let key_s = param_str("GroupBy", params, "key")?;
        let key = GroupKey::parse(&key_s)
            .ok_or_else(|| bad_param("GroupBy", format!("unknown key {key_s:?}")))?;
        Ok(Box::new(GroupBy { key, desc: key_s }))
    }
}

impl Operation for GroupBy {
    fn name(&self) -> &'static str {
        "GroupBy"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Packets]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Grouped
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Packets(p) = inputs[0] else {
            unreachable!("type-checked")
        };
        let mut index: HashMap<u128, usize> = HashMap::new();
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for (i, meta) in p.metas.iter().enumerate() {
            let k = self.key.key_of(meta);
            let g = *index.entry(k).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(i as u32);
        }
        Ok(Data::Grouped(Arc::new(Grouped {
            parent: Arc::clone(p),
            groups,
            key_desc: self.desc.clone(),
        })))
    }
}

/// `TimeSlice`: refines a grouping by cutting each group at absolute
/// `window_s` boundaries — the paper's Figure 3 feeds GroupBy output into a
/// 10-second TimeSlice before aggregating.
pub struct TimeSlice {
    window_us: u64,
}

impl TimeSlice {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let window_s = param_f64_or(params, "window_s", 10.0);
        if window_s <= 0.0 {
            return Err(bad_param("TimeSlice", "window_s must be positive"));
        }
        Ok(Box::new(TimeSlice {
            window_us: (window_s * 1e6) as u64,
        }))
    }
}

impl Operation for TimeSlice {
    fn name(&self) -> &'static str {
        "TimeSlice"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Grouped]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Grouped
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Grouped(g) = inputs[0] else {
            unreachable!("type-checked")
        };
        let metas = &g.parent.metas;
        let mut out: Vec<Vec<u32>> = Vec::new();
        for group in &g.groups {
            let mut current: Vec<u32> = Vec::new();
            let mut window: Option<u64> = None;
            for &i in group {
                let w = metas[i as usize].ts_us / self.window_us;
                match window {
                    Some(cw) if cw == w => current.push(i),
                    Some(_) => {
                        out.push(std::mem::take(&mut current));
                        current.push(i);
                        window = Some(w);
                    }
                    None => {
                        current.push(i);
                        window = Some(w);
                    }
                }
            }
            if !current.is_empty() {
                out.push(current);
            }
        }
        Ok(Data::Grouped(Arc::new(Grouped {
            parent: Arc::clone(&g.parent),
            groups: out,
            key_desc: format!("{} / {}s", g.key_desc, self.window_us as f64 / 1e6),
        })))
    }
}

/// `Filter`: keeps packets matching a simple predicate on a catalog field.
pub struct Filter {
    field: String,
    op: String,
    value: f64,
}

impl Filter {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let field = param_str("Filter", params, "field")?;
        if !crate::ops::extract::PACKET_FIELDS.contains(&field.as_str()) {
            return Err(bad_param("Filter", format!("unknown field {field:?}")));
        }
        let op = param_str("Filter", params, "op")?;
        if !["==", "!=", "<", "<=", ">", ">="].contains(&op.as_str()) {
            return Err(bad_param("Filter", format!("unknown comparator {op:?}")));
        }
        let value = params
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| bad_param("Filter", "missing numeric parameter \"value\""))?;
        Ok(Box::new(Filter { field, op, value }))
    }
}

impl Operation for Filter {
    fn name(&self) -> &'static str {
        "Filter"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Packets]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Packets
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Packets(p) = inputs[0] else {
            unreachable!("type-checked")
        };
        let keep = |meta: &PacketMeta| {
            let v = crate::ops::extract::packet_field(meta, &self.field);
            match self.op.as_str() {
                "==" => v == self.value,
                "!=" => v != self.value,
                "<" => v < self.value,
                "<=" => v <= self.value,
                ">" => v > self.value,
                _ => v >= self.value,
            }
        };
        let mut metas = Vec::new();
        let mut labels = Vec::new();
        let mut tags = Vec::new();
        for (i, m) in p.metas.iter().enumerate() {
            if keep(m) {
                metas.push(m.clone());
                labels.push(p.labels[i]);
                tags.push(p.tags[i]);
            }
        }
        Ok(Data::Packets(Arc::new(crate::data::PacketData {
            link: p.link,
            metas,
            labels,
            tags,
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::PacketData;
    use lumen_net::builder::{tcp_packet, udp_packet, TcpParams, UdpParams};
    use lumen_net::wire::tcp::TcpFlags;
    use lumen_net::{LinkType, MacAddr};
    use serde_json::json;
    use std::net::Ipv4Addr;

    fn meta_tcp(ts: u64, src: u8, dport: u16) -> PacketMeta {
        let pkt = tcp_packet(TcpParams {
            src_mac: MacAddr::from_id(u64::from(src)),
            dst_mac: MacAddr::from_id(99),
            src_ip: Ipv4Addr::new(10, 0, 0, src),
            dst_ip: Ipv4Addr::new(10, 0, 0, 200),
            src_port: 1000 + u16::from(src),
            dst_port: dport,
            seq: 1,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 10,
            ttl: 64,
            payload: b"x",
        });
        PacketMeta::parse(LinkType::Ethernet, ts, &pkt).unwrap()
    }

    fn meta_udp(ts: u64, src: u8) -> PacketMeta {
        let pkt = udp_packet(UdpParams {
            src_mac: MacAddr::from_id(u64::from(src)),
            dst_mac: MacAddr::from_id(99),
            src_ip: Ipv4Addr::new(10, 0, 0, src),
            dst_ip: Ipv4Addr::new(10, 0, 0, 200),
            src_port: 5000,
            dst_port: 53,
            ttl: 64,
            payload: b"q",
        });
        PacketMeta::parse(LinkType::Ethernet, ts, &pkt).unwrap()
    }

    fn source() -> Data {
        let metas = vec![
            meta_tcp(0, 1, 80),
            meta_tcp(1, 2, 80),
            meta_tcp(2, 1, 443),
            meta_udp(3, 1),
            meta_udp(4, 3),
        ];
        let n = metas.len();
        Data::Packets(Arc::new(PacketData {
            link: LinkType::Ethernet,
            metas,
            labels: vec![0; n],
            tags: vec![0; n],
        }))
    }

    #[test]
    fn group_by_src_ip() {
        let op = GroupBy::from_params(&json!({"key": "srcIp"})).unwrap();
        let Data::Grouped(g) = op.execute(&[&source()]).unwrap() else {
            panic!()
        };
        // Sources .1, .2, .3 -> 3 groups; .1 has packets 0, 2, 3.
        assert_eq!(g.groups.len(), 3);
        assert_eq!(g.groups[0], vec![0, 2, 3]);
        assert_eq!(g.groups[1], vec![1]);
        assert_eq!(g.groups[2], vec![4]);
    }

    #[test]
    fn group_by_socket_distinguishes_ports() {
        let op = GroupBy::from_params(&json!({"key": "socket"})).unwrap();
        let Data::Grouped(g) = op.execute(&[&source()]).unwrap() else {
            panic!()
        };
        assert_eq!(g.groups.len(), 5);
    }

    #[test]
    fn groups_cover_every_packet_exactly_once() {
        for key in [
            "srcIp", "dstIp", "srcMac", "channel", "socket", "pair", "srcPort", "dstPort",
        ] {
            let op = GroupBy::from_params(&json!({ "key": key })).unwrap();
            let Data::Grouped(g) = op.execute(&[&source()]).unwrap() else {
                panic!()
            };
            let mut all: Vec<u32> = g.groups.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3, 4], "key {key}");
        }
    }

    #[test]
    fn time_slice_cuts_at_boundaries() {
        let metas = vec![
            meta_tcp(0, 1, 80),
            meta_tcp(5_000_000, 1, 80),
            meta_tcp(12_000_000, 1, 80),
            meta_tcp(25_000_000, 1, 80),
        ];
        let n = metas.len();
        let src = Data::Packets(Arc::new(PacketData {
            link: LinkType::Ethernet,
            metas,
            labels: vec![0; n],
            tags: vec![0; n],
        }));
        let gb = GroupBy::from_params(&json!({"key": "srcIp"})).unwrap();
        let grouped = gb.execute(&[&src]).unwrap();
        let ts = TimeSlice::from_params(&json!({"window_s": 10.0})).unwrap();
        let Data::Grouped(g) = ts.execute(&[&grouped]).unwrap() else {
            panic!()
        };
        // Windows: [0,10s): pkts 0,1; [10,20s): pkt 2; [20,30s): pkt 3.
        assert_eq!(g.groups.len(), 3);
        assert_eq!(g.groups[0], vec![0, 1]);
    }

    #[test]
    fn filter_keeps_matching_packets() {
        let op =
            Filter::from_params(&json!({"field": "is_udp", "op": "==", "value": 1.0})).unwrap();
        let Data::Packets(p) = op.execute(&[&source()]).unwrap() else {
            panic!()
        };
        assert_eq!(p.len(), 2);
        assert!(p.metas.iter().all(PacketMeta::is_udp));
    }

    #[test]
    fn filter_rejects_bad_comparator() {
        assert!(Filter::from_params(&json!({"field": "ttl", "op": "~", "value": 1.0})).is_err());
    }

    #[test]
    fn bad_group_key_rejected() {
        assert!(GroupBy::from_params(&json!({"key": "nope"})).is_err());
    }

    #[test]
    fn zero_window_rejected() {
        assert!(TimeSlice::from_params(&json!({"window_s": 0.0})).is_err());
    }
}
