//! The configurable operations (§3.2) and the registry that builds them
//! from template JSON.
//!
//! Around 30 operations cover everything the 16 surveyed algorithms need.
//! Each is configurable (one `ApplyAggregates` implementation serves mean,
//! std, entropy, rate, ... — "fewer efficient implementations", as the paper
//! puts it) and declares typed input/output ports that the engine checks
//! before execution.

mod aggregate;
mod extract;
mod flow;
mod grouping;
mod model;
mod source;
mod tableops;

pub use model::{PreprocessedClassifier, MODEL_KINDS};

/// The field catalogs (packet / connection / unidirectional-flow), exported
/// for documentation and validation.
pub mod extract_catalog {
    pub use super::extract::{CONN_FIELDS, PACKET_FIELDS, UNI_FIELDS};
}

use serde_json::Value;

use crate::data::{Data, DataKind};
use crate::{CoreError, CoreResult};

/// One configurable operation instance.
pub trait Operation: Send + Sync {
    /// Registry name ("FieldExtract", "GroupBy", ...).
    fn name(&self) -> &'static str;

    /// Input port kinds. When [`Operation::variadic`] is true, any number of
    /// inputs (at least one) of kind `input_kinds()[0]` is accepted.
    fn input_kinds(&self) -> Vec<DataKind>;

    /// Output port kind.
    fn output_kind(&self) -> DataKind;

    /// Whether the op accepts a variable number of same-kind inputs.
    fn variadic(&self) -> bool {
        false
    }

    /// Executes on type-checked inputs.
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data>;
}

/// Instantiates an operation from its template name and parameter object.
pub fn build_op(func: &str, params: &Value) -> CoreResult<Box<dyn Operation>> {
    match func {
        // Sources.
        "PcapLoad" => source::PcapLoad::from_params(params),
        // Extraction / encoding.
        "FieldExtract" => extract::FieldExtract::from_params(params),
        "NprintEncode" => extract::NprintEncode::from_params(params),
        "PdmlEncode" => extract::PdmlEncode::from_params(params),
        "PayloadBytes" => extract::PayloadBytes::from_params(params),
        "ConnExtract" => extract::ConnExtract::from_params(params),
        "UniExtract" => extract::UniExtract::from_params(params),
        "FirstNStats" => extract::FirstNStats::from_params(params),
        // Grouping / filtering.
        "GroupBy" => grouping::GroupBy::from_params(params),
        "TimeSlice" => grouping::TimeSlice::from_params(params),
        "Filter" => grouping::Filter::from_params(params),
        // Aggregation / incremental statistics.
        "ApplyAggregates" => aggregate::ApplyAggregates::from_params(params),
        "RollingAggregates" => aggregate::RollingAggregates::from_params(params),
        "InterArrival" => aggregate::InterArrival::from_params(params),
        "DampedStats" => aggregate::DampedStats::from_params(params),
        "DampedCov" => aggregate::DampedCov::from_params(params),
        // Flow assembly.
        "FlowAssemble" => flow::FlowAssemble::from_params(params),
        "UniFlowSplit" => flow::UniFlowSplit::from_params(params),
        // Table transforms.
        "Normalize" => tableops::Normalize::from_params(params),
        "CorrelationFilter" => tableops::CorrelationFilterOp::from_params(params),
        "Pca" => tableops::PcaOp::from_params(params),
        "Impute" => tableops::ImputeOp::from_params(params),
        "FeatureSelect" => tableops::FeatureSelect::from_params(params),
        "Concat" => tableops::Concat::from_params(params),
        "MergeTables" => tableops::MergeTables::from_params(params),
        "Sample" => tableops::Sample::from_params(params),
        "TrainTestSplit" => tableops::TrainTestSplit::from_params(params),
        "TakeTrain" => tableops::TakePart::from_params(params, true),
        "TakeTest" => tableops::TakePart::from_params(params, false),
        // Models.
        "Model" => model::ModelOp::from_params(params),
        "Train" => model::TrainOp::from_params(params),
        "Predict" => model::PredictOp::from_params(params),
        "Evaluate" => model::EvaluateOp::from_params(params),
        other => {
            let hint = crate::lint::nearest(other, &OPERATION_NAMES)
                .map(|n| format!("; did you mean {n:?}?"))
                .unwrap_or_default();
            Err(CoreError::BadTemplate(format!(
                "unknown operation {other:?}{hint}"
            )))
        }
    }
}

/// Accepted parameter keys for a registered operation, or `None` when the
/// operation is unknown. This is the schema the linter's strictness rule
/// (L001) enforces: the `param_*_or` helpers below silently default on a
/// missing key, so a misspelled key would otherwise vanish without a trace.
/// Each schema lives next to its op's `from_params` implementation.
pub fn param_schema(func: &str) -> Option<&'static [&'static str]> {
    Some(match func {
        "PcapLoad" => source::PCAP_LOAD_PARAMS,
        "FieldExtract" => extract::FIELD_EXTRACT_PARAMS,
        "NprintEncode" => extract::NPRINT_ENCODE_PARAMS,
        "PdmlEncode" => extract::PDML_ENCODE_PARAMS,
        "PayloadBytes" => extract::PAYLOAD_BYTES_PARAMS,
        "ConnExtract" => extract::CONN_EXTRACT_PARAMS,
        "UniExtract" => extract::UNI_EXTRACT_PARAMS,
        "FirstNStats" => extract::FIRST_N_STATS_PARAMS,
        "GroupBy" => grouping::GROUP_BY_PARAMS,
        "TimeSlice" => grouping::TIME_SLICE_PARAMS,
        "Filter" => grouping::FILTER_PARAMS,
        "ApplyAggregates" => aggregate::APPLY_AGGREGATES_PARAMS,
        "RollingAggregates" => aggregate::ROLLING_AGGREGATES_PARAMS,
        "InterArrival" => aggregate::INTER_ARRIVAL_PARAMS,
        "DampedStats" => aggregate::DAMPED_STATS_PARAMS,
        "DampedCov" => aggregate::DAMPED_COV_PARAMS,
        "FlowAssemble" => flow::FLOW_ASSEMBLE_PARAMS,
        "UniFlowSplit" => flow::UNI_FLOW_SPLIT_PARAMS,
        "Normalize" => tableops::NORMALIZE_PARAMS,
        "CorrelationFilter" => tableops::CORRELATION_FILTER_PARAMS,
        "Pca" => tableops::PCA_PARAMS,
        "Impute" => tableops::IMPUTE_PARAMS,
        "FeatureSelect" => tableops::FEATURE_SELECT_PARAMS,
        "Concat" => tableops::CONCAT_PARAMS,
        "MergeTables" => tableops::MERGE_TABLES_PARAMS,
        "Sample" => tableops::SAMPLE_PARAMS,
        "TrainTestSplit" => tableops::TRAIN_TEST_SPLIT_PARAMS,
        "TakeTrain" | "TakeTest" => tableops::TAKE_PART_PARAMS,
        "Model" => model::MODEL_PARAMS,
        "Train" => model::TRAIN_PARAMS,
        "Predict" => model::PREDICT_PARAMS,
        "Evaluate" => model::EVALUATE_PARAMS,
        _ => return None,
    })
}

// ---- audit metadata --------------------------------------------------------

/// How an operation transforms its input table's column set. This is the
/// shape/provenance *transfer function* the [`crate::audit`] abstract
/// interpreter applies per node (DESIGN.md §4h); it describes what can be
/// known about the output schema without running the op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColsTransfer {
    /// Output columns equal the input columns (row-wise ops: `Impute`,
    /// `Normalize`, `Sample`, ...).
    Preserve,
    /// Output columns are exactly the names in the given list parameter
    /// (the extraction ops' `"fields"`).
    FieldsParam(&'static str),
    /// Output columns are `pc_0 .. pc_{components-1}`.
    PcaComponents,
    /// Output is the subset named by the given list parameter
    /// (`FeatureSelect`'s `"columns"`).
    SelectParam(&'static str),
    /// Output is a data-dependent subset of the input columns
    /// (`CorrelationFilter`); names survive but which ones is unknowable
    /// statically.
    Subset,
    /// Output columns are freshly derived; the schema is data- or
    /// config-dependent in ways the analyzer does not model (encoders,
    /// aggregate expansions).
    Fresh,
    /// The op does not produce a feature table (sources, groupings, flow
    /// assembly, models, reports).
    NotTable,
}

/// Static audit metadata for one operation.
#[derive(Debug, Clone, Copy)]
pub struct OpAuditMeta {
    /// True when the op learns data-dependent parameters from the very
    /// table it transforms (fit-on-self semantics). Applying such an op to
    /// one half of a train/test split bakes that half's statistics into the
    /// output — the audit's fit-on-test / fit-asymmetry rules key off this.
    pub fitted: bool,
    /// Column-set transfer function.
    pub cols: ColsTransfer,
}

const fn meta(fitted: bool, cols: ColsTransfer) -> OpAuditMeta {
    OpAuditMeta { fitted, cols }
}

/// Audit metadata for a registered operation, or `None` when the name is
/// unknown. Structural ops the interpreter handles specially (`Concat`,
/// `MergeTables`, the split family, and the model stages) are still listed
/// so every name in [`OPERATION_NAMES`] has an entry.
pub fn audit_meta(func: &str) -> Option<OpAuditMeta> {
    use ColsTransfer::*;
    Some(match func {
        "PcapLoad" | "GroupBy" | "TimeSlice" | "Filter" | "FlowAssemble" | "UniFlowSplit" => {
            meta(false, NotTable)
        }
        "FieldExtract" | "ConnExtract" | "UniExtract" => meta(false, FieldsParam("fields")),
        "NprintEncode" | "PdmlEncode" | "PayloadBytes" | "FirstNStats" | "ApplyAggregates"
        | "RollingAggregates" | "InterArrival" | "DampedStats" | "DampedCov" => meta(false, Fresh),
        "Normalize" => meta(true, Preserve),
        "CorrelationFilter" => meta(true, Subset),
        "Pca" => meta(true, PcaComponents),
        "Impute" => meta(false, Preserve),
        "FeatureSelect" => meta(false, SelectParam("columns")),
        "Sample" => meta(false, Preserve),
        // Structural / model ops: the interpreter special-cases these, but
        // they are classified here so the table is total.
        "Concat" | "MergeTables" => meta(false, Fresh),
        "TrainTestSplit" | "TakeTrain" | "TakeTest" => meta(false, Preserve),
        "Model" | "Train" | "Predict" | "Evaluate" => meta(false, NotTable),
        _ => return None,
    })
}

/// Names of every registered operation (for docs and error hints).
pub const OPERATION_NAMES: [&str; 33] = [
    "PcapLoad",
    "FieldExtract",
    "NprintEncode",
    "PdmlEncode",
    "PayloadBytes",
    "ConnExtract",
    "UniExtract",
    "FirstNStats",
    "GroupBy",
    "TimeSlice",
    "Filter",
    "ApplyAggregates",
    "RollingAggregates",
    "InterArrival",
    "DampedStats",
    "DampedCov",
    "FlowAssemble",
    "UniFlowSplit",
    "Normalize",
    "CorrelationFilter",
    "Pca",
    "Impute",
    "FeatureSelect",
    "Concat",
    "MergeTables",
    "Sample",
    "TrainTestSplit",
    "TakeTrain",
    "TakeTest",
    "Model",
    "Train",
    "Predict",
    "Evaluate",
];

// ---- parameter helpers -----------------------------------------------------

pub(crate) fn bad_param(op: &str, why: impl Into<String>) -> CoreError {
    CoreError::BadParam {
        op: op.into(),
        why: why.into(),
    }
}

pub(crate) fn param_str(op: &str, params: &Value, key: &str) -> CoreResult<String> {
    params
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad_param(op, format!("missing string parameter {key:?}")))
}

pub(crate) fn param_str_or(params: &Value, key: &str, default: &str) -> String {
    params
        .get(key)
        .and_then(Value::as_str)
        .unwrap_or(default)
        .to_string()
}

pub(crate) fn param_str_list(op: &str, params: &Value, key: &str) -> CoreResult<Vec<String>> {
    let arr = params
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| bad_param(op, format!("missing list parameter {key:?}")))?;
    arr.iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad_param(op, format!("{key:?} entries must be strings")))
        })
        .collect()
}

pub(crate) fn param_f64_or(params: &Value, key: &str, default: f64) -> f64 {
    params.get(key).and_then(Value::as_f64).unwrap_or(default)
}

pub(crate) fn param_u64_or(params: &Value, key: &str, default: u64) -> u64 {
    params.get(key).and_then(Value::as_u64).unwrap_or(default)
}

pub(crate) fn param_usize_or(params: &Value, key: &str, default: usize) -> usize {
    params
        .get(key)
        .and_then(Value::as_u64)
        .map(|v| v as usize)
        .unwrap_or(default)
}

pub(crate) fn param_bool_or(params: &Value, key: &str, default: bool) -> bool {
    params.get(key).and_then(Value::as_bool).unwrap_or(default)
}

pub(crate) fn param_f64_list_or(params: &Value, key: &str, default: &[f64]) -> Vec<f64> {
    params
        .get(key)
        .and_then(Value::as_array)
        .map(|arr| arr.iter().filter_map(Value::as_f64).collect())
        .unwrap_or_else(|| default.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn every_registered_name_builds_or_reports_params() {
        // Each name must at least be recognized (i.e., not "unknown op").
        for name in OPERATION_NAMES {
            match build_op(name, &json!({})) {
                Ok(_) => {}
                Err(CoreError::BadParam { .. }) => {}
                Err(other) => panic!("{name}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn every_registered_name_has_audit_meta() {
        for name in OPERATION_NAMES {
            assert!(audit_meta(name).is_some(), "{name} lacks audit metadata");
        }
        assert!(audit_meta("Nonsense").is_none());
    }

    #[test]
    fn unknown_op_is_template_error() {
        assert!(matches!(
            build_op("Nonsense", &json!({})),
            Err(CoreError::BadTemplate(_))
        ));
    }

    #[test]
    fn param_helpers() {
        let p = json!({"s": "x", "list": ["a", "b"], "n": 3, "f": 0.5, "b": true});
        assert_eq!(param_str("t", &p, "s").unwrap(), "x");
        assert!(param_str("t", &p, "missing").is_err());
        assert_eq!(param_str_list("t", &p, "list").unwrap(), vec!["a", "b"]);
        assert_eq!(param_u64_or(&p, "n", 9), 3);
        assert_eq!(param_u64_or(&p, "nope", 9), 9);
        assert_eq!(param_f64_or(&p, "f", 1.0), 0.5);
        assert!(param_bool_or(&p, "b", false));
        assert_eq!(param_f64_list_or(&p, "zz", &[1.0]), vec![1.0]);
    }
}
