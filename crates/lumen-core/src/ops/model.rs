//! Model operations: declare, train, predict, evaluate.
//!
//! `Model` declares a model definition (kind + hyperparameters + optional
//! training-time preprocessing); `Train` instantiates it, fits the
//! preprocessing chain and the classifier on the training table; `Predict`
//! replays the fitted chain on unseen tables; `Evaluate` reduces predictions
//! to the precision/recall/F1/accuracy/AUC report the benchmark stores.
//!
//! Anomaly detectors (OCSVM, GMM, autoencoders, KitNET, Nystroem variants)
//! are wrapped in [`lumen_ml::model::Calibrated`], so they train only on the
//! benign rows and alarm above a benign-quantile threshold — faithful to how
//! the original papers deploy them, while exposing the same classifier
//! interface as the supervised models.

use std::sync::Arc;

use lumen_ml::autoencoder::{Autoencoder, AutoencoderConfig};
use lumen_ml::bayes::GaussianNb;
use lumen_ml::dataset::Dataset;
use lumen_ml::forest::{ForestConfig, RandomForest};
use lumen_ml::gmm::{Gmm, GmmConfig};
use lumen_ml::kitnet::{Kitnet, KitnetConfig};
use lumen_ml::knn::{Knn, KnnConfig};
use lumen_ml::linear::{LinearSvm, LogisticRegression, SgdConfig};
use lumen_ml::matrix::Matrix;
use lumen_ml::metrics::{confusion, roc_auc};
use lumen_ml::model::{Calibrated, Classifier};
use lumen_ml::nystroem::{NystroemConfig, NystroemDetector};
use lumen_ml::ocsvm::{OcsvmConfig, OneClassSvm};
use lumen_ml::preprocess::{
    CorrelationFilter, Imputer, MinMaxScaler, Pca, RobustScaler, StandardScaler, Transform,
};
use lumen_ml::search::{default_grid, grid_search, ModelSpec};
use lumen_ml::tree::{DecisionTree, TreeConfig};
use lumen_ml::MlResult;
use serde_json::Value;

use crate::data::{Data, DataKind, ModelDef, PredOutput, Report, Trained};
use crate::ops::{bad_param, param_f64_or, param_u64_or, param_usize_or, Operation};
use crate::{CoreError, CoreResult};

// ---- accepted parameter keys (the linter's L001 schemas) -------------------
//
// `Model` accepts the union over every model kind's hyperparameters plus
// the training-time preprocessing switches read at `Train` time.
pub(crate) const MODEL_PARAMS: &[&str] = &[
    "model_type",
    "seed",
    "benign_quantile",
    "normalize",
    "corr_filter",
    "pca",
    "n_trees",
    "max_depth",
    "min_samples_split",
    "k",
    "max_train",
    "epochs",
    "folds",
    "nu",
    "landmarks",
    "mixture",
    "hidden",
    "max_cluster",
    "threads",
];
pub(crate) const TRAIN_PARAMS: &[&str] = &[];
pub(crate) const PREDICT_PARAMS: &[&str] = &[];
pub(crate) const EVALUATE_PARAMS: &[&str] = &[];

/// Model kinds the `Model` operation recognizes.
pub const MODEL_KINDS: [&str; 14] = [
    "DecisionTree",
    "RandomForest",
    "GaussianNB",
    "KNN",
    "LogisticRegression",
    "LinearSVM",
    "Committee",
    "AutoML",
    "OCSVM",
    "NystroemGMM",
    "NystroemOCSVM",
    "GMM",
    "Autoencoder",
    "Kitsune",
];

/// `Model`: declares a model definition.
pub struct ModelOp {
    def: ModelDef,
}

impl ModelOp {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let kind = params
            .get("model_type")
            .and_then(Value::as_str)
            .ok_or_else(|| bad_param("Model", "missing string parameter \"model_type\""))?
            .to_string();
        if !MODEL_KINDS.contains(&kind.as_str()) {
            return Err(bad_param("Model", format!("unknown model_type {kind:?}")));
        }
        let seed = param_u64_or(params, "seed", 0);
        // Validate eagerly so template errors surface at compile time, not
        // at Train time.
        let def = ModelDef {
            kind,
            params: params.clone(),
            seed,
        };
        build_classifier(&def)?;
        Ok(Box::new(ModelOp { def }))
    }
}

impl Operation for ModelOp {
    fn name(&self) -> &'static str {
        "Model"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Model
    }
    fn execute(&self, _inputs: &[&Data]) -> CoreResult<Data> {
        Ok(Data::Model(self.def.clone()))
    }
}

/// Grid-search model that defers selection to fit time (nPrint's AutoML).
struct AutoMl {
    folds: usize,
    seed: u64,
    chosen: Option<Box<dyn Classifier>>,
}

impl Classifier for AutoMl {
    fn fit(&mut self, data: &Dataset) -> MlResult<()> {
        let result = grid_search(&default_grid(), data, self.folds, self.seed)?;
        self.chosen = Some(result.model);
        Ok(())
    }
    fn predict_row(&self, row: &[f64]) -> u8 {
        self.chosen.as_ref().map_or(0, |m| m.predict_row(row))
    }
    fn score_row(&self, row: &[f64]) -> f64 {
        self.chosen.as_ref().map_or(0.0, |m| m.score_row(row))
    }
    fn name(&self) -> &'static str {
        "automl"
    }
}

/// Instantiates the bare classifier for a definition.
pub(crate) fn build_classifier(def: &ModelDef) -> CoreResult<Box<dyn Classifier>> {
    let p = &def.params;
    let seed = def.seed;
    // Kernel worker count for the models with parallel hot paths
    // (0 = process default, i.e. whatever the runner or the machine says).
    let threads = param_usize_or(p, "threads", 0);
    let quantile = param_f64_or(p, "benign_quantile", 0.98);
    if !(0.0..=1.0).contains(&quantile) {
        return Err(bad_param("Model", "benign_quantile must be in [0,1]"));
    }
    let model: Box<dyn Classifier> = match def.kind.as_str() {
        "DecisionTree" => Box::new(DecisionTree::new(TreeConfig {
            max_depth: param_usize_or(p, "max_depth", 12),
            min_samples_split: param_usize_or(p, "min_samples_split", 4),
            seed,
            ..TreeConfig::default()
        })),
        "RandomForest" => Box::new(RandomForest::new(ForestConfig {
            n_trees: param_usize_or(p, "n_trees", 30),
            max_depth: param_usize_or(p, "max_depth", 12),
            seed,
            ..ForestConfig::default()
        })),
        "GaussianNB" => Box::new(GaussianNb::new()),
        "KNN" => Box::new(Knn::new(KnnConfig {
            k: param_usize_or(p, "k", 5),
            max_train: param_usize_or(p, "max_train", 4000),
            threads,
        })),
        "LogisticRegression" => Box::new(LogisticRegression::new(SgdConfig {
            epochs: param_usize_or(p, "epochs", 30),
            seed,
            ..SgdConfig::default()
        })),
        "LinearSVM" => Box::new(LinearSvm::new(SgdConfig {
            epochs: param_usize_or(p, "epochs", 30),
            seed,
            ..SgdConfig::default()
        })),
        "Committee" => ModelSpec::Committee.build(seed),
        "AutoML" => Box::new(AutoMl {
            folds: param_usize_or(p, "folds", 3),
            seed,
            chosen: None,
        }),
        "OCSVM" => Box::new(Calibrated::with_quantile(
            OneClassSvm::new(OcsvmConfig {
                nu: param_f64_or(p, "nu", 0.05),
                seed,
                threads,
                ..OcsvmConfig::default()
            }),
            quantile,
        )),
        "NystroemGMM" => Box::new(Calibrated::with_quantile(
            NystroemDetector::gmm(
                NystroemConfig {
                    n_components: param_usize_or(p, "landmarks", 64),
                    seed,
                    threads,
                    ..NystroemConfig::default()
                },
                GmmConfig {
                    n_components: param_usize_or(p, "mixture", 4),
                    seed,
                    threads,
                    ..GmmConfig::default()
                },
            ),
            quantile,
        )),
        "NystroemOCSVM" => Box::new(Calibrated::with_quantile(
            NystroemDetector::ocsvm(
                NystroemConfig {
                    n_components: param_usize_or(p, "landmarks", 64),
                    seed,
                    threads,
                    ..NystroemConfig::default()
                },
                OcsvmConfig {
                    nu: param_f64_or(p, "nu", 0.05),
                    seed,
                    threads,
                    ..OcsvmConfig::default()
                },
            ),
            quantile,
        )),
        "GMM" => Box::new(Calibrated::with_quantile(
            Gmm::new(GmmConfig {
                n_components: param_usize_or(p, "mixture", 4),
                seed,
                threads,
                ..GmmConfig::default()
            }),
            quantile,
        )),
        "Autoencoder" => Box::new(Calibrated::with_quantile(
            Autoencoder::new(AutoencoderConfig {
                hidden: vec![param_usize_or(p, "hidden", 8)],
                epochs: param_usize_or(p, "epochs", 40),
                seed,
                ..AutoencoderConfig::default()
            }),
            quantile,
        )),
        "Kitsune" => Box::new(Calibrated::with_quantile(
            Kitnet::new(KitnetConfig {
                max_cluster: param_usize_or(p, "max_cluster", 10),
                epochs: param_usize_or(p, "epochs", 25),
                seed,
                ..KitnetConfig::default()
            }),
            quantile,
        )),
        other => return Err(bad_param("Model", format!("unknown model_type {other:?}"))),
    };
    Ok(model)
}

/// A classifier with a training-time-fitted preprocessing chain
/// (impute → optional scaler → optional correlation filter → optional PCA).
///
/// Because the chain is fitted on training data and *stored*, the identical
/// transform replays on test data — the correct train/test discipline that a
/// fit-on-self table op cannot give.
pub struct PreprocessedClassifier {
    imputer: Imputer,
    scaler: Option<Box<dyn Transform>>,
    corr: Option<CorrelationFilter>,
    pca: Option<Pca>,
    inner: Box<dyn Classifier>,
}

impl PreprocessedClassifier {
    /// Builds from a model definition's preprocessing parameters.
    pub fn from_def(def: &ModelDef) -> CoreResult<PreprocessedClassifier> {
        let p = &def.params;
        let scaler: Option<Box<dyn Transform>> = match p.get("normalize").and_then(Value::as_str) {
            None => None,
            Some("zscore") => Some(Box::new(StandardScaler::default())),
            Some("minmax") => Some(Box::new(MinMaxScaler::default())),
            Some("robust") => Some(Box::new(RobustScaler::default())),
            Some(other) => {
                return Err(bad_param(
                    "Model",
                    format!("unknown normalize method {other:?}"),
                ))
            }
        };
        let corr = p
            .get("corr_filter")
            .and_then(Value::as_f64)
            .map(CorrelationFilter::new);
        let pca = p
            .get("pca")
            .and_then(Value::as_u64)
            .map(|k| Pca::new(k as usize));
        Ok(PreprocessedClassifier {
            imputer: Imputer::default(),
            scaler,
            corr,
            pca,
            inner: build_classifier(def)?,
        })
    }

    fn apply(&self, x: &Matrix) -> Matrix {
        let mut x = self.imputer.transform(x);
        if let Some(s) = &self.scaler {
            x = s.transform(&x);
        }
        if let Some(c) = &self.corr {
            x = c.transform(&x);
        }
        if let Some(p) = &self.pca {
            x = p.transform(&x);
        }
        x
    }
}

impl Classifier for PreprocessedClassifier {
    fn fit(&mut self, data: &Dataset) -> MlResult<()> {
        let mut x = self.imputer.fit_transform(&data.x)?;
        if let Some(s) = &mut self.scaler {
            s.fit(&x)?;
            x = s.transform(&x);
        }
        if let Some(c) = &mut self.corr {
            x = c.fit_transform(&x)?;
        }
        if let Some(p) = &mut self.pca {
            x = p.fit_transform(&x)?;
        }
        self.inner.fit(&Dataset::new(x, data.y.clone())?)
    }

    fn predict_row(&self, row: &[f64]) -> u8 {
        let m = Matrix::from_rows(vec![row.to_vec()]).expect("row");
        let t = self.apply(&m);
        self.inner.predict_row(t.row(0))
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        let m = Matrix::from_rows(vec![row.to_vec()]).expect("row");
        let t = self.apply(&m);
        self.inner.score_row(t.row(0))
    }

    fn predict(&self, x: &Matrix) -> Vec<u8> {
        let t = self.apply(x);
        self.inner.predict(&t)
    }

    fn scores(&self, x: &Matrix) -> Vec<f64> {
        let t = self.apply(x);
        self.inner.scores(&t)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// `Train`: fits the declared model (plus preprocessing) on a table.
pub struct TrainOp;

impl TrainOp {
    pub fn from_params(_params: &Value) -> CoreResult<Box<dyn Operation>> {
        Ok(Box::new(TrainOp))
    }
}

impl Operation for TrainOp {
    fn name(&self) -> &'static str {
        "Train"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Model, DataKind::Table]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Trained
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Model(def) = inputs[0] else {
            unreachable!("type-checked")
        };
        let table = inputs[1].as_table()?;
        let mut model = PreprocessedClassifier::from_def(def)?;
        model.fit(&table.to_dataset()?).map_err(|e| match e {
            // Cancellation is a supervision outcome, not an op failure.
            lumen_ml::MlError::Cancelled => CoreError::Cancelled,
            e => CoreError::OpFailed {
                op: "Train".into(),
                why: e.to_string(),
            },
        })?;
        Ok(Data::Trained(Trained {
            model: Arc::new(model),
            def: def.clone(),
            feature_names: table.names.clone(),
        }))
    }
}

/// `Predict`: applies a trained model to a (schema-matching) table.
pub struct PredictOp;

impl PredictOp {
    pub fn from_params(_params: &Value) -> CoreResult<Box<dyn Operation>> {
        Ok(Box::new(PredictOp))
    }
}

impl Operation for PredictOp {
    fn name(&self) -> &'static str {
        "Predict"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Trained, DataKind::Table]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Predictions
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Trained(trained) = inputs[0] else {
            unreachable!("type-checked")
        };
        let table = inputs[1].as_table()?;
        if trained.feature_names != table.names {
            return Err(CoreError::OpFailed {
                op: "Predict".into(),
                why: format!(
                    "feature schema mismatch: trained on {} columns, got {}",
                    trained.feature_names.len(),
                    table.names.len()
                ),
            });
        }
        Ok(Data::Predictions(Arc::new(PredOutput {
            preds: trained.model.predict(&table.x),
            scores: trained.model.scores(&table.x),
            labels: table.labels.clone(),
            tags: table.tags.clone(),
        })))
    }
}

/// `Evaluate`: reduces predictions to the benchmark's metric report.
pub struct EvaluateOp;

impl EvaluateOp {
    pub fn from_params(_params: &Value) -> CoreResult<Box<dyn Operation>> {
        Ok(Box::new(EvaluateOp))
    }

    /// Computes the report for any prediction set (shared with the runner).
    pub fn report(pred: &PredOutput) -> Report {
        let c = confusion(&pred.preds, &pred.labels);
        Report {
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
            accuracy: c.accuracy(),
            auc: roc_auc(&pred.scores, &pred.labels),
            tp: c.tp,
            fp: c.fp,
            tn: c.tn,
            fn_: c.fn_,
        }
    }
}

impl Operation for EvaluateOp {
    fn name(&self) -> &'static str {
        "Evaluate"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Predictions]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Report
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Predictions(p) = inputs[0] else {
            unreachable!("type-checked")
        };
        Ok(Data::Report(Self::report(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use serde_json::json;

    fn linearly_separable(n: usize) -> Data {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let labels: Vec<u8> = (0..n).map(|i| u8::from(i >= n / 2)).collect();
        let tags = labels.iter().map(|&l| u32::from(l) * 2).collect();
        Data::Table(Arc::new(
            Table::new(
                vec!["a".into(), "b".into()],
                Matrix::from_rows(rows).unwrap(),
                labels,
                tags,
            )
            .unwrap(),
        ))
    }

    fn train_and_predict(model_params: Value) -> Report {
        let model = ModelOp::from_params(&model_params)
            .unwrap()
            .execute(&[])
            .unwrap();
        let data = linearly_separable(60);
        let trained = TrainOp::from_params(&json!({}))
            .unwrap()
            .execute(&[&model, &data])
            .unwrap();
        let preds = PredictOp::from_params(&json!({}))
            .unwrap()
            .execute(&[&trained, &data])
            .unwrap();
        let Data::Report(r) = EvaluateOp::from_params(&json!({}))
            .unwrap()
            .execute(&[&preds])
            .unwrap()
        else {
            panic!()
        };
        r
    }

    #[test]
    fn random_forest_end_to_end() {
        let r = train_and_predict(json!({"model_type": "RandomForest", "n_trees": 10}));
        assert!(r.precision > 0.95, "precision {}", r.precision);
        assert!(r.recall > 0.95, "recall {}", r.recall);
        assert!(r.auc > 0.95);
    }

    #[test]
    fn preprocessing_chain_applies() {
        let r = train_and_predict(json!({
            "model_type": "DecisionTree",
            "normalize": "zscore",
            "corr_filter": 0.99
        }));
        // Column b = 2a is dropped by the filter, but a alone separates.
        assert!(r.f1 > 0.95, "f1 {}", r.f1);
    }

    #[test]
    fn anomaly_model_trains_on_benign_only() {
        let r =
            train_and_predict(json!({"model_type": "GMM", "mixture": 2, "benign_quantile": 1.0}));
        // GMM trained on low-valued benign rows should flag the far half.
        assert!(r.recall > 0.5, "recall {}", r.recall);
        assert!(r.precision > 0.9, "precision {}", r.precision);
    }

    #[test]
    fn predict_rejects_schema_mismatch() {
        let model = ModelOp::from_params(&json!({"model_type": "GaussianNB"}))
            .unwrap()
            .execute(&[])
            .unwrap();
        let data = linearly_separable(20);
        let trained = TrainOp::from_params(&json!({}))
            .unwrap()
            .execute(&[&model, &data])
            .unwrap();
        let other = Data::Table(Arc::new(
            Table::new(
                vec!["z".into()],
                Matrix::zeros(3, 1),
                vec![0, 0, 0],
                vec![0, 0, 0],
            )
            .unwrap(),
        ));
        let err = PredictOp::from_params(&json!({}))
            .unwrap()
            .execute(&[&trained, &other])
            .unwrap_err();
        assert!(matches!(err, CoreError::OpFailed { .. }));
    }

    #[test]
    fn unknown_model_type_rejected_at_declaration() {
        assert!(ModelOp::from_params(&json!({"model_type": "Quantum"})).is_err());
        assert!(ModelOp::from_params(&json!({})).is_err());
    }

    #[test]
    fn automl_picks_something_reasonable() {
        let r = train_and_predict(json!({"model_type": "AutoML", "folds": 3}));
        assert!(r.f1 > 0.9, "f1 {}", r.f1);
    }

    #[test]
    fn every_model_kind_builds() {
        for kind in MODEL_KINDS {
            let def = ModelDef {
                kind: kind.to_string(),
                params: json!({"model_type": kind}),
                seed: 1,
            };
            build_classifier(&def).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }
}
