//! Source operations: loading packets from capture files.

use std::sync::Arc;

use serde_json::Value;

use crate::data::{Data, DataKind, PacketData};
use crate::ops::{bad_param, param_bool_or, param_str, param_usize_or, Operation};
use crate::par::parse_capture;
use crate::{CoreError, CoreResult};

/// Accepted parameter keys (the linter's L001 schema).
pub(crate) const PCAP_LOAD_PARAMS: &[&str] = &["path", "threads", "max_packets", "strict"];

/// `PcapLoad`: reads a libpcap file from disk and parses it into an
/// (unlabeled) packet source — the entry point for running pipelines on
/// real captures rather than pre-bound data.
///
/// Parameters: `path` (required), `threads` (parse workers, default 4),
/// `max_packets` (optional deterministic stride subsample), `strict`
/// (default false: corrupt records are skipped with resync; true: the
/// first corrupt record aborts the load).
pub struct PcapLoad {
    path: String,
    threads: usize,
    max_packets: usize,
    strict: bool,
}

impl PcapLoad {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let path = param_str("PcapLoad", params, "path")?;
        let threads = param_usize_or(params, "threads", 4);
        if threads == 0 {
            return Err(bad_param("PcapLoad", "threads must be positive"));
        }
        Ok(Box::new(PcapLoad {
            path,
            threads,
            max_packets: param_usize_or(params, "max_packets", usize::MAX),
            strict: param_bool_or(params, "strict", false),
        }))
    }
}

impl Operation for PcapLoad {
    fn name(&self) -> &'static str {
        "PcapLoad"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Packets
    }
    fn execute(&self, _inputs: &[&Data]) -> CoreResult<Data> {
        let bytes = std::fs::read(&self.path).map_err(|e| CoreError::OpFailed {
            op: "PcapLoad".into(),
            why: format!("{}: {e}", self.path),
        })?;
        let (link, mut packets) = if self.strict {
            lumen_net::pcap::from_bytes(&bytes)?
        } else {
            let rec = lumen_net::pcap::from_bytes_recovering(
                &bytes,
                lumen_net::pcap::PcapLimits::default(),
            )?;
            (rec.link, rec.packets)
        };
        if packets.len() > self.max_packets {
            let step = packets.len().div_ceil(self.max_packets);
            packets = packets.into_iter().step_by(step).collect();
        }
        let (metas, _stats) = parse_capture(link, &packets, self.threads);
        Ok(Data::Packets(Arc::new(PacketData::unlabeled(link, metas))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_net::builder::{udp_packet, UdpParams};
    use lumen_net::{CapturedPacket, LinkType, MacAddr};
    use serde_json::json;
    use std::net::Ipv4Addr;

    fn sample_pcap(n: usize) -> Vec<u8> {
        let packets: Vec<CapturedPacket> = (0..n)
            .map(|i| {
                CapturedPacket::new(
                    i as u64 * 1000,
                    udp_packet(UdpParams {
                        src_mac: MacAddr::from_id(1),
                        dst_mac: MacAddr::from_id(2),
                        src_ip: Ipv4Addr::new(10, 9, 8, 7),
                        dst_ip: Ipv4Addr::new(10, 9, 8, 1),
                        src_port: 1000,
                        dst_port: 53,
                        ttl: 64,
                        payload: b"x",
                    }),
                )
            })
            .collect();
        lumen_net::pcap::to_bytes(LinkType::Ethernet, &packets)
    }

    #[test]
    fn loads_and_parses_a_file() {
        let path = std::env::temp_dir().join("lumen_pcapload_test.pcap");
        std::fs::write(&path, sample_pcap(25)).unwrap();
        let op = PcapLoad::from_params(&json!({"path": path.to_str().unwrap()})).unwrap();
        let Data::Packets(p) = op.execute(&[]).unwrap() else {
            panic!()
        };
        assert_eq!(p.len(), 25);
        assert!(p.labels.iter().all(|&l| l == 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn max_packets_subsamples() {
        let path = std::env::temp_dir().join("lumen_pcapload_sub.pcap");
        std::fs::write(&path, sample_pcap(100)).unwrap();
        let op = PcapLoad::from_params(&json!({"path": path.to_str().unwrap(), "max_packets": 10}))
            .unwrap();
        let Data::Packets(p) = op.execute(&[]).unwrap() else {
            panic!()
        };
        assert!(p.len() <= 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_op_failure() {
        let op = PcapLoad::from_params(&json!({"path": "/nonexistent/x.pcap"})).unwrap();
        assert!(matches!(op.execute(&[]), Err(CoreError::OpFailed { .. })));
    }

    #[test]
    fn missing_path_param_rejected() {
        assert!(PcapLoad::from_params(&json!({})).is_err());
    }

    #[test]
    fn corrupt_record_is_skipped_unless_strict() {
        let mut bytes = sample_pcap(20);
        // Lie about the first record's length: strict load fails, the
        // default recovering load skips that record and keeps going.
        bytes[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        let path = std::env::temp_dir().join("lumen_pcapload_chaos.pcap");
        std::fs::write(&path, &bytes).unwrap();
        let p = path.to_str().unwrap();

        let op = PcapLoad::from_params(&json!({"path": p})).unwrap();
        let Data::Packets(d) = op.execute(&[]).unwrap() else {
            panic!()
        };
        assert_eq!(d.len(), 19);

        let op = PcapLoad::from_params(&json!({"path": p, "strict": true})).unwrap();
        assert!(op.execute(&[]).is_err());
        std::fs::remove_file(&path).ok();
    }
}
