//! Table-level transforms: normalization, feature selection, concatenation,
//! sampling, and train/test splitting.
//!
//! The data-dependent transforms here (`Normalize`, `CorrelationFilter`,
//! `Pca`, `Impute`) fit on the table they receive — useful for exploration.
//! When a transform must be fitted on *training* data only and replayed on
//! test data, configure it on the `Model` operation instead (see
//! [`crate::ops::model`]); the benchmark's algorithm pipelines use that form.

use std::sync::Arc;

use lumen_ml::preprocess::{
    CorrelationFilter, Imputer, MinMaxScaler, Pca, RobustScaler, StandardScaler, Transform,
};
use lumen_util::Rng;
use serde_json::Value;

use crate::data::{Data, DataKind, SplitPair};
use crate::ops::{
    bad_param, param_bool_or, param_f64_or, param_str, param_str_list, param_u64_or,
    param_usize_or, Operation,
};
use crate::table::Table;
use crate::{CoreError, CoreResult};

// ---- accepted parameter keys (the linter's L001 schemas) -------------------

pub(crate) const NORMALIZE_PARAMS: &[&str] = &["method"];
pub(crate) const CORRELATION_FILTER_PARAMS: &[&str] = &["threshold"];
pub(crate) const PCA_PARAMS: &[&str] = &["components"];
pub(crate) const IMPUTE_PARAMS: &[&str] = &[];
pub(crate) const FEATURE_SELECT_PARAMS: &[&str] = &["columns"];
pub(crate) const CONCAT_PARAMS: &[&str] = &[];
pub(crate) const MERGE_TABLES_PARAMS: &[&str] = &[];
pub(crate) const SAMPLE_PARAMS: &[&str] = &["frac", "max_rows", "balance", "seed"];
pub(crate) const TRAIN_TEST_SPLIT_PARAMS: &[&str] = &["train_frac", "seed"];
pub(crate) const TAKE_PART_PARAMS: &[&str] = &[];

/// `Normalize`: z-score / min-max / robust column scaling (fit on self).
pub struct Normalize {
    method: String,
}

impl Normalize {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let method = param_str("Normalize", params, "method")?;
        if !["zscore", "minmax", "robust"].contains(&method.as_str()) {
            return Err(bad_param("Normalize", format!("unknown method {method:?}")));
        }
        Ok(Box::new(Normalize { method }))
    }
}

impl Operation for Normalize {
    fn name(&self) -> &'static str {
        "Normalize"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Table]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let t = inputs[0].as_table()?;
        let x = match self.method.as_str() {
            "zscore" => StandardScaler::default().fit_transform(&t.x),
            "minmax" => MinMaxScaler::default().fit_transform(&t.x),
            _ => RobustScaler::default().fit_transform(&t.x),
        }
        .map_err(CoreError::from)?;
        Ok(Data::Table(Arc::new(t.with_matrix(t.names.clone(), x)?)))
    }
}

/// `CorrelationFilter`: drops near-duplicate columns (fit on self).
pub struct CorrelationFilterOp {
    threshold: f64,
}

impl CorrelationFilterOp {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let threshold = param_f64_or(params, "threshold", 0.95);
        if !(0.0..=1.0).contains(&threshold) {
            return Err(bad_param("CorrelationFilter", "threshold must be in [0,1]"));
        }
        Ok(Box::new(CorrelationFilterOp { threshold }))
    }
}

impl Operation for CorrelationFilterOp {
    fn name(&self) -> &'static str {
        "CorrelationFilter"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Table]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let t = inputs[0].as_table()?;
        let mut filter = CorrelationFilter::new(self.threshold);
        let x = filter.fit_transform(&t.x).map_err(CoreError::from)?;
        let names = filter.kept().iter().map(|&i| t.names[i].clone()).collect();
        Ok(Data::Table(Arc::new(t.with_matrix(names, x)?)))
    }
}

/// `Pca`: projects onto the top principal components (fit on self).
pub struct PcaOp {
    k: usize,
}

impl PcaOp {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let k = param_usize_or(params, "components", 8);
        if k == 0 {
            return Err(bad_param("Pca", "components must be positive"));
        }
        Ok(Box::new(PcaOp { k }))
    }
}

impl Operation for PcaOp {
    fn name(&self) -> &'static str {
        "Pca"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Table]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let t = inputs[0].as_table()?;
        let mut pca = Pca::new(self.k);
        let x = pca.fit_transform(&t.x).map_err(CoreError::from)?;
        let names = (0..x.cols()).map(|i| format!("pc_{i}")).collect();
        Ok(Data::Table(Arc::new(t.with_matrix(names, x)?)))
    }
}

/// `Impute`: replaces NaN/inf cells with column means.
pub struct ImputeOp;

impl ImputeOp {
    pub fn from_params(_params: &Value) -> CoreResult<Box<dyn Operation>> {
        Ok(Box::new(ImputeOp))
    }
}

impl Operation for ImputeOp {
    fn name(&self) -> &'static str {
        "Impute"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Table]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let t = inputs[0].as_table()?;
        let x = Imputer::default()
            .fit_transform(&t.x)
            .map_err(CoreError::from)?;
        Ok(Data::Table(Arc::new(t.with_matrix(t.names.clone(), x)?)))
    }
}

/// `FeatureSelect`: keeps the named columns, in order.
pub struct FeatureSelect {
    names: Vec<String>,
}

impl FeatureSelect {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let names = param_str_list("FeatureSelect", params, "columns")?;
        if names.is_empty() {
            return Err(bad_param("FeatureSelect", "columns must be non-empty"));
        }
        Ok(Box::new(FeatureSelect { names }))
    }
}

impl Operation for FeatureSelect {
    fn name(&self) -> &'static str {
        "FeatureSelect"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Table]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let t = inputs[0].as_table()?;
        Ok(Data::Table(Arc::new(t.select_cols(&self.names)?)))
    }
}

/// `Concat`: horizontal join of per-instance tables (same rows).
pub struct Concat;

impl Concat {
    pub fn from_params(_params: &Value) -> CoreResult<Box<dyn Operation>> {
        Ok(Box::new(Concat))
    }
}

impl Operation for Concat {
    fn name(&self) -> &'static str {
        "Concat"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Table]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn variadic(&self) -> bool {
        true
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let mut acc: Option<Table> = None;
        for d in inputs {
            let t = d.as_table()?;
            acc = Some(match acc {
                None => (**t).clone(),
                Some(a) => a.hcat(t)?,
            });
        }
        Ok(Data::Table(Arc::new(acc.ok_or_else(|| {
            CoreError::TypeError("Concat needs at least one input".into())
        })?)))
    }
}

/// `MergeTables`: vertical concatenation of same-schema tables — the
/// merged-dataset training heuristic of §5.4.
pub struct MergeTables;

impl MergeTables {
    pub fn from_params(_params: &Value) -> CoreResult<Box<dyn Operation>> {
        Ok(Box::new(MergeTables))
    }
}

impl Operation for MergeTables {
    fn name(&self) -> &'static str {
        "MergeTables"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Table]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn variadic(&self) -> bool {
        true
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let mut acc: Option<Table> = None;
        for d in inputs {
            let t = d.as_table()?;
            acc = Some(match acc {
                None => (**t).clone(),
                Some(a) => a.vcat(t)?,
            });
        }
        Ok(Data::Table(Arc::new(acc.ok_or_else(|| {
            CoreError::TypeError("MergeTables needs at least one input".into())
        })?)))
    }
}

/// `Sample`: random subsample, optionally class-balanced.
pub struct Sample {
    frac: f64,
    max_rows: usize,
    balance: bool,
    seed: u64,
}

impl Sample {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let frac = param_f64_or(params, "frac", 1.0);
        if !(0.0 < frac && frac <= 1.0) {
            return Err(bad_param("Sample", "frac must be in (0, 1]"));
        }
        Ok(Box::new(Sample {
            frac,
            max_rows: param_usize_or(params, "max_rows", usize::MAX),
            balance: param_bool_or(params, "balance", false),
            seed: param_u64_or(params, "seed", 0),
        }))
    }
}

impl Operation for Sample {
    fn name(&self) -> &'static str {
        "Sample"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Table]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let t = inputs[0].as_table()?;
        let n = t.rows();
        let target = ((n as f64 * self.frac) as usize)
            .min(self.max_rows)
            .max(1.min(n));
        let mut rng = Rng::new(self.seed);
        let idx: Vec<usize> = if self.balance {
            // Keep all minority-class rows, downsample the majority to match.
            let pos: Vec<usize> = (0..n).filter(|&i| t.labels[i] == 1).collect();
            let neg: Vec<usize> = (0..n).filter(|&i| t.labels[i] == 0).collect();
            let (minor, major) = if pos.len() <= neg.len() {
                (pos, neg)
            } else {
                (neg, pos)
            };
            let keep_major = rng.sample_indices(major.len(), minor.len().max(1));
            let mut idx: Vec<usize> = minor;
            idx.extend(keep_major.into_iter().map(|i| major[i]));
            idx.sort_unstable();
            idx
        } else {
            let mut idx = rng.sample_indices(n, target);
            idx.sort_unstable();
            idx
        };
        Ok(Data::Table(Arc::new(t.select_rows(&idx))))
    }
}

/// `TrainTestSplit`: stratified split into a [`SplitPair`].
pub struct TrainTestSplit {
    train_frac: f64,
    seed: u64,
}

impl TrainTestSplit {
    pub fn from_params(params: &Value) -> CoreResult<Box<dyn Operation>> {
        let train_frac = param_f64_or(params, "train_frac", 0.7);
        if !(0.0 < train_frac && train_frac < 1.0) {
            return Err(bad_param("TrainTestSplit", "train_frac must be in (0, 1)"));
        }
        Ok(Box::new(TrainTestSplit {
            train_frac,
            seed: param_u64_or(params, "seed", 0),
        }))
    }
}

impl Operation for TrainTestSplit {
    fn name(&self) -> &'static str {
        "TrainTestSplit"
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Table]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Split
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let t = inputs[0].as_table()?;
        let mut rng = Rng::new(self.seed);
        // Stratified index split (mirrors lumen_ml::train_test_split but
        // keeps table metadata).
        let mut pos: Vec<usize> = (0..t.rows()).filter(|&i| t.labels[i] == 1).collect();
        let mut neg: Vec<usize> = (0..t.rows()).filter(|&i| t.labels[i] == 0).collect();
        rng.shuffle(&mut pos);
        rng.shuffle(&mut neg);
        let cut = |v: &[usize]| ((v.len() as f64) * self.train_frac).round() as usize;
        let (pc, nc) = (cut(&pos), cut(&neg));
        let train_idx: Vec<usize> = pos[..pc].iter().chain(neg[..nc].iter()).copied().collect();
        let test_idx: Vec<usize> = pos[pc..].iter().chain(neg[nc..].iter()).copied().collect();
        Ok(Data::Split(SplitPair {
            train: Arc::new(t.select_rows(&train_idx)),
            test: Arc::new(t.select_rows(&test_idx)),
        }))
    }
}

/// `TakeTrain` / `TakeTest`: projects one half of a [`SplitPair`].
pub struct TakePart {
    train: bool,
}

impl TakePart {
    pub fn from_params(_params: &Value, train: bool) -> CoreResult<Box<dyn Operation>> {
        Ok(Box::new(TakePart { train }))
    }
}

impl Operation for TakePart {
    fn name(&self) -> &'static str {
        if self.train {
            "TakeTrain"
        } else {
            "TakeTest"
        }
    }
    fn input_kinds(&self) -> Vec<DataKind> {
        vec![DataKind::Split]
    }
    fn output_kind(&self) -> DataKind {
        DataKind::Table
    }
    fn execute(&self, inputs: &[&Data]) -> CoreResult<Data> {
        let Data::Split(pair) = inputs[0] else {
            unreachable!("type-checked")
        };
        Ok(Data::Table(if self.train {
            Arc::clone(&pair.train)
        } else {
            Arc::clone(&pair.test)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_ml::matrix::Matrix;
    use serde_json::json;

    fn table(rows: Vec<Vec<f64>>, labels: Vec<u8>) -> Data {
        let tags = labels.iter().map(|&l| u32::from(l)).collect();
        let names = (0..rows[0].len()).map(|i| format!("f{i}")).collect();
        Data::Table(Arc::new(
            Table::new(names, Matrix::from_rows(rows).unwrap(), labels, tags).unwrap(),
        ))
    }

    #[test]
    fn normalize_zscore_centers() {
        let d = table(vec![vec![1.0], vec![3.0]], vec![0, 1]);
        let op = Normalize::from_params(&json!({"method": "zscore"})).unwrap();
        let Data::Table(t) = op.execute(&[&d]).unwrap() else {
            panic!()
        };
        assert!((t.x.get(0, 0) + 1.0).abs() < 1e-9);
        assert!((t.x.get(1, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_filter_drops_copies() {
        let d = table(
            vec![
                vec![1.0, 2.0, 5.0],
                vec![2.0, 4.0, 1.0],
                vec![3.0, 6.0, 9.0],
            ],
            vec![0, 1, 0],
        );
        let op = CorrelationFilterOp::from_params(&json!({"threshold": 0.9})).unwrap();
        let Data::Table(t) = op.execute(&[&d]).unwrap() else {
            panic!()
        };
        assert_eq!(t.names, vec!["f0", "f2"]);
    }

    #[test]
    fn concat_and_merge() {
        let a = table(vec![vec![1.0]], vec![1]);
        let b = table(vec![vec![2.0]], vec![1]);
        let cat = Concat::from_params(&json!({})).unwrap();
        let Data::Table(h) = cat.execute(&[&a, &b]).unwrap() else {
            panic!()
        };
        assert_eq!(h.cols(), 2);

        let a2 = table(vec![vec![1.0]], vec![0]);
        let b2 = table(vec![vec![2.0]], vec![1]);
        let merge = MergeTables::from_params(&json!({})).unwrap();
        let Data::Table(v) = merge.execute(&[&a2, &b2]).unwrap() else {
            panic!()
        };
        assert_eq!(v.rows(), 2);
        assert_eq!(v.labels, vec![0, 1]);
    }

    #[test]
    fn split_then_take() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<u8> = (0..20).map(|i| u8::from(i >= 10)).collect();
        let d = table(rows, labels);
        let split = TrainTestSplit::from_params(&json!({"train_frac": 0.7, "seed": 1}))
            .unwrap()
            .execute(&[&d])
            .unwrap();
        let train = TakePart::from_params(&json!({}), true)
            .unwrap()
            .execute(&[&split])
            .unwrap();
        let test = TakePart::from_params(&json!({}), false)
            .unwrap()
            .execute(&[&split])
            .unwrap();
        let (Data::Table(tr), Data::Table(te)) = (train, test) else {
            panic!()
        };
        assert_eq!(tr.rows(), 14);
        assert_eq!(te.rows(), 6);
        // Stratified: 7 positives in train, 3 in test.
        assert_eq!(tr.labels.iter().filter(|&&l| l == 1).count(), 7);
        assert_eq!(te.labels.iter().filter(|&&l| l == 1).count(), 3);
    }

    #[test]
    fn sample_balance_equalizes_classes() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let labels: Vec<u8> = (0..100).map(|i| u8::from(i < 10)).collect();
        let d = table(rows, labels);
        let op = Sample::from_params(&json!({"balance": true, "seed": 3})).unwrap();
        let Data::Table(t) = op.execute(&[&d]).unwrap() else {
            panic!()
        };
        assert_eq!(t.rows(), 20);
        assert_eq!(t.labels.iter().filter(|&&l| l == 1).count(), 10);
    }

    #[test]
    fn sample_frac_downsamples() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let d = table(rows, vec![0; 50]);
        let op = Sample::from_params(&json!({"frac": 0.2, "seed": 1})).unwrap();
        let Data::Table(t) = op.execute(&[&d]).unwrap() else {
            panic!()
        };
        assert_eq!(t.rows(), 10);
    }

    #[test]
    fn impute_cleans_nan() {
        let d = table(vec![vec![1.0], vec![f64::NAN]], vec![0, 0]);
        let op = ImputeOp::from_params(&json!({})).unwrap();
        let Data::Table(t) = op.execute(&[&d]).unwrap() else {
            panic!()
        };
        assert_eq!(t.x.get(1, 0), 1.0);
    }

    #[test]
    fn feature_select_unknown_column_errors() {
        let d = table(vec![vec![1.0]], vec![0]);
        let op = FeatureSelect::from_params(&json!({"columns": ["zzz"]})).unwrap();
        assert!(op.execute(&[&d]).is_err());
    }

    #[test]
    fn bad_params_rejected() {
        assert!(Normalize::from_params(&json!({"method": "log"})).is_err());
        assert!(TrainTestSplit::from_params(&json!({"train_frac": 1.5})).is_err());
        assert!(Sample::from_params(&json!({"frac": 0.0})).is_err());
        assert!(PcaOp::from_params(&json!({"components": 0})).is_err());
    }
}
