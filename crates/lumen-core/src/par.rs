//! Chunked parallelism — Lumen's Ray substitute.
//!
//! The paper's scalability fix for 100M-packet captures is to split work
//! into chunks processed by a distributed Python pool (§4.2). The same
//! design point on one machine: scoped threads over contiguous chunks,
//! order-preserving. The generic machinery lives in [`lumen_util::par`] so
//! that `lumen-ml`'s compute kernels can share it without depending on the
//! packet types; this module re-exports it and keeps the packet-specific
//! entry point.

pub use lumen_util::par::{panic_message, par_chunks, try_par_chunks};

use lumen_net::{CapturedPacket, DecodeStats, LinkType, PacketMeta};

/// Parses a capture into packet summaries using `threads` workers.
/// Malformed frames are quarantined, never fatal: the returned
/// [`DecodeStats`] carries per-layer error counts and a small ring of
/// offending byte prefixes.
pub fn parse_capture(
    link: LinkType,
    packets: &[CapturedPacket],
    threads: usize,
) -> (Vec<PacketMeta>, DecodeStats) {
    let (metas, _indices, stats) = parse_capture_indexed(link, packets, threads);
    (metas, stats)
}

/// Like [`parse_capture`], also returning each surviving packet's index in
/// the input capture, so per-packet side data (labels, attack tags) can be
/// realigned after quarantine drops frames.
pub fn parse_capture_indexed(
    link: LinkType,
    packets: &[CapturedPacket],
    threads: usize,
) -> (Vec<PacketMeta>, Vec<u32>, DecodeStats) {
    let results = par_chunks(packets, threads, |chunk| {
        // Chunks are contiguous subslices of `packets`, so the pointer
        // offset recovers each chunk's base index without threading it in.
        let base = (chunk.as_ptr() as usize - packets.as_ptr() as usize)
            / std::mem::size_of::<CapturedPacket>();
        let mut metas = Vec::with_capacity(chunk.len());
        let mut indices = Vec::with_capacity(chunk.len());
        let mut stats = DecodeStats::default();
        for (i, p) in chunk.iter().enumerate() {
            if let Ok(m) = PacketMeta::parse_recorded(link, p.ts_us, &p.data, &mut stats) {
                metas.push(m);
                indices.push((base + i) as u32);
            }
        }
        (metas, indices, stats)
    });
    let mut metas = Vec::with_capacity(packets.len());
    let mut indices = Vec::with_capacity(packets.len());
    let mut stats = DecodeStats::default();
    for (m, i, s) in results {
        metas.extend(m);
        indices.extend(i);
        stats.merge(&s);
    }
    (metas, indices, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_net::builder::{udp_packet, UdpParams};
    use lumen_net::MacAddr;
    use std::net::Ipv4Addr;

    fn capture(n: usize) -> Vec<CapturedPacket> {
        (0..n)
            .map(|i| {
                CapturedPacket::new(
                    i as u64,
                    udp_packet(UdpParams {
                        src_mac: MacAddr::from_id(1),
                        dst_mac: MacAddr::from_id(2),
                        src_ip: Ipv4Addr::new(10, 0, 0, 1),
                        dst_ip: Ipv4Addr::new(10, 0, 0, 2),
                        src_port: 1000,
                        dst_port: 2000,
                        ttl: 64,
                        payload: &[0u8; 8],
                    }),
                )
            })
            .collect()
    }

    #[test]
    fn par_chunks_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let sums = par_chunks(&items, 4, |c| c.iter().sum::<usize>());
        assert_eq!(sums.len(), 4);
        assert_eq!(sums.iter().sum::<usize>(), 499_500);
        // First chunk holds the smallest values.
        assert!(sums[0] < sums[3]);
    }

    #[test]
    fn par_chunks_single_thread_is_one_call() {
        let items = [1, 2, 3];
        let out = par_chunks(&items, 1, |c| c.len());
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn par_chunks_empty_input() {
        let items: [u8; 0] = [];
        let out: Vec<usize> = par_chunks(&items, 8, |c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_parse_equals_sequential() {
        let cap = capture(500);
        let (seq, s0) = parse_capture(LinkType::Ethernet, &cap, 1);
        let (par, s1) = parse_capture(LinkType::Ethernet, &cap, 8);
        assert_eq!(s0.total_errors(), 0);
        assert_eq!(s1.total_errors(), 0);
        assert_eq!(s1.frames, 500);
        assert_eq!(s1.parsed, 500);
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq[123], par[123]);
    }

    #[test]
    fn try_par_chunks_catches_worker_panic() {
        let items: Vec<usize> = (0..100).collect();
        let err = try_par_chunks(&items, 4, |c| {
            if c.contains(&13) {
                panic!("chunk with 13 exploded");
            }
            c.len()
        })
        .unwrap_err();
        assert!(err.contains("exploded"), "{err}");
        // The ok path matches the infallible wrapper.
        let ok = try_par_chunks(&items, 4, |c| c.len()).unwrap();
        assert_eq!(ok, par_chunks(&items, 4, |c| c.len()));
    }

    #[test]
    fn try_par_chunks_single_thread_catches_panic() {
        let items = [1, 2, 3];
        let err = try_par_chunks(&items, 1, |_| -> usize { panic!("boom") }).unwrap_err();
        assert!(err.contains("boom"));
    }

    #[test]
    fn malformed_frames_are_quarantined_with_stats() {
        let mut cap = capture(10);
        cap.push(CapturedPacket::new(99, vec![1, 2, 3])); // too short
        let (metas, stats) = parse_capture(LinkType::Ethernet, &cap, 2);
        assert_eq!(metas.len(), 10);
        assert_eq!(stats.frames, 11);
        assert_eq!(stats.parsed, 10);
        assert_eq!(stats.dropped(), 1);
        assert_eq!(stats.link_errors, 1);
        assert_eq!(stats.quarantine.len(), 1);
        assert_eq!(stats.quarantine[0].prefix, vec![1, 2, 3]);
    }

    #[test]
    fn indexed_parse_reports_surviving_positions() {
        let mut cap = capture(4);
        cap.insert(2, CapturedPacket::new(55, vec![0xFF; 4])); // malformed at 2
        let (metas, indices, stats) = parse_capture_indexed(LinkType::Ethernet, &cap, 2);
        assert_eq!(metas.len(), 4);
        assert_eq!(indices, vec![0, 1, 3, 4]);
        assert_eq!(stats.dropped(), 1);
    }
}
