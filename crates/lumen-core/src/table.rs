//! The feature table: named numeric columns with per-row ground truth.

use lumen_ml::dataset::Dataset;
use lumen_ml::matrix::Matrix;

use crate::{CoreError, CoreResult};

/// A feature table. Every row carries its ground-truth label (0/1) and an
/// opaque attack tag (0 = none) so evaluation — including the per-attack
/// breakdown of Figure 5 — never loses track of provenance.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column names, parallel to the matrix columns.
    pub names: Vec<String>,
    /// Feature values, one row per instance.
    pub x: Matrix,
    /// Ground-truth labels (0 benign / 1 malicious) per row.
    pub labels: Vec<u8>,
    /// Opaque attack tag per row (0 when benign / unknown).
    pub tags: Vec<u32>,
}

impl Table {
    /// Creates a table, validating shapes.
    pub fn new(
        names: Vec<String>,
        x: Matrix,
        labels: Vec<u8>,
        tags: Vec<u32>,
    ) -> CoreResult<Table> {
        if names.len() != x.cols() {
            return Err(CoreError::TypeError(format!(
                "table has {} names for {} columns",
                names.len(),
                x.cols()
            )));
        }
        if labels.len() != x.rows() || tags.len() != x.rows() {
            return Err(CoreError::TypeError(format!(
                "table has {} rows but {} labels / {} tags",
                x.rows(),
                labels.len(),
                tags.len()
            )));
        }
        Ok(Table {
            names,
            x,
            labels,
            tags,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.x.rows()
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.x.cols()
    }

    /// Index of a named column.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Horizontal concatenation; rows must align (same instances). Labels
    /// and tags are taken from `self` and must match `other`'s.
    pub fn hcat(&self, other: &Table) -> CoreResult<Table> {
        if self.rows() != other.rows() {
            return Err(CoreError::TypeError(format!(
                "hcat row mismatch: {} vs {}",
                self.rows(),
                other.rows()
            )));
        }
        if self.labels != other.labels {
            return Err(CoreError::TypeError(
                "hcat label mismatch: tables describe different instances".into(),
            ));
        }
        let mut names = self.names.clone();
        names.extend(other.names.iter().cloned());
        Ok(Table {
            names,
            x: self.x.hcat(&other.x).map_err(CoreError::from)?,
            labels: self.labels.clone(),
            tags: self.tags.clone(),
        })
    }

    /// Vertical concatenation; schemas must match exactly.
    pub fn vcat(&self, other: &Table) -> CoreResult<Table> {
        if self.names != other.names {
            return Err(CoreError::TypeError(
                "vcat schema mismatch: column names differ".into(),
            ));
        }
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let mut tags = self.tags.clone();
        tags.extend_from_slice(&other.tags);
        Ok(Table {
            names: self.names.clone(),
            x: self.x.vcat(&other.x).map_err(CoreError::from)?,
            labels,
            tags,
        })
    }

    /// Selects rows by index (repeats allowed).
    pub fn select_rows(&self, idx: &[usize]) -> Table {
        Table {
            names: self.names.clone(),
            x: self.x.select_rows(idx),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            tags: idx.iter().map(|&i| self.tags[i]).collect(),
        }
    }

    /// Selects columns by name; errors on unknown names.
    pub fn select_cols(&self, names: &[String]) -> CoreResult<Table> {
        let mut idx = Vec::with_capacity(names.len());
        for n in names {
            idx.push(
                self.col_index(n)
                    .ok_or_else(|| CoreError::TypeError(format!("unknown feature column {n:?}")))?,
            );
        }
        Ok(Table {
            names: names.to_vec(),
            x: self.x.select_cols(&idx),
            labels: self.labels.clone(),
            tags: self.tags.clone(),
        })
    }

    /// Replaces the matrix, keeping labels/tags; used by column transforms
    /// (normalize, PCA) whose output columns get generated names.
    pub fn with_matrix(&self, names: Vec<String>, x: Matrix) -> CoreResult<Table> {
        Table::new(names, x, self.labels.clone(), self.tags.clone())
    }

    /// View as an ML dataset (shares nothing; copies labels).
    pub fn to_dataset(&self) -> CoreResult<Dataset> {
        Dataset::new(self.x.clone(), self.labels.clone()).map_err(CoreError::from)
    }

    /// Approximate in-memory size, for the engine's memory profile.
    pub fn approx_bytes(&self) -> usize {
        self.x.rows() * self.x.cols() * 8
            + self.labels.len()
            + self.tags.len() * 4
            + self.names.iter().map(String::len).sum::<usize>()
    }

    /// Fraction of malicious rows.
    pub fn malicious_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l == 1).count() as f64 / self.labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(names: &[&str], rows: Vec<Vec<f64>>, labels: Vec<u8>) -> Table {
        let tags = labels.iter().map(|&l| u32::from(l)).collect();
        Table::new(
            names.iter().map(|s| s.to_string()).collect(),
            Matrix::from_rows(rows).unwrap(),
            labels,
            tags,
        )
        .unwrap()
    }

    #[test]
    fn new_validates_shapes() {
        assert!(Table::new(
            vec!["a".into()],
            Matrix::zeros(2, 2),
            vec![0, 0],
            vec![0, 0]
        )
        .is_err());
        assert!(Table::new(vec!["a".into()], Matrix::zeros(2, 1), vec![0], vec![0, 0]).is_err());
    }

    #[test]
    fn hcat_joins_features() {
        let a = table(&["f1"], vec![vec![1.0], vec![2.0]], vec![0, 1]);
        let b = table(&["f2"], vec![vec![3.0], vec![4.0]], vec![0, 1]);
        let c = a.hcat(&b).unwrap();
        assert_eq!(c.names, vec!["f1", "f2"]);
        assert_eq!(c.x.row(1), &[2.0, 4.0]);
    }

    #[test]
    fn hcat_rejects_label_mismatch() {
        let a = table(&["f1"], vec![vec![1.0]], vec![0]);
        let b = table(&["f2"], vec![vec![2.0]], vec![1]);
        assert!(a.hcat(&b).is_err());
    }

    #[test]
    fn vcat_appends_instances() {
        let a = table(&["f"], vec![vec![1.0]], vec![0]);
        let b = table(&["f"], vec![vec![2.0], vec![3.0]], vec![1, 1]);
        let c = a.vcat(&b).unwrap();
        assert_eq!(c.rows(), 3);
        assert_eq!(c.labels, vec![0, 1, 1]);
    }

    #[test]
    fn vcat_rejects_schema_mismatch() {
        let a = table(&["f"], vec![vec![1.0]], vec![0]);
        let b = table(&["g"], vec![vec![2.0]], vec![0]);
        assert!(a.vcat(&b).is_err());
    }

    #[test]
    fn select_cols_by_name() {
        let t = table(&["a", "b", "c"], vec![vec![1.0, 2.0, 3.0]], vec![0]);
        let s = t.select_cols(&["c".into(), "a".into()]).unwrap();
        assert_eq!(s.x.row(0), &[3.0, 1.0]);
        assert!(t.select_cols(&["zzz".into()]).is_err());
    }

    #[test]
    fn select_rows_carries_ground_truth() {
        let t = table(&["a"], vec![vec![1.0], vec![2.0], vec![3.0]], vec![0, 1, 0]);
        let s = t.select_rows(&[1, 1]);
        assert_eq!(s.labels, vec![1, 1]);
        assert_eq!(s.tags, vec![1, 1]);
    }

    #[test]
    fn to_dataset_roundtrip() {
        let t = table(&["a"], vec![vec![5.0], vec![6.0]], vec![0, 1]);
        let d = t.to_dataset().unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.positives(), 1);
    }
}
