//! Connection/flow extraction operations exercised through the public
//! template API against hand-built conversations with known statistics.

use std::collections::HashMap;
use std::sync::Arc;

use lumen_core::data::{Data, DataKind, PacketData};
use lumen_core::Pipeline;
use lumen_net::builder::{tcp_packet, TcpParams};
use lumen_net::wire::tcp::TcpFlags;
use lumen_net::{LinkType, MacAddr, PacketMeta};
use std::net::Ipv4Addr;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn tcp(ts: u64, from_a: bool, flags: TcpFlags, payload: &[u8]) -> PacketMeta {
    let (s, d, sp, dp) = if from_a {
        (A, B, 4444, 80)
    } else {
        (B, A, 80, 4444)
    };
    let frame = tcp_packet(TcpParams {
        src_mac: MacAddr::from_id(1),
        dst_mac: MacAddr::from_id(2),
        src_ip: s,
        dst_ip: d,
        src_port: sp,
        dst_port: dp,
        seq: 1,
        ack: 1,
        flags,
        window: 100,
        ttl: 63,
        payload,
    });
    PacketMeta::parse(LinkType::Ethernet, ts, &frame).unwrap()
}

/// One complete conversation: handshake + 2 data exchanges + FIN teardown,
/// with labels marking the data packets malicious.
fn source() -> Data {
    let metas = vec![
        tcp(0, true, TcpFlags::SYN, b""),
        tcp(100_000, false, TcpFlags::SYN_ACK, b""),
        tcp(200_000, true, TcpFlags::ACK, b""),
        tcp(300_000, true, TcpFlags::PSH_ACK, b"0123456789"), // 10 B up
        tcp(400_000, false, TcpFlags::PSH_ACK, &[7u8; 30]),   // 30 B down
        tcp(500_000, true, TcpFlags::FIN_ACK, b""),
        tcp(600_000, false, TcpFlags::FIN_ACK, b""),
        tcp(700_000, true, TcpFlags::ACK, b""),
    ];
    let labels = vec![0, 0, 0, 1, 1, 0, 0, 0];
    let tags = vec![0, 0, 0, 4, 4, 0, 0, 0];
    Data::Packets(Arc::new(PacketData {
        link: LinkType::Ethernet,
        metas,
        labels,
        tags,
    }))
}

fn run(template: serde_json::Value) -> Arc<lumen_core::Table> {
    let p = Pipeline::parse(&template, &[("source", DataKind::Packets)]).unwrap();
    let mut b = HashMap::new();
    b.insert("source".to_string(), source());
    let mut out = p.run(b).unwrap();
    match out.take("features").unwrap() {
        Data::Table(t) => t,
        other => panic!("got {:?}", other.kind()),
    }
}

#[test]
fn conn_extract_matches_known_statistics() {
    let t = run(serde_json::json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
        {"func": "ConnExtract", "input": ["conns"], "output": "features",
         "fields": ["duration", "orig_pkts", "resp_pkts", "orig_bytes", "resp_bytes",
                     "orig_fin", "resp_fin", "orig_syn", "symmetry", "orig_ttl_mean",
                     "resp_port", "proto", "resp_port_wellknown", "state"]}
    ]));
    assert_eq!(t.rows(), 1);
    let col = |name: &str| t.x.get(0, t.col_index(name).unwrap());
    assert!((col("duration") - 0.7).abs() < 1e-9);
    assert_eq!(col("orig_pkts"), 5.0);
    assert_eq!(col("resp_pkts"), 3.0);
    assert_eq!(col("orig_bytes"), 10.0);
    assert_eq!(col("resp_bytes"), 30.0);
    assert_eq!(col("orig_fin"), 1.0);
    assert_eq!(col("resp_fin"), 1.0);
    assert_eq!(col("orig_syn"), 1.0);
    assert!((col("symmetry") - 0.6).abs() < 1e-9);
    assert_eq!(col("orig_ttl_mean"), 63.0);
    assert_eq!(col("resp_port"), 80.0);
    assert_eq!(col("proto"), 6.0);
    assert_eq!(col("resp_port_wellknown"), 1.0);
    // One-hot state: SF (code 2) is hot.
    assert_eq!(col("state_2"), 1.0);
    assert_eq!(col("state_0"), 0.0);
    // Label propagated: any-malicious, majority tag.
    assert_eq!(t.labels, vec![1]);
    assert_eq!(t.tags, vec![4]);
}

#[test]
fn uni_extract_splits_directions_with_correct_rates() {
    let t = run(serde_json::json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
        {"func": "UniFlowSplit", "input": ["conns"], "output": "flows"},
        {"func": "UniExtract", "input": ["flows"], "output": "features",
         "fields": ["pkts", "payload_bytes", "syn", "fin", "dst_port", "pkt_rate"]}
    ]));
    assert_eq!(t.rows(), 2);
    let col = t.col_index("pkts").unwrap();
    let pkts: Vec<f64> = (0..2).map(|r| t.x.get(r, col)).collect();
    assert_eq!(pkts, vec![5.0, 3.0]);
    let dport = t.col_index("dst_port").unwrap();
    assert_eq!(t.x.get(0, dport), 80.0);
    assert_eq!(t.x.get(1, dport), 4444.0);
    // Both directions inherit the connection's label.
    assert_eq!(t.labels, vec![1, 1]);
}

#[test]
fn firstn_stats_without_raw_has_nine_columns() {
    let t = run(serde_json::json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns", "first_n": 4},
        {"func": "FirstNStats", "input": ["conns"], "output": "features",
         "n": 4, "include_raw": false}
    ]));
    assert_eq!(t.cols(), 9);
    let count = t.col_index("fn_count").unwrap();
    assert_eq!(t.x.get(0, count), 4.0);
    // IATs of the first 4 sketches are 0.1 s each.
    let mean = t.col_index("fn_iat_mean").unwrap();
    assert!((t.x.get(0, mean) - 0.1).abs() < 1e-9);
}

#[test]
fn firstn_stats_raw_pads_with_minus_one() {
    let t = run(serde_json::json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns", "first_n": 16},
        {"func": "FirstNStats", "input": ["conns"], "output": "features",
         "n": 16, "include_raw": true}
    ]));
    // 9 stats + 15 raw IATs + 16 raw lengths.
    assert_eq!(t.cols(), 9 + 15 + 16);
    // Connection has 8 packets: IAT 8.. and len 8.. are padding.
    let iat10 = t.col_index("fn_iat_10").unwrap();
    assert_eq!(t.x.get(0, iat10), -1.0);
    let len3 = t.col_index("fn_len_3").unwrap();
    assert!(t.x.get(0, len3) > 0.0);
    let len12 = t.col_index("fn_len_12").unwrap();
    assert_eq!(t.x.get(0, len12), -1.0);
}

#[test]
fn apply_aggregates_order_statistics() {
    // Group by srcIp: A sends 5 packets, B sends 3.
    let t = run(serde_json::json!([
        {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
        {"func": "ApplyAggregates", "input": ["g"], "output": "features",
         "aggs": [
            {"fn": "count"},
            {"fn": "sum", "field": "payload_len"},
            {"fn": "median", "field": "payload_len"},
            {"fn": "min", "field": "payload_len"},
            {"fn": "max", "field": "payload_len"}
         ]}
    ]));
    assert_eq!(t.rows(), 2);
    // Group A: payloads [0,0,10,0,0] -> sum 10, median 0, max 10.
    assert_eq!(t.x.get(0, 0), 5.0);
    assert_eq!(t.x.get(0, 1), 10.0);
    assert_eq!(t.x.get(0, 2), 0.0);
    assert_eq!(t.x.get(0, 3), 0.0);
    assert_eq!(t.x.get(0, 4), 10.0);
    // Group B: payloads [0,30,0] -> sum 30.
    assert_eq!(t.x.get(1, 1), 30.0);
}

#[test]
fn pcapload_feeds_a_full_pipeline() {
    // Write the source conversation to a real pcap, then run a pipeline
    // that starts from PcapLoad instead of a pre-bound source.
    let Data::Packets(p) = source() else {
        unreachable!()
    };
    let packets: Vec<lumen_net::CapturedPacket> = p
        .metas
        .iter()
        .enumerate()
        .map(|(i, m)| {
            // Rebuild raw frames for the pcap (the metas don't keep bytes).
            let from_a = m.ipv4.as_ref().unwrap().src == A;
            let payload = vec![0u8; m.payload_len as usize];
            lumen_net::CapturedPacket::new(
                i as u64 * 100_000,
                tcp_packet(TcpParams {
                    src_mac: MacAddr::from_id(1),
                    dst_mac: MacAddr::from_id(2),
                    src_ip: if from_a { A } else { B },
                    dst_ip: if from_a { B } else { A },
                    src_port: if from_a { 4444 } else { 80 },
                    dst_port: if from_a { 80 } else { 4444 },
                    seq: 1,
                    ack: 1,
                    flags: m.transport.tcp_flags().unwrap(),
                    window: 100,
                    ttl: 63,
                    payload: &payload,
                }),
            )
        })
        .collect();
    let path = std::env::temp_dir().join("lumen_conn_ops_pipeline.pcap");
    std::fs::write(
        &path,
        lumen_net::pcap::to_bytes(LinkType::Ethernet, &packets),
    )
    .unwrap();

    let template = serde_json::json!([
        {"func": "PcapLoad", "input": [], "output": "source",
         "path": path.to_str().unwrap()},
        {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
        {"func": "ConnExtract", "input": ["conns"], "output": "features",
         "fields": ["orig_pkts", "resp_pkts"]}
    ]);
    let pipeline = Pipeline::parse(&template, &[]).unwrap();
    let mut out = pipeline.run(HashMap::new()).unwrap();
    let Data::Table(t) = out.take("features").unwrap() else {
        panic!()
    };
    assert_eq!(t.rows(), 1);
    assert_eq!(t.x.get(0, 0), 5.0);
    assert_eq!(t.x.get(0, 1), 3.0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_conn_and_uni_field_is_finite() {
    use lumen_core::ops::extract_catalog::{CONN_FIELDS, UNI_FIELDS};
    let conn_fields: Vec<String> = CONN_FIELDS.iter().map(|s| s.to_string()).collect();
    let t = run(serde_json::json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
        {"func": "ConnExtract", "input": ["conns"], "output": "features",
         "fields": conn_fields}
    ]));
    for (c, name) in t.names.iter().enumerate() {
        let v = t.x.get(0, c);
        assert!(v.is_finite(), "conn field {name} produced {v}");
    }

    let uni_fields: Vec<String> = UNI_FIELDS.iter().map(|s| s.to_string()).collect();
    let t = run(serde_json::json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
        {"func": "UniFlowSplit", "input": ["conns"], "output": "flows"},
        {"func": "UniExtract", "input": ["flows"], "output": "features",
         "fields": uni_fields}
    ]));
    for r in 0..t.rows() {
        for (c, name) in t.names.iter().enumerate() {
            let v = t.x.get(r, c);
            assert!(v.is_finite(), "uni field {name} produced {v}");
        }
    }
}
