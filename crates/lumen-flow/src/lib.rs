//! Flow assembly for Lumen — the Zeek substitute.
//!
//! The connection-granularity algorithms in the benchmark (A07–A15) are
//! defined over Zeek-`conn.log`-style records. This crate rebuilds those
//! records from raw packets: a [`tracker::ConnectionTracker`] keys packets by
//! canonical 5-tuple, follows a simplified TCP state machine with idle
//! timeouts, and emits [`record::ConnRecord`]s carrying the per-direction
//! statistics, Zeek connection state, and history string the feature
//! pipelines consume. Unidirectional flows (A10's granularity) are derived
//! views over the same records.

#![forbid(unsafe_code)]

pub mod record;
pub mod shard;
pub mod tracker;

pub use record::{ConnRecord, ConnState, Direction, PktSketch, UniFlowRecord};
pub use shard::{
    assemble_sharded, default_shards, set_default_shards, shard_of, ShardedAssembly,
};
pub use tracker::{assemble, assemble_with_stats, counters, ConnectionTracker, FlowConfig, FlowStats};

use std::net::Ipv4Addr;

/// Canonical bidirectional flow key: endpoint pairs ordered so that both
/// directions of a conversation hash identically. `Ord` exists so the key
/// can compound LRU-index entries (`(stamp, FlowKey)`), making recency
/// bookkeeping collision-proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Lexicographically smaller endpoint.
    pub lo: (Ipv4Addr, u16),
    /// Lexicographically larger endpoint.
    pub hi: (Ipv4Addr, u16),
    /// IP protocol number.
    pub proto: u8,
}

impl FlowKey {
    /// Builds the canonical key from a directed 5-tuple.
    pub fn canonical(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16, proto: u8) -> FlowKey {
        let a = (src, sport);
        let b = (dst, dport);
        if a <= b {
            FlowKey {
                lo: a,
                hi: b,
                proto,
            }
        } else {
            FlowKey {
                lo: b,
                hi: a,
                proto,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_key_is_direction_independent() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        let k1 = FlowKey::canonical(a, b, 1234, 80, 6);
        let k2 = FlowKey::canonical(b, a, 80, 1234, 6);
        assert_eq!(k1, k2);
    }

    #[test]
    fn different_ports_differ() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        assert_ne!(
            FlowKey::canonical(a, b, 1234, 80, 6),
            FlowKey::canonical(a, b, 1235, 80, 6)
        );
    }

    #[test]
    fn protocol_distinguishes() {
        let a = Ipv4Addr::new(1, 1, 1, 1);
        let b = Ipv4Addr::new(2, 2, 2, 2);
        assert_ne!(
            FlowKey::canonical(a, b, 53, 53, 6),
            FlowKey::canonical(a, b, 53, 53, 17)
        );
    }
}
