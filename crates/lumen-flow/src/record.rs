//! Connection and unidirectional-flow records.

use std::net::Ipv4Addr;

use lumen_util::Summary;

/// Which side of a connection sent a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The endpoint that sent the first packet of the connection.
    Orig,
    /// The other endpoint.
    Resp,
}

/// Zeek-style connection states (subset covering what IoT traffic produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnState {
    /// SYN seen, no reply.
    S0,
    /// Established, not terminated when the capture ended.
    S1,
    /// Established and normally terminated.
    SF,
    /// Connection attempt rejected (SYN answered by RST).
    Rej,
    /// Established, originator aborted with RST.
    Rsto,
    /// Established, responder aborted with RST.
    Rstr,
    /// Midstream or non-TCP single direction / other.
    Oth,
}

impl ConnState {
    /// Zeek's conn.log label.
    pub fn as_str(self) -> &'static str {
        match self {
            ConnState::S0 => "S0",
            ConnState::S1 => "S1",
            ConnState::SF => "SF",
            ConnState::Rej => "REJ",
            ConnState::Rsto => "RSTO",
            ConnState::Rstr => "RSTR",
            ConnState::Oth => "OTH",
        }
    }

    /// Stable small integer for one-hot encoding in feature pipelines.
    pub fn code(self) -> usize {
        match self {
            ConnState::S0 => 0,
            ConnState::S1 => 1,
            ConnState::SF => 2,
            ConnState::Rej => 3,
            ConnState::Rsto => 4,
            ConnState::Rstr => 5,
            ConnState::Oth => 6,
        }
    }

    /// Number of distinct states (one-hot width).
    pub const COUNT: usize = 7;
}

/// A compact per-packet sketch retained for the first packets of each
/// connection (A07's "first hundred packets" features, A12's early-detection
/// window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PktSketch {
    pub ts_us: u64,
    pub dir: Direction,
    pub wire_len: u32,
    pub payload_len: u32,
}

/// Per-direction TCP flag counters, indexed `[syn, ack, fin, rst, psh, urg]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlagCounts(pub [u32; 6]);

impl FlagCounts {
    /// Total flag bits observed.
    pub fn total(&self) -> u32 {
        self.0.iter().sum()
    }
    pub fn syn(&self) -> u32 {
        self.0[0]
    }
    pub fn ack(&self) -> u32 {
        self.0[1]
    }
    pub fn fin(&self) -> u32 {
        self.0[2]
    }
    pub fn rst(&self) -> u32 {
        self.0[3]
    }
    pub fn psh(&self) -> u32 {
        self.0[4]
    }
    pub fn urg(&self) -> u32 {
        self.0[5]
    }
}

/// A completed bidirectional connection with the statistics every
/// connection-granularity feature pipeline in the benchmark draws on.
/// `PartialEq` exists so shard-invariance tests can assert that sharded
/// and single-tracker assembly produce identical records.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnRecord {
    /// Originator address/port (sender of the first packet).
    pub orig: (Ipv4Addr, u16),
    /// Responder address/port.
    pub resp: (Ipv4Addr, u16),
    /// IP protocol number.
    pub proto: u8,
    /// First packet timestamp (µs).
    pub start_us: u64,
    /// Last packet timestamp (µs).
    pub end_us: u64,
    /// Packets sent by the originator.
    pub orig_pkts: u32,
    /// Packets sent by the responder.
    pub resp_pkts: u32,
    /// Transport payload bytes from the originator.
    pub orig_bytes: u64,
    /// Transport payload bytes from the responder.
    pub resp_bytes: u64,
    /// Wire bytes (whole frames) from the originator.
    pub orig_wire_bytes: u64,
    /// Wire bytes from the responder.
    pub resp_wire_bytes: u64,
    /// Originator TCP flag counters.
    pub orig_flags: FlagCounts,
    /// Responder TCP flag counters.
    pub resp_flags: FlagCounts,
    /// Summary of all inter-arrival times (µs, both directions interleaved).
    pub iat: Summary,
    /// Summary of originator packet wire lengths.
    pub orig_len: Summary,
    /// Summary of responder packet wire lengths.
    pub resp_len: Summary,
    /// Zeek connection state.
    pub state: ConnState,
    /// Zeek-style history string (uppercase = originator, lowercase =
    /// responder; each letter recorded on first occurrence per direction).
    pub history: String,
    /// Sketches of the first packets (bounded by `FlowConfig::first_n`).
    pub first_n: Vec<PktSketch>,
    /// Mean TTL observed from the originator.
    pub orig_ttl_mean: f64,
    /// Indices into the source packet slice for every packet of this
    /// connection, in arrival order — used for label propagation between
    /// classification granularities.
    pub packet_indices: Vec<u32>,
}

impl ConnRecord {
    /// Duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.end_us.saturating_sub(self.start_us)) as f64 / 1e6
    }

    /// Total packets both directions.
    pub fn total_pkts(&self) -> u32 {
        self.orig_pkts + self.resp_pkts
    }

    /// Total wire bytes both directions.
    pub fn total_wire_bytes(&self) -> u64 {
        self.orig_wire_bytes + self.resp_wire_bytes
    }

    /// Mean throughput in bytes/second over the connection lifetime
    /// (total wire bytes when the duration rounds to zero).
    pub fn bandwidth(&self) -> f64 {
        let d = self.duration_secs();
        if d <= 0.0 {
            self.total_wire_bytes() as f64
        } else {
            self.total_wire_bytes() as f64 / d
        }
    }

    /// Inter-arrival times (seconds) of the first-N packet sketches.
    pub fn first_n_iats(&self) -> Vec<f64> {
        self.first_n
            .windows(2)
            .map(|w| (w[1].ts_us.saturating_sub(w[0].ts_us)) as f64 / 1e6)
            .collect()
    }

    /// Wire lengths of the first-N packet sketches.
    pub fn first_n_lens(&self) -> Vec<f64> {
        self.first_n.iter().map(|s| s.wire_len as f64).collect()
    }

    /// Ratio of responder to originator packets (0 when no originator
    /// packets; a flood with no replies scores 0).
    pub fn symmetry(&self) -> f64 {
        if self.orig_pkts == 0 {
            0.0
        } else {
            self.resp_pkts as f64 / self.orig_pkts as f64
        }
    }

    /// Splits into per-direction unidirectional flow records.
    pub fn to_uni_flows(&self) -> Vec<UniFlowRecord> {
        let mut flows = Vec::with_capacity(2);
        if self.orig_pkts > 0 {
            flows.push(UniFlowRecord::from_conn(self, Direction::Orig));
        }
        if self.resp_pkts > 0 {
            flows.push(UniFlowRecord::from_conn(self, Direction::Resp));
        }
        flows
    }
}

/// A single direction of a connection — the granularity smartdet (A10)
/// classifies at.
#[derive(Debug, Clone, PartialEq)]
pub struct UniFlowRecord {
    pub src: (Ipv4Addr, u16),
    pub dst: (Ipv4Addr, u16),
    pub proto: u8,
    pub start_us: u64,
    pub end_us: u64,
    pub pkts: u32,
    pub payload_bytes: u64,
    pub wire_bytes: u64,
    pub flags: FlagCounts,
    pub len: Summary,
    /// Direction this flow had within its parent connection.
    pub dir: Direction,
    /// Sketches of this direction's packets within the parent's first-N.
    pub first_n: Vec<PktSketch>,
    /// Parent's packet indices (the whole connection) — label propagation
    /// uses the parent connection's packets.
    pub packet_indices: Vec<u32>,
}

impl UniFlowRecord {
    fn from_conn(c: &ConnRecord, dir: Direction) -> UniFlowRecord {
        let (src, dst, pkts, payload, wire, flags, len) = match dir {
            Direction::Orig => (
                c.orig,
                c.resp,
                c.orig_pkts,
                c.orig_bytes,
                c.orig_wire_bytes,
                c.orig_flags,
                c.orig_len,
            ),
            Direction::Resp => (
                c.resp,
                c.orig,
                c.resp_pkts,
                c.resp_bytes,
                c.resp_wire_bytes,
                c.resp_flags,
                c.resp_len,
            ),
        };
        UniFlowRecord {
            src,
            dst,
            proto: c.proto,
            start_us: c.start_us,
            end_us: c.end_us,
            pkts,
            payload_bytes: payload,
            wire_bytes: wire,
            flags,
            len,
            dir,
            first_n: c.first_n.iter().copied().filter(|s| s.dir == dir).collect(),
            packet_indices: c.packet_indices.clone(),
        }
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.end_us.saturating_sub(self.start_us)) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_conn() -> ConnRecord {
        ConnRecord {
            orig: (Ipv4Addr::new(10, 0, 0, 1), 40000),
            resp: (Ipv4Addr::new(10, 0, 0, 2), 80),
            proto: 6,
            start_us: 1_000_000,
            end_us: 3_000_000,
            orig_pkts: 4,
            resp_pkts: 3,
            orig_bytes: 400,
            resp_bytes: 1200,
            orig_wire_bytes: 700,
            resp_wire_bytes: 1500,
            orig_flags: FlagCounts([1, 4, 1, 0, 2, 0]),
            resp_flags: FlagCounts([1, 3, 1, 0, 1, 0]),
            iat: Summary::of(&[0.1, 0.2, 0.3]),
            orig_len: Summary::of(&[100.0, 200.0]),
            resp_len: Summary::of(&[500.0]),
            state: ConnState::SF,
            history: "ShADadFf".into(),
            first_n: vec![
                PktSketch {
                    ts_us: 1_000_000,
                    dir: Direction::Orig,
                    wire_len: 74,
                    payload_len: 0,
                },
                PktSketch {
                    ts_us: 1_100_000,
                    dir: Direction::Resp,
                    wire_len: 74,
                    payload_len: 0,
                },
                PktSketch {
                    ts_us: 1_150_000,
                    dir: Direction::Orig,
                    wire_len: 66,
                    payload_len: 0,
                },
            ],
            orig_ttl_mean: 64.0,
            packet_indices: vec![0, 1, 2, 5, 6, 7, 9],
        }
    }

    #[test]
    fn duration_and_bandwidth() {
        let c = sample_conn();
        assert!((c.duration_secs() - 2.0).abs() < 1e-9);
        assert!((c.bandwidth() - 1100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_bandwidth_is_bytes() {
        let mut c = sample_conn();
        c.end_us = c.start_us;
        assert_eq!(c.bandwidth(), 2200.0);
    }

    #[test]
    fn first_n_iats_in_seconds() {
        let c = sample_conn();
        let iats = c.first_n_iats();
        assert_eq!(iats.len(), 2);
        assert!((iats[0] - 0.1).abs() < 1e-9);
        assert!((iats[1] - 0.05).abs() < 1e-9);
    }

    #[test]
    fn uni_flow_split_partitions_packets() {
        let c = sample_conn();
        let flows = c.to_uni_flows();
        assert_eq!(flows.len(), 2);
        let orig = &flows[0];
        assert_eq!(orig.dir, Direction::Orig);
        assert_eq!(orig.src, c.orig);
        assert_eq!(orig.pkts, 4);
        assert_eq!(orig.first_n.len(), 2);
        let resp = &flows[1];
        assert_eq!(resp.src, c.resp);
        assert_eq!(resp.first_n.len(), 1);
    }

    #[test]
    fn symmetry_ratio() {
        let c = sample_conn();
        assert!((c.symmetry() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn state_codes_are_distinct() {
        use std::collections::HashSet;
        let states = [
            ConnState::S0,
            ConnState::S1,
            ConnState::SF,
            ConnState::Rej,
            ConnState::Rsto,
            ConnState::Rstr,
            ConnState::Oth,
        ];
        let codes: HashSet<usize> = states.iter().map(|s| s.code()).collect();
        assert_eq!(codes.len(), ConnState::COUNT);
        assert!(codes.iter().all(|&c| c < ConnState::COUNT));
    }
}
