//! Sharded flow assembly: one flow table partitioned across N workers.
//!
//! A single [`crate::ConnectionTracker`] serializes every packet through
//! one LRU-capped map — fine for one capture, a bottleneck for millions of
//! concurrent devices. This module partitions flow state: the canonical
//! 5-tuple hashes to one of N shards (FNV-1a, stable across platforms and
//! runs), each shard owns a private tracker with an LRU budget of
//! `max_active / N` and its own [`FlowStats`], and the decode stage feeds
//! shards through bounded SPSC rings ([`lumen_util::ring`]) carrying
//! batches of packet indices — backpressure instead of unbounded queues.
//!
//! # Determinism
//!
//! The discipline mirrors [`lumen_util::par`]: assignment is fixed by the
//! data (same 5-tuple → same shard, independent of timing), each ring
//! preserves arrival order, and the merge sorts the concatenated shard
//! outputs with the tracker's own canonical comparator
//! (`(start_us, orig, resp, proto)` — a total order over records of one
//! capture). Because a canonical flow lives in exactly one shard, its
//! packets hit one tracker in the same relative order the single tracker
//! would see, so outside eviction pressure the finalized records — and
//! therefore features and predictions — are byte-identical for any shard
//! count. Under eviction pressure the budget is enforced per shard
//! (`max_active / N` each), so *which* flow is evicted can differ from the
//! global-LRU choice while the table-wide bound still holds.

use std::sync::atomic::{AtomicUsize, Ordering};

use lumen_net::PacketMeta;

use crate::tracker::{sort_records, ConnectionTracker, FlowConfig, FlowStats};
use crate::{ConnRecord, FlowKey};

/// Packets per ring batch: large enough that ring locking amortizes to
/// noise, small enough that shards stay busy on modest captures.
const BATCH: usize = 1024;

/// Ring depth in batches; bounds decode→shard buffering (backpressure).
const RING_DEPTH: usize = 4;

/// Process-wide default shard count, mirroring the compute-kernel thread
/// default: the benchmark runner sets it once from its configuration and
/// every `FlowAssemble` op with `shards = 0` (auto) picks it up without
/// threading a parameter through each pipeline template.
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default shard count (clamped to ≥ 1).
pub fn set_default_shards(n: usize) {
    DEFAULT_SHARDS.store(n.max(1), Ordering::Relaxed);
}

/// The process-wide default shard count.
pub fn default_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::Relaxed).max(1)
}

/// The shard a canonical flow key belongs to: FNV-1a over the key bytes,
/// reduced mod `shards`. Both directions of a conversation share a key, so
/// they always land on the same shard.
pub fn shard_of(key: &FlowKey, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    };
    for b in key.lo.0.octets() {
        eat(b);
    }
    for b in key.lo.1.to_be_bytes() {
        eat(b);
    }
    for b in key.hi.0.octets() {
        eat(b);
    }
    for b in key.hi.1.to_be_bytes() {
        eat(b);
    }
    eat(key.proto);
    // FNV mixes low bits weakly for short structured inputs (sequential
    // device addresses land in runs); a murmur-style finalizer avalanches
    // every input bit across the word before the modulo.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    (h % shards as u64) as usize
}

/// Everything one sharded assembly produces: the merged records plus
/// table-wide and per-shard accounting.
#[derive(Debug, Clone, Default)]
pub struct ShardedAssembly {
    /// Finalized records, in the canonical order every assembly path emits.
    pub records: Vec<ConnRecord>,
    /// Aggregate accounting (evictions and records summed; `peak_active`
    /// summed too — shards are concurrently live, so the sum is the
    /// table-wide high-water bound).
    pub total: FlowStats,
    /// Per-shard accounting, indexed by shard.
    pub per_shard: Vec<FlowStats>,
}

/// Assembles connections from a packet slice across `shards` worker
/// shards. `shards <= 1` runs the plain single-tracker path (no threads,
/// no rings); otherwise each shard gets an LRU budget of
/// `max_active / shards` (≥ 1) and its own stats. See the module docs for
/// the determinism contract.
pub fn assemble_sharded(packets: &[PacketMeta], cfg: FlowConfig, shards: usize) -> ShardedAssembly {
    if shards <= 1 {
        let (records, stats) = crate::tracker::assemble_with_stats(packets, cfg);
        return ShardedAssembly {
            records,
            total: stats,
            per_shard: vec![stats],
        };
    }

    let shard_cfg = FlowConfig {
        max_active: (cfg.max_active / shards).max(1),
        ..cfg
    };

    // Feed order must match the single tracker: timestamp order, original
    // capture indices (label propagation keys off them).
    let presorted = packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us);
    let order: Vec<u32> = if presorted {
        (0..packets.len() as u32).collect()
    } else {
        let mut order: Vec<u32> = (0..packets.len() as u32).collect();
        order.sort_by_key(|&i| packets[i as usize].ts_us);
        order
    };

    let mut rings = Vec::with_capacity(shards);
    let mut receivers = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = lumen_util::ring::ring::<Vec<u32>>(RING_DEPTH);
        rings.push(tx);
        receivers.push(rx);
    }

    let shard_results: Vec<(Vec<ConnRecord>, FlowStats)> = std::thread::scope(|s| {
        let handles: Vec<_> = receivers
            .into_iter()
            .map(|rx| {
                s.spawn(move || {
                    let mut tracker = ConnectionTracker::new(shard_cfg);
                    while let Some(batch) = rx.recv() {
                        for idx in batch {
                            tracker.push(idx, &packets[idx as usize]);
                        }
                    }
                    tracker.finish_with_stats()
                })
            })
            .collect();

        // The caller thread is the producer: route each packet's canonical
        // key to its shard, batch per shard, block when a ring is full.
        let mut batches: Vec<Vec<u32>> = vec![Vec::with_capacity(BATCH); shards];
        for &idx in &order {
            let meta = &packets[idx as usize];
            let Some((src, dst, sp, dp, proto)) = meta.five_tuple() else {
                continue; // non-IP: the single tracker skips these too
            };
            let shard = shard_of(&FlowKey::canonical(src, dst, sp, dp, proto), shards);
            batches[shard].push(idx);
            if batches[shard].len() >= BATCH {
                let full = std::mem::replace(&mut batches[shard], Vec::with_capacity(BATCH));
                if rings[shard].send(full).is_err() {
                    break; // receiver died (worker panicked); joins surface it
                }
            }
        }
        for (shard, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                let _ = rings[shard].send(batch);
            }
        }
        drop(rings); // close every ring so workers drain and finish

        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    let mut out = ShardedAssembly {
        records: Vec::new(),
        total: FlowStats::default(),
        per_shard: Vec::with_capacity(shards),
    };
    for (records, stats) in shard_results {
        out.records.extend(records);
        out.total.absorb(&stats);
        out.per_shard.push(stats);
    }
    sort_records(&mut out.records);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_net::builder::{udp_packet, UdpParams};
    use lumen_net::wire::MacAddr;
    use lumen_net::LinkType;
    use std::net::Ipv4Addr;

    fn udp(ts_us: u64, src: Ipv4Addr, dst: Ipv4Addr, sp: u16, dp: u16) -> PacketMeta {
        let pkt = udp_packet(UdpParams {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip: src,
            dst_ip: dst,
            src_port: sp,
            dst_port: dp,
            ttl: 64,
            payload: b"payload",
        });
        PacketMeta::parse(LinkType::Ethernet, ts_us, &pkt).unwrap()
    }

    /// A mixed workload: many interleaved bidirectional flows.
    fn workload(flows: u16, pkts_per_flow: u16) -> Vec<PacketMeta> {
        let mut pkts = Vec::new();
        let mut ts = 0u64;
        for round in 0..pkts_per_flow {
            for f in 0..flows {
                let dev = Ipv4Addr::new(10, (f >> 8) as u8, f as u8, 7);
                let srv = Ipv4Addr::new(34, 1, 2, 3);
                // Alternate directions so canonicalization matters.
                if round % 2 == 0 {
                    pkts.push(udp(ts, dev, srv, 40_000 + f, 53));
                } else {
                    pkts.push(udp(ts, srv, dev, 53, 40_000 + f));
                }
                ts += 13;
            }
        }
        pkts
    }

    #[test]
    fn shard_of_is_stable_and_direction_independent() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        let k1 = FlowKey::canonical(a, b, 1234, 80, 6);
        let k2 = FlowKey::canonical(b, a, 80, 1234, 6);
        for shards in [1usize, 2, 3, 8, 64] {
            let s = shard_of(&k1, shards);
            assert!(s < shards);
            assert_eq!(s, shard_of(&k2, shards), "both directions co-shard");
            assert_eq!(s, shard_of(&k1, shards), "assignment is pure");
        }
    }

    #[test]
    fn shard_assignment_spreads_keys() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for f in 0..4000u16 {
            let dev = Ipv4Addr::new(10, (f >> 8) as u8, f as u8, 7);
            let key = FlowKey::canonical(dev, Ipv4Addr::new(34, 1, 2, 3), 40_000 + f, 53, 17);
            counts[shard_of(&key, shards)] += 1;
        }
        let expect = 4000 / shards;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "shard {i} holds {c} of 4000 keys — hash is badly skewed"
            );
        }
    }

    #[test]
    fn sharded_records_match_single_tracker_exactly() {
        let pkts = workload(500, 4);
        let baseline = assemble_sharded(&pkts, FlowConfig::default(), 1);
        assert_eq!(baseline.records.len(), 500);
        for shards in [2usize, 3, 8] {
            let sharded = assemble_sharded(&pkts, FlowConfig::default(), shards);
            assert_eq!(
                sharded.records, baseline.records,
                "{shards}-shard records must be identical to the single tracker"
            );
            assert_eq!(sharded.per_shard.len(), shards);
            assert_eq!(sharded.total.records, 500);
            assert_eq!(sharded.total.evictions, 0);
        }
    }

    #[test]
    fn unsorted_input_is_sorted_before_routing() {
        let mut pkts = workload(40, 3);
        pkts.reverse();
        let single = assemble_sharded(&pkts, FlowConfig::default(), 1);
        let sharded = assemble_sharded(&pkts, FlowConfig::default(), 4);
        assert_eq!(sharded.records, single.records);
    }

    #[test]
    fn eviction_budget_is_split_across_shards() {
        let shards = 4;
        let flows: u16 = 400;
        let cfg = FlowConfig {
            max_active: 40, // budget of 10 per shard
            ..FlowConfig::default()
        };
        // One packet per flow, all flows stay open: every shard must evict
        // exactly what exceeds its own budget.
        let pkts: Vec<PacketMeta> = (0..flows)
            .map(|f| {
                let dev = Ipv4Addr::new(10, (f >> 8) as u8, f as u8, 7);
                udp(u64::from(f) * 10, dev, Ipv4Addr::new(34, 1, 2, 3), 40_000 + f, 53)
            })
            .collect();
        let out = assemble_sharded(&pkts, cfg, shards);
        let budget = cfg.max_active / shards;
        let mut per_shard_flows = vec![0u64; shards];
        for p in &pkts {
            let (src, dst, sp, dp, proto) = p.five_tuple().unwrap();
            per_shard_flows[shard_of(&FlowKey::canonical(src, dst, sp, dp, proto), shards)] += 1;
        }
        for (i, stats) in out.per_shard.iter().enumerate() {
            let expected = per_shard_flows[i].saturating_sub(budget as u64);
            assert_eq!(
                stats.evictions, expected,
                "shard {i}: {} flows against budget {budget}",
                per_shard_flows[i]
            );
            assert!(stats.peak_active <= budget);
        }
        assert_eq!(
            out.total.evictions,
            out.per_shard.iter().map(|s| s.evictions).sum::<u64>()
        );
        // Evicted flows are finalized, not dropped: every flow surfaces.
        assert_eq!(out.records.len(), flows as usize);
        assert_eq!(out.total.records, u64::from(flows));
    }

    #[test]
    fn default_shards_is_process_wide() {
        assert_eq!(default_shards(), 1);
        set_default_shards(6);
        assert_eq!(default_shards(), 6);
        set_default_shards(0); // clamped
        assert_eq!(default_shards(), 1);
    }
}
