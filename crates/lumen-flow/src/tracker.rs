//! The connection tracker: packets in, Zeek-style connection records out.

use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

use lumen_net::{PacketMeta, TransportMeta};
use lumen_util::Summary;

use crate::record::{ConnRecord, ConnState, Direction, FlagCounts, PktSketch};
use crate::FlowKey;

/// Tracker configuration.
#[derive(Debug, Clone, Copy)]
pub struct FlowConfig {
    /// Idle gap that splits a TCP conversation into two connections (µs).
    pub tcp_idle_us: u64,
    /// Idle gap for UDP (µs).
    pub udp_idle_us: u64,
    /// Idle gap for ICMP and other protocols (µs).
    pub icmp_idle_us: u64,
    /// How many leading packets to sketch per connection.
    pub first_n: usize,
    /// Hard cap on concurrently-tracked connections. When a new flow would
    /// exceed it, the least-recently-touched active connection is finalized
    /// early (LRU eviction) so memory stays bounded under SYN floods and
    /// address-spoofing chaff.
    pub max_active: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        // Zeek's default inactivity timeouts: 5 min TCP, 1 min UDP, ICMP short.
        FlowConfig {
            tcp_idle_us: 300_000_000,
            udp_idle_us: 60_000_000,
            icmp_idle_us: 30_000_000,
            first_n: 100,
            max_active: 65_536,
        }
    }
}

impl FlowConfig {
    fn idle_for(&self, proto: u8) -> u64 {
        match proto {
            6 => self.tcp_idle_us,
            17 => self.udp_idle_us,
            _ => self.icmp_idle_us,
        }
    }
}

/// Per-run flow accounting, returned by
/// [`ConnectionTracker::finish_with_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Connections finalized early because the active table hit
    /// [`FlowConfig::max_active`].
    pub evictions: u64,
    /// High-water mark of concurrently-tracked connections.
    pub peak_active: usize,
    /// Connection records finalized (evicted, split, or flushed).
    pub records: u64,
}

impl FlowStats {
    /// Folds another tracker's accounting into this one. Eviction and
    /// record counts add; `peak_active` adds too, because the trackers
    /// being merged (shards of one table) were concurrently live, so the
    /// sum is the table-wide high-water bound.
    pub fn absorb(&mut self, other: &FlowStats) {
        self.evictions += other.evictions;
        self.peak_active += other.peak_active;
        self.records += other.records;
    }
}

/// Process-global eviction counter, mirroring the compute-kernel profile
/// counters: cheap relaxed atomics that callers snapshot before a run and
/// diff after, so eviction pressure shows up in the ops profile without
/// threading state through every pipeline layer.
pub mod counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    static EVICTIONS: AtomicU64 = AtomicU64::new(0);

    pub(crate) fn note_eviction() {
        EVICTIONS.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative LRU evictions across all trackers in this process.
    /// Snapshot before a run and subtract to get the run's delta.
    pub fn evictions() -> u64 {
        EVICTIONS.load(Ordering::Relaxed)
    }
}

/// Accumulating state for one active connection.
struct ActiveConn {
    orig: (Ipv4Addr, u16),
    resp: (Ipv4Addr, u16),
    proto: u8,
    start_us: u64,
    last_us: u64,
    orig_pkts: u32,
    resp_pkts: u32,
    orig_bytes: u64,
    resp_bytes: u64,
    orig_wire: u64,
    resp_wire: u64,
    orig_flags: FlagCounts,
    resp_flags: FlagCounts,
    iats: Vec<f64>,
    orig_lens: Vec<f64>,
    resp_lens: Vec<f64>,
    history: String,
    history_seen: [bool; 12],
    first_n: Vec<PktSketch>,
    orig_ttl_sum: f64,
    packet_indices: Vec<u32>,
    // TCP progress flags.
    saw_syn: bool,
    saw_synack: bool,
    established: bool,
    fin_orig: bool,
    fin_resp: bool,
    rst_orig: bool,
    rst_resp: bool,
    midstream: bool,
    /// LRU stamp: the tracker's logical clock at the last packet.
    touched: u64,
}

/// History letters in a fixed order; index*2 (+1 for responder) into
/// `history_seen`. Mirrors Zeek's first-occurrence-per-direction rule.
const HISTORY_LETTERS: [char; 6] = ['s', 'h', 'a', 'd', 'f', 'r'];

impl ActiveConn {
    fn new(
        meta: &PacketMeta,
        tuple: (Ipv4Addr, Ipv4Addr, u16, u16, u8),
        index: u32,
        cfg: &FlowConfig,
    ) -> ActiveConn {
        let (src, dst, sp, dp, proto) = tuple;
        let mut conn = ActiveConn {
            orig: (src, sp),
            resp: (dst, dp),
            proto,
            start_us: meta.ts_us,
            last_us: meta.ts_us,
            orig_pkts: 0,
            resp_pkts: 0,
            orig_bytes: 0,
            resp_bytes: 0,
            orig_wire: 0,
            resp_wire: 0,
            orig_flags: FlagCounts::default(),
            resp_flags: FlagCounts::default(),
            iats: Vec::new(),
            orig_lens: Vec::new(),
            resp_lens: Vec::new(),
            history: String::new(),
            history_seen: [false; 12],
            first_n: Vec::new(),
            orig_ttl_sum: 0.0,
            packet_indices: Vec::new(),
            saw_syn: false,
            saw_synack: false,
            established: false,
            fin_orig: false,
            fin_resp: false,
            rst_orig: false,
            rst_resp: false,
            midstream: false,
            touched: 0,
        };
        // A TCP connection that starts with a non-SYN packet is midstream.
        if let TransportMeta::Tcp { flags, .. } = &meta.transport {
            if !flags.syn() {
                conn.midstream = true;
            }
        }
        conn.update(meta, (src, sp), index, cfg);
        conn
    }

    fn direction_of(&self, src: (Ipv4Addr, u16)) -> Direction {
        if src == self.orig {
            Direction::Orig
        } else {
            Direction::Resp
        }
    }

    fn note_history(&mut self, letter_idx: usize, dir: Direction) {
        let slot = letter_idx * 2 + usize::from(dir == Direction::Resp);
        if !self.history_seen[slot] {
            self.history_seen[slot] = true;
            let c = HISTORY_LETTERS[letter_idx];
            self.history.push(if dir == Direction::Orig {
                c.to_ascii_uppercase()
            } else {
                c
            });
        }
    }

    fn update(&mut self, meta: &PacketMeta, src: (Ipv4Addr, u16), index: u32, cfg: &FlowConfig) {
        let dir = self.direction_of(src);
        if meta.ts_us > self.last_us {
            self.iats.push((meta.ts_us - self.last_us) as f64 / 1e6);
        } else if self.total_pkts() > 0 {
            self.iats.push(0.0);
        }
        self.last_us = self.last_us.max(meta.ts_us);
        self.packet_indices.push(index);

        let payload = u64::from(meta.payload_len);
        let wire = u64::from(meta.wire_len);
        match dir {
            Direction::Orig => {
                self.orig_pkts += 1;
                self.orig_bytes += payload;
                self.orig_wire += wire;
                self.orig_lens.push(wire as f64);
                if let Some(ip) = &meta.ipv4 {
                    self.orig_ttl_sum += f64::from(ip.ttl);
                }
            }
            Direction::Resp => {
                self.resp_pkts += 1;
                self.resp_bytes += payload;
                self.resp_wire += wire;
                self.resp_lens.push(wire as f64);
            }
        }

        if self.first_n.len() < cfg.first_n {
            self.first_n.push(PktSketch {
                ts_us: meta.ts_us,
                dir,
                wire_len: meta.wire_len,
                payload_len: meta.payload_len,
            });
        }

        if let TransportMeta::Tcp { flags, .. } = &meta.transport {
            let counters = match dir {
                Direction::Orig => &mut self.orig_flags,
                Direction::Resp => &mut self.resp_flags,
            };
            if flags.syn() {
                counters.0[0] += 1;
            }
            if flags.ack() {
                counters.0[1] += 1;
            }
            if flags.fin() {
                counters.0[2] += 1;
            }
            if flags.rst() {
                counters.0[3] += 1;
            }
            if flags.psh() {
                counters.0[4] += 1;
            }
            if flags.urg() {
                counters.0[5] += 1;
            }

            // History + state machine.
            if flags.syn() && !flags.ack() {
                self.note_history(0, dir);
                if dir == Direction::Orig {
                    self.saw_syn = true;
                }
            }
            if flags.syn() && flags.ack() {
                self.note_history(1, dir);
                if dir == Direction::Resp {
                    self.saw_synack = true;
                }
            }
            if flags.ack() && !flags.syn() {
                self.note_history(2, dir);
                if dir == Direction::Orig && self.saw_synack {
                    self.established = true;
                }
            }
            if payload > 0 {
                self.note_history(3, dir);
            }
            if flags.fin() {
                self.note_history(4, dir);
                match dir {
                    Direction::Orig => self.fin_orig = true,
                    Direction::Resp => self.fin_resp = true,
                }
            }
            if flags.rst() {
                self.note_history(5, dir);
                match dir {
                    Direction::Orig => self.rst_orig = true,
                    Direction::Resp => self.rst_resp = true,
                }
            }
        } else if payload > 0 {
            self.note_history(3, dir);
        }
    }

    fn total_pkts(&self) -> u32 {
        self.orig_pkts + self.resp_pkts
    }

    /// True once TCP teardown means a fresh SYN should open a new record.
    fn is_closed(&self) -> bool {
        self.rst_orig || self.rst_resp || (self.fin_orig && self.fin_resp)
    }

    fn state(&self) -> ConnState {
        if self.proto == 6 {
            if self.midstream {
                ConnState::Oth
            } else if self.rst_resp && !self.established {
                ConnState::Rej
            } else if self.rst_orig {
                ConnState::Rsto
            } else if self.rst_resp {
                ConnState::Rstr
            } else if self.fin_orig && self.fin_resp {
                ConnState::SF
            } else if self.established {
                ConnState::S1
            } else if self.saw_syn && self.resp_pkts == 0 {
                ConnState::S0
            } else {
                ConnState::Oth
            }
        } else if self.orig_pkts > 0 && self.resp_pkts > 0 {
            ConnState::SF
        } else {
            ConnState::S0
        }
    }

    fn finalize(self) -> ConnRecord {
        let state = self.state();
        ConnRecord {
            orig: self.orig,
            resp: self.resp,
            proto: self.proto,
            start_us: self.start_us,
            end_us: self.last_us,
            orig_pkts: self.orig_pkts,
            resp_pkts: self.resp_pkts,
            orig_bytes: self.orig_bytes,
            resp_bytes: self.resp_bytes,
            orig_wire_bytes: self.orig_wire,
            resp_wire_bytes: self.resp_wire,
            orig_flags: self.orig_flags,
            resp_flags: self.resp_flags,
            iat: Summary::of(&self.iats),
            orig_len: Summary::of(&self.orig_lens),
            resp_len: Summary::of(&self.resp_lens),
            state,
            history: self.history,
            first_n: self.first_n,
            orig_ttl_mean: if self.orig_pkts == 0 {
                0.0
            } else {
                self.orig_ttl_sum / f64::from(self.orig_pkts)
            },
            packet_indices: self.packet_indices,
        }
    }
}

/// Streaming connection tracker. Feed packets in timestamp order with
/// [`ConnectionTracker::push`]; completed connections accumulate internally
/// and are drained by [`ConnectionTracker::finish`].
pub struct ConnectionTracker {
    cfg: FlowConfig,
    /// Total records finalized over the tracker's lifetime (splits,
    /// evictions, idle flushes, and the final drain). Kept separately from
    /// `done.len()` because streaming consumers drain `done` incrementally
    /// via [`ConnectionTracker::drain_done`].
    finalized: u64,
    active: HashMap<FlowKey, ActiveConn>,
    /// Recency order, keyed by `(stamp, key)`. The stamp is a per-tracker
    /// logical clock (one tick per push), so stamps alone are already
    /// unique; compounding the key makes the index collision-proof by
    /// construction — a duplicated stamp can no longer shadow another
    /// flow's entry and leak it from the eviction order (the bug the old
    /// `BTreeMap<u64, FlowKey>` index allowed if the clock ever repeated).
    lru: BTreeSet<(u64, FlowKey)>,
    /// Logical clock driving the LRU stamps.
    stamp: u64,
    stats: FlowStats,
    done: Vec<ConnRecord>,
}

impl ConnectionTracker {
    /// Creates a tracker with the given configuration.
    pub fn new(cfg: FlowConfig) -> ConnectionTracker {
        ConnectionTracker {
            cfg,
            finalized: 0,
            active: HashMap::new(),
            lru: BTreeSet::new(),
            stamp: 0,
            stats: FlowStats::default(),
            done: Vec::new(),
        }
    }

    /// Rewinds the logical clock, forcing the next pushes to re-issue
    /// already-used stamps — exists only so tests can prove a stamp
    /// collision cannot shadow a flow in the LRU index.
    #[cfg(test)]
    fn rewind_stamp_for_test(&mut self, to: u64) {
        self.stamp = to;
    }

    fn retire(&mut self, key: &FlowKey) {
        if let Some(conn) = self.active.remove(key) {
            self.lru.remove(&(conn.touched, *key));
            self.done.push(conn.finalize());
            self.finalized += 1;
        }
    }

    /// Processes one packet. `index` is the packet's position in the source
    /// capture (recorded for label propagation). Non-IP packets are ignored.
    pub fn push(&mut self, index: u32, meta: &PacketMeta) {
        let Some(tuple) = meta.five_tuple() else {
            return;
        };
        let (src, dst, sp, dp, proto) = tuple;
        let key = FlowKey::canonical(src, dst, sp, dp, proto);
        let idle = self.cfg.idle_for(proto);

        if let Some(conn) = self.active.get(&key) {
            let gap_split = meta.ts_us.saturating_sub(conn.last_us) > idle;
            let reopen = conn.is_closed()
                && matches!(&meta.transport, TransportMeta::Tcp { flags, .. } if flags.syn() && !flags.ack());
            if gap_split || reopen {
                self.retire(&key);
            }
        }

        // Bound the table before admitting a new flow: evict the
        // least-recently-touched connection (finalized, not dropped — its
        // record still reaches the consumer, just split early).
        if !self.active.contains_key(&key) {
            while self.active.len() >= self.cfg.max_active.max(1) {
                let Some((_, victim)) = self.lru.pop_first() else {
                    break;
                };
                if let Some(conn) = self.active.remove(&victim) {
                    self.done.push(conn.finalize());
                    self.finalized += 1;
                    self.stats.evictions += 1;
                    counters::note_eviction();
                }
            }
        }

        self.stamp += 1;
        let stamp = self.stamp;
        match self.active.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let conn = e.get_mut();
                self.lru.remove(&(conn.touched, key));
                conn.touched = stamp;
                conn.update(meta, (src, sp), index, &self.cfg);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let mut conn = ActiveConn::new(meta, tuple, index, &self.cfg);
                conn.touched = stamp;
                e.insert(conn);
            }
        }
        let fresh = self.lru.insert((stamp, key));
        debug_assert!(
            fresh,
            "LRU stamp collision: ({stamp}, {key:?}) already indexed"
        );
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());
    }

    /// Flushes all still-active connections and returns every record sorted
    /// by start time (ties broken by originator endpoint for determinism).
    pub fn finish(self) -> Vec<ConnRecord> {
        self.finish_with_stats().0
    }

    /// Like [`ConnectionTracker::finish`], also returning the flow-table
    /// accounting (LRU evictions, peak active connections, record count).
    pub fn finish_with_stats(mut self) -> (Vec<ConnRecord>, FlowStats) {
        self.finalized += self.active.len() as u64;
        self.done
            .extend(self.active.into_values().map(ActiveConn::finalize));
        sort_records(&mut self.done);
        self.stats.records = self.finalized;
        (self.done, self.stats)
    }

    // --- incremental (streaming) finalization -------------------------------
    //
    // The batch path above holds every record until end-of-capture. A
    // streaming consumer instead calls `flush_idle` at each time-slice
    // boundary and `drain_done` to take whatever has been finalized so far;
    // `finish_remaining` replaces `finish_with_stats` at end-of-stream.
    // Record sets are identical to the batch path (see the regression test
    // `incremental_finalization_matches_batch`): `flush_idle` retires a flow
    // only when its idle timeout has already expired at the slice boundary,
    // which is exactly the condition under which the batch tracker would
    // have gap-split it on the flow's next packet — and packets after the
    // boundary carry timestamps at or past it.

    /// Retires every active connection whose protocol idle timeout has
    /// expired as of `now_us` (capture time, µs). Call at time-slice
    /// boundaries with `now_us` no later than the next packet's timestamp.
    /// Returns how many connections were retired.
    pub fn flush_idle(&mut self, now_us: u64) -> usize {
        let expired: Vec<FlowKey> = self
            .active
            .iter()
            .filter(|(_, conn)| {
                now_us.saturating_sub(conn.last_us) > self.cfg.idle_for(conn.proto)
            })
            .map(|(key, _)| *key)
            .collect();
        for key in &expired {
            self.retire(key);
        }
        expired.len()
    }

    /// Takes every record finalized so far (gap splits, LRU evictions, idle
    /// flushes) in finalization order. Flows still active stay tracked.
    pub fn drain_done(&mut self) -> Vec<ConnRecord> {
        std::mem::take(&mut self.done)
    }

    /// End-of-stream drain: finalizes all still-active connections and
    /// returns them (plus any undrained records) sorted, with the lifetime
    /// accounting. `stats.records` counts every record the tracker ever
    /// finalized, including those already taken by
    /// [`ConnectionTracker::drain_done`].
    pub fn finish_remaining(mut self) -> (Vec<ConnRecord>, FlowStats) {
        self.finalized += self.active.len() as u64;
        self.done
            .extend(self.active.into_values().map(ActiveConn::finalize));
        sort_records(&mut self.done);
        self.stats.records = self.finalized;
        (self.done, self.stats)
    }

    /// Number of currently-tracked (still-open) connections.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Snapshot of the lifetime accounting so far. `records` reflects
    /// finalized records to date; it keeps growing until the final drain.
    pub fn stats_snapshot(&self) -> FlowStats {
        let mut s = self.stats;
        s.records = self.finalized;
        s
    }
}

/// The canonical record order every assembly path emits: start time, then
/// originator, responder, and protocol. Over records produced from one
/// capture this is a total order — two distinct records can never share all
/// four fields (a canonical flow is tracked by exactly one tracker at a
/// time, and splits of the same flow have distinct start times) — which is
/// what lets the shard router merge per-shard outputs by sorting and land
/// byte-identical to the single-tracker path.
pub(crate) fn sort_records(records: &mut [ConnRecord]) {
    records.sort_by(|a, b| {
        a.start_us
            .cmp(&b.start_us)
            .then_with(|| a.orig.cmp(&b.orig))
            .then_with(|| a.resp.cmp(&b.resp))
            .then_with(|| a.proto.cmp(&b.proto))
    });
}

/// Convenience: assembles connections from a packet slice (sorted internally
/// by timestamp if needed).
pub fn assemble(packets: &[PacketMeta], cfg: FlowConfig) -> Vec<ConnRecord> {
    assemble_with_stats(packets, cfg).0
}

/// Like [`assemble`], also returning the flow-table accounting.
pub fn assemble_with_stats(packets: &[PacketMeta], cfg: FlowConfig) -> (Vec<ConnRecord>, FlowStats) {
    let mut tracker = ConnectionTracker::new(cfg);
    let sorted = packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us);
    if sorted {
        for (i, p) in packets.iter().enumerate() {
            tracker.push(i as u32, p);
        }
    } else {
        let mut order: Vec<usize> = (0..packets.len()).collect();
        order.sort_by_key(|&i| packets[i].ts_us);
        for i in order {
            tracker.push(i as u32, &packets[i]);
        }
    }
    tracker.finish_with_stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_net::builder::{tcp_packet, udp_packet, TcpParams, UdpParams};
    use lumen_net::wire::tcp::TcpFlags;
    use lumen_net::wire::MacAddr;
    use lumen_net::LinkType;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn tcp(
        ts_us: u64,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sp: u16,
        dp: u16,
        flags: TcpFlags,
        payload: &[u8],
    ) -> PacketMeta {
        let pkt = tcp_packet(TcpParams {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip: src,
            dst_ip: dst,
            src_port: sp,
            dst_port: dp,
            seq: 1,
            ack: 1,
            flags,
            window: 1024,
            ttl: 64,
            payload,
        });
        PacketMeta::parse(LinkType::Ethernet, ts_us, &pkt).unwrap()
    }

    fn udp(
        ts_us: u64,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sp: u16,
        dp: u16,
        payload: &[u8],
    ) -> PacketMeta {
        let pkt = udp_packet(UdpParams {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip: src,
            dst_ip: dst,
            src_port: sp,
            dst_port: dp,
            ttl: 64,
            payload,
        });
        PacketMeta::parse(LinkType::Ethernet, ts_us, &pkt).unwrap()
    }

    fn full_handshake_conn() -> Vec<PacketMeta> {
        vec![
            tcp(0, A, B, 40000, 80, TcpFlags::SYN, b""),
            tcp(10_000, B, A, 80, 40000, TcpFlags::SYN_ACK, b""),
            tcp(20_000, A, B, 40000, 80, TcpFlags::ACK, b""),
            tcp(30_000, A, B, 40000, 80, TcpFlags::PSH_ACK, b"GET /"),
            tcp(40_000, B, A, 80, 40000, TcpFlags::PSH_ACK, b"200 OK body"),
            tcp(50_000, A, B, 40000, 80, TcpFlags::FIN_ACK, b""),
            tcp(60_000, B, A, 80, 40000, TcpFlags::FIN_ACK, b""),
            tcp(70_000, A, B, 40000, 80, TcpFlags::ACK, b""),
        ]
    }

    #[test]
    fn normal_connection_is_sf() {
        let conns = assemble(&full_handshake_conn(), FlowConfig::default());
        assert_eq!(conns.len(), 1);
        let c = &conns[0];
        assert_eq!(c.state, ConnState::SF);
        assert_eq!(c.orig, (A, 40000));
        assert_eq!(c.resp, (B, 80));
        assert_eq!(c.orig_pkts, 5);
        assert_eq!(c.resp_pkts, 3);
        assert_eq!(c.orig_bytes, 5);
        assert_eq!(c.resp_bytes, 11);
        assert_eq!(c.packet_indices, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // S: orig SYN, h: resp SYN-ACK, A: orig ACK, D: orig data,
        // a/d: responder's first ACK + data, F/f: both FINs.
        assert_eq!(c.history, "ShADadFf");
    }

    #[test]
    fn syn_scan_is_s0() {
        let pkts = vec![tcp(0, A, B, 40001, 22, TcpFlags::SYN, b"")];
        let conns = assemble(&pkts, FlowConfig::default());
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].state, ConnState::S0);
    }

    #[test]
    fn rejected_connection_is_rej() {
        let pkts = vec![
            tcp(0, A, B, 40002, 23, TcpFlags::SYN, b""),
            tcp(5_000, B, A, 23, 40002, TcpFlags::RST | TcpFlags::ACK, b""),
        ];
        let conns = assemble(&pkts, FlowConfig::default());
        assert_eq!(conns[0].state, ConnState::Rej);
    }

    #[test]
    fn orig_abort_is_rsto() {
        let mut pkts = full_handshake_conn()[..5].to_vec();
        pkts.push(tcp(45_000, A, B, 40000, 80, TcpFlags::RST, b""));
        let conns = assemble(&pkts, FlowConfig::default());
        assert_eq!(conns[0].state, ConnState::Rsto);
    }

    #[test]
    fn midstream_is_oth() {
        let pkts = vec![tcp(0, A, B, 40003, 443, TcpFlags::PSH_ACK, b"data")];
        let conns = assemble(&pkts, FlowConfig::default());
        assert_eq!(conns[0].state, ConnState::Oth);
    }

    #[test]
    fn udp_bidirectional_is_sf() {
        let pkts = vec![
            udp(0, A, B, 5353, 53, b"query bytes"),
            udp(2_000, B, A, 53, 5353, b"answer bytes longer"),
        ];
        let conns = assemble(&pkts, FlowConfig::default());
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].state, ConnState::SF);
        assert_eq!(conns[0].orig, (A, 5353));
    }

    #[test]
    fn idle_gap_splits_udp_flow() {
        let cfg = FlowConfig::default();
        let pkts = vec![
            udp(0, A, B, 9999, 123, b"x"),
            udp(cfg.udp_idle_us + 1_000_000, A, B, 9999, 123, b"y"),
        ];
        let conns = assemble(&pkts, cfg);
        assert_eq!(conns.len(), 2);
    }

    #[test]
    fn new_syn_after_close_opens_new_connection() {
        let mut pkts = full_handshake_conn();
        pkts.push(tcp(80_000, A, B, 40000, 80, TcpFlags::SYN, b""));
        pkts.push(tcp(90_000, B, A, 80, 40000, TcpFlags::SYN_ACK, b""));
        let conns = assemble(&pkts, FlowConfig::default());
        assert_eq!(conns.len(), 2);
        assert_eq!(conns[0].state, ConnState::SF);
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let mut pkts = full_handshake_conn();
        pkts.swap(0, 3);
        let conns = assemble(&pkts, FlowConfig::default());
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].state, ConnState::SF);
    }

    #[test]
    fn first_n_is_capped() {
        let cfg = FlowConfig {
            first_n: 3,
            ..FlowConfig::default()
        };
        let mut pkts = vec![tcp(0, A, B, 40000, 80, TcpFlags::SYN, b"")];
        for i in 1..10 {
            pkts.push(tcp(i * 1000, A, B, 40000, 80, TcpFlags::ACK, b"zz"));
        }
        let conns = assemble(&pkts, cfg);
        assert_eq!(conns[0].first_n.len(), 3);
        assert_eq!(conns[0].orig_pkts, 10);
    }

    #[test]
    fn distinct_five_tuples_distinct_conns() {
        let pkts = vec![
            udp(0, A, B, 1000, 53, b"a"),
            udp(1, A, B, 1001, 53, b"b"),
            udp(2, A, B, 1000, 123, b"c"),
        ];
        let conns = assemble(&pkts, FlowConfig::default());
        assert_eq!(conns.len(), 3);
    }

    #[test]
    fn iat_summary_reasonable() {
        let conns = assemble(&full_handshake_conn(), FlowConfig::default());
        let c = &conns[0];
        assert_eq!(c.iat.count, 7);
        assert!((c.iat.mean - 0.01).abs() < 1e-9);
    }

    #[test]
    fn non_ip_packets_ignored() {
        let arp = lumen_net::builder::arp_packet(
            MacAddr::from_id(1),
            A,
            MacAddr::BROADCAST,
            B,
            lumen_net::wire::arp::ArpOperation::Request,
        );
        let meta = PacketMeta::parse(LinkType::Ethernet, 0, &arp).unwrap();
        let conns = assemble(&[meta], FlowConfig::default());
        assert!(conns.is_empty());
    }

    #[test]
    fn flood_of_syns_from_many_ports() {
        // 100 spoofed-source SYNs: 100 distinct S0 connections.
        let pkts: Vec<PacketMeta> = (0..100u16)
            .map(|i| tcp(u64::from(i) * 100, A, B, 10_000 + i, 80, TcpFlags::SYN, b""))
            .collect();
        let conns = assemble(&pkts, FlowConfig::default());
        assert_eq!(conns.len(), 100);
        assert!(conns.iter().all(|c| c.state == ConnState::S0));
    }

    #[test]
    fn flow_table_is_bounded_with_lru_eviction() {
        let cfg = FlowConfig {
            max_active: 10,
            ..FlowConfig::default()
        };
        let pkts: Vec<PacketMeta> = (0..100u16)
            .map(|i| udp(u64::from(i) * 100, A, B, 20_000 + i, 53, b"q"))
            .collect();
        let (conns, stats) = assemble_with_stats(&pkts, cfg);
        assert_eq!(conns.len(), 100, "evicted flows are finalized, not lost");
        assert_eq!(stats.evictions, 90);
        assert_eq!(stats.peak_active, 10);
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let cfg = FlowConfig {
            max_active: 2,
            ..FlowConfig::default()
        };
        let pkts = vec![
            udp(0, A, B, 1000, 53, b"x"), // flow X
            udp(1, A, B, 1001, 53, b"y"), // flow Y
            udp(2, A, B, 1000, 53, b"x"), // touch X: Y is now oldest
            udp(3, A, B, 1002, 53, b"z"), // flow Z evicts Y (not X)
            udp(4, A, B, 1001, 53, b"y"), // Y returns as a NEW connection
        ];
        let (conns, stats) = assemble_with_stats(&pkts, cfg);
        assert_eq!(stats.evictions, 2); // Y at the Z push, X at Y's return
        // Two records for Y proves the Z push evicted Y, the least
        // recently touched, and not X, which had just been refreshed.
        let y_records = conns.iter().filter(|c| c.orig.1 == 1001).count();
        assert_eq!(y_records, 2, "evicted flow re-opens as a new record");
        assert_eq!(conns.iter().filter(|c| c.orig.1 == 1000).count(), 1);
    }

    #[test]
    fn eviction_counter_is_globally_visible() {
        let before = counters::evictions();
        let cfg = FlowConfig {
            max_active: 1,
            ..FlowConfig::default()
        };
        let pkts = vec![
            udp(0, A, B, 1000, 53, b"x"),
            udp(1, A, B, 1001, 53, b"y"),
            udp(2, A, B, 1002, 53, b"z"),
        ];
        let (_, stats) = assemble_with_stats(&pkts, cfg);
        assert_eq!(stats.evictions, 2);
        assert!(counters::evictions() >= before + 2);
    }

    #[test]
    fn default_cap_does_not_disturb_small_traces() {
        let (conns, stats) = assemble_with_stats(&full_handshake_conn(), FlowConfig::default());
        assert_eq!(conns.len(), 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.peak_active, 1);
        assert_eq!(stats.records, 1);
    }

    #[test]
    fn forced_stamp_collision_cannot_shadow_a_flow() {
        // Regression: the LRU index used to be keyed by stamp alone, so a
        // repeated stamp overwrote the earlier flow's entry — that flow
        // could then never be evicted (leaked until flush). Rewind the
        // logical clock so two distinct flows carry the SAME stamp and
        // prove both remain in the eviction order.
        let cfg = FlowConfig {
            max_active: 2,
            ..FlowConfig::default()
        };
        let mut t = ConnectionTracker::new(cfg);
        t.push(0, &udp(0, A, B, 1000, 53, b"x")); // flow X, stamp 1
        t.rewind_stamp_for_test(0);
        t.push(1, &udp(1, A, B, 1001, 53, b"y")); // flow Y, stamp 1 again
        assert_eq!(t.lru.len(), 2, "colliding stamps must not shadow an entry");
        // Two more flows: with max_active = 2, BOTH X and Y must be
        // evictable. Under the old index one of them was unreachable.
        t.push(2, &udp(2, A, B, 1002, 53, b"z"));
        t.push(3, &udp(3, A, B, 1003, 53, b"w"));
        let (conns, stats) = t.finish_with_stats();
        assert_eq!(stats.evictions, 2, "both colliding flows were evictable");
        assert_eq!(conns.len(), 4);
        assert_eq!(stats.records, 4);
    }

    #[test]
    fn concurrent_trackers_keep_their_own_eviction_counts() {
        // Regression for the matrix-attribution bug: eviction accounting
        // must come from each tracker's own FlowStats, not from diffing the
        // process-global counter, which interleaves counts from trackers
        // running concurrently on other threads.
        let mk_pkts = |n: u16| -> Vec<PacketMeta> {
            (0..n)
                .map(|i| udp(u64::from(i) * 10, A, B, 10_000 + i, 53, b"q"))
                .collect()
        };
        let cfg_small = FlowConfig {
            max_active: 5,
            ..FlowConfig::default()
        };
        let cfg_large = FlowConfig {
            max_active: 50,
            ..FlowConfig::default()
        };
        let global_before = counters::evictions();
        let (a, b) = std::thread::scope(|s| {
            let pkts_a = mk_pkts(100); // 95 evictions under cap 5
            let pkts_b = mk_pkts(60); // 10 evictions under cap 50
            let ha = s.spawn(move || assemble_with_stats(&pkts_a, cfg_small).1);
            let hb = s.spawn(move || assemble_with_stats(&pkts_b, cfg_large).1);
            (ha.join().unwrap(), hb.join().unwrap())
        });
        // Per-tracker stats attribute exactly, regardless of interleaving.
        assert_eq!(a.evictions, 95);
        assert_eq!(b.evictions, 10);
        assert_eq!(a.records, 100);
        assert_eq!(b.records, 60);
        // The global counter remains a process-wide total: it saw at least
        // the sum, but cannot attribute it — that is the journal's job now.
        assert!(counters::evictions() >= global_before + 105);
    }

    /// Traffic with flows that straddle slice boundaries, go idle past
    /// their timeout, split on a gap, and stay open to end-of-capture —
    /// the shapes that distinguish incremental from batch finalization.
    fn straddling_traffic() -> Vec<PacketMeta> {
        let mut pkts = Vec::new();
        // Flow 1: full handshake in the first second.
        pkts.extend(full_handshake_conn());
        // Flow 2: UDP query at t=0.5s, reply at t=2.5s (straddles a 1s
        // slice boundary but stays within its 60s idle window).
        pkts.push(udp(500_000, A, B, 50_000, 53, b"query"));
        pkts.push(udp(2_500_000, B, A, 53, 50_000, b"answer"));
        // Flow 3: UDP burst at t=1s, then silence — idle-expires mid-run.
        pkts.push(udp(1_000_000, A, B, 50_001, 123, b"ntp"));
        // Flow 4: TCP conversation with a >idle gap — splits in two.
        pkts.push(tcp(3_000_000, A, B, 40_001, 80, TcpFlags::SYN, b""));
        pkts.push(tcp(3_010_000, B, A, 80, 40_001, TcpFlags::SYN_ACK, b""));
        pkts.push(tcp(400_000_000, A, B, 40_001, 80, TcpFlags::SYN, b""));
        // Flow 5: still open at end-of-capture.
        pkts.push(udp(401_000_000, B, A, 50_002, 53, b"late"));
        pkts.sort_by_key(|p| p.ts_us);
        pkts
    }

    #[test]
    fn incremental_finalization_matches_batch() {
        let cfg = FlowConfig::default(); // default max_active: no evictions
        let pkts = straddling_traffic();
        let (batch, batch_stats) = assemble_with_stats(&pkts, cfg);

        // Incremental: push slice by slice, flushing idle flows and
        // draining finalized records at every 1-second boundary.
        let mut tracker = ConnectionTracker::new(cfg);
        let slice_us = 1_000_000;
        let mut boundary = slice_us;
        let mut drained: Vec<ConnRecord> = Vec::new();
        let mut drained_running = 0u64;
        for (i, p) in pkts.iter().enumerate() {
            while p.ts_us >= boundary {
                tracker.flush_idle(boundary);
                drained.extend(tracker.drain_done());
                boundary += slice_us;
            }
            tracker.push(i as u32, p);
            drained.extend(tracker.drain_done());
            // The snapshot's record count tracks what has been finalized.
            assert_eq!(tracker.stats_snapshot().records, drained.len() as u64);
            drained_running = drained.len() as u64;
        }
        let open_at_end = tracker.active_len();
        assert!(open_at_end > 0, "flow 5 must still be open at end");
        let (rest, inc_stats) = tracker.finish_remaining();
        drained.extend(rest);
        sort_records(&mut drained);

        // Identical record sets, identical lifetime accounting.
        assert_eq!(batch.len(), drained.len());
        for (b, d) in batch.iter().zip(drained.iter()) {
            assert_eq!(b.orig, d.orig);
            assert_eq!(b.resp, d.resp);
            assert_eq!(b.proto, d.proto);
            assert_eq!(b.start_us, d.start_us);
            assert_eq!(b.end_us, d.end_us);
            assert_eq!(b.state, d.state);
            assert_eq!(b.history, d.history);
            assert_eq!(b.packet_indices, d.packet_indices);
            assert_eq!(b.orig_pkts, d.orig_pkts);
            assert_eq!(b.resp_pkts, d.resp_pkts);
            assert_eq!(b.orig_bytes, d.orig_bytes);
            assert_eq!(b.resp_bytes, d.resp_bytes);
        }
        assert_eq!(batch_stats.records, inc_stats.records);
        assert_eq!(batch_stats.evictions, inc_stats.evictions);
        // The NTP flow (idle 30+ seconds past its 60s window by t=400s)
        // must have been flushed mid-run, not at end-of-capture.
        assert!(
            drained_running > 0,
            "idle flush must finalize flows before end-of-stream"
        );
    }

    #[test]
    fn flush_idle_respects_per_protocol_timeouts() {
        let cfg = FlowConfig::default();
        let mut tracker = ConnectionTracker::new(cfg);
        // One TCP (300s idle) and one UDP (60s idle) flow, both at t=0.
        tracker.push(0, &tcp(0, A, B, 40_000, 80, TcpFlags::SYN, b""));
        tracker.push(1, &udp(0, A, B, 50_000, 53, b"q"));
        assert_eq!(tracker.active_len(), 2);

        // At t=61s only the UDP flow has expired.
        assert_eq!(tracker.flush_idle(61_000_000), 1);
        assert_eq!(tracker.active_len(), 1);
        let drained = tracker.drain_done();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].proto, 17);

        // At t=301s the TCP flow expires too; a second flush is a no-op.
        assert_eq!(tracker.flush_idle(301_000_000), 1);
        assert_eq!(tracker.flush_idle(301_000_000), 0);
        let (rest, stats) = tracker.finish_remaining();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].proto, 6);
        assert_eq!(stats.records, 2, "lifetime count spans drained + rest");
    }
}
