//! Property-based tests for the connection tracker.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use lumen_flow::{assemble, FlowConfig, FlowKey};
use lumen_net::builder::{tcp_packet, udp_packet, TcpParams, UdpParams};
use lumen_net::wire::tcp::TcpFlags;
use lumen_net::{LinkType, MacAddr, PacketMeta};

fn udp_meta(ts: u64, src: u8, dst: u8, sp: u16, dp: u16) -> PacketMeta {
    let frame = udp_packet(UdpParams {
        src_mac: MacAddr::from_id(u64::from(src)),
        dst_mac: MacAddr::from_id(u64::from(dst)),
        src_ip: Ipv4Addr::new(10, 0, 0, src),
        dst_ip: Ipv4Addr::new(10, 0, 0, dst),
        src_port: sp,
        dst_port: dp,
        ttl: 64,
        payload: b"pp",
    });
    PacketMeta::parse(LinkType::Ethernet, ts, &frame).unwrap()
}

proptest! {
    /// The canonical flow key is direction-independent for any endpoints.
    #[test]
    fn flow_key_symmetric(
        a in any::<u32>(), b in any::<u32>(),
        pa in any::<u16>(), pb in any::<u16>(),
        proto in 0u8..=255,
    ) {
        let (ia, ib) = (Ipv4Addr::from(a), Ipv4Addr::from(b));
        prop_assert_eq!(
            FlowKey::canonical(ia, ib, pa, pb, proto),
            FlowKey::canonical(ib, ia, pb, pa, proto)
        );
    }

    /// Assembly conserves packets: every IP packet lands in exactly one
    /// connection, for any interleaving of up to 5 conversations.
    #[test]
    fn assembly_conserves_packets(
        schedule in proptest::collection::vec((0u8..5, 0u64..10_000_000), 1..60)
    ) {
        let metas: Vec<PacketMeta> = schedule
            .iter()
            .enumerate()
            .map(|(i, &(flow, jitter))| {
                udp_meta(
                    i as u64 * 1000 + jitter % 997,
                    1 + flow,
                    100,
                    2000 + u16::from(flow),
                    53,
                )
            })
            .collect();
        let conns = assemble(&metas, FlowConfig::default());
        let mut seen: Vec<u32> = conns.iter().flat_map(|c| c.packet_indices.clone()).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), metas.len());
        // Flow count is bounded by distinct sources.
        let mut flows: Vec<u8> = schedule.iter().map(|&(f, _)| f).collect();
        flows.sort_unstable();
        flows.dedup();
        prop_assert_eq!(conns.len(), flows.len());
    }

    /// Connection statistics are internally consistent for arbitrary TCP
    /// conversations: packet counts match indices, durations are
    /// non-negative, byte totals bound payload totals.
    #[test]
    fn connection_stats_consistent(
        n_data in 0usize..12,
        gap_us in 1u64..2_000_000,
        payload_len in 0usize..600,
    ) {
        let a = Ipv4Addr::new(10, 1, 0, 1);
        let b = Ipv4Addr::new(10, 1, 0, 2);
        let mk = |ts, from_a: bool, flags, pl: &[u8]| {
            let (s, d, sp, dp) = if from_a { (a, b, 555, 80) } else { (b, a, 80, 555) };
            let frame = tcp_packet(TcpParams {
                src_mac: MacAddr::from_id(1),
                dst_mac: MacAddr::from_id(2),
                src_ip: s,
                dst_ip: d,
                src_port: sp,
                dst_port: dp,
                seq: 1,
                ack: 1,
                flags,
                window: 100,
                ttl: 64,
                payload: pl,
            });
            PacketMeta::parse(LinkType::Ethernet, ts, &frame).unwrap()
        };
        let mut metas = vec![
            mk(0, true, TcpFlags::SYN, b""),
            mk(gap_us, false, TcpFlags::SYN_ACK, b""),
            mk(gap_us * 2, true, TcpFlags::ACK, b""),
        ];
        let payload = vec![0x41u8; payload_len];
        for i in 0..n_data {
            metas.push(mk(gap_us * (3 + i as u64), i % 2 == 0, TcpFlags::PSH_ACK, &payload));
        }
        let conns = assemble(&metas, FlowConfig {
            tcp_idle_us: u64::MAX / 2,
            ..FlowConfig::default()
        });
        prop_assert_eq!(conns.len(), 1);
        let c = &conns[0];
        prop_assert_eq!((c.orig_pkts + c.resp_pkts) as usize, metas.len());
        prop_assert_eq!(c.packet_indices.len(), metas.len());
        prop_assert!(c.end_us >= c.start_us);
        prop_assert!(c.orig_bytes <= c.orig_wire_bytes);
        prop_assert!(c.resp_bytes <= c.resp_wire_bytes);
        let expected_payload = (n_data * payload_len) as u64;
        prop_assert_eq!(c.orig_bytes + c.resp_bytes, expected_payload);
        // History is bounded and the first packet makes A the originator.
        prop_assert!(c.history.len() <= 12);
        prop_assert_eq!(c.orig, (a, 555));
    }

    /// Uni-flow splitting partitions a connection's packets by direction.
    #[test]
    fn uni_flows_partition_directions(n_fwd in 1u32..10, n_rev in 0u32..10) {
        let mut metas = Vec::new();
        for i in 0..n_fwd {
            metas.push(udp_meta(u64::from(i) * 10, 1, 2, 4000, 53));
        }
        for i in 0..n_rev {
            metas.push(udp_meta(u64::from(n_fwd + i) * 10, 2, 1, 53, 4000));
        }
        let conns = assemble(&metas, FlowConfig::default());
        prop_assert_eq!(conns.len(), 1);
        let flows = conns[0].to_uni_flows();
        let total: u32 = flows.iter().map(|f| f.pkts).sum();
        prop_assert_eq!(total, n_fwd + n_rev);
        prop_assert_eq!(flows.len(), if n_rev == 0 { 1 } else { 2 });
    }
}
