//! MLP autoencoders trained by backpropagation.
//!
//! Two published algorithms rest on these: the network-centric detector
//! (A11) and early detection (A12) train an autoencoder on benign traffic
//! and alarm on high reconstruction error; KitNET (A06) stacks many small
//! ones.

use lumen_util::Rng;

use crate::kernels::{self, KernelOp};
use crate::matrix::Matrix;
use crate::model::AnomalyDetector;
use crate::preprocess::{MinMaxScaler, Transform};
use crate::{MlError, MlResult};

/// Autoencoder hyperparameters.
#[derive(Debug, Clone)]
pub struct AutoencoderConfig {
    /// Hidden-layer sizes of the *encoder*; the decoder mirrors them.
    /// `vec![8]` builds `d → 8 → d`; `vec![16, 4]` builds `d → 16 → 4 → 16 → d`.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Weight-initialization / shuffle seed.
    pub seed: u64,
}

impl Default for AutoencoderConfig {
    fn default() -> Self {
        AutoencoderConfig {
            hidden: vec![8],
            epochs: 60,
            learning_rate: 0.05,
            momentum: 0.9,
            seed: 0,
        }
    }
}

/// One dense layer with sigmoid activation.
///
/// Weights are stored transpose-packed (`w.row(c)` holds output unit `c`'s
/// incoming weights), so a row forward is one [`kernels::dot`] per unit and
/// a batch forward is one [`kernels::matmul_bt`] — the same accumulation
/// structure, so the two paths are bit-identical.
struct Layer {
    /// `outputs × inputs`, transpose-packed.
    w: Matrix,
    b: Vec<f64>,
    vw: Matrix,
    vb: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut Rng) -> Layer {
        // Xavier-style uniform init.
        let bound = (6.0 / (inputs + outputs) as f64).sqrt();
        let mut w = Matrix::zeros(outputs, inputs);
        for v in w.as_mut_slice() {
            *v = rng.f64_range(-bound, bound);
        }
        Layer {
            vw: Matrix::zeros(outputs, inputs),
            vb: vec![0.0; outputs],
            w,
            b: vec![0.0; outputs],
        }
    }

    fn forward(&self, input: &[f64]) -> Vec<f64> {
        (0..self.b.len())
            .map(|c| sigmoid(self.b[c] + kernels::dot(input, self.w.row(c))))
            .collect()
    }

    /// Whole-batch forward: `sigmoid(X·Wᵀ + b)` as one `matmul_bt` plus an
    /// element-wise pass. `out[i][c] = sigmoid(b[c] + dot(x_i, w_c))` —
    /// exactly the [`Layer::forward`] expression, hence bit-identical.
    fn forward_matrix(&self, x: &Matrix, threads: usize) -> Matrix {
        let mut z = kernels::matmul_bt(x, &self.w, threads).expect("layer shapes agree");
        let outs = self.b.len();
        let b = &self.b;
        lumen_util::par::par_rows_mut(z.as_mut_slice(), outs, threads, |_, row| {
            for (v, &bc) in row.iter_mut().zip(b) {
                *v = sigmoid(bc + *v);
            }
        });
        z
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A fitted autoencoder; anomaly score is reconstruction RMSE over features
/// scaled to `[0, 1]`.
pub struct Autoencoder {
    /// Hyperparameters.
    pub config: AutoencoderConfig,
    scaler: MinMaxScaler,
    layers: Vec<Layer>,
    fitted: bool,
}

impl Autoencoder {
    /// Creates an unfitted autoencoder.
    pub fn new(config: AutoencoderConfig) -> Autoencoder {
        Autoencoder {
            config,
            scaler: MinMaxScaler::default(),
            layers: Vec::new(),
            fitted: false,
        }
    }

    fn layer_sizes(&self, d: usize) -> Vec<usize> {
        let mut sizes = vec![d];
        for &h in &self.config.hidden {
            sizes.push(h.max(1));
        }
        for &h in self.config.hidden.iter().rev().skip(1) {
            sizes.push(h.max(1));
        }
        sizes.push(d);
        sizes
    }

    /// Forward pass returning every layer's activations (first = input).
    fn forward_all(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("nonempty"));
            acts.push(next);
        }
        acts
    }

    /// One SGD step on a single (scaled) example; returns squared error.
    fn train_step(&mut self, input: &[f64]) -> f64 {
        let acts = self.forward_all(input);
        let output = acts.last().expect("output layer");
        // dL/da for MSE loss.
        let mut delta: Vec<f64> = output
            .iter()
            .zip(input)
            .map(|(o, t)| (o - t) * o * (1.0 - o)) // include sigmoid'
            .collect();
        let sq_err: f64 = output
            .iter()
            .zip(input)
            .map(|(o, t)| (o - t) * (o - t))
            .sum();

        let lr = self.config.learning_rate;
        let mu = self.config.momentum;
        for l in (0..self.layers.len()).rev() {
            let inputs = &acts[l];
            // Gradient wrt previous activations (before applying this layer's update).
            let mut prev_delta = vec![0.0; inputs.len()];
            {
                let layer = &self.layers[l];
                // prev_delta[i] = Σ_c w[c][i]·δ[c] — one axpy per output unit
                // over the transpose-packed weight rows.
                for (c, &dc) in delta.iter().enumerate() {
                    kernels::axpy(dc, layer.w.row(c), &mut prev_delta);
                }
                // Multiply by sigmoid' of this activation (skip for raw input layer).
                if l != 0 {
                    for (pd, &a) in prev_delta.iter_mut().zip(inputs.iter()) {
                        *pd *= a * (1.0 - a);
                    }
                }
            }
            let layer = &mut self.layers[l];
            for (c, &dc) in delta.iter().enumerate() {
                let vrow = layer.vw.row_mut(c);
                let wrow = layer.w.row_mut(c);
                for (i, &a) in inputs.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let v = mu * vrow[i] - lr * a * dc;
                    vrow[i] = v;
                    wrow[i] += v;
                }
            }
            for (c, &dc) in delta.iter().enumerate() {
                let v = mu * layer.vb[c] - lr * dc;
                layer.vb[c] = v;
                layer.b[c] += v;
            }
            delta = prev_delta;
        }
        sq_err
    }

    /// Reconstruction RMSE of one already-scaled row.
    fn rmse_scaled(&self, scaled: &[f64]) -> f64 {
        let acts = self.forward_all(scaled);
        rmse_rows(acts.last().expect("output"), scaled)
    }
}

/// RMSE between a reconstruction and its target (sequential sum — shared by
/// the row and batch scoring paths so they agree bit-for-bit).
fn rmse_rows(out: &[f64], target: &[f64]) -> f64 {
    let mse: f64 = out
        .iter()
        .zip(target)
        .map(|(o, t)| (o - t) * (o - t))
        .sum::<f64>()
        / target.len().max(1) as f64;
    mse.sqrt()
}

impl AnomalyDetector for Autoencoder {
    fn fit_benign(&mut self, benign: &Matrix) -> MlResult<()> {
        if benign.rows() == 0 || benign.cols() == 0 {
            return Err(MlError::EmptyInput);
        }
        let x = self.scaler.fit_transform(benign)?;
        let d = x.cols();
        let sizes = self.layer_sizes(d);
        let mut rng = Rng::new(self.config.seed);
        self.layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        let mut order: Vec<usize> = (0..x.rows()).collect();
        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                self.train_step(x.row(i));
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn anomaly_score(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        let probe = Matrix::from_rows(vec![row.to_vec()]).expect("row");
        let scaled = self.scaler.transform(&probe);
        // Clamp: unseen extremes can exceed [0,1]; sigmoid output can't
        // follow, so clamp the target for a bounded-but-monotone score.
        let clamped: Vec<f64> = scaled.row(0).iter().map(|v| v.clamp(-1.0, 2.0)).collect();
        self.rmse_scaled(&clamped)
    }

    /// Batched scoring: one whole-matrix forward pass per layer instead of a
    /// per-row loop. Bit-identical to [`Autoencoder::anomaly_score`] because
    /// [`Layer::forward_matrix`] mirrors [`Layer::forward`]'s accumulation.
    fn anomaly_scores(&self, x: &Matrix) -> Vec<f64> {
        if !self.fitted {
            return vec![0.0; x.rows()];
        }
        let mut target = self.scaler.transform(x);
        for v in target.as_mut_slice() {
            *v = v.clamp(-1.0, 2.0);
        }
        let threads = kernels::resolve_threads(0);
        kernels::timed(KernelOp::AeForward, || {
            let mut cur = target.clone();
            for layer in &self.layers {
                cur = layer.forward_matrix(&cur, threads);
            }
            (0..target.rows())
                .map(|i| rmse_rows(cur.row(i), target.row(i)))
                .collect()
        })
    }

    fn name(&self) -> &'static str {
        "autoencoder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlated_benign(seed: u64, n: usize) -> Matrix {
        // Benign manifold: x1 = x0, x2 = 1 - x0 (1-D structure in 3-D).
        let mut rng = Rng::new(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let t = rng.f64();
                vec![
                    t + rng.normal_with(0.0, 0.01),
                    t + rng.normal_with(0.0, 0.01),
                    1.0 - t + rng.normal_with(0.0, 0.01),
                ]
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn reconstructs_manifold_points_better_than_outliers() {
        let x = correlated_benign(1, 400);
        let mut ae = Autoencoder::new(AutoencoderConfig {
            hidden: vec![2],
            epochs: 80,
            ..AutoencoderConfig::default()
        });
        ae.fit_benign(&x).unwrap();
        let on_manifold = ae.anomaly_score(&[0.5, 0.5, 0.5]);
        // Off-manifold: x1 != x0 violates the learned structure.
        let off_manifold = ae.anomaly_score(&[0.9, 0.1, 0.9]);
        assert!(
            off_manifold > on_manifold * 1.5,
            "off {off_manifold} vs on {on_manifold}"
        );
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let x = correlated_benign(2, 200);
        let mut scaler = MinMaxScaler::default();
        let scaled = scaler.fit_transform(&x).unwrap();

        let mut ae = Autoencoder::new(AutoencoderConfig {
            hidden: vec![2],
            epochs: 0,
            ..AutoencoderConfig::default()
        });
        ae.fit_benign(&x).unwrap();
        let before: f64 = scaled.rows_iter().map(|r| ae.rmse_scaled(r)).sum();

        let mut trained = Autoencoder::new(AutoencoderConfig {
            hidden: vec![2],
            epochs: 60,
            ..AutoencoderConfig::default()
        });
        trained.fit_benign(&x).unwrap();
        let after: f64 = scaled.rows_iter().map(|r| trained.rmse_scaled(r)).sum();
        assert!(after < before, "after {after} before {before}");
    }

    #[test]
    fn deeper_stacks_build_correctly() {
        let ae = Autoencoder::new(AutoencoderConfig {
            hidden: vec![16, 4],
            ..AutoencoderConfig::default()
        });
        assert_eq!(ae.layer_sizes(32), vec![32, 16, 4, 16, 32]);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = correlated_benign(3, 100);
        let mut a = Autoencoder::new(AutoencoderConfig::default());
        let mut b = Autoencoder::new(AutoencoderConfig::default());
        a.fit_benign(&x).unwrap();
        b.fit_benign(&x).unwrap();
        let p = [0.3, 0.7, 0.2];
        assert_eq!(a.anomaly_score(&p), b.anomaly_score(&p));
    }

    #[test]
    fn batch_scores_match_row_scores_exactly() {
        let x = correlated_benign(5, 120);
        let mut ae = Autoencoder::new(AutoencoderConfig {
            hidden: vec![2],
            epochs: 20,
            ..AutoencoderConfig::default()
        });
        ae.fit_benign(&x).unwrap();
        let probe = correlated_benign(6, 40);
        let batch = ae.anomaly_scores(&probe);
        for (i, row) in probe.rows_iter().enumerate() {
            assert_eq!(
                batch[i].to_bits(),
                ae.anomaly_score(row).to_bits(),
                "row {i} diverged"
            );
        }
    }

    #[test]
    fn rejects_empty() {
        let mut ae = Autoencoder::new(AutoencoderConfig::default());
        assert!(ae.fit_benign(&Matrix::zeros(0, 3)).is_err());
    }

    #[test]
    fn unfitted_scores_zero() {
        let ae = Autoencoder::new(AutoencoderConfig::default());
        assert_eq!(ae.anomaly_score(&[1.0]), 0.0);
    }
}
