//! Gaussian naive Bayes — the classifier behind BayesianIDS (A13).

use crate::dataset::Dataset;
use crate::model::Classifier;
use crate::{MlError, MlResult};

/// Per-class feature Gaussians with a shared variance floor.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    /// Log prior per class `[benign, malicious]`.
    log_prior: [f64; 2],
    /// Per-class per-feature means.
    means: [Vec<f64>; 2],
    /// Per-class per-feature variances (floored).
    vars: [Vec<f64>; 2],
    fitted: bool,
}

impl GaussianNb {
    /// Creates an unfitted model.
    pub fn new() -> GaussianNb {
        GaussianNb::default()
    }

    fn log_likelihood(&self, class: usize, row: &[f64]) -> f64 {
        let mut ll = self.log_prior[class];
        for (f, &x) in row.iter().enumerate() {
            let mean = self.means[class][f];
            let var = self.vars[class][f];
            ll += -0.5 * ((x - mean).powi(2) / var + var.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, data: &Dataset) -> MlResult<()> {
        if data.is_empty() {
            return Err(MlError::EmptyInput);
        }
        let d = data.x.cols();
        let n = data.len() as f64;
        // Variance smoothing relative to the largest feature variance
        // (sklearn's var_smoothing approach).
        let max_var = data
            .x
            .col_stds()
            .iter()
            .map(|s| s * s)
            .fold(0.0f64, f64::max);
        let floor = (max_var * 1e-9).max(1e-12);

        for class in 0..2 {
            let rows = data.rows_with_label(class as u8);
            let count = rows.rows();
            if count == 0 {
                // Unseen class: uniform prior, flat Gaussians.
                self.log_prior[class] = (1.0 / (n + 2.0)).ln();
                self.means[class] = vec![0.0; d];
                self.vars[class] = vec![1.0; d];
                continue;
            }
            self.log_prior[class] = ((count as f64 + 1.0) / (n + 2.0)).ln();
            self.means[class] = rows.col_means();
            self.vars[class] = rows
                .col_stds()
                .into_iter()
                .map(|s| (s * s).max(floor))
                .collect();
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> u8 {
        u8::from(self.score_row(row) > 0.5)
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        let l0 = self.log_likelihood(0, row);
        let l1 = self.log_likelihood(1, row);
        // Softmax over two log-likelihoods = P(malicious | row).
        let m = l0.max(l1);
        let e0 = (l0 - m).exp();
        let e1 = (l1 - m).exp();
        e1 / (e0 + e1)
    }

    fn name(&self) -> &'static str {
        "gaussian-nb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use lumen_util::Rng;

    fn gaussians(seed: u64, n: usize, sep: f64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let label = rng.chance(0.5);
            let c = if label { sep } else { 0.0 };
            rows.push(vec![rng.normal_with(c, 1.0), rng.normal_with(c, 1.0)]);
            y.push(u8::from(label));
        }
        Dataset::new(Matrix::from_rows(rows).unwrap(), y).unwrap()
    }

    #[test]
    fn separates_shifted_gaussians() {
        let train = gaussians(1, 400, 4.0);
        let test = gaussians(2, 200, 4.0);
        let mut nb = GaussianNb::new();
        nb.fit(&train).unwrap();
        let preds = nb.predict(&test.x);
        let acc = preds.iter().zip(&test.y).filter(|(p, t)| p == t).count() as f64 / 200.0;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn scores_are_probabilities() {
        let data = gaussians(3, 100, 2.0);
        let mut nb = GaussianNb::new();
        nb.fit(&data).unwrap();
        for row in data.x.rows_iter() {
            let s = nb.score_row(row);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn obvious_points_get_confident_scores() {
        let train = gaussians(4, 400, 6.0);
        let mut nb = GaussianNb::new();
        nb.fit(&train).unwrap();
        assert!(nb.score_row(&[6.0, 6.0]) > 0.99);
        assert!(nb.score_row(&[0.0, 0.0]) < 0.01);
    }

    #[test]
    fn single_class_training_does_not_panic() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        let data = Dataset::new(x, vec![0, 0]).unwrap();
        let mut nb = GaussianNb::new();
        nb.fit(&data).unwrap();
        // Everything near the benign cluster stays benign.
        assert_eq!(nb.predict_row(&[1.5]), 0);
    }

    #[test]
    fn rejects_empty() {
        let data = Dataset::new(Matrix::zeros(0, 1), vec![]).unwrap();
        assert!(GaussianNb::new().fit(&data).is_err());
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let x = Matrix::from_rows(vec![vec![1.0, 5.0], vec![1.0, -5.0], vec![1.0, 5.5]]).unwrap();
        let data = Dataset::new(x, vec![0, 1, 0]).unwrap();
        let mut nb = GaussianNb::new();
        nb.fit(&data).unwrap();
        let s = nb.score_row(&[1.0, 0.0]);
        assert!(s.is_finite());
    }
}
