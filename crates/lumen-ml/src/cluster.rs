//! Agglomerative clustering of *features* by correlation distance.
//!
//! KitNET (A06) maps its input features into small groups of correlated
//! features, one autoencoder per group. This module reproduces that feature
//! map: average-linkage agglomerative clustering on the distance
//! `1 − |pearson correlation|`, with a hard cap on cluster size.

use crate::kernels;
use crate::matrix::Matrix;
use crate::{MlError, MlResult};

/// Clusters the columns of `x` into groups of at most `max_size` correlated
/// features. Returns the groups as lists of column indices; every column
/// appears in exactly one group.
pub fn cluster_features(x: &Matrix, max_size: usize) -> MlResult<Vec<Vec<usize>>> {
    let d = x.cols();
    if d == 0 || x.rows() == 0 {
        return Err(MlError::EmptyInput);
    }
    let max_size = max_size.max(1);
    let n = x.rows();

    // All d² correlations in one Gram product instead of d²/2 pearson
    // passes: center each column, scale it to unit norm, and lay the
    // columns out as rows of `u`; then corr(i, j) = dot(u_i, u_j).
    // Degenerate columns (zero variance, or n < 2 — where `pearson`
    // reports 0) are zeroed, so their correlation with everything is 0
    // and their distance 1.
    let mut u = x.transpose();
    for r in 0..d {
        let row = u.row_mut(r);
        let degenerate = if n < 2 {
            true
        } else {
            let mean = row.iter().sum::<f64>() / n as f64;
            for v in row.iter_mut() {
                *v -= mean;
            }
            let sxx = kernels::dot(row, row);
            if sxx > 0.0 {
                let inv = 1.0 / sxx.sqrt();
                for v in row.iter_mut() {
                    *v *= inv;
                }
            }
            sxx <= 0.0
        };
        if degenerate {
            row.fill(0.0);
        }
    }
    let corr = kernels::matmul_bt(&u, &u, kernels::resolve_threads(0))?;

    // Pairwise correlation distances (rounding can push |corr| a hair
    // past 1; clamp so distances stay non-negative).
    let mut dist = vec![vec![0.0f64; d]; d];
    for i in 0..d {
        for j in (i + 1)..d {
            let dd = (1.0 - corr.get(i, j).abs()).max(0.0);
            dist[i][j] = dd;
            dist[j][i] = dd;
        }
    }

    // Average-linkage agglomeration with a size cap.
    let mut clusters: Vec<Vec<usize>> = (0..d).map(|i| vec![i]).collect();
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                if clusters[a].len() + clusters[b].len() > max_size {
                    continue;
                }
                let mut sum = 0.0;
                for &i in &clusters[a] {
                    for &j in &clusters[b] {
                        sum += dist[i][j];
                    }
                }
                let avg = sum / (clusters[a].len() * clusters[b].len()) as f64;
                if best.is_none_or(|(_, _, s)| avg < s) {
                    best = Some((a, b, avg));
                }
            }
        }
        match best {
            // Merge only clearly-correlated groups; 1.0 means uncorrelated.
            Some((a, b, score)) if score < 0.75 => {
                let merged = clusters.remove(b);
                clusters[a].extend(merged);
            }
            _ => break,
        }
    }
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters.sort_by_key(|c| c[0]);
    Ok(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_util::Rng;

    /// Features 0,1 correlated; 2,3 correlated; 4 independent.
    fn grouped_features(seed: u64, n: usize) -> Matrix {
        let mut rng = Rng::new(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let a = rng.normal();
                let b = rng.normal();
                let c = rng.normal();
                vec![
                    a,
                    a * 2.0 + rng.normal_with(0.0, 0.05),
                    b,
                    -b + rng.normal_with(0.0, 0.05),
                    c,
                ]
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn groups_correlated_features() {
        let x = grouped_features(1, 500);
        let groups = cluster_features(&x, 3).unwrap();
        let find = |f: usize| groups.iter().position(|g| g.contains(&f)).unwrap();
        assert_eq!(find(0), find(1), "0 and 1 should cluster: {groups:?}");
        assert_eq!(find(2), find(3), "2 and 3 should cluster: {groups:?}");
        assert_ne!(find(0), find(2));
    }

    #[test]
    fn every_feature_exactly_once() {
        let x = grouped_features(2, 300);
        let groups = cluster_features(&x, 2).unwrap();
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn max_size_respected() {
        let x = grouped_features(3, 300);
        for cap in 1..=4 {
            let groups = cluster_features(&x, cap).unwrap();
            assert!(groups.iter().all(|g| g.len() <= cap));
        }
    }

    #[test]
    fn cap_one_gives_singletons() {
        let x = grouped_features(4, 100);
        let groups = cluster_features(&x, 1).unwrap();
        assert_eq!(groups.len(), 5);
    }

    #[test]
    fn rejects_empty() {
        assert!(cluster_features(&Matrix::zeros(0, 3), 2).is_err());
        assert!(cluster_features(&Matrix::zeros(3, 0), 2).is_err());
    }
}
